"""Binary columnar trace files (store schema v5) + shared string interning.

The trace store's disk tier used to be gzipped JSON: compact, but a warm
load paid a full JSON parse and re-columnarization even though every
consumer has priced straight from :class:`~repro.trace.columns.TraceColumns`
since the columnar engine landed. Schema v5 stores the columns *as bytes*:

```
offset 0   magic  b"MMBTRACE"
offset 8   u32 LE format version (5)
offset 12  u32 LE header length H
offset 16  header JSON (H bytes, UTF-8)
           zero padding to the next 64-byte boundary
           raw little-endian column blocks, each 64-byte aligned,
           in the fixed KERNEL_COLUMN_SPEC + HOST_COLUMN_SPEC order
```

The header carries everything that is small (the cache key, model scalars,
``extra`` provenance, sparse per-event ``meta`` dicts, and the column
directory: name -> dtype/offset/count relative to the data section). The
column blocks carry everything that is big, and a load memory-maps them
directly into read-only numpy views — no parse, no copy, no per-event
objects. The mmap stays alive as the arrays' ``base``, so an in-flight
view survives even if the file is concurrently replaced (``os.replace``
re-points the directory entry; the mapped inode is untouched).

String tables (stage / modality / kernel-name / host-name) are interned
*across* traces: a corpus-wide append-only sidecar (``interning.jsonl``)
maps content-addressed 63-bit string ids to strings, and each trace header
stores only the ids. Content addressing makes concurrent appends
coordination-free — two writers interning the same string write the same
id, and duplicate lines are harmless. A standalone file (no sidecar
available) falls back to inlining the strings in its own header.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import tempfile
from pathlib import Path

import numpy as np

from repro.trace.columns import (
    HOST_COLUMN_SPEC,
    KERNEL_COLUMN_SPEC,
    TABLE_NAMES,
    TraceColumns,
)

MAGIC = b"MMBTRACE"
FORMAT_VERSION = 5
#: Column blocks start on 64-byte boundaries (cache-line / SIMD friendly).
ALIGN = 64

#: Canonical file suffix for v5 binary trace files.
SUFFIX = ".mmt"


class TraceFormatError(ValueError):
    """A v5 trace file (or its interning sidecar) cannot be decoded."""


def _align_up(offset: int) -> int:
    return (offset + ALIGN - 1) // ALIGN * ALIGN


def string_id(s: str) -> int:
    """Content-addressed 63-bit id for an interned string."""
    return int.from_bytes(hashlib.sha256(s.encode()).digest()[:8], "little") >> 1


class StringInterner:
    """Corpus-wide append-only string table (the ``interning.jsonl`` sidecar).

    One JSON line per string: ``{"id": <63-bit int>, "s": <string>}``. Ids
    are content hashes, so concurrent writers never need to coordinate —
    appends are single ``O_APPEND`` writes, duplicates are idempotent, and
    a torn trailing line (a crash mid-append) is skipped on read and
    rewritten by the next writer that needs the string.
    """

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)
        self._by_id: dict[int, str] = {}

    def _refresh(self) -> None:
        try:
            raw = self.path.read_bytes()
        except OSError:
            return
        for line in raw.splitlines():
            if not line.strip():
                continue
            try:
                rec = json.loads(line)
                self._by_id[int(rec["id"])] = rec["s"]
            except (ValueError, KeyError, TypeError):
                # Torn tail from an in-flight append; the payload it was
                # carrying is re-appended by whoever needed it.
                continue

    def __len__(self) -> int:
        self._refresh()
        return len(self._by_id)

    def intern(self, strings) -> list[int]:
        """Ids for ``strings``, appending any the sidecar lacks."""
        ids = [string_id(s) for s in strings]
        if any(i not in self._by_id for i in ids):
            self._refresh()
        new = [(i, s) for i, s in zip(ids, strings) if self._by_id.get(i) != s]
        for i, s in new:
            if i in self._by_id:  # astronomically unlikely hash collision
                raise TraceFormatError(
                    f"string-id collision: {self._by_id[i]!r} vs {s!r}")
        if new:
            blob = "".join(
                json.dumps({"id": i, "s": s}, separators=(",", ":")) + "\n"
                for i, s in new
            ).encode()
            fd = os.open(self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
            try:
                os.write(fd, blob)
            finally:
                os.close(fd)
            for i, s in new:
                self._by_id[i] = s
        return ids

    def resolve(self, ids) -> tuple[str, ...]:
        """Strings for ``ids`` (re-reads the sidecar on unknown ids)."""
        if any(int(i) not in self._by_id for i in ids):
            self._refresh()
        try:
            return tuple(self._by_id[int(i)] for i in ids)
        except KeyError as exc:
            raise TraceFormatError(
                f"interning sidecar {self.path} is missing string id {exc}"
            ) from None


# -- encoding ------------------------------------------------------------------


def _column_arrays(columns: TraceColumns) -> list[tuple[str, str, np.ndarray]]:
    out = []
    for name, dtype in KERNEL_COLUMN_SPEC + HOST_COLUMN_SPEC:
        arr = np.ascontiguousarray(getattr(columns, name), dtype=np.dtype(dtype))
        out.append((name, dtype, arr))
    return out


def encode_entry(key_dict: dict | None, stored, interner: StringInterner | None) -> bytes:
    """Serialize a :class:`~repro.trace.store.StoredTrace` to v5 bytes."""
    columns = stored.trace.columns()
    arrays = _column_arrays(columns)

    directory = []
    offset = 0  # relative to the (64-aligned) data section start
    for name, dtype, arr in arrays:
        offset = _align_up(offset)
        directory.append({"name": name, "dtype": dtype,
                          "count": int(arr.size), "offset": offset})
        offset += arr.nbytes

    tables: dict[str, dict] = {}
    for tname in TABLE_NAMES:
        strings = list(getattr(columns, tname))
        if interner is not None:
            tables[tname] = {"ids": interner.intern(strings)}
        else:
            tables[tname] = {"strings": strings}

    header = {
        "schema": FORMAT_VERSION,
        "key": key_dict,
        "model_name": stored.model_name,
        "parameters": stored.parameters,
        "parameter_bytes": stored.parameter_bytes,
        "input_bytes": stored.input_bytes,
        "modalities": list(stored.modalities),
        "extra": stored.extra,
        "n": columns.n,
        "host_n": columns.host_n,
        "columns": directory,
        "tables": tables,
        "meta": {str(i): m for i, m in columns.meta.items()},
        "host_meta": {str(i): m for i, m in columns.host_meta.items()},
    }
    header_bytes = json.dumps(header, separators=(",", ":")).encode()

    data_start = _align_up(16 + len(header_bytes))
    parts = [MAGIC,
             (FORMAT_VERSION).to_bytes(4, "little"),
             len(header_bytes).to_bytes(4, "little"),
             header_bytes,
             b"\x00" * (data_start - 16 - len(header_bytes))]
    pos = 0
    for entry, (_, _, arr) in zip(directory, arrays):
        pad = entry["offset"] - pos
        if pad:
            parts.append(b"\x00" * pad)
        parts.append(arr.tobytes())
        pos = entry["offset"] + arr.nbytes
    return b"".join(parts)


def write_entry(path: str | os.PathLike, key_dict: dict | None, stored,
                interner: StringInterner | None = None) -> Path:
    """Atomically publish ``stored`` as a v5 file at ``path``.

    Writes to a sibling temp file and ``os.replace``s it into place, so a
    concurrent reader either sees the old complete file or the new one —
    never a torn write. Sidecar strings are appended *before* the rename,
    so any published file's ids are always resolvable.
    """
    path = Path(path)
    blob = encode_entry(key_dict, stored, interner)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=path.name,
                                    suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(blob)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


# -- decoding ------------------------------------------------------------------


def _parse_header(buf) -> tuple[dict, int]:
    """Validated header dict + absolute data-section offset."""
    if len(buf) < 16:
        raise TraceFormatError(f"file too short for a v5 header ({len(buf)} bytes)")
    if bytes(buf[:8]) != MAGIC:
        raise TraceFormatError(f"bad magic {bytes(buf[:8])!r}")
    version = int.from_bytes(buf[8:12], "little")
    if version != FORMAT_VERSION:
        raise TraceFormatError(f"unsupported binary trace version {version}")
    header_len = int.from_bytes(buf[12:16], "little")
    if 16 + header_len > len(buf):
        raise TraceFormatError("truncated header")
    try:
        header = json.loads(bytes(buf[16:16 + header_len]).decode())
    except (ValueError, UnicodeDecodeError) as exc:
        raise TraceFormatError(f"undecodable header: {exc}") from None
    if header.get("schema") != FORMAT_VERSION:
        raise TraceFormatError(f"unsupported schema {header.get('schema')!r}")
    return header, _align_up(16 + header_len)


def read_header(path: str | os.PathLike) -> dict:
    """Header dict only (cheap corpus listing — no column mapping)."""
    with open(path, "rb") as fh:
        prefix = fh.read(16)
        if len(prefix) < 16 or prefix[:8] != MAGIC:
            raise TraceFormatError(f"{path}: not a v5 trace file")
        header_len = int.from_bytes(prefix[12:16], "little")
        blob = prefix + fh.read(header_len)
    header, _ = _parse_header(blob)
    return header


def _resolve_table(spec: dict, interner: StringInterner | None,
                   name: str) -> tuple[str, ...]:
    if "strings" in spec:
        return tuple(spec["strings"])
    if "ids" in spec:
        if interner is None:
            raise TraceFormatError(
                f"table {name!r} uses interned ids but no sidecar is available")
        return interner.resolve(spec["ids"])
    raise TraceFormatError(f"table {name!r} has neither strings nor ids")


def read_entry(path: str | os.PathLike,
               interner: StringInterner | None = None):
    """Load a v5 file into ``(header, StoredTrace)`` with zero-copy columns.

    Column arrays are read-only ``np.frombuffer`` views over a private
    read-only mmap of the file; the mmap is kept alive by the arrays'
    ``base`` chain, so no explicit lifetime management is needed.
    """
    from repro.trace.store import StoredTrace
    from repro.trace.tracer import Trace

    with open(path, "rb") as fh:
        mm = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
    header, data_start = _parse_header(mm)

    tables = {name: _resolve_table(header["tables"][name], interner, name)
              for name in TABLE_NAMES}

    arrays: dict[str, np.ndarray] = {}
    for entry in header["columns"]:
        dtype = np.dtype(entry["dtype"])
        count = int(entry["count"])
        if count == 0:
            arrays[entry["name"]] = np.empty(0, dtype=dtype)
            continue
        offset = data_start + int(entry["offset"])
        if offset + count * dtype.itemsize > len(mm):
            raise TraceFormatError(
                f"column {entry['name']!r} extends past end of file")
        arrays[entry["name"]] = np.frombuffer(mm, dtype=dtype, count=count,
                                              offset=offset)

    columns = TraceColumns.from_buffers(
        n=int(header["n"]), host_n=int(header["host_n"]),
        arrays=arrays, tables=tables,
        meta={int(i): dict(m) for i, m in header["meta"].items()},
        host_meta={int(i): dict(m) for i, m in header["host_meta"].items()},
    )
    stored = StoredTrace(
        trace=Trace.from_columns(columns),
        model_name=header["model_name"],
        parameters=header["parameters"],
        parameter_bytes=header["parameter_bytes"],
        input_bytes=header["input_bytes"],
        modalities=list(header["modalities"]),
        extra=dict(header.get("extra") or {}),
    )
    return header, stored
