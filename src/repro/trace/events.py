"""Trace event records emitted during model execution.

The tracer (see :mod:`repro.trace.tracer`) collects two kinds of records:

* :class:`KernelEvent` — one per device kernel launch. These are emitted by
  the primitive ops in :mod:`repro.nn.functional` and carry the work
  descriptors (FLOPs, bytes moved, thread parallelism) that the hardware
  model in :mod:`repro.hw` turns into latencies and counters.
* :class:`HostEvent` — one per host-side (CPU + runtime) operation, such as
  a host-to-device copy, a tensor re-layout performed on the CPU, or a
  synchronization point.

Both record the *stage* (``encoder`` / ``fusion`` / ``head`` /
``preprocess``) and *modality* context that was active when they were
emitted, which is what enables MMBench's fine-grained per-stage and
per-modality characterization.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class KernelCategory(str, enum.Enum):
    """GPU kernel taxonomy used for the Figure-8 operator breakdown.

    Mirrors the eight categories in the paper: convolutions, batch
    normalization, element-wise ops, pooling, ReLU activations, general
    matrix multiplies, reductions, and everything else.
    """

    CONV = "Conv"
    BNORM = "BNorm"
    ELEWISE = "Elewise"
    POOLING = "Pooling"
    RELU = "Relu"
    GEMM = "Gemm"
    REDUCE = "Reduce"
    OTHER = "Other"


class HostOpKind(str, enum.Enum):
    """Host-side operation taxonomy for CPU+Runtime attribution."""

    H2D = "h2d"
    D2H = "d2h"
    LAUNCH = "launch"
    SYNC = "sync"
    DATA_PREP = "data_prep"
    PREPROCESS = "preprocess"


# Stages of the canonical three-stage multi-modal execution pattern.
STAGE_PREPROCESS = "preprocess"
STAGE_ENCODER = "encoder"
STAGE_FUSION = "fusion"
STAGE_HEAD = "head"
# Optimizer updates run outside the model's staged forward; they get their
# own stage so training traces do not pollute the encoder/fusion/head
# breakdowns the paper's figures are built on.
STAGE_OPTIMIZER = "optimizer"
STAGES = (STAGE_ENCODER, STAGE_FUSION, STAGE_HEAD)

# Execution passes of one training step. Inference traces are pure
# ``forward``; a traced training step interleaves all four. The taxonomy is
# fixed (like the kernel categories) so pass codes are stable across traces
# and across the store's serialized schema.
PASS_FORWARD = "forward"
PASS_LOSS = "loss"
PASS_BACKWARD = "backward"
PASS_OPTIMIZER = "optimizer"
PASSES = (PASS_FORWARD, PASS_LOSS, PASS_BACKWARD, PASS_OPTIMIZER)


@dataclass
class KernelEvent:
    """A single device kernel launch and its work descriptors.

    The event stores *work*, not *time*: latency, counters and stall
    attributions are derived later by an execution engine for a particular
    :class:`~repro.hw.device.DeviceSpec`. This mirrors how MMBench decouples
    the workload from the platform it is profiled on.
    """

    name: str
    category: KernelCategory
    flops: float
    bytes_read: float
    bytes_written: float
    threads: int
    stage: str = STAGE_ENCODER
    modality: str | None = None
    pass_: str = PASS_FORWARD  # which training-step pass emitted the kernel
    seq: int = 0
    # Access-pattern descriptors used by the counter model.
    coalesced_fraction: float = 1.0
    reuse_factor: float = 1.0
    meta: dict = field(default_factory=dict)

    @property
    def bytes_total(self) -> float:
        return self.bytes_read + self.bytes_written

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per byte moved; guards the zero-byte corner case."""
        total = self.bytes_total
        if total <= 0:
            return float("inf") if self.flops > 0 else 0.0
        return self.flops / total


@dataclass
class HostEvent:
    """A host-side (CPU + runtime) operation."""

    kind: HostOpKind
    bytes: float = 0.0
    stage: str = STAGE_ENCODER
    modality: str | None = None
    pass_: str = PASS_FORWARD
    seq: int = 0
    name: str = ""
    meta: dict = field(default_factory=dict)
