"""Columnar (structure-of-arrays) view of a trace.

A :class:`~repro.trace.tracer.Trace` holds one Python object per kernel
launch, which is the right shape for *capture* but the wrong shape for
*pricing*: the execution engine wants to run the roofline model over
thousands of kernels in a handful of numpy operations, not an interpreter
loop. :class:`TraceColumns` is the pricing-side layout — one contiguous
float64 array per work descriptor (FLOPs, bytes read/written, threads,
coalescing, reuse), plus small integer code arrays for the categorical
fields (kernel category, stage, modality, event name) backed by interned
string tables in first-seen order.

The columns are built once per trace and cached on it
(:meth:`Trace.columns`); the trace store's disk tier serializes this form
directly, so a warm load never churns through per-event objects at all —
``KernelEvent`` / ``HostEvent`` lists are materialized lazily only when a
consumer actually asks for them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.trace.events import HostEvent, HostOpKind, KernelCategory, KernelEvent, PASSES

#: Fixed category order shared by every columnar trace and every efficiency
#: lookup vector in :mod:`repro.hw`. Index = code.
CATEGORY_ORDER: tuple[KernelCategory, ...] = tuple(KernelCategory)
CATEGORY_CODES: dict[KernelCategory, int] = {c: i for i, c in enumerate(CATEGORY_ORDER)}

#: Fixed host-op order; index = code.
HOST_KIND_ORDER: tuple[HostOpKind, ...] = tuple(HostOpKind)
HOST_KIND_CODES: dict[HostOpKind, int] = {k: i for i, k in enumerate(HOST_KIND_ORDER)}

#: Fixed pass order (forward/loss/backward/optimizer); index = code.
#: Code 0 is ``forward``, which is what schema-v2 payloads (captured
#: before passes existed — pure inference traces) decode to.
PASS_ORDER: tuple[str, ...] = PASSES
PASS_CODES: dict[str, int] = {p: i for i, p in enumerate(PASS_ORDER)}

#: Modality code for "no modality" (``KernelEvent.modality is None``).
NO_MODALITY = -1

#: The stable on-disk column schema (name, little-endian dtype), in file
#: order. The binary store (:mod:`repro.trace.binfmt`) writes exactly these
#: blocks and :meth:`TraceColumns.from_buffers` validates against them, so
#: adding/reordering a column is a schema change, not a silent drift.
KERNEL_COLUMN_SPEC: tuple[tuple[str, str], ...] = (
    ("flops", "<f8"), ("bytes_read", "<f8"), ("bytes_written", "<f8"),
    ("threads", "<i8"), ("coalesced_fraction", "<f8"), ("reuse_factor", "<f8"),
    ("category_codes", "<i8"), ("stage_codes", "<i8"),
    ("modality_codes", "<i8"), ("pass_codes", "<i8"),
    ("name_codes", "<i8"), ("seq", "<i8"),
)
HOST_COLUMN_SPEC: tuple[tuple[str, str], ...] = (
    ("host_kind_codes", "<i8"), ("host_bytes", "<f8"),
    ("host_stage_codes", "<i8"), ("host_modality_codes", "<i8"),
    ("host_pass_codes", "<i8"), ("host_name_codes", "<i8"),
    ("host_seq", "<i8"),
)
#: Interned string tables, in header order.
TABLE_NAMES = ("stage_table", "modality_table", "name_table", "host_name_table")


class _Interner:
    """First-seen-order string interning: name -> small int code."""

    def __init__(self, table: tuple[str, ...] = ()):
        self.codes: dict[str, int] = {s: i for i, s in enumerate(table)}

    def code(self, name: str) -> int:
        code = self.codes.get(name)
        if code is None:
            code = len(self.codes)
            self.codes[name] = code
        return code

    def table(self) -> tuple[str, ...]:
        return tuple(self.codes)


def _f64(values) -> np.ndarray:
    return np.asarray(values, dtype=np.float64)


def _i64(values) -> np.ndarray:
    return np.asarray(values, dtype=np.int64)


@dataclass
class TraceColumns:
    """Structure-of-arrays view of one trace (kernels + host events)."""

    # -- kernel columns (length n) ---------------------------------------------
    n: int
    flops: np.ndarray
    bytes_read: np.ndarray
    bytes_written: np.ndarray
    threads: np.ndarray  # int64; float view cached in threads_f
    coalesced_fraction: np.ndarray
    reuse_factor: np.ndarray
    category_codes: np.ndarray  # int64 into CATEGORY_ORDER
    stage_codes: np.ndarray  # int64 into stage_table
    modality_codes: np.ndarray  # int64 into modality_table; NO_MODALITY = None
    pass_codes: np.ndarray  # int64 into PASS_ORDER
    name_codes: np.ndarray  # int64 into name_table
    seq: np.ndarray  # int64
    # -- host-event columns (length host_n) ------------------------------------
    host_n: int
    host_kind_codes: np.ndarray  # int64 into HOST_KIND_ORDER
    host_bytes: np.ndarray
    host_stage_codes: np.ndarray
    host_modality_codes: np.ndarray
    host_pass_codes: np.ndarray
    host_name_codes: np.ndarray
    host_seq: np.ndarray
    # -- interned string tables (shared by kernel and host columns) ------------
    stage_table: tuple[str, ...]
    modality_table: tuple[str, ...]
    name_table: tuple[str, ...]
    host_name_table: tuple[str, ...]
    # -- sparse metadata: index -> non-empty meta dict --------------------------
    meta: dict[int, dict] = field(default_factory=dict)
    host_meta: dict[int, dict] = field(default_factory=dict)

    # -- derived columns (cached) ----------------------------------------------

    def __post_init__(self):
        self._bytes_total: np.ndarray | None = None
        self._threads_f: np.ndarray | None = None

    @property
    def bytes_total(self) -> np.ndarray:
        if self._bytes_total is None:
            self._bytes_total = self.bytes_read + self.bytes_written
        return self._bytes_total

    @property
    def threads_f(self) -> np.ndarray:
        if self._threads_f is None:
            self._threads_f = self.threads.astype(np.float64)
        return self._threads_f

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_events(
        cls, kernels: list[KernelEvent], host_events: list[HostEvent]
    ) -> "TraceColumns":
        """Build columns from event objects (the once-per-trace cost)."""
        stages = _Interner()
        modalities = _Interner()
        names = _Interner()
        host_names = _Interner()

        n = len(kernels)
        flops = np.empty(n)
        bytes_read = np.empty(n)
        bytes_written = np.empty(n)
        threads = np.empty(n, dtype=np.int64)
        coalesced = np.empty(n)
        reuse = np.empty(n)
        category_codes = np.empty(n, dtype=np.int64)
        stage_codes = np.empty(n, dtype=np.int64)
        modality_codes = np.empty(n, dtype=np.int64)
        pass_codes = np.empty(n, dtype=np.int64)
        name_codes = np.empty(n, dtype=np.int64)
        seq = np.empty(n, dtype=np.int64)
        meta: dict[int, dict] = {}
        for i, k in enumerate(kernels):
            flops[i] = k.flops
            bytes_read[i] = k.bytes_read
            bytes_written[i] = k.bytes_written
            threads[i] = k.threads
            coalesced[i] = k.coalesced_fraction
            reuse[i] = k.reuse_factor
            category_codes[i] = CATEGORY_CODES[k.category]
            stage_codes[i] = stages.code(k.stage)
            modality_codes[i] = (
                NO_MODALITY if k.modality is None else modalities.code(k.modality)
            )
            pass_codes[i] = PASS_CODES[k.pass_]
            name_codes[i] = names.code(k.name)
            seq[i] = k.seq
            if k.meta:
                meta[i] = k.meta

        host_n = len(host_events)
        host_kind_codes = np.empty(host_n, dtype=np.int64)
        host_bytes = np.empty(host_n)
        host_stage_codes = np.empty(host_n, dtype=np.int64)
        host_modality_codes = np.empty(host_n, dtype=np.int64)
        host_pass_codes = np.empty(host_n, dtype=np.int64)
        host_name_codes = np.empty(host_n, dtype=np.int64)
        host_seq = np.empty(host_n, dtype=np.int64)
        host_meta: dict[int, dict] = {}
        for i, h in enumerate(host_events):
            host_kind_codes[i] = HOST_KIND_CODES[h.kind]
            host_bytes[i] = h.bytes
            host_stage_codes[i] = stages.code(h.stage)
            host_modality_codes[i] = (
                NO_MODALITY if h.modality is None else modalities.code(h.modality)
            )
            host_pass_codes[i] = PASS_CODES[h.pass_]
            host_name_codes[i] = host_names.code(h.name)
            host_seq[i] = h.seq
            if h.meta:
                host_meta[i] = h.meta

        return cls(
            n=n, flops=flops, bytes_read=bytes_read, bytes_written=bytes_written,
            threads=threads, coalesced_fraction=coalesced, reuse_factor=reuse,
            category_codes=category_codes, stage_codes=stage_codes,
            modality_codes=modality_codes, pass_codes=pass_codes,
            name_codes=name_codes, seq=seq,
            host_n=host_n, host_kind_codes=host_kind_codes, host_bytes=host_bytes,
            host_stage_codes=host_stage_codes,
            host_modality_codes=host_modality_codes,
            host_pass_codes=host_pass_codes,
            host_name_codes=host_name_codes, host_seq=host_seq,
            stage_table=stages.table(), modality_table=modalities.table(),
            name_table=names.table(), host_name_table=host_names.table(),
            meta=meta, host_meta=host_meta,
        )

    @classmethod
    def from_buffers(
        cls,
        n: int,
        host_n: int,
        arrays: dict,
        tables: dict,
        meta: dict | None = None,
        host_meta: dict | None = None,
    ) -> "TraceColumns":
        """Wrap pre-built (possibly memory-mapped, read-only) column arrays.

        This is the zero-copy entry point the binary store loads through:
        arrays are adopted as-is, never copied. Dtypes, lengths and code
        ranges are validated against the column schema so a truncated or
        bit-rotted file fails loudly here instead of producing garbage
        prices downstream.
        """
        def _check(spec, length, kind):
            for name, dtype in spec:
                arr = arrays.get(name)
                if arr is None:
                    raise ValueError(f"missing {kind} column {name!r}")
                if arr.ndim != 1 or arr.dtype != np.dtype(dtype):
                    raise ValueError(
                        f"{kind} column {name!r}: expected 1-d {dtype}, got "
                        f"{arr.ndim}-d {arr.dtype.str}")
                if arr.size != length:
                    raise ValueError(
                        f"{kind} column {name!r}: expected {length} entries, "
                        f"got {arr.size}")

        _check(KERNEL_COLUMN_SPEC, n, "kernel")
        _check(HOST_COLUMN_SPEC, host_n, "host")
        for tname in TABLE_NAMES:
            if not isinstance(tables.get(tname), tuple):
                raise ValueError(f"missing interned table {tname!r}")

        def _bounds(name, lo, hi):
            arr = arrays[name]
            if arr.size and (int(arr.min()) < lo or int(arr.max()) >= hi):
                raise ValueError(
                    f"column {name!r} has codes outside [{lo}, {hi})")

        _bounds("category_codes", 0, len(CATEGORY_ORDER))
        _bounds("pass_codes", 0, len(PASS_ORDER))
        _bounds("stage_codes", 0, max(1, len(tables["stage_table"])))
        _bounds("modality_codes", NO_MODALITY,
                max(1, len(tables["modality_table"])))
        _bounds("name_codes", 0, max(1, len(tables["name_table"])))
        _bounds("host_kind_codes", 0, len(HOST_KIND_ORDER))
        _bounds("host_pass_codes", 0, len(PASS_ORDER))
        _bounds("host_stage_codes", 0, max(1, len(tables["stage_table"])))
        _bounds("host_modality_codes", NO_MODALITY,
                max(1, len(tables["modality_table"])))
        _bounds("host_name_codes", 0, max(1, len(tables["host_name_table"])))

        return cls(
            n=n,
            host_n=host_n,
            **{name: arrays[name]
               for name, _ in KERNEL_COLUMN_SPEC + HOST_COLUMN_SPEC},
            **{tname: tables[tname] for tname in TABLE_NAMES},
            meta=dict(meta or {}),
            host_meta=dict(host_meta or {}),
        )

    # -- materialization (API-compatibility escape hatch) ----------------------

    def materialize_kernels(self) -> list[KernelEvent]:
        """Rebuild the ``KernelEvent`` list (lazy consumers only)."""
        out: list[KernelEvent] = []
        for i in range(self.n):
            mod_code = int(self.modality_codes[i])
            out.append(KernelEvent(
                name=self.name_table[int(self.name_codes[i])],
                category=CATEGORY_ORDER[int(self.category_codes[i])],
                flops=float(self.flops[i]),
                bytes_read=float(self.bytes_read[i]),
                bytes_written=float(self.bytes_written[i]),
                threads=int(self.threads[i]),
                stage=self.stage_table[int(self.stage_codes[i])],
                modality=None if mod_code == NO_MODALITY else self.modality_table[mod_code],
                pass_=PASS_ORDER[int(self.pass_codes[i])],
                seq=int(self.seq[i]),
                coalesced_fraction=float(self.coalesced_fraction[i]),
                reuse_factor=float(self.reuse_factor[i]),
                meta=dict(self.meta.get(i, {})),
            ))
        return out

    def materialize_host_events(self) -> list[HostEvent]:
        out: list[HostEvent] = []
        for i in range(self.host_n):
            mod_code = int(self.host_modality_codes[i])
            out.append(HostEvent(
                kind=HOST_KIND_ORDER[int(self.host_kind_codes[i])],
                bytes=float(self.host_bytes[i]),
                stage=self.stage_table[int(self.host_stage_codes[i])],
                modality=None if mod_code == NO_MODALITY else self.modality_table[mod_code],
                pass_=PASS_ORDER[int(self.host_pass_codes[i])],
                seq=int(self.host_seq[i]),
                name=self.host_name_table[int(self.host_name_codes[i])],
                meta=dict(self.host_meta.get(i, {})),
            ))
        return out

    # -- categorical lookups ---------------------------------------------------

    def stage_code(self, stage: str) -> int | None:
        """Code for ``stage``, or None if the trace never saw it."""
        try:
            return self.stage_table.index(stage)
        except ValueError:
            return None

    def modality_code(self, modality: str) -> int | None:
        try:
            return self.modality_table.index(modality)
        except ValueError:
            return None

    def kernel_stages(self) -> list[str]:
        """Stages present among *kernels*, in first-seen order."""
        if self.n == 0:
            return []
        codes, first = np.unique(self.stage_codes, return_index=True)
        return [self.stage_table[int(c)] for c in codes[np.argsort(first)]]

    def kernel_modalities(self) -> list[str]:
        """Modalities present among kernels, in first-seen order."""
        attributed = self.modality_codes[self.modality_codes != NO_MODALITY]
        if attributed.size == 0:
            return []
        codes, first = np.unique(attributed, return_index=True)
        return [self.modality_table[int(c)] for c in codes[np.argsort(first)]]

    def kernel_indices_in_stage(self, stage: str) -> np.ndarray:
        code = self.stage_code(stage)
        if code is None:
            return np.empty(0, dtype=np.int64)
        return np.nonzero(self.stage_codes == code)[0]

    def kernel_indices_for_modality(self, modality: str) -> np.ndarray:
        code = self.modality_code(modality)
        if code is None:
            return np.empty(0, dtype=np.int64)
        return np.nonzero(self.modality_codes == code)[0]

    def kernel_passes(self) -> list[str]:
        """Passes present among kernels, in first-seen order."""
        if self.n == 0:
            return []
        codes, first = np.unique(self.pass_codes, return_index=True)
        return [PASS_ORDER[int(c)] for c in codes[np.argsort(first)]]

    def kernel_indices_for_pass(self, pass_: str) -> np.ndarray:
        code = PASS_CODES.get(pass_)
        if code is None:
            return np.empty(0, dtype=np.int64)
        return np.nonzero(self.pass_codes == code)[0]

    # -- transforms ------------------------------------------------------------

    def scaled(self, factor: float) -> "TraceColumns":
        """Scale every work descriptor by ``factor`` (see ``scale_trace``)."""
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        return TraceColumns(
            n=self.n,
            flops=self.flops * factor,
            bytes_read=self.bytes_read * factor,
            bytes_written=self.bytes_written * factor,
            # Truncate toward zero like int(), but never below one thread.
            threads=np.maximum(1, (self.threads * factor).astype(np.int64)),
            coalesced_fraction=self.coalesced_fraction.copy(),
            reuse_factor=self.reuse_factor.copy(),
            category_codes=self.category_codes.copy(),
            stage_codes=self.stage_codes.copy(),
            modality_codes=self.modality_codes.copy(),
            pass_codes=self.pass_codes.copy(),
            name_codes=self.name_codes.copy(),
            seq=self.seq.copy(),
            host_n=self.host_n,
            host_kind_codes=self.host_kind_codes.copy(),
            host_bytes=self.host_bytes * factor,
            host_stage_codes=self.host_stage_codes.copy(),
            host_modality_codes=self.host_modality_codes.copy(),
            host_pass_codes=self.host_pass_codes.copy(),
            host_name_codes=self.host_name_codes.copy(),
            host_seq=self.host_seq.copy(),
            stage_table=self.stage_table,
            modality_table=self.modality_table,
            name_table=self.name_table,
            host_name_table=self.host_name_table,
            meta={i: dict(m) for i, m in self.meta.items()},
            host_meta={i: dict(m) for i, m in self.host_meta.items()},
        )

    # -- (de)serialization (the trace store's disk form) -----------------------

    def to_payload(self) -> dict:
        """Plain-JSON representation (lists of numbers + string tables)."""
        return {
            "n": self.n,
            "flops": self.flops.tolist(),
            "bytes_read": self.bytes_read.tolist(),
            "bytes_written": self.bytes_written.tolist(),
            "threads": self.threads.tolist(),
            "coalesced_fraction": self.coalesced_fraction.tolist(),
            "reuse_factor": self.reuse_factor.tolist(),
            "category_codes": self.category_codes.tolist(),
            "stage_codes": self.stage_codes.tolist(),
            "modality_codes": self.modality_codes.tolist(),
            "pass_codes": self.pass_codes.tolist(),
            "name_codes": self.name_codes.tolist(),
            "seq": self.seq.tolist(),
            "host_n": self.host_n,
            "host_kind_codes": self.host_kind_codes.tolist(),
            "host_bytes": self.host_bytes.tolist(),
            "host_stage_codes": self.host_stage_codes.tolist(),
            "host_modality_codes": self.host_modality_codes.tolist(),
            "host_pass_codes": self.host_pass_codes.tolist(),
            "host_name_codes": self.host_name_codes.tolist(),
            "host_seq": self.host_seq.tolist(),
            "stage_table": list(self.stage_table),
            "modality_table": list(self.modality_table),
            "name_table": list(self.name_table),
            "host_name_table": list(self.host_name_table),
            "meta": {str(i): m for i, m in self.meta.items()},
            "host_meta": {str(i): m for i, m in self.host_meta.items()},
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "TraceColumns":
        n = int(payload["n"])
        host_n = int(payload["host_n"])

        def _passes(key: str, length: int) -> np.ndarray:
            # Schema-v2 payloads predate passes: every kernel was a
            # forward-pass kernel (code 0, the PASS_ORDER anchor).
            raw = payload.get(key)
            if raw is None:
                return np.zeros(length, dtype=np.int64)
            return _i64(raw)

        return cls(
            n=n,
            flops=_f64(payload["flops"]),
            bytes_read=_f64(payload["bytes_read"]),
            bytes_written=_f64(payload["bytes_written"]),
            threads=_i64(payload["threads"]),
            coalesced_fraction=_f64(payload["coalesced_fraction"]),
            reuse_factor=_f64(payload["reuse_factor"]),
            category_codes=_i64(payload["category_codes"]),
            stage_codes=_i64(payload["stage_codes"]),
            modality_codes=_i64(payload["modality_codes"]),
            pass_codes=_passes("pass_codes", n),
            name_codes=_i64(payload["name_codes"]),
            seq=_i64(payload["seq"]),
            host_n=host_n,
            host_kind_codes=_i64(payload["host_kind_codes"]),
            host_bytes=_f64(payload["host_bytes"]),
            host_stage_codes=_i64(payload["host_stage_codes"]),
            host_modality_codes=_i64(payload["host_modality_codes"]),
            host_pass_codes=_passes("host_pass_codes", host_n),
            host_name_codes=_i64(payload["host_name_codes"]),
            host_seq=_i64(payload["host_seq"]),
            stage_table=tuple(payload["stage_table"]),
            modality_table=tuple(payload["modality_table"]),
            name_table=tuple(payload["name_table"]),
            host_name_table=tuple(payload["host_name_table"]),
            meta={int(i): dict(m) for i, m in payload["meta"].items()},
            host_meta={int(i): dict(m) for i, m in payload["host_meta"].items()},
        )
