"""Execution-graph ingest: price *external* model traces on the native pipeline.

The nine built-in workloads are captured by our own tracer, but a
trace-pricing engine is only production-useful if it can price real
models. This module parses Chakra/PARAM-style execution-graph JSON (node
id, op name, input/output shapes, dtypes, parent/child dependencies —
the format PyTorch's ExecutionGraphObserver and PARAM's ``eg_replay``
family exchange) into a native :class:`~repro.trace.tracer.Trace`, after
which it flows unchanged through the vectorized execution engine, sweep
grids and serving cost models.

Ingest is a mapping problem, and mappings corrupt silently, so every
decision here is explicit and observable:

* **Op-name -> kernel-category** resolution goes through a pluggable
  :class:`OpMappingRegistry` (ordered rules, overridable per call or via
  ``mmbench ingest --op-map``). Names no rule matches land in the
  :class:`~repro.trace.events.KernelCategory.OTHER` category and are
  *reported* in the :class:`IngestReport`'s unknown-op bucket — never
  dropped, never guessed quietly.
* **Work descriptors** (FLOPs / bytes / threads) are taken verbatim when
  the graph carries them (our own exporter does; see
  :mod:`repro.export.graph`) and otherwise estimated from shapes and
  dtypes with the per-category formulas documented in ``docs/ingest.md``.
* **Backward/loss/optimizer ops** are detected from names (the PARAM
  ``is_backward_aten`` idea) and feed the forward/loss/backward/optimizer
  pass taxonomy; explicit per-node ``pass`` fields always win.
* **Malformed graphs fail loudly and structurally**: a missing parent, an
  unknown dtype, a dependency cycle or a negative work descriptor raises
  :class:`IngestError` naming the offending node, not a ``KeyError`` or
  ``RecursionError`` deep in the mapper.

Nodes are re-ordered topologically (Kahn's algorithm, original file order
as the tie-break) so the emitted event sequence respects the graph's
dependencies regardless of serialization order.
"""

from __future__ import annotations

import hashlib
import json
import math
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.trace.events import (
    HostEvent,
    HostOpKind,
    KernelCategory,
    KernelEvent,
    PASSES,
    PASS_BACKWARD,
    PASS_FORWARD,
    PASS_LOSS,
    PASS_OPTIMIZER,
    STAGE_ENCODER,
    STAGE_FUSION,
    STAGE_HEAD,
    STAGE_OPTIMIZER,
    STAGE_PREPROCESS,
)
from repro.trace.tracer import Trace

#: Schema identifier written by the exporter and accepted (but not
#: required — PARAM/Chakra files don't carry it) by the loader.
GRAPH_SCHEMA = "mmbench-eg/1"

#: Stage label for kernels no heuristic could attribute. Reported, never
#: dropped: the stage table is dynamic, so ``unknown`` aggregates like any
#: other stage in per-stage breakdowns.
STAGE_UNKNOWN = "unknown"

#: Bytes per element for every dtype spelling the loader accepts.
DTYPE_BYTES: dict[str, int] = {
    "float64": 8, "double": 8, "fp64": 8,
    "float32": 4, "float": 4, "fp32": 4,
    "float16": 2, "half": 2, "fp16": 2,
    "bfloat16": 2, "bf16": 2,
    "int64": 8, "long": 8, "uint64": 8,
    "int32": 4, "int": 4, "uint32": 4,
    "int16": 2, "short": 2, "uint16": 2,
    "int8": 1, "uint8": 1, "byte": 1, "char": 1, "bool": 1,
}

_CATEGORY_BY_NAME = {c.value.lower(): c for c in KernelCategory}
_CATEGORY_BY_NAME.update({c.name.lower(): c for c in KernelCategory})
_HOST_KIND_BY_NAME = {k.value.lower(): k for k in HostOpKind}

_NON_ALNUM = re.compile(r"[^0-9a-z]+")
_CAMEL_BOUNDARY = re.compile(r"(?<=[a-z0-9])(?=[A-Z])")


class IngestError(Exception):
    """Structured ingest failure naming the offending node.

    ``node_id`` is the graph node the failure was detected at (None for
    graph-level problems such as an unparseable file), ``source`` the file
    or label the graph came from. The message always embeds both, so a CLI
    user sees one actionable line instead of a traceback into the mapper.
    """

    def __init__(self, reason: str, node_id=None, source: str | None = None):
        self.reason = reason
        self.node_id = node_id
        self.source = source
        where = "" if node_id is None else f" (node {node_id!r})"
        origin = "" if not source else f" [{source}]"
        super().__init__(f"{reason}{where}{origin}")


# -- op-name -> category mapping ------------------------------------------------


def _canonical_name(name: str) -> str:
    """Lowercased, namespace-stripped, ``_``-joined form of an op name.

    CamelCase boundaries become token breaks so autograd-node spellings
    resolve with the same rules as aten ones: ``aten::max_pool2d`` ->
    ``max_pool2d``; ``CrossEntropyLossBackward0`` ->
    ``cross_entropy_loss_backward0``; ``optimizer.step#SGD.step`` ->
    ``optimizer_step_sgd_step``.
    """
    split = _CAMEL_BOUNDARY.sub("_", name)
    return _NON_ALNUM.sub("_", split.lower()).strip("_")


@dataclass(frozen=True)
class OpRule:
    """One mapping rule: a name pattern and the taxonomy it implies.

    ``pattern`` containing an underscore matches as a substring of the
    canonical name (``cross_entropy`` in ``cross_entropy_loss_backward``);
    a single-token pattern matches when any ``_``-token of the canonical
    name *starts with* it (``pool`` matches ``max_pool2d`` but ``mul``
    does not match ``accumulategrad``). ``pass_`` / ``stage`` optionally
    pin the pass/stage for matching ops (optimizer rules use this).
    """

    pattern: str
    category: KernelCategory
    pass_: str | None = None
    stage: str | None = None

    def matches(self, canonical: str, tokens: tuple[str, ...]) -> bool:
        if "_" in self.pattern:
            return self.pattern in canonical
        return any(tok.startswith(self.pattern) for tok in tokens)


#: Ordered default rules — first match wins. Matmul-ish rules precede the
#: generic elementwise tail so ``addmm`` resolves GEMM before ``add``.
DEFAULT_OP_RULES: tuple[OpRule, ...] = (
    # convolutions / normalizations
    OpRule("conv", KernelCategory.CONV),
    OpRule("batch_norm", KernelCategory.BNORM),
    OpRule("batchnorm", KernelCategory.BNORM),
    OpRule("layer_norm", KernelCategory.BNORM),
    OpRule("layernorm", KernelCategory.BNORM),
    OpRule("group_norm", KernelCategory.BNORM),
    OpRule("instance_norm", KernelCategory.BNORM),
    # activations
    OpRule("relu", KernelCategory.RELU),
    OpRule("sigmoid", KernelCategory.ELEWISE),
    OpRule("tanh", KernelCategory.ELEWISE),
    OpRule("gelu", KernelCategory.ELEWISE),
    OpRule("silu", KernelCategory.ELEWISE),
    OpRule("softmax", KernelCategory.REDUCE),
    # pooling
    OpRule("pool", KernelCategory.POOLING),
    # matrix multiplies (before the elementwise tail: addmm vs add)
    OpRule("gemm", KernelCategory.GEMM),
    OpRule("matmul", KernelCategory.GEMM),
    OpRule("linear", KernelCategory.GEMM),
    OpRule("addmm", KernelCategory.GEMM),
    OpRule("baddbmm", KernelCategory.GEMM),
    OpRule("bmm", KernelCategory.GEMM),
    OpRule("mm", KernelCategory.GEMM),
    OpRule("attention", KernelCategory.GEMM),
    OpRule("einsum", KernelCategory.GEMM),
    OpRule("embedding", KernelCategory.GEMM),
    # losses (pass pinned to the loss pass for forward-named ops;
    # *_backward names are caught by backward detection first)
    OpRule("cross_entropy", KernelCategory.REDUCE, pass_=PASS_LOSS),
    OpRule("nll_loss", KernelCategory.REDUCE, pass_=PASS_LOSS),
    OpRule("mse_loss", KernelCategory.REDUCE, pass_=PASS_LOSS),
    OpRule("loss", KernelCategory.REDUCE, pass_=PASS_LOSS),
    # reductions
    OpRule("sum", KernelCategory.REDUCE),
    OpRule("mean", KernelCategory.REDUCE),
    OpRule("reduce", KernelCategory.REDUCE),
    OpRule("argmax", KernelCategory.REDUCE),
    OpRule("argmin", KernelCategory.REDUCE),
    OpRule("norm", KernelCategory.REDUCE),
    # optimizer updates
    OpRule("sgd", KernelCategory.ELEWISE, pass_=PASS_OPTIMIZER, stage=STAGE_OPTIMIZER),
    OpRule("adam", KernelCategory.ELEWISE, pass_=PASS_OPTIMIZER, stage=STAGE_OPTIMIZER),
    OpRule("optimizer", KernelCategory.ELEWISE, pass_=PASS_OPTIMIZER,
           stage=STAGE_OPTIMIZER),
    # elementwise tail
    OpRule("add", KernelCategory.ELEWISE),
    OpRule("sub", KernelCategory.ELEWISE),
    OpRule("mul", KernelCategory.ELEWISE),
    OpRule("div", KernelCategory.ELEWISE),
    OpRule("exp", KernelCategory.ELEWISE),
    OpRule("log", KernelCategory.ELEWISE),
    OpRule("sqrt", KernelCategory.ELEWISE),
    OpRule("pow", KernelCategory.ELEWISE),
    OpRule("neg", KernelCategory.ELEWISE),
    OpRule("abs", KernelCategory.ELEWISE),
    OpRule("clamp", KernelCategory.ELEWISE),
    OpRule("cat", KernelCategory.ELEWISE),
    OpRule("concat", KernelCategory.ELEWISE),
    OpRule("stack", KernelCategory.ELEWISE),
    OpRule("dropout", KernelCategory.ELEWISE),
    OpRule("copy", KernelCategory.ELEWISE),
    OpRule("contiguous", KernelCategory.ELEWISE),
    OpRule("reshape", KernelCategory.ELEWISE),
    OpRule("flatten", KernelCategory.ELEWISE),
    OpRule("view", KernelCategory.ELEWISE),
    OpRule("transpose", KernelCategory.ELEWISE),
    OpRule("permute", KernelCategory.ELEWISE),
    OpRule("sin", KernelCategory.ELEWISE),
    OpRule("cos", KernelCategory.ELEWISE),
)


class OpMappingRegistry:
    """Ordered, overridable op-name -> (category, pass, stage) mapping.

    Resolution order: the exact-name table first (canonical-name
    equality), then the ordered rule list, first match wins. User rules
    registered via :meth:`register` (or ``--op-map``) are *prepended*, so
    they override the defaults. Resolutions are memoized per registry.
    """

    def __init__(self, rules: tuple[OpRule, ...] | list[OpRule] = DEFAULT_OP_RULES):
        self._rules: list[OpRule] = list(rules)
        self._exact: dict[str, OpRule] = {}
        self._memo: dict[str, OpRule | None] = {}

    def register(self, pattern: str, category: KernelCategory | str,
                 pass_: str | None = None, stage: str | None = None,
                 exact: bool = False) -> None:
        """Prepend a rule (or pin an exact canonical name)."""
        if isinstance(category, str):
            cat = _CATEGORY_BY_NAME.get(category.lower())
            if cat is None:
                raise IngestError(
                    f"unknown kernel category {category!r}; "
                    f"valid: {sorted(c.value for c in KernelCategory)}")
            category = cat
        if pass_ is not None and pass_ not in PASSES:
            raise IngestError(f"unknown pass {pass_!r}; valid: {list(PASSES)}")
        rule = OpRule(pattern if exact else pattern.lower(), category,
                      pass_=pass_, stage=stage)
        if exact:
            self._exact[_canonical_name(pattern)] = rule
        else:
            self._rules.insert(0, rule)
        self._memo.clear()

    def resolve(self, name: str) -> OpRule | None:
        """First matching rule for ``name``, or None (-> unknown bucket)."""
        memo = self._memo.get(name, _UNRESOLVED)
        if memo is not _UNRESOLVED:
            return memo
        canonical = _canonical_name(name)
        rule = self._exact.get(canonical)
        if rule is None:
            tokens = tuple(canonical.split("_"))
            for candidate in self._rules:
                if candidate.matches(canonical, tokens):
                    rule = candidate
                    break
        self._memo[name] = rule
        return rule

    @property
    def rule_list(self) -> tuple[OpRule, ...]:
        """The ordered pattern rules (first match wins), read-only."""
        return tuple(self._rules)

    @property
    def exact_names(self) -> tuple[str, ...]:
        """The pinned canonical names, read-only."""
        return tuple(self._exact)

    def copy(self) -> "OpMappingRegistry":
        dup = OpMappingRegistry(self._rules)
        dup._exact = dict(self._exact)
        return dup

    def digest(self) -> str:
        """Content hash of the rule set — part of ingest cache keys."""
        payload = json.dumps(
            [[r.pattern, r.category.value, r.pass_, r.stage] for r in self._rules]
            + [["=" + k, r.category.value, r.pass_, r.stage]
               for k, r in sorted(self._exact.items())],
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:12]

    @classmethod
    def from_mapping(cls, mapping: dict[str, str],
                     base: "OpMappingRegistry | None" = None) -> "OpMappingRegistry":
        """Build a registry from a plain ``{pattern: category}`` dict
        (the ``mmbench ingest --op-map FILE`` format) layered over ``base``
        (default: the default rules)."""
        registry = (base or default_registry()).copy()
        for pattern, category in mapping.items():
            registry.register(pattern, category)
        return registry


_UNRESOLVED = object()


def default_registry() -> OpMappingRegistry:
    """A fresh registry with the default rules (safe to mutate)."""
    return OpMappingRegistry(DEFAULT_OP_RULES)


# -- pass / stage / modality heuristics -----------------------------------------

_BACKWARD_SUBSTRINGS = ("backward", "accumulate_grad", "autograd")
_BACKWARD_TOKENS = ("bwd",)
_OPTIMIZER_SUBSTRINGS = ("optimizer",)
_OPTIMIZER_TOKENS = ("sgd", "adam", "adamw", "rmsprop", "adagrad")
_LOSS_SUBSTRINGS = ("cross_entropy", "nll", "mse_loss")
_LOSS_TOKENS = ("loss",)

_STAGE_TOKENS = (
    (("encoder", "backbone", "stem"), STAGE_ENCODER),
    (("fusion", "fuse"), STAGE_FUSION),
    (("head", "classifier", "decoder", "projector"), STAGE_HEAD),
    (("preprocess", "dataloader", "augment"), STAGE_PREPROCESS),
)

_MODALITY_TOKENS = (
    (("image", "vision", "visual", "img", "rgb", "camera"), "image"),
    (("text", "token", "word", "bert", "language"), "text"),
    (("audio", "speech", "spectrogram", "wav"), "audio"),
    (("video", "clip", "frames"), "video"),
    (("touch", "tactile", "haptic"), "touch"),
    (("lidar", "pointcloud", "point_cloud", "depth"), "lidar"),
)


def detect_pass(name: str) -> str:
    """Name-based pass detection (backward > optimizer > loss > forward)."""
    canonical = _canonical_name(name)
    tokens = set(canonical.split("_"))
    if any(s in canonical for s in _BACKWARD_SUBSTRINGS) or tokens & set(_BACKWARD_TOKENS):
        return PASS_BACKWARD
    if any(s in canonical for s in _OPTIMIZER_SUBSTRINGS) or tokens & set(_OPTIMIZER_TOKENS):
        return PASS_OPTIMIZER
    if any(s in canonical for s in _LOSS_SUBSTRINGS) or tokens & set(_LOSS_TOKENS):
        return PASS_LOSS
    return PASS_FORWARD


def _detect_stage(name: str) -> str | None:
    canonical = _canonical_name(name)
    tokens = set(canonical.split("_"))
    for markers, stage in _STAGE_TOKENS:
        if tokens & set(markers):
            return stage
    return None


def _detect_modality(name: str) -> str | None:
    canonical = _canonical_name(name)
    tokens = set(canonical.split("_"))
    for markers, modality in _MODALITY_TOKENS:
        if tokens & set(markers) or any("_" in m and m in canonical for m in markers):
            return modality
    return None


# -- shape / dtype handling -----------------------------------------------------


def _shapes(raw, node_id, source, which: str) -> list[tuple[int, ...]]:
    """Validate a list of shapes (each a list of non-negative ints)."""
    if raw is None:
        return []
    if not isinstance(raw, (list, tuple)):
        raise IngestError(f"{which} must be a list of shapes, got {type(raw).__name__}",
                          node_id, source)
    shapes = []
    for shape in raw:
        if not isinstance(shape, (list, tuple)):
            raise IngestError(f"each {which} entry must be a list of ints, "
                              f"got {shape!r}", node_id, source)
        dims = []
        for dim in shape:
            if isinstance(dim, bool) or not isinstance(dim, int) or dim < 0:
                raise IngestError(f"invalid dimension {dim!r} in {which}",
                                  node_id, source)
            dims.append(dim)
        shapes.append(tuple(dims))
    return shapes


def _elems(shape: tuple[int, ...]) -> int:
    return int(math.prod(shape)) if shape else 1


def _dtype_bytes(dtype, node_id, source) -> int:
    if dtype is None:
        return DTYPE_BYTES["float32"]
    size = DTYPE_BYTES.get(str(dtype).lower())
    if size is None:
        raise IngestError(f"unknown dtype {dtype!r}; known: "
                          f"{sorted(set(DTYPE_BYTES))}", node_id, source)
    return size


def _io_bytes(shapes, dtypes, node_id, source, which: str) -> tuple[int, float]:
    """(total elements, total bytes) across shapes with per-shape dtypes."""
    if dtypes is not None and not isinstance(dtypes, (list, tuple)):
        dtypes = [dtypes] * len(shapes)
    elems = 0
    nbytes = 0.0
    for i, shape in enumerate(shapes):
        dtype = None
        if dtypes is not None and i < len(dtypes):
            dtype = dtypes[i]
        n = _elems(shape)
        elems += n
        nbytes += n * _dtype_bytes(dtype, node_id, source)
    return elems, nbytes


# -- work-descriptor estimation --------------------------------------------------


def estimate_flops(category: KernelCategory, in_shapes, out_shapes,
                   n_inputs: int) -> float:
    """Per-category FLOP estimate from shapes (see ``docs/ingest.md``).

    Deliberately simple, deterministic formulas — the goal is a defensible
    roofline input for graphs that carry no measured work, not an exact
    replay. Explicit per-node ``flops`` always bypasses this.
    """
    out_elems = sum(_elems(s) for s in out_shapes)
    in_elems = sum(_elems(s) for s in in_shapes)
    base = out_elems if out_shapes else in_elems
    if category == KernelCategory.GEMM:
        k = in_shapes[0][-1] if in_shapes and in_shapes[0] else 1
        return 2.0 * base * max(k, 1)
    if category == KernelCategory.CONV:
        if len(in_shapes) >= 2 and in_shapes[1]:
            weight = in_shapes[1]
            per_output = _elems(weight) / max(weight[0], 1)
            return 2.0 * base * max(per_output, 1.0)
        return 2.0 * base
    if category == KernelCategory.BNORM:
        return 5.0 * base
    if category == KernelCategory.RELU:
        return float(base)
    if category == KernelCategory.POOLING:
        return float(in_elems if in_shapes else base)
    if category == KernelCategory.REDUCE:
        return float(in_elems if in_shapes else base)
    if category == KernelCategory.ELEWISE:
        return float(base * max(1, n_inputs))
    return float(base)  # OTHER: conservative elementwise-ish cost


def _positive_float(node, key, node_id, source, default=None):
    """Fetch an explicit numeric field, rejecting negatives/non-numbers."""
    if key not in node:
        return default
    value = node[key]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise IngestError(f"{key} must be a number, got {value!r}", node_id, source)
    if value < 0 or not math.isfinite(value):
        raise IngestError(f"{key} must be finite and non-negative, got {value!r}",
                          node_id, source)
    return float(value)


# -- graph loading ---------------------------------------------------------------


def source_digest(source) -> str:
    """Content digest of a graph source (file bytes, or canonical JSON)."""
    if isinstance(source, dict):
        payload = json.dumps(source, sort_keys=True, separators=(",", ":"),
                             default=str)
        return hashlib.sha256(payload.encode()).hexdigest()
    try:
        raw = Path(source).read_bytes()
    except OSError as exc:
        raise IngestError(f"cannot read graph file: {exc}",
                          source=str(source)) from exc
    return hashlib.sha256(raw).hexdigest()


def load_graph(source) -> dict:
    """Parse a graph JSON file (or pass a pre-parsed dict through)."""
    if isinstance(source, dict):
        return source
    path = Path(source)
    try:
        raw = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise IngestError(f"cannot read graph file: {exc}", source=str(path)) from exc
    try:
        graph = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise IngestError(f"invalid JSON: {exc}", source=str(path)) from exc
    if not isinstance(graph, dict):
        raise IngestError(f"graph root must be a JSON object, got "
                          f"{type(graph).__name__}", source=str(path))
    return graph


def _node_field(node: dict, *aliases, default=None):
    for alias in aliases:
        if alias in node:
            return node[alias]
    return default


def _toposort(nodes: list[dict], ids: list, source) -> list[int]:
    """Kahn's algorithm over parent deps; original order breaks ties.

    Returns positions into ``nodes``. Unknown parents and cycles raise
    :class:`IngestError` naming the offending node.
    """
    import heapq

    index_of = {}
    for pos, node_id in enumerate(ids):
        if node_id in index_of:
            raise IngestError("duplicate node id", node_id, source)
        index_of[node_id] = pos

    children: list[list[int]] = [[] for _ in nodes]
    indegree = [0] * len(nodes)
    for pos, node in enumerate(nodes):
        parents = _node_field(node, "parents", "deps", "ctrl_deps", default=[])
        if not isinstance(parents, (list, tuple)):
            raise IngestError(f"parents must be a list, got {parents!r}",
                              ids[pos], source)
        for parent in parents:
            parent_pos = index_of.get(parent)
            if parent_pos is None:
                raise IngestError(f"unknown parent id {parent!r}", ids[pos], source)
            if parent_pos == pos:
                raise IngestError("node depends on itself", ids[pos], source)
            children[parent_pos].append(pos)
            indegree[pos] += 1

    ready = [pos for pos in range(len(nodes)) if indegree[pos] == 0]
    heapq.heapify(ready)
    order: list[int] = []
    while ready:
        pos = heapq.heappop(ready)
        order.append(pos)
        for child in children[pos]:
            indegree[child] -= 1
            if indegree[child] == 0:
                heapq.heappush(ready, child)
    if len(order) != len(nodes):
        stuck = min(pos for pos in range(len(nodes)) if indegree[pos] > 0)
        raise IngestError("dependency cycle detected", ids[stuck], source)
    return order


# -- results ---------------------------------------------------------------------


@dataclass
class IngestReport:
    """Observable outcome of one ingest — what mapped, what didn't."""

    source: str
    digest: str
    n_nodes: int = 0
    n_kernels: int = 0
    n_host_events: int = 0
    unknown_ops: dict[str, int] = field(default_factory=dict)
    pass_counts: dict[str, int] = field(default_factory=dict)
    stages: list[str] = field(default_factory=list)
    modalities: list[str] = field(default_factory=list)
    unknown_stage_kernels: int = 0

    @property
    def unknown_count(self) -> int:
        return sum(self.unknown_ops.values())

    @property
    def unknown_fraction(self) -> float:
        """Fraction of kernels whose op name no mapping rule matched."""
        return self.unknown_count / self.n_kernels if self.n_kernels else 0.0

    def summary_lines(self) -> list[str]:
        lines = [
            f"ingested {self.source}: {self.n_nodes} nodes -> "
            f"{self.n_kernels} kernels + {self.n_host_events} host events",
            "passes: " + (", ".join(f"{p} {c}" for p, c in self.pass_counts.items())
                          or "none"),
        ]
        if self.unknown_count:
            top = sorted(self.unknown_ops.items(), key=lambda kv: (-kv[1], kv[0]))[:5]
            names = ", ".join(f"{name} x{count}" for name, count in top)
            lines.append(f"unknown ops: {self.unknown_count}/{self.n_kernels} "
                         f"kernels ({self.unknown_fraction:.1%}): {names}")
        else:
            lines.append(f"unknown ops: 0/{self.n_kernels} kernels (0.0%)")
        if self.unknown_stage_kernels:
            lines.append(f"stage attribution: {self.unknown_stage_kernels} kernels "
                         f"in the '{STAGE_UNKNOWN}' bucket")
        return lines

    def to_dict(self) -> dict:
        return {
            "source": self.source,
            "digest": self.digest,
            "n_nodes": self.n_nodes,
            "n_kernels": self.n_kernels,
            "n_host_events": self.n_host_events,
            "unknown_ops": dict(self.unknown_ops),
            "pass_counts": dict(self.pass_counts),
            "stages": list(self.stages),
            "modalities": list(self.modalities),
            "unknown_stage_kernels": self.unknown_stage_kernels,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "IngestReport":
        return cls(**payload)


@dataclass
class IngestedGraph:
    """An external execution graph converted to a native trace."""

    trace: Trace
    name: str
    batch_size: int
    parameters: int
    parameter_bytes: int
    input_bytes: int
    modalities: list[str]
    report: IngestReport
    topo_order: tuple = ()  # node ids in emission (topological) order


# -- the loader ------------------------------------------------------------------


def ingest_graph(source, registry: OpMappingRegistry | None = None,
                 name: str | None = None) -> IngestedGraph:
    """Parse one execution-graph JSON into a native :class:`Trace`.

    ``source`` is a file path or an already-parsed dict. ``registry``
    overrides the default op-mapping rules. Raises :class:`IngestError`
    on any malformed input, naming the offending node.
    """
    origin = name or (str(source) if not isinstance(source, dict)
                      else "<dict>")
    label = Path(origin).name if origin != "<dict>" else origin
    graph = load_graph(source)
    digest = source_digest(source)
    registry = registry if registry is not None else default_registry()

    raw_nodes = graph.get("nodes")
    if raw_nodes is None:
        raise IngestError("graph has no 'nodes' list", source=label)
    if not isinstance(raw_nodes, list):
        raise IngestError(f"'nodes' must be a list, got {type(raw_nodes).__name__}",
                          source=label)

    ids = []
    for pos, node in enumerate(raw_nodes):
        if not isinstance(node, dict):
            raise IngestError(f"node #{pos} must be an object, got {node!r}",
                              source=label)
        node_id = node.get("id")
        if node_id is None:
            raise IngestError(f"node #{pos} has no 'id'", source=label)
        ids.append(node_id)

    order = _toposort(raw_nodes, ids, label)

    kernels: list[KernelEvent] = []
    host_events: list[HostEvent] = []
    report = IngestReport(source=label, digest=digest, n_nodes=len(raw_nodes))
    stages_seen: dict[str, None] = {}
    modalities_seen: dict[str, None] = {}

    for seq, pos in enumerate(order):
        node = raw_nodes[pos]
        node_id = ids[pos]
        op_name = _node_field(node, "name", "op")
        if not isinstance(op_name, str) or not op_name:
            raise IngestError("node has no 'name'", node_id, label)

        explicit_pass = _node_field(node, "pass", "pass_")
        if explicit_pass is not None and explicit_pass not in PASSES:
            raise IngestError(f"unknown pass {explicit_pass!r}; valid: "
                              f"{list(PASSES)}", node_id, label)

        # -- host-side nodes ---------------------------------------------------
        if node.get("host") or "kind" in node:
            kind_name = node.get("kind")
            kind = _HOST_KIND_BY_NAME.get(str(kind_name).lower())
            if kind is None:
                raise IngestError(
                    f"unknown host op kind {kind_name!r}; valid: "
                    f"{sorted(k.value for k in HostOpKind)}", node_id, label)
            event = HostEvent(
                kind=kind,
                bytes=_positive_float(node, "bytes", node_id, label, default=0.0),
                stage=node.get("stage", STAGE_ENCODER),
                modality=node.get("modality"),
                pass_=explicit_pass or PASS_FORWARD,
                seq=seq,
                name=op_name,
                meta=dict(node.get("attrs") or {}),
            )
            host_events.append(event)
            continue

        # -- kernel nodes --------------------------------------------------------
        in_shapes = _shapes(_node_field(node, "input_shapes", "inputs"),
                            node_id, label, "input_shapes")
        out_shapes = _shapes(_node_field(node, "output_shapes", "outputs"),
                             node_id, label, "output_shapes")
        in_dtypes = _node_field(node, "input_dtypes", "input_types")
        out_dtypes = _node_field(node, "output_dtypes", "output_types")

        rule = registry.resolve(op_name)
        explicit_category = node.get("category")
        if explicit_category is not None:
            category = _CATEGORY_BY_NAME.get(str(explicit_category).lower())
            if category is None:
                raise IngestError(
                    f"unknown kernel category {explicit_category!r}; valid: "
                    f"{sorted(c.value for c in KernelCategory)}", node_id, label)
        elif rule is not None:
            category = rule.category
        else:
            category = KernelCategory.OTHER
            report.unknown_ops[op_name] = report.unknown_ops.get(op_name, 0) + 1

        # Pass: explicit field > name detection > rule default > forward.
        if explicit_pass is not None:
            pass_ = explicit_pass
        else:
            pass_ = detect_pass(op_name)
            if pass_ == PASS_FORWARD and rule is not None and rule.pass_:
                pass_ = rule.pass_

        # Stage: explicit field > rule default > name heuristic >
        # optimizer-pass implication > the reported 'unknown' bucket.
        if "stage" in node:
            stage = node["stage"]
            if not isinstance(stage, str) or not stage:
                raise IngestError(f"stage must be a non-empty string, got "
                                  f"{stage!r}", node_id, label)
        elif rule is not None and rule.stage:
            stage = rule.stage
        else:
            stage = _detect_stage(op_name)
            if stage is None:
                stage = STAGE_OPTIMIZER if pass_ == PASS_OPTIMIZER else STAGE_UNKNOWN
        if stage == STAGE_UNKNOWN:
            report.unknown_stage_kernels += 1

        # Modality: explicit (null means "explicitly none") > name heuristic.
        if "modality" in node:
            modality = node["modality"]
        else:
            modality = _detect_modality(op_name)

        # Work descriptors: explicit values verbatim, else shape/dtype
        # estimation. Dtype validation runs whenever bytes are estimated.
        flops = _positive_float(node, "flops", node_id, label)
        bytes_read = _positive_float(node, "bytes_read", node_id, label)
        bytes_written = _positive_float(node, "bytes_written", node_id, label)
        if flops is None:
            flops = estimate_flops(category, in_shapes, out_shapes, len(in_shapes))
        if bytes_read is None:
            _, bytes_read = _io_bytes(in_shapes, in_dtypes, node_id, label, "input")
        if bytes_written is None:
            _, bytes_written = _io_bytes(out_shapes, out_dtypes, node_id, label,
                                         "output")
        threads = _positive_float(node, "threads", node_id, label)
        if threads is None:
            threads = sum(_elems(s) for s in out_shapes) or \
                sum(_elems(s) for s in in_shapes)
        coalesced = _positive_float(node, "coalesced_fraction", node_id, label,
                                    default=1.0)
        reuse = _positive_float(node, "reuse_factor", node_id, label, default=1.0)
        if not 0.0 < coalesced <= 1.0:
            raise IngestError(f"coalesced_fraction must be in (0, 1], got "
                              f"{coalesced}", node_id, label)
        if reuse <= 0.0:
            raise IngestError(f"reuse_factor must be positive, got {reuse}",
                              node_id, label)

        event = KernelEvent(
            name=op_name,
            category=category,
            flops=float(flops),
            bytes_read=float(bytes_read),
            bytes_written=float(bytes_written),
            threads=max(1, int(threads)),
            stage=stage,
            modality=modality,
            pass_=pass_,
            seq=seq,
            coalesced_fraction=float(coalesced),
            reuse_factor=float(reuse),
            meta=dict(node.get("attrs") or {}),
        )
        kernels.append(event)
        report.pass_counts[pass_] = report.pass_counts.get(pass_, 0) + 1
        stages_seen.setdefault(stage)
        if modality is not None:
            modalities_seen.setdefault(modality)

    report.n_kernels = len(kernels)
    report.n_host_events = len(host_events)
    report.stages = list(stages_seen)
    report.modalities = list(modalities_seen)

    # -- graph-level metadata ----------------------------------------------------
    graph_name = graph.get("name") or (Path(origin).stem if origin != "<dict>"
                                       else "graph")
    batch_size = graph.get("batch_size", 1)
    if isinstance(batch_size, bool) or not isinstance(batch_size, int) or batch_size < 1:
        raise IngestError(f"batch_size must be a positive int, got {batch_size!r}",
                          source=label)
    model_meta = graph.get("model") or {}
    if not isinstance(model_meta, dict):
        raise IngestError(f"'model' must be an object, got {model_meta!r}",
                          source=label)
    modalities = list(model_meta.get("modalities") or report.modalities)

    def _model_count(key: str) -> int:
        # Same contract as node-level descriptors: finite, non-negative,
        # numeric. These feed the peak-memory model, so a negative or
        # garbage value silently corrupts every priced run downstream.
        value = model_meta.get(key, 0)
        if isinstance(value, bool) or not isinstance(value, (int, float)) \
                or not math.isfinite(value) or value < 0:
            raise IngestError(
                f"model.{key} must be a finite non-negative number, "
                f"got {value!r}", source=label)
        return int(value)

    trace = Trace(kernels=kernels, host_events=host_events)
    return IngestedGraph(
        trace=trace,
        name=str(graph_name),
        batch_size=batch_size,
        parameters=_model_count("parameters"),
        parameter_bytes=_model_count("parameter_bytes"),
        input_bytes=_model_count("input_bytes"),
        modalities=modalities,
        report=report,
        topo_order=tuple(ids[pos] for pos in order),
    )
