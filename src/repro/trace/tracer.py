"""Global tracer that the numpy DNN framework emits kernel events into.

The tracer is deliberately cheap when inactive: :func:`emit_kernel` checks a
module-level flag and returns immediately, so the numeric framework pays a
single branch per op when no profiling session is running.

Usage::

    tracer = Tracer()
    with tracer.activate():
        with tracer.stage("encoder"), tracer.modality("image"):
            model.encode(x)
    trace = tracer.finish()

Stage and modality contexts nest; the innermost value wins. This is how
MMBench "splits the multi-modal DNN into different stages and characterizes
the sub-nets respectively".
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field

from repro.trace.events import (
    HostEvent,
    HostOpKind,
    KernelCategory,
    KernelEvent,
    STAGE_ENCODER,
)

# The currently-active tracer, or None. A single global keeps the per-op
# emission cost to one attribute load + branch.
_ACTIVE: "Tracer | None" = None


def active_tracer() -> "Tracer | None":
    """Return the currently active tracer, if any."""
    return _ACTIVE


def emit_kernel(
    name: str,
    category: KernelCategory,
    flops: float,
    bytes_read: float,
    bytes_written: float,
    threads: int,
    coalesced_fraction: float = 1.0,
    reuse_factor: float = 1.0,
    **meta,
) -> None:
    """Record a kernel launch on the active tracer (no-op when inactive)."""
    tracer = _ACTIVE
    if tracer is None:
        return
    tracer.record_kernel(
        KernelEvent(
            name=name,
            category=category,
            flops=float(flops),
            bytes_read=float(bytes_read),
            bytes_written=float(bytes_written),
            threads=int(threads),
            coalesced_fraction=coalesced_fraction,
            reuse_factor=reuse_factor,
            meta=meta,
        )
    )


def emit_host(kind: HostOpKind, bytes: float = 0.0, name: str = "", **meta) -> None:
    """Record a host-side operation on the active tracer (no-op when inactive)."""
    tracer = _ACTIVE
    if tracer is None:
        return
    tracer.record_host(HostEvent(kind=kind, bytes=float(bytes), name=name, meta=meta))


@contextlib.contextmanager
def stage_scope(name: str):
    """Enter a stage context on the active tracer (no-op when inactive)."""
    tracer = _ACTIVE
    if tracer is None:
        yield
        return
    with tracer.stage(name):
        yield


@contextlib.contextmanager
def modality_scope(name: str):
    """Enter a modality context on the active tracer (no-op when inactive)."""
    tracer = _ACTIVE
    if tracer is None:
        yield
        return
    with tracer.modality(name):
        yield


@dataclass
class Trace:
    """The immutable result of a tracing session."""

    kernels: list[KernelEvent] = field(default_factory=list)
    host_events: list[HostEvent] = field(default_factory=list)

    def kernels_in_stage(self, stage: str) -> list[KernelEvent]:
        return [k for k in self.kernels if k.stage == stage]

    def kernels_for_modality(self, modality: str) -> list[KernelEvent]:
        return [k for k in self.kernels if k.modality == modality]

    @property
    def total_flops(self) -> float:
        return sum(k.flops for k in self.kernels)

    @property
    def total_bytes(self) -> float:
        return sum(k.bytes_total for k in self.kernels)

    def stages(self) -> list[str]:
        """Stages present in this trace, in first-seen order."""
        seen: dict[str, None] = {}
        for k in self.kernels:
            seen.setdefault(k.stage, None)
        return list(seen)

    def modalities(self) -> list[str]:
        seen: dict[str, None] = {}
        for k in self.kernels:
            if k.modality is not None:
                seen.setdefault(k.modality, None)
        return list(seen)


class Tracer:
    """Collects kernel and host events with stage/modality context."""

    def __init__(self) -> None:
        self._kernels: list[KernelEvent] = []
        self._host: list[HostEvent] = []
        self._stage_stack: list[str] = []
        self._modality_stack: list[str] = []
        self._seq = 0

    # -- context management -------------------------------------------------

    @contextlib.contextmanager
    def activate(self):
        """Make this tracer the global event sink for the duration."""
        global _ACTIVE
        if _ACTIVE is not None:
            raise RuntimeError("another tracer is already active")
        _ACTIVE = self
        try:
            yield self
        finally:
            _ACTIVE = None

    @contextlib.contextmanager
    def stage(self, name: str):
        """Set the stage label for events emitted inside the block."""
        self._stage_stack.append(name)
        try:
            yield
        finally:
            self._stage_stack.pop()

    @contextlib.contextmanager
    def modality(self, name: str):
        """Set the modality label for events emitted inside the block."""
        self._modality_stack.append(name)
        try:
            yield
        finally:
            self._modality_stack.pop()

    @property
    def current_stage(self) -> str:
        return self._stage_stack[-1] if self._stage_stack else STAGE_ENCODER

    @property
    def current_modality(self) -> str | None:
        return self._modality_stack[-1] if self._modality_stack else None

    # -- recording -----------------------------------------------------------

    def record_kernel(self, event: KernelEvent) -> None:
        event.stage = self.current_stage
        event.modality = self.current_modality
        event.seq = self._seq
        self._seq += 1
        self._kernels.append(event)

    def record_host(self, event: HostEvent) -> None:
        event.stage = self.current_stage
        event.modality = self.current_modality
        event.seq = self._seq
        self._seq += 1
        self._host.append(event)

    # -- results ---------------------------------------------------------------

    def finish(self) -> Trace:
        """Return the collected trace and reset the tracer."""
        trace = Trace(kernels=self._kernels, host_events=self._host)
        self._kernels = []
        self._host = []
        self._seq = 0
        return trace
