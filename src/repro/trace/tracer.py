"""Global tracer that the numpy DNN framework emits kernel events into.

The tracer is deliberately cheap when inactive: :func:`emit_kernel` checks a
module-level flag and returns immediately, so the numeric framework pays a
single branch per op when no profiling session is running.

Usage::

    tracer = Tracer()
    with tracer.activate():
        with tracer.stage("encoder"), tracer.modality("image"):
            model.encode(x)
    trace = tracer.finish()

Stage and modality contexts nest; the innermost value wins. This is how
MMBench "splits the multi-modal DNN into different stages and characterizes
the sub-nets respectively".
"""

from __future__ import annotations

import contextlib
from typing import TYPE_CHECKING

from repro.trace.events import (
    HostEvent,
    HostOpKind,
    KernelCategory,
    KernelEvent,
    PASS_FORWARD,
    STAGE_ENCODER,
)

if TYPE_CHECKING:
    from repro.trace.columns import TraceColumns

# The currently-active tracer, or None. A single global keeps the per-op
# emission cost to one attribute load + branch.
_ACTIVE: "Tracer | None" = None

#: Sentinel for "no explicit override" on fields where ``None`` is a
#: meaningful value (a kernel with no modality attribution).
UNSET = object()


def active_tracer() -> "Tracer | None":
    """Return the currently active tracer, if any."""
    return _ACTIVE


def emit_kernel(
    name: str,
    category: KernelCategory,
    flops: float,
    bytes_read: float,
    bytes_written: float,
    threads: int,
    coalesced_fraction: float = 1.0,
    reuse_factor: float = 1.0,
    stage: "str | None" = None,
    modality=UNSET,
    pass_: "str | None" = None,
    **meta,
) -> None:
    """Record a kernel launch on the active tracer (no-op when inactive).

    ``stage`` / ``modality`` / ``pass_`` override the tracer's context
    stacks when given. Backward closures use this: they execute long after
    the stage/modality scopes that built them have unwound, so they carry
    the snapshotted forward context explicitly.
    """
    tracer = _ACTIVE
    if tracer is None:
        return
    tracer.record_kernel(
        KernelEvent(
            name=name,
            category=category,
            flops=float(flops),
            bytes_read=float(bytes_read),
            bytes_written=float(bytes_written),
            threads=int(threads),
            coalesced_fraction=coalesced_fraction,
            reuse_factor=reuse_factor,
            meta=meta,
        ),
        stage=stage,
        modality=modality,
        pass_=pass_,
    )


def emit_host(kind: HostOpKind, bytes: float = 0.0, name: str = "", **meta) -> None:
    """Record a host-side operation on the active tracer (no-op when inactive)."""
    tracer = _ACTIVE
    if tracer is None:
        return
    tracer.record_host(HostEvent(kind=kind, bytes=float(bytes), name=name, meta=meta))


@contextlib.contextmanager
def stage_scope(name: str):
    """Enter a stage context on the active tracer (no-op when inactive)."""
    tracer = _ACTIVE
    if tracer is None:
        yield
        return
    with tracer.stage(name):
        yield


@contextlib.contextmanager
def modality_scope(name: str):
    """Enter a modality context on the active tracer (no-op when inactive)."""
    tracer = _ACTIVE
    if tracer is None:
        yield
        return
    with tracer.modality(name):
        yield


@contextlib.contextmanager
def pass_scope(name: str):
    """Enter a pass context on the active tracer (no-op when inactive)."""
    tracer = _ACTIVE
    if tracer is None:
        yield
        return
    with tracer.pass_(name):
        yield


class Trace:
    """The immutable result of a tracing session.

    Holds two equivalent representations and converts lazily between them:
    the per-event object lists (``kernels`` / ``host_events``, the capture
    form) and the columnar structure-of-arrays view
    (:class:`~repro.trace.columns.TraceColumns`, the pricing form). A trace
    loaded from the store's disk tier starts life columnar and only
    materializes event objects if a consumer asks for them; a trace fresh
    from a tracer starts as events and builds its columns once, on first
    use, caching them here. The trace is treated as immutable once
    finished — mutating events after the columns were built desynchronizes
    the two views.
    """

    __slots__ = ("_kernels", "_host_events", "_columns",
                 "_total_flops", "_total_bytes")

    def __init__(self, kernels: list[KernelEvent] | None = None,
                 host_events: list[HostEvent] | None = None):
        self._kernels: list[KernelEvent] | None = (
            list(kernels) if kernels is not None else []
        )
        self._host_events: list[HostEvent] | None = (
            list(host_events) if host_events is not None else []
        )
        self._columns: "TraceColumns | None" = None
        self._total_flops: float | None = None
        self._total_bytes: float | None = None

    @classmethod
    def from_columns(cls, columns: "TraceColumns") -> "Trace":
        """Wrap an existing columnar view; events materialize on demand."""
        trace = cls.__new__(cls)
        trace._kernels = None
        trace._host_events = None
        trace._columns = columns
        trace._total_flops = None
        trace._total_bytes = None
        return trace

    @property
    def kernels(self) -> list[KernelEvent]:
        if self._kernels is None:
            self._kernels = self._columns.materialize_kernels()
        return self._kernels

    @property
    def host_events(self) -> list[HostEvent]:
        if self._host_events is None:
            self._host_events = self._columns.materialize_host_events()
        return self._host_events

    def columns(self) -> "TraceColumns":
        """The cached columnar view (built on first use)."""
        if self._columns is None:
            from repro.trace.columns import TraceColumns

            self._columns = TraceColumns.from_events(self._kernels,
                                                     self._host_events)
        return self._columns

    def kernels_in_stage(self, stage: str) -> list[KernelEvent]:
        kernels = self.kernels
        return [kernels[i] for i in self.columns().kernel_indices_in_stage(stage)]

    def kernels_for_modality(self, modality: str) -> list[KernelEvent]:
        kernels = self.kernels
        return [kernels[i] for i in self.columns().kernel_indices_for_modality(modality)]

    @property
    def total_flops(self) -> float:
        if self._total_flops is None:
            self._total_flops = float(self.columns().flops.sum())
        return self._total_flops

    @property
    def total_bytes(self) -> float:
        if self._total_bytes is None:
            self._total_bytes = float(self.columns().bytes_total.sum())
        return self._total_bytes

    def stages(self) -> list[str]:
        """Stages present in this trace's kernels, in first-seen order."""
        return self.columns().kernel_stages()

    def modalities(self) -> list[str]:
        return self.columns().kernel_modalities()

    def passes(self) -> list[str]:
        """Passes present in this trace's kernels, in first-seen order.

        Inference traces report ``["forward"]``; a traced training step
        reports all four passes of the taxonomy.
        """
        return self.columns().kernel_passes()

    def kernels_in_pass(self, pass_: str) -> list[KernelEvent]:
        kernels = self.kernels
        return [kernels[i] for i in self.columns().kernel_indices_for_pass(pass_)]


class Tracer:
    """Collects kernel and host events with stage/modality context."""

    def __init__(self) -> None:
        self._kernels: list[KernelEvent] = []
        self._host: list[HostEvent] = []
        self._stage_stack: list[str] = []
        self._modality_stack: list[str] = []
        self._pass_stack: list[str] = []
        self._seq = 0

    # -- context management -------------------------------------------------

    @contextlib.contextmanager
    def activate(self):
        """Make this tracer the global event sink for the duration."""
        global _ACTIVE
        if _ACTIVE is not None:
            raise RuntimeError("another tracer is already active")
        _ACTIVE = self
        try:
            yield self
        finally:
            _ACTIVE = None

    @contextlib.contextmanager
    def stage(self, name: str):
        """Set the stage label for events emitted inside the block."""
        self._stage_stack.append(name)
        try:
            yield
        finally:
            self._stage_stack.pop()

    @contextlib.contextmanager
    def modality(self, name: str):
        """Set the modality label for events emitted inside the block."""
        self._modality_stack.append(name)
        try:
            yield
        finally:
            self._modality_stack.pop()

    @contextlib.contextmanager
    def pass_(self, name: str):
        """Set the pass label (forward/loss/backward/optimizer) for events
        emitted inside the block."""
        self._pass_stack.append(name)
        try:
            yield
        finally:
            self._pass_stack.pop()

    @property
    def current_stage(self) -> str:
        return self._stage_stack[-1] if self._stage_stack else STAGE_ENCODER

    @property
    def current_modality(self) -> str | None:
        return self._modality_stack[-1] if self._modality_stack else None

    @property
    def current_pass(self) -> str:
        return self._pass_stack[-1] if self._pass_stack else PASS_FORWARD

    # -- recording -----------------------------------------------------------

    def record_kernel(self, event: KernelEvent, stage: str | None = None,
                      modality=UNSET, pass_: str | None = None) -> None:
        event.stage = self.current_stage if stage is None else stage
        event.modality = self.current_modality if modality is UNSET else modality
        event.pass_ = self.current_pass if pass_ is None else pass_
        event.seq = self._seq
        self._seq += 1
        self._kernels.append(event)

    def record_host(self, event: HostEvent) -> None:
        event.stage = self.current_stage
        event.modality = self.current_modality
        event.pass_ = self.current_pass
        event.seq = self._seq
        self._seq += 1
        self._host.append(event)

    # -- results ---------------------------------------------------------------

    def finish(self) -> Trace:
        """Return the collected trace and reset the tracer."""
        trace = Trace(kernels=self._kernels, host_events=self._host)
        self._kernels = []
        self._host = []
        self._seq = 0
        return trace
