"""Aggregation helpers over traces: per-stage and per-modality summaries.

These are pure functions over :class:`~repro.trace.tracer.Trace` objects;
the hardware-dependent quantities (time, counters) live in
:mod:`repro.hw.engine`. Keeping the split explicit means the same trace can
be replayed on several device models — exactly how the edge-migration case
study (Sec. 5.2) compares the Jetson Nano, Jetson Orin and the GPU server.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.trace.events import KernelCategory, KernelEvent
from repro.trace.tracer import Trace


def kernel_category_breakdown(
    kernels: list[KernelEvent], weight: str = "flops"
) -> dict[KernelCategory, float]:
    """Fraction of work per kernel category (Figure 8 when weighted by time).

    ``weight`` selects the per-kernel magnitude: ``"flops"``, ``"bytes"`` or
    ``"count"``. Returns fractions that sum to 1.0 (empty input -> {}).
    """
    totals: dict[KernelCategory, float] = defaultdict(float)
    for k in kernels:
        if weight == "flops":
            totals[k.category] += k.flops
        elif weight == "bytes":
            totals[k.category] += k.bytes_total
        elif weight == "count":
            totals[k.category] += 1.0
        else:
            raise ValueError(f"unknown weight {weight!r}")
    grand = sum(totals.values())
    if grand <= 0:
        return {}
    return {cat: v / grand for cat, v in totals.items()}


def _indexed_work(cols, indices: np.ndarray) -> dict[str, float]:
    return {
        "flops": float(cols.flops[indices].sum()),
        "bytes": float(cols.bytes_total[indices].sum()),
        "kernels": float(len(indices)),
    }


def stage_work(trace: Trace) -> dict[str, dict[str, float]]:
    """Per-stage totals of flops / bytes / kernel count."""
    cols = trace.columns()
    return {
        stage: _indexed_work(cols, cols.kernel_indices_in_stage(stage))
        for stage in cols.kernel_stages()
    }


def modality_work(trace: Trace) -> dict[str, dict[str, float]]:
    """Per-modality totals of flops / bytes / kernel count (encoder stage)."""
    cols = trace.columns()
    return {
        modality: _indexed_work(cols, cols.kernel_indices_for_modality(modality))
        for modality in cols.kernel_modalities()
    }


def scale_trace(trace: Trace, factor: float) -> Trace:
    """Scale a trace's work descriptors by ``factor``.

    Multiplies every kernel's FLOPs, bytes and thread count and every host
    event's byte size. Used to extrapolate a reduced-scale model trace to
    the paper's full-scale configuration (see the edge-migration analysis,
    where capacity effects only appear at realistic sizes). Latencies and
    counters are *derived* quantities, so scaling the work descriptors and
    re-pricing is exact under the analytical device model.

    Operates on the columnar view: the scaled trace shares the source's
    string tables and materializes event objects only if asked for them.
    """
    return Trace.from_columns(trace.columns().scaled(factor))


def hotspot_kernels(
    kernels: list[KernelEvent], category: KernelCategory, top: int = 5
) -> list[KernelEvent]:
    """The largest kernels of a category by FLOPs (Figure 9 deep dives)."""
    matching = [k for k in kernels if k.category == category]
    matching.sort(key=lambda k: (k.flops, k.bytes_total), reverse=True)
    return matching[:top]
