"""Aggregation helpers over traces: per-stage and per-modality summaries.

These are pure functions over :class:`~repro.trace.tracer.Trace` objects;
the hardware-dependent quantities (time, counters) live in
:mod:`repro.hw.engine`. Keeping the split explicit means the same trace can
be replayed on several device models — exactly how the edge-migration case
study (Sec. 5.2) compares the Jetson Nano, Jetson Orin and the GPU server.
"""

from __future__ import annotations

from collections import defaultdict

from repro.trace.events import KernelCategory, KernelEvent
from repro.trace.tracer import Trace


def kernel_category_breakdown(
    kernels: list[KernelEvent], weight: str = "flops"
) -> dict[KernelCategory, float]:
    """Fraction of work per kernel category (Figure 8 when weighted by time).

    ``weight`` selects the per-kernel magnitude: ``"flops"``, ``"bytes"`` or
    ``"count"``. Returns fractions that sum to 1.0 (empty input -> {}).
    """
    totals: dict[KernelCategory, float] = defaultdict(float)
    for k in kernels:
        if weight == "flops":
            totals[k.category] += k.flops
        elif weight == "bytes":
            totals[k.category] += k.bytes_total
        elif weight == "count":
            totals[k.category] += 1.0
        else:
            raise ValueError(f"unknown weight {weight!r}")
    grand = sum(totals.values())
    if grand <= 0:
        return {}
    return {cat: v / grand for cat, v in totals.items()}


def stage_work(trace: Trace) -> dict[str, dict[str, float]]:
    """Per-stage totals of flops / bytes / kernel count."""
    out: dict[str, dict[str, float]] = {}
    for stage in trace.stages():
        ks = trace.kernels_in_stage(stage)
        out[stage] = {
            "flops": sum(k.flops for k in ks),
            "bytes": sum(k.bytes_total for k in ks),
            "kernels": float(len(ks)),
        }
    return out


def modality_work(trace: Trace) -> dict[str, dict[str, float]]:
    """Per-modality totals of flops / bytes / kernel count (encoder stage)."""
    out: dict[str, dict[str, float]] = {}
    for modality in trace.modalities():
        ks = trace.kernels_for_modality(modality)
        out[modality] = {
            "flops": sum(k.flops for k in ks),
            "bytes": sum(k.bytes_total for k in ks),
            "kernels": float(len(ks)),
        }
    return out


def scale_trace(trace: Trace, factor: float) -> Trace:
    """Scale a trace's work descriptors by ``factor``.

    Multiplies every kernel's FLOPs, bytes and thread count and every host
    event's byte size. Used to extrapolate a reduced-scale model trace to
    the paper's full-scale configuration (see the edge-migration analysis,
    where capacity effects only appear at realistic sizes). Latencies and
    counters are *derived* quantities, so scaling the work descriptors and
    re-pricing is exact under the analytical device model.
    """
    if factor <= 0:
        raise ValueError(f"scale factor must be positive, got {factor}")
    kernels = []
    for k in trace.kernels:
        kernels.append(KernelEvent(
            name=k.name, category=k.category,
            flops=k.flops * factor,
            bytes_read=k.bytes_read * factor,
            bytes_written=k.bytes_written * factor,
            threads=max(1, int(k.threads * factor)),
            stage=k.stage, modality=k.modality, seq=k.seq,
            coalesced_fraction=k.coalesced_fraction,
            reuse_factor=k.reuse_factor,
            meta=dict(k.meta),
        ))
    host = []
    for h in trace.host_events:
        clone = type(h)(kind=h.kind, bytes=h.bytes * factor, stage=h.stage,
                        modality=h.modality, seq=h.seq, name=h.name, meta=dict(h.meta))
        host.append(clone)
    return Trace(kernels=kernels, host_events=host)


def hotspot_kernels(
    kernels: list[KernelEvent], category: KernelCategory, top: int = 5
) -> list[KernelEvent]:
    """The largest kernels of a category by FLOPs (Figure 9 deep dives)."""
    matching = [k for k in kernels if k.category == category]
    matching.sort(key=lambda k: (k.flops, k.bytes_total), reverse=True)
    return matching[:top]
