"""Execution tracing: kernel/host event capture with stage & modality context."""

from repro.trace.columns import (
    CATEGORY_ORDER,
    HOST_KIND_ORDER,
    NO_MODALITY,
    TraceColumns,
)
from repro.trace.events import (
    HostEvent,
    HostOpKind,
    KernelCategory,
    KernelEvent,
    STAGE_ENCODER,
    STAGE_FUSION,
    STAGE_HEAD,
    STAGE_PREPROCESS,
    STAGES,
)
from repro.trace.tracer import (
    Trace,
    Tracer,
    active_tracer,
    emit_host,
    emit_kernel,
    modality_scope,
    stage_scope,
)
from repro.trace.store import (
    StoredTrace,
    TraceKey,
    TraceStore,
    code_fingerprint,
    configure_default_store,
    default_store,
    set_default_store,
)
from repro.trace.timeline import (
    hotspot_kernels,
    kernel_category_breakdown,
    modality_work,
    stage_work,
)

__all__ = [
    "CATEGORY_ORDER",
    "HOST_KIND_ORDER",
    "NO_MODALITY",
    "TraceColumns",
    "HostEvent",
    "HostOpKind",
    "KernelCategory",
    "KernelEvent",
    "STAGE_ENCODER",
    "STAGE_FUSION",
    "STAGE_HEAD",
    "STAGE_PREPROCESS",
    "STAGES",
    "Trace",
    "Tracer",
    "active_tracer",
    "emit_host",
    "emit_kernel",
    "modality_scope",
    "stage_scope",
    "StoredTrace",
    "TraceKey",
    "TraceStore",
    "code_fingerprint",
    "configure_default_store",
    "default_store",
    "set_default_store",
    "hotspot_kernels",
    "kernel_category_breakdown",
    "modality_work",
    "stage_work",
]
