"""Content-addressed, disk-persistent trace cache ("trace once, price anywhere").

Traces are device-independent, so one capture can be re-priced on every
device model — but before this module each consumer kept its own private
memo (the serving cost model's module-level dicts, ad-hoc per-analysis
re-captures). :class:`TraceStore` is the single cache they all share now:

* **Keyed by content**, not identity: ``(workload, fusion | unimodal,
  batch size, seed, backend, code fingerprint)`` canonicalized to JSON and
  hashed. The code fingerprint covers every module that determines the
  emitted event stream, so editing an op's FLOP accounting invalidates
  stale traces automatically instead of silently serving them.
* **Two tiers**: an in-process dict for hot lookups, plus an optional
  on-disk tier that survives across processes — point ``cache_dir`` (or
  ``$MMBENCH_CACHE_DIR``) at a directory and batch sweeps warm-start from
  earlier runs. Since schema v5 the disk form is **binary columnar**
  (:mod:`repro.trace.binfmt`): one ``.mmt`` file per digest whose column
  blocks memory-map straight into read-only
  :class:`~repro.trace.columns.TraceColumns` views — no JSON parse, no
  event materialization. Legacy v2–v4 gzip-JSON entries still load, and
  :meth:`TraceStore.migrate` (``mmbench store migrate``) upgrades them
  in place.
* **Observable**: ``stats`` counts hits / misses / captures / disk hits /
  corrupt files, surfaced by the CLI's cache-stats line and asserted by
  tests. Corrupt or truncated files are quarantined (renamed to
  ``*.corrupt``), never silently re-served.

A stored entry carries the trace plus the model-derived scalars the
pricing path needs (parameter count/bytes, input bytes, modalities), so
replaying a cached trace requires no model object at all.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import logging
import os
import tempfile
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.trace import binfmt
from repro.trace.columns import TraceColumns
from repro.trace.tracer import Trace, Tracer

logger = logging.getLogger(__name__)

#: Bump when the serialized payload layout changes.
#: v2: columnar structure-of-arrays payload (one array per work
#: descriptor + interned string tables) instead of one JSON object per
#: event — warm loads rebuild ``TraceColumns`` directly and never touch
#: per-event Python objects unless a consumer materializes them.
#: v3: pass-code columns (forward/loss/backward/optimizer) on kernels and
#: host events, for traced training steps. v2 payloads still load: a
#: missing pass column decodes as all-forward, which is exactly what a
#: pre-v3 (inference-only) capture was.
#: v4: optional ``extra`` dict on stored entries (ingest provenance —
#: source digest, unknown-op report, graph batch size). v2/v3 payloads
#: still load with an empty ``extra``.
#: v5: binary columnar ``.mmt`` files (repro.trace.binfmt) replacing
#: gzip-JSON on disk — raw little-endian column blocks that memory-map
#: zero-copy into TraceColumns, with string tables interned corpus-wide
#: in an ``interning.jsonl`` sidecar. v2–v4 gzip-JSON entries still load.
SCHEMA_VERSION = 5
#: Legacy gzip-JSON payload schemas that still load.
_JSON_SCHEMAS = (2, 3, 4)
#: Schema stamped into legacy-format payloads written today (fixtures,
#: migration round-trip tests, the bench's JSON baseline).
_JSON_SCHEMA_CURRENT = 4

#: Errors that mean "this cache file is corrupt", as opposed to missing.
_CORRUPT_ERRORS = (OSError, EOFError, ValueError, KeyError, TypeError)

_FINGERPRINT: str | None = None


def code_fingerprint() -> str:
    """Hash of the sources that determine emitted trace events.

    Covers the op library, the layers built on it, the workload
    definitions and the event records themselves: a change to any of them
    can change the event stream, so it must change every cache key.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        import repro.data.synthetic
        import repro.nn.functional
        import repro.nn.layers
        import repro.trace.columns
        import repro.trace.events
        import repro.trace.ingest
        import repro.trace.tracer
        import repro.workloads

        digest = hashlib.sha256()
        nn_dir = Path(repro.nn.functional.__file__).parent
        pkg_dir = nn_dir.parent
        roots = [
            nn_dir / "functional.py",
            nn_dir / "backend.py",
            nn_dir / "tensor.py",
            # Training captures also depend on the optimizer update and
            # loss kernels these modules emit, on the capture recipe
            # (pass scoping, step ordering) and on the loss selection.
            nn_dir / "optim.py",
            nn_dir / "losses.py",
            pkg_dir / "profiling" / "training.py",
            pkg_dir / "core" / "train.py",
            Path(repro.trace.columns.__file__),
            Path(repro.trace.events.__file__),
            # Ingest + graph export determine the event stream of ingested
            # entries exactly as the op library does for captured ones.
            Path(repro.trace.ingest.__file__),
            pkg_dir / "export" / "graph.py",
            Path(repro.trace.tracer.__file__),
            Path(repro.data.synthetic.__file__),
            *sorted(Path(repro.nn.layers.__file__).parent.glob("*.py")),
            *sorted(Path(repro.workloads.__file__).parent.glob("*.py")),
        ]
        for path in roots:
            digest.update(path.name.encode())
            digest.update(path.read_bytes())
        _FINGERPRINT = digest.hexdigest()[:12]
    return _FINGERPRINT


@dataclass(frozen=True)
class TraceKey:
    """The content-addressed identity of one captured trace.

    ``mode`` distinguishes execution paths over the same model build:
    ``"inference"`` is a traced forward pass; ``"train:<optimizer>"`` is a
    full traced training step (forward + loss + backward + optimizer), so
    training captures never collide with inference captures of the same
    (workload, batch, seed, backend).
    """

    workload: str
    fusion: str | None
    unimodal: str | None
    batch_size: int
    seed: int
    backend: str
    code_version: str
    mode: str = "inference"

    def canonical(self) -> str:
        return json.dumps(asdict(self), sort_keys=True, separators=(",", ":"))

    def digest(self) -> str:
        return hashlib.sha256(self.canonical().encode()).hexdigest()


@dataclass
class StoredTrace:
    """A cached trace plus the model scalars pricing needs.

    ``extra`` carries entry provenance that is not needed for pricing but
    must survive warm cache hits — the ingest path stores its
    :class:`~repro.trace.ingest.IngestReport` (unknown-op bucket, pass
    counts) and the graph's native batch size here, so a re-run against a
    warm store can still surface the unknown-op fraction.
    """

    trace: Trace
    model_name: str
    parameters: int
    parameter_bytes: int
    input_bytes: int
    modalities: list[str] = field(default_factory=list)
    extra: dict = field(default_factory=dict)


# -- (de)serialization --------------------------------------------------------


def trace_to_payload(stored: StoredTrace, key: TraceKey,
                     schema: int = _JSON_SCHEMA_CURRENT) -> dict:
    """Legacy gzip-JSON payload form (v2–v4). The live disk format is the
    binary one (:mod:`repro.trace.binfmt`); this writer remains for
    back-compat fixtures, migration tests and the store benchmark's JSON
    baseline."""
    return {
        "schema": schema,
        "key": asdict(key),
        "model_name": stored.model_name,
        "parameters": stored.parameters,
        "parameter_bytes": stored.parameter_bytes,
        "input_bytes": stored.input_bytes,
        "modalities": list(stored.modalities),
        "extra": stored.extra,
        "columns": stored.trace.columns().to_payload(),
    }


def trace_from_payload(payload: dict) -> StoredTrace:
    if payload.get("schema") not in _JSON_SCHEMAS:
        raise ValueError(f"unsupported trace payload schema {payload.get('schema')!r}")
    columns = TraceColumns.from_payload(payload["columns"])
    return StoredTrace(
        # Columnar all the way: consumers that price the trace never touch
        # per-event objects; ``trace.kernels`` materializes them on demand.
        trace=Trace.from_columns(columns),
        model_name=payload["model_name"],
        parameters=payload["parameters"],
        parameter_bytes=payload["parameter_bytes"],
        input_bytes=payload["input_bytes"],
        modalities=list(payload["modalities"]),
        extra=dict(payload.get("extra") or {}),
    )


def write_legacy_json(path: str | os.PathLike, payload: dict) -> Path:
    """Atomically write a legacy gzip-JSON entry (fixtures / baselines)."""
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=path.name,
                                    suffix=".tmp")
    try:
        with gzip.open(os.fdopen(fd, "wb"), "wt", encoding="utf-8") as fh:
            json.dump(payload, fh)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def read_legacy_json(path: str | os.PathLike) -> dict:
    """Parse a legacy gzip-JSON entry back to its payload dict."""
    with gzip.open(path, "rt", encoding="utf-8") as fh:
        return json.load(fh)


# -- the store ----------------------------------------------------------------


class TraceStore:
    """Two-tier (memory + optional disk) content-addressed trace cache."""

    #: Sidecar file holding the corpus-wide interned string table.
    INTERNING_SIDECAR = "interning.jsonl"

    def __init__(self, cache_dir: str | os.PathLike | None = None):
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self._interner: binfmt.StringInterner | None = None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            self._interner = binfmt.StringInterner(
                self.cache_dir / self.INTERNING_SIDECAR)
        self._memory: dict[str, StoredTrace] = {}
        self._models: dict[tuple, object] = {}
        self.stats = {"hits": 0, "misses": 0, "captures": 0, "disk_hits": 0,
                      "corrupt": 0}

    # -- keys -----------------------------------------------------------------

    def make_key(
        self,
        workload: str,
        fusion: str | None = None,
        unimodal: str | None = None,
        batch_size: int = 1,
        seed: int = 0,
        backend: str | None = None,
        mode: str = "inference",
    ) -> TraceKey:
        """Build a normalized key (default fusion resolved, backend pinned)."""
        from repro.nn.backend import resolve_backend
        from repro.workloads.registry import get_workload

        info = get_workload(workload)
        if unimodal is not None:
            fusion = None
        elif fusion is None:
            # fusion=None and the default fusion name build the identical
            # model; normalize so they share one entry.
            fusion = info.default_fusion
        return TraceKey(
            workload=workload,
            fusion=fusion,
            unimodal=unimodal,
            batch_size=int(batch_size),
            seed=int(seed),
            backend=resolve_backend(backend),
            code_version=code_fingerprint(),
            mode=mode,
        )

    # -- model memoization -----------------------------------------------------

    def model(self, workload: str, fusion: str | None = None,
              unimodal: str | None = None, seed: int = 0):
        """Build (or reuse) the model a key describes."""
        from repro.workloads.registry import get_workload

        info = get_workload(workload)
        if unimodal is None and fusion is None:
            fusion = info.default_fusion
        key = (workload, fusion, unimodal, seed)
        if key not in self._models:
            if unimodal is not None:
                self._models[key] = info.build_unimodal(unimodal, seed=seed)
            else:
                self._models[key] = info.build(fusion, seed=seed)
        return self._models[key]

    # -- lookup / insert --------------------------------------------------------

    def _path_for(self, key: TraceKey) -> Path | None:
        if self.cache_dir is None:
            return None
        return self._binary_path(key.digest())

    def _binary_path(self, digest: str) -> Path:
        return self.cache_dir / f"{digest}{binfmt.SUFFIX}"

    def _legacy_path(self, digest: str) -> Path:
        return self.cache_dir / f"{digest}.json.gz"

    def _quarantine(self, path: Path, exc: Exception) -> None:
        """A cache file failed to decode: it is corrupt, not missing.

        Rename it aside (``*.corrupt``) so the bytes survive for a
        postmortem but can never poison another warm run, count it, and
        log — a truncated write must fail loudly exactly once.
        """
        self.stats["corrupt"] += 1
        quarantined = path.with_name(path.name + ".corrupt")
        try:
            os.replace(path, quarantined)
            where = f"quarantined as {quarantined.name}"
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass
            where = "removed"
        logger.warning("corrupt trace cache file %s (%s: %s); %s",
                       path.name, type(exc).__name__, exc, where)

    def _load_disk_file(self, path: Path) -> StoredTrace | None:
        """Decode one disk-tier file (binary or legacy), quarantining on
        failure. Returns None if the file is missing or corrupt."""
        try:
            if path.suffix == binfmt.SUFFIX:
                _, entry = binfmt.read_entry(path, interner=self._interner)
            else:
                entry = trace_from_payload(read_legacy_json(path))
        except FileNotFoundError:
            return None
        except _CORRUPT_ERRORS as exc:
            self._quarantine(path, exc)
            return None
        return entry

    def get(self, key: TraceKey) -> StoredTrace | None:
        """Cached entry for ``key``, or None (counts a hit or a miss)."""
        digest = key.digest()
        entry = self._memory.get(digest)
        if entry is not None:
            self.stats["hits"] += 1
            return entry
        if self.cache_dir is not None:
            for path in (self._binary_path(digest), self._legacy_path(digest)):
                if not path.exists():
                    continue
                entry = self._load_disk_file(path)
                if entry is None:  # corrupt (quarantined); try next format
                    continue
                self._memory[digest] = entry
                self.stats["hits"] += 1
                self.stats["disk_hits"] += 1
                return entry
        self.stats["misses"] += 1
        return None

    def put(self, key: TraceKey, stored: StoredTrace) -> None:
        digest = key.digest()
        self._memory[digest] = stored
        if self.cache_dir is None:
            return
        # binfmt.write_entry publishes via temp file + atomic rename:
        # concurrent sweeps may race on the same key, but each writes its
        # own file and the final rename is all-or-nothing.
        binfmt.write_entry(self._binary_path(digest), asdict(key), stored,
                           interner=self._interner)
        # A freshly-written binary entry supersedes any legacy twin.
        try:
            self._legacy_path(digest).unlink()
        except OSError:
            pass

    # -- corpus operations ------------------------------------------------------

    def _disk_files(self) -> list[Path]:
        """Disk-tier entries, binary first (the authoritative format)."""
        if self.cache_dir is None:
            return []
        return (sorted(self.cache_dir.glob(f"*{binfmt.SUFFIX}"))
                + sorted(self.cache_dir.glob("*.json.gz")))

    def prefetch(self, keys=None) -> int:
        """Map a corpus into the memory tier in one pass.

        With ``keys``, loads exactly those entries (missing ones are
        counted as misses, like :meth:`get`). Without, maps **every**
        readable disk entry — for the binary tier this is one header parse
        plus an mmap per file, so thousand-trace corpora load in
        milliseconds. Returns the number of entries now resident.
        """
        if keys is not None:
            return sum(1 for key in keys if self.get(key) is not None)
        loaded = 0
        for path in self._disk_files():
            digest = path.name.split(".", 1)[0]
            if digest in self._memory:
                loaded += 1
                continue
            entry = self._load_disk_file(path)
            if entry is None:
                continue
            self._memory[digest] = entry
            self.stats["disk_hits"] += 1
            loaded += 1
        return loaded

    def load_digest(self, digest: str) -> StoredTrace:
        """Load one disk entry by (a unique prefix of) its content digest.

        The lookup side door behind ``mmbench lint <store-key>``: the
        short digests ``mmbench store ls`` prints are valid keys here.
        Raises :class:`KeyError` when the prefix matches zero or several
        entries, or the matched file is unreadable.
        """
        matches = [p for p in self._disk_files()
                   if p.name.split(".", 1)[0].startswith(digest)]
        if not matches:
            raise KeyError(f"no store entry matches digest {digest!r}")
        if len(matches) > 1:
            short = ", ".join(p.name.split(".", 1)[0][:12] for p in matches)
            raise KeyError(f"digest prefix {digest!r} is ambiguous: {short}")
        entry = self._load_disk_file(matches[0])
        if entry is None:
            raise KeyError(f"store entry {matches[0].name} is unreadable "
                           f"(quarantined)")
        return entry

    def entries(self) -> list[dict]:
        """One info dict per disk entry (cheap: headers only, no columns)."""
        current = code_fingerprint()
        infos = []
        for path in self._disk_files():
            digest = path.name.split(".", 1)[0]
            info = {
                "digest": digest,
                "format": "v5" if path.suffix == binfmt.SUFFIX else "json",
                "bytes": path.stat().st_size,
                "path": path,
            }
            try:
                if path.suffix == binfmt.SUFFIX:
                    header = binfmt.read_header(path)
                else:
                    header = read_legacy_json(path)
            except _CORRUPT_ERRORS:
                info.update(status="corrupt", key=None, n=0, host_n=0,
                            schema=None, stale=False)
                infos.append(info)
                continue
            key = header.get("key") or {}
            if path.suffix == binfmt.SUFFIX:
                n, host_n = int(header["n"]), int(header["host_n"])
            else:
                cols = header.get("columns") or {}
                n, host_n = int(cols.get("n", 0)), int(cols.get("host_n", 0))
            info.update(
                status="ok", key=key, schema=header.get("schema"),
                n=n, host_n=host_n,
                stale=key.get("code_version") not in (None, current),
            )
            infos.append(info)
        return infos

    def migrate(self) -> int:
        """Upgrade every legacy gzip-JSON entry to a v5 binary file.

        The digest (file stem) is preserved, so entries written under the
        current code fingerprint keep warm-hitting after the upgrade.
        Unreadable legacy files are quarantined. Returns the number of
        entries migrated.
        """
        migrated = 0
        if self.cache_dir is None:
            return migrated
        for path in sorted(self.cache_dir.glob("*.json.gz")):
            digest = path.name.split(".", 1)[0]
            try:
                payload = read_legacy_json(path)
                entry = trace_from_payload(payload)
            except _CORRUPT_ERRORS as exc:
                self._quarantine(path, exc)
                continue
            binfmt.write_entry(self._binary_path(digest), payload.get("key"),
                               entry, interner=self._interner)
            path.unlink()
            migrated += 1
        return migrated

    def gc(self, stale: bool = True) -> dict:
        """Remove quarantined, torn-write and (optionally) stale entries.

        ``stale`` entries are ones whose key carries a code fingerprint
        other than the current one — no future lookup can ever hit them.
        Schema-aware: covers both binary and legacy formats. The interning
        sidecar is dropped once no binary entry references it. Returns
        removal counts by reason.
        """
        removed = {"corrupt": 0, "tmp": 0, "stale": 0, "unreadable": 0}
        if self.cache_dir is None:
            return removed
        for path in sorted(self.cache_dir.glob("*.corrupt")):
            path.unlink()
            removed["corrupt"] += 1
        for path in sorted(self.cache_dir.glob("*.tmp")):
            path.unlink()
            removed["tmp"] += 1
        for info in self.entries():
            if info["status"] == "corrupt":
                info["path"].unlink()
                removed["unreadable"] += 1
            elif stale and info["stale"]:
                info["path"].unlink()
                removed["stale"] += 1
        if (self._interner is not None
                and not list(self.cache_dir.glob(f"*{binfmt.SUFFIX}"))):
            try:
                self._interner.path.unlink()
            except OSError:
                pass
            self._interner = binfmt.StringInterner(
                self.cache_dir / self.INTERNING_SIDECAR)
        return removed

    # -- the main entry point -----------------------------------------------------

    def get_or_capture(
        self,
        workload: str,
        fusion: str | None = None,
        unimodal: str | None = None,
        batch_size: int = 1,
        seed: int = 0,
        backend: str | None = None,
    ) -> StoredTrace:
        """Return the cached trace for the key, capturing it on a miss.

        A warm hit skips model building, batch generation and the traced
        forward pass entirely.
        """
        key = self.make_key(workload, fusion, unimodal, batch_size, seed, backend)
        entry = self.get(key)
        if entry is not None:
            return entry

        from repro import nn
        from repro.data.synthetic import random_batch

        model = self.model(workload, key.fusion, key.unimodal, seed=key.seed)
        batch = random_batch(model.shapes, key.batch_size, seed=key.seed,
                             backend=key.backend)
        tracer = Tracer()
        model.eval()
        with tracer.activate(), nn.no_grad():
            model(batch)
        entry = StoredTrace(
            trace=tracer.finish(),
            model_name=model.name,
            parameters=model.num_parameters(),
            parameter_bytes=model.parameter_bytes(),
            input_bytes=model.input_bytes(key.batch_size),
            modalities=list(model.modality_names),
        )
        self.stats["captures"] += 1
        self.put(key, entry)
        return entry

    def get_or_capture_training(
        self,
        workload: str,
        fusion: str | None = None,
        unimodal: str | None = None,
        batch_size: int = 8,
        seed: int = 0,
        backend: str | None = None,
        optimizer: str = "adam",
    ) -> StoredTrace:
        """Return the cached *training-step* trace, capturing it on a miss.

        The capture runs one full traced step — forward, loss, backward and
        optimizer update — through :func:`repro.profiling.training.trace_training_step`
        on a **fresh** model build (the optimizer step mutates parameters,
        so the memoized inference model must never be reused here).
        """
        key = self.make_key(workload, fusion, unimodal, batch_size, seed,
                            backend, mode=f"train:{optimizer}")
        entry = self.get(key)
        if entry is not None:
            return entry

        from repro.profiling.training import trace_training_step
        from repro.workloads.registry import get_workload

        info = get_workload(workload)
        if key.unimodal is not None:
            model = info.build_unimodal(key.unimodal, seed=key.seed)
        else:
            model = info.build(key.fusion, seed=key.seed)
        trace = trace_training_step(
            model, batch_size=key.batch_size, seed=key.seed,
            backend=key.backend, optimizer=optimizer,
        )
        entry = StoredTrace(
            trace=trace,
            model_name=model.name,
            parameters=model.num_parameters(),
            parameter_bytes=model.parameter_bytes(),
            input_bytes=model.input_bytes(key.batch_size),
            modalities=list(model.modality_names),
        )
        self.stats["captures"] += 1
        self.put(key, entry)
        return entry

    def get_or_ingest(self, path, registry=None,
                      lint: bool = True) -> StoredTrace:
        """Return the cached trace for an external graph file, ingesting on
        a miss.

        The key is content-addressed on the *source file digest* plus the
        op-mapping registry digest (a registry override changes the mapped
        event stream, so it must change the key) plus the usual code
        fingerprint. The graph's native batch size and the full
        :class:`~repro.trace.ingest.IngestReport` ride along in
        ``StoredTrace.extra`` so warm hits still report the unknown-op
        fraction.

        Freshly ingested traces are lint-checked before they are cached
        (raising :class:`~repro.lint.core.LintFailure` on errors), so a
        malformed external graph cannot poison the store; ``lint=False``
        opts out. Warm hits skip the check — whatever is cached already
        passed it.
        """
        from pathlib import Path as _Path

        from repro.trace.ingest import (
            default_registry,
            ingest_graph,
            source_digest,
        )

        registry = registry if registry is not None else default_registry()
        src_digest = source_digest(path)
        key = TraceKey(
            workload=f"graph:{_Path(str(path)).stem}",
            fusion=None,
            unimodal=None,
            batch_size=1,
            seed=0,
            backend="ingest",
            code_version=code_fingerprint(),
            mode=f"ingest:{src_digest}:{registry.digest()}",
        )
        entry = self.get(key)
        if entry is not None:
            return entry

        ingested = ingest_graph(path, registry=registry)
        if lint:
            from repro.lint import check, lint_trace

            check(lint_trace(ingested, source=str(path)),
                  what=f"ingested graph {_Path(str(path)).name!r}")
        entry = StoredTrace(
            trace=ingested.trace,
            model_name=ingested.name,
            parameters=ingested.parameters,
            parameter_bytes=ingested.parameter_bytes,
            input_bytes=ingested.input_bytes,
            modalities=list(ingested.modalities),
            extra={
                "ingest": ingested.report.to_dict(),
                "batch_size": ingested.batch_size,
            },
        )
        self.stats["captures"] += 1
        self.put(key, entry)
        return entry

    # -- maintenance ----------------------------------------------------------------

    def clear(self, disk: bool = False) -> None:
        """Drop memoized traces and models (and optionally the disk tier).

        ``disk=True`` is schema-aware: it removes binary v5 files, legacy
        gzip-JSON entries, quarantined/torn-write leftovers and the
        interning sidecar — not just one hardcoded extension.
        """
        self._memory.clear()
        self._models.clear()
        if disk and self.cache_dir is not None:
            for pattern in (f"*{binfmt.SUFFIX}", "*.json.gz", "*.corrupt",
                            "*.tmp", self.INTERNING_SIDECAR):
                for path in self.cache_dir.glob(pattern):
                    try:
                        path.unlink()
                    except OSError:
                        pass
            self._interner = binfmt.StringInterner(
                self.cache_dir / self.INTERNING_SIDECAR)

    def reset_stats(self) -> None:
        for k in self.stats:
            self.stats[k] = 0

    def __len__(self) -> int:
        return len(self._memory)

    def stats_line(self) -> str:
        s = self.stats
        where = str(self.cache_dir) if self.cache_dir else "memory-only"
        line = (
            f"trace store [{where}]: {s['hits']} hits ({s['disk_hits']} disk), "
            f"{s['misses']} misses, {s['captures']} captures"
        )
        if s["corrupt"]:
            line += f", {s['corrupt']} corrupt"
        return line


# -- process-wide default store ------------------------------------------------

_DEFAULT_STORE: TraceStore | None = None


def default_store() -> TraceStore:
    """The process-wide store (disk tier from ``$MMBENCH_CACHE_DIR`` if set)."""
    global _DEFAULT_STORE
    if _DEFAULT_STORE is None:
        _DEFAULT_STORE = TraceStore(os.environ.get("MMBENCH_CACHE_DIR") or None)
    return _DEFAULT_STORE


def set_default_store(store: TraceStore | None) -> TraceStore | None:
    """Replace the process-wide store; returns the previous one."""
    global _DEFAULT_STORE
    prev = _DEFAULT_STORE
    _DEFAULT_STORE = store
    return prev


def configure_default_store(cache_dir: str | os.PathLike | None) -> TraceStore:
    """Point the process-wide store at ``cache_dir`` (None = memory-only)."""
    store = TraceStore(cache_dir)
    set_default_store(store)
    return store
