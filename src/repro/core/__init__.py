"""The benchmark suite and the paper's characterization analyses."""

from repro.core import analysis
from repro.core.suite import BenchmarkSuite, RunConfig
from repro.core.train import (
    TrainResult,
    correct_mask,
    evaluate,
    loss_fn_for,
    metric_fn_for,
    train_model,
)

__all__ = [
    "analysis",
    "BenchmarkSuite",
    "RunConfig",
    "TrainResult",
    "correct_mask",
    "evaluate",
    "loss_fn_for",
    "metric_fn_for",
    "train_model",
]
