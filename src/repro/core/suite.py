"""The MMBench suite front-end.

Ties workloads, data, profiling and device models into the command-level
operations the paper's scripts expose: run a workload (inference or
training step), profile it at each metric level, and run any of the
characterization analyses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.train import loss_fn_for, train_model
from repro.data.generators import LatentMultimodalDataset
from repro.data.synthetic import random_batch, random_targets
from repro.profiling.profiler import MMBenchProfiler, ProfileResult
from repro.profiling.report import profile_summary
from repro.workloads.registry import WorkloadInfo, get_workload, list_workloads
from repro import nn


@dataclass
class RunConfig:
    """Options mirroring MMBench's command-line flags (Fig. 2/3)."""

    workload: str = "avmnist"
    fusion: str | None = None  # None = workload default
    unimodal: str | None = None  # modality name -> uni-modal baseline
    batch_size: int = 8
    device: str = "2080ti"
    seed: int = 0
    # Dataset-free abstraction (random inputs) vs latent-factor data.
    synthetic_inputs: bool = True
    # Trace-capture backend: "eager", "meta", or None for the process
    # default (see repro.nn.backend). Meta requires synthetic inputs.
    backend: str | None = None


class BenchmarkSuite:
    """Programmatic entry point for the whole benchmark suite."""

    def __init__(self, device: str = "2080ti"):
        self.device = device

    # -- inventory ------------------------------------------------------------

    def workloads(self) -> list[str]:
        return list_workloads()

    def info(self, workload: str) -> WorkloadInfo:
        return get_workload(workload)

    # -- build & run -----------------------------------------------------------

    def build_model(self, config: RunConfig):
        info = get_workload(config.workload)
        if config.unimodal is not None:
            return info.build_unimodal(config.unimodal, seed=config.seed)
        return info.build(config.fusion, seed=config.seed)

    def make_batch(self, config: RunConfig) -> dict[str, np.ndarray]:
        info = get_workload(config.workload)
        model_shapes = self.build_model(config).shapes
        if config.synthetic_inputs:
            return random_batch(model_shapes, config.batch_size, seed=config.seed)
        dataset = LatentMultimodalDataset(info.shapes, info.default_channels(),
                                          seed=config.seed)
        batch, _ = dataset.sample(config.batch_size, seed=config.seed + 1)
        wanted = set(model_shapes.modality_names)
        return {k: v for k, v in batch.items() if k in wanted}

    def run_inference(self, config: RunConfig) -> ProfileResult:
        """One profiled inference batch (the paper's default measurement).

        Synthetic-input runs go through the shared trace store (so repeat
        runs are cache hits and the meta backend is available); latent-
        factor data always executes eagerly.
        """
        profiler = MMBenchProfiler(config.device or self.device)
        if config.synthetic_inputs:
            return profiler.profile_workload(
                config.workload,
                fusion=config.fusion,
                unimodal=config.unimodal,
                batch_size=config.batch_size,
                seed=config.seed,
                backend=config.backend,
            )
        from repro.nn.backend import resolve_backend

        if resolve_backend(config.backend) == "meta":
            raise ValueError("the meta backend requires synthetic inputs")
        model = self.build_model(config)
        batch = self.make_batch(config)
        return profiler.profile(model, batch)

    def run_training_step(self, config: RunConfig) -> float:
        """One forward+backward+step; returns the loss value."""
        info = get_workload(config.workload)
        model = self.build_model(config)
        batch = self.make_batch(config)
        targets = random_targets(info.shapes, config.batch_size, seed=config.seed)
        loss_fn = loss_fn_for(info.task_kind)
        optimizer = nn.optim.Adam(model.parameters(), lr=1e-3)
        model.train()
        optimizer.zero_grad()
        loss = loss_fn(model(batch), targets)
        loss.backward()
        optimizer.step()
        return loss.item()

    def training_breakdown(self, config: RunConfig, optimizer: str = "adam"):
        """Priced per-pass/per-stage breakdown of one traced training step.

        Backs ``mmbench train-analyze``: the store-cached traced step
        (forward + loss + backward + optimizer kernels) priced on the
        vectorized engine for ``config.device``.
        """
        from repro.core.analysis.training import training_step_analysis

        return training_step_analysis(
            workloads=[config.workload],
            device=config.device or self.device,
            batch_size=config.batch_size,
            optimizer=optimizer,
            fusion=config.fusion,
            unimodal=config.unimodal,
            seed=config.seed,
            backend=config.backend,
        )[config.workload]

    def train(self, config: RunConfig, n_train: int = 384, n_test: int = 256,
              epochs: int = 6):
        """Full training on a latent-factor dataset; returns a TrainResult."""
        info = get_workload(config.workload)
        dataset = LatentMultimodalDataset(info.shapes, info.default_channels(),
                                          seed=config.seed + 17)
        model = self.build_model(config)
        return train_model(model, dataset, n_train=n_train, n_test=n_test,
                           epochs=epochs, seed=config.seed)

    # -- serving under faults ------------------------------------------------------

    def chaos_serve(self, scenario: str = "single-failure",
                    workloads=None, mix: str = "uniform",
                    n_requests: int = 2_000, arrival_rate: float = 1_000.0,
                    slo: float = 50e-3, devices=None, seed: int = 0,
                    backend: str = "meta", retry=None):
        """Serve a tenant mix under a named chaos scenario; returns the report.

        The programmatic twin of ``mmbench serve --mix ... --faults``:
        builds profiled tenants for ``workloads`` (default: the full
        registry), sizes the fault plan's horizon from
        ``n_requests / arrival_rate``, and runs :func:`simulate_mixed`
        with the scenario's fault plan plus a default retry policy.
        The returned report's ``fault_stats`` carries the per-device
        downtime, retry and shedding accounting.
        """
        from repro.serving import (
            RetryPolicy,
            chaos_plan,
            make_tenants,
            simulate_mixed,
        )

        if arrival_rate <= 0:
            raise ValueError(f"arrival_rate must be positive, got {arrival_rate}")
        # Chaos plans must leave at least one device up, so the default
        # pool pairs the suite's device with an edge box (the CLI default).
        devices = tuple(devices) if devices else (self.device, "nano")
        workloads = tuple(workloads) if workloads else tuple(list_workloads())
        tenants = make_tenants(workloads, slo=slo, seed=seed, backend=backend)
        plan = chaos_plan(scenario, devices, n_requests / arrival_rate,
                          seed=seed)
        return simulate_mixed(
            tenants, devices=devices, n_requests=n_requests,
            arrival_rate=arrival_rate, scenario=mix, seed=seed,
            faults=plan, retry=retry if retry is not None else RetryPolicy(),
        )

    # -- fleet-scale serving -------------------------------------------------------

    def fleet_serve(self, groups="2080ti:4,nano:2", workloads=None,
                    mix: str = "uniform", n_requests: int = 10_000,
                    arrival_rate: float | None = None, slo: float = 50e-3,
                    autoscale=None, faults=None, hop_bytes: float = 0.0,
                    seed: int = 0, backend: str = "meta"):
        """Serve a tenant mix on a fleet of device groups; returns a
        :class:`~repro.serving.fleet.FleetReport`.

        The programmatic twin of ``mmbench serve --fleet``: ``groups`` is
        either a ``"dev:replicas[:pool],..."`` spec string or a sequence
        of :class:`~repro.serving.fleet.DeviceGroup`; ``autoscale`` is an
        :class:`~repro.serving.fleet.AutoscalePolicy` (or a CLI-style
        ``"metric:threshold[:interval[:cooldown]]"`` spec); ``faults`` is
        a :class:`~repro.serving.faults.FaultPlan` or a chaos-scenario
        name resolved against the group device names (requires
        ``arrival_rate`` to size its horizon).
        """
        from repro.serving import (
            chaos_plan,
            make_tenants,
            parse_autoscale,
            parse_groups,
            simulate_fleet,
        )
        from repro.serving.faults import CHAOS_SCENARIO_NAMES

        if isinstance(groups, str):
            groups = parse_groups(groups)
        if isinstance(autoscale, str):
            autoscale = parse_autoscale(autoscale)
        if isinstance(faults, str):
            if faults not in CHAOS_SCENARIO_NAMES:
                raise ValueError(
                    f"unknown chaos scenario {faults!r}; "
                    f"available: {', '.join(CHAOS_SCENARIO_NAMES)}")
            if arrival_rate is None:
                raise ValueError(f"chaos scenario {faults!r} needs an "
                                 "arrival_rate to size its horizon")
            faults = chaos_plan(faults, tuple(g.device for g in groups),
                                n_requests / arrival_rate, seed=seed)
        workloads = tuple(workloads) if workloads else tuple(list_workloads())
        tenants = make_tenants(workloads, slo=slo, seed=seed, backend=backend)
        return simulate_fleet(
            tenants, groups, n_requests=n_requests, arrival_rate=arrival_rate,
            scenario=mix, autoscale=autoscale, faults=faults,
            hop_bytes=hop_bytes, seed=seed,
        )

    # -- external execution graphs -----------------------------------------------

    def ingest(self, path, registry=None, batch_size: int | None = None,
               store=None) -> ProfileResult:
        """Ingest an execution-graph JSON file and profile it on this
        suite's device.

        The graph goes through the shared trace store
        (:meth:`~repro.trace.store.TraceStore.get_or_ingest`, keyed on the
        file's content digest), so re-profiling the same file is a warm
        hit. ``batch_size`` defaults to the batch size recorded in the
        graph itself.
        """
        from repro.trace.store import default_store

        store = store if store is not None else default_store()
        stored = store.get_or_ingest(path, registry=registry)
        if batch_size is None:
            batch_size = int(stored.extra.get("batch_size", 1))
        profiler = MMBenchProfiler(self.device)
        return profiler.profile_stored(stored, batch_size)

    # -- static analysis ----------------------------------------------------------

    def lint(self, artifact, source: str | None = None, **options):
        """Statically lint a benchmark artifact; returns a ``LintReport``.

        The programmatic twin of ``mmbench lint``: ``artifact`` can be a
        path to an execution-graph or fault-plan JSON, a workload name, a
        ``Trace``/``TraceColumns``/``StoredTrace``, a ``StreamSchedule``,
        a ``ServingReport``, a ``FaultPlan``, a tenant list or an
        op-mapping registry — the rule set is picked by type. Nothing is
        executed; every rule is array math over the artifact.
        """
        from repro.lint import lint_artifact, lint_trace

        if isinstance(artifact, str) and artifact in set(list_workloads()):
            from repro.trace.store import default_store

            stored = default_store().get_or_capture(artifact)
            return lint_trace(stored, source=source or f"workload:{artifact}",
                              **options)
        return lint_artifact(artifact, source=source, **options)

    # -- reporting --------------------------------------------------------------

    def summarize(self, result: ProfileResult) -> str:
        return profile_summary(result)
