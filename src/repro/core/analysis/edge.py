"""Figures 14-15: the edge-migration case study (Sec. 5.2).

AV-MNIST inference is compared across the GPU server (RTX 2080Ti), Jetson
Orin and Jetson Nano at batch sizes 40-320. The paper's findings:

* the Jetson Nano needs ~6.5x the server's time; Orin behaves like a small
  server;
* server latency falls monotonically with batch size, but the Nano's
  *rises again* at batch 320 because "certain resources are used up";
* the multi/uni time ratio is higher on the edge boards than on the
  server (the server has idle resources to absorb the extra modality);
* stall attribution shifts: Mem/Cache-dependency stalls dominate on the
  server, Exec-dependency and instruction-fetch stalls dominate on the
  Nano; on the Nano the fusion stage's occupancy overtakes the encoder's.

Scale note: our workload shapes are reduced so a single-core numpy
substrate can execute them; at those sizes no batch fits 4 GB badly enough
to thrash. ``EDGE_SCALE`` extrapolates the traced work descriptors to the
paper's full-scale AV-MNIST (112x112 spectrograms, full-width MLP heads —
the ``slfs`` variant has 31x the baseline parameters), which restores the
capacity effect. The scaling is exact under the analytical device model
(see :func:`repro.trace.timeline.scale_trace`).

Captures route through the shared :class:`~repro.trace.store.TraceStore`
on the **meta** backend by default: one cached device-independent trace
per (variant, batch) feeds every device's pricing, and the scaled-up
configurations never materialize full-scale activations. Pricing goes
through :func:`repro.profiling.profiler.price_grid`, which scales the
columnar trace once and prices it on all devices in a single broadcasted
sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.stalls import STALL_REASONS
from repro.profiling.profiler import price_grid
from repro.trace.store import TraceStore, default_store

#: Work multiplier from our reduced AV-MNIST to the paper's full-scale one.
#: Calibrated so the slfs variant at batch 320 approaches the Jetson Nano's
#: usable unified-memory capacity (as in Figure 14) while batch 160 does not.
EDGE_SCALE = 72.0

DEVICES = ("nano", "orin", "2080ti")
BATCH_SIZES = (40, 80, 160, 320)

_VARIANTS = (("uni", None, "image"), ("slfs", "slfs", None))  # (label, fusion, unimodal)


@dataclass
class EdgeLatency:
    """One (device, variant, batch) cell of Figure 14."""

    device: str
    variant: str  # "uni" (image) or "slfs"
    batch_size: int
    inference_time: float  # for `total_tasks` tasks
    memory_pressure: float
    slowdown: float


def edge_latency_study(
    workload: str = "avmnist",
    batch_sizes: tuple[int, ...] = BATCH_SIZES,
    devices: tuple[str, ...] = DEVICES,
    total_tasks: int = 10_000,
    scale: float = EDGE_SCALE,
    seed: int = 0,
    backend: str | None = "meta",
    store: TraceStore | None = None,
) -> list[EdgeLatency]:
    """Figure 14: inference time vs batch size per device, uni vs slfs."""
    store = store if store is not None else default_store()
    results: list[EdgeLatency] = []
    for variant_name, fusion, unimodal in _VARIANTS:
        # Model/dataset bytes scale together with the traced work; each
        # (variant, batch) trace is priced on every device in one pass.
        grid = price_grid([workload], batch_sizes, devices,
                          fusion=fusion, unimodal=unimodal, seed=seed,
                          backend=backend, scale=scale, store=store)
        for batch_size in batch_sizes:
            n_batches = max(1, total_tasks // batch_size)
            for device in devices:
                report = grid[(workload, int(batch_size), device)].report
                results.append(EdgeLatency(
                    device=device,
                    variant=variant_name,
                    batch_size=batch_size,
                    inference_time=report.total_time * n_batches,
                    memory_pressure=report.memory_pressure,
                    slowdown=report.slowdown,
                ))
    return results


def multimodal_ratio(results: list[EdgeLatency], batch_size: int) -> dict[str, float]:
    """slfs/uni inference-time ratio per device at one batch size."""
    by_key = {(r.device, r.variant, r.batch_size): r for r in results}
    out = {}
    for device in {r.device for r in results}:
        uni = by_key.get((device, "uni", batch_size))
        slfs = by_key.get((device, "slfs", batch_size))
        if uni and slfs and uni.inference_time > 0:
            out[device] = slfs.inference_time / uni.inference_time
    return out


@dataclass
class StallProfile:
    """One bar of Figure 15a/b: a stall breakdown for one configuration."""

    device: str
    config: str  # "uni0" (audio), "uni1" (image), "slfs", or a stage name
    stalls: dict[str, float]


def edge_stall_study(
    workload: str = "avmnist",
    devices: tuple[str, ...] = ("nano", "2080ti"),
    batch_size: int = 40,
    scale: float = EDGE_SCALE,
    seed: int = 0,
    backend: str | None = "meta",
    store: TraceStore | None = None,
) -> list[StallProfile]:
    """Figure 15a/b: stall breakdowns on the Nano vs the server.

    Configurations mirror the paper: ``uni0`` = audio-only, ``uni1`` =
    image-only, ``slfs`` = the multi-modal variant, plus slfs's per-stage
    breakdowns (encoder / fusion / head).
    """
    store = store if store is not None else default_store()
    configs = {
        "uni0": (None, "audio"),
        "uni1": (None, "image"),
        "slfs": ("slfs", None),
    }
    grids = {
        config_name: price_grid([workload], [batch_size], devices,
                                fusion=fusion, unimodal=unimodal, seed=seed,
                                backend=backend, scale=scale, store=store)
        for config_name, (fusion, unimodal) in configs.items()
    }
    profiles: list[StallProfile] = []
    for device in devices:
        for config_name in configs:
            report = grids[config_name][(workload, batch_size, device)].report
            profiles.append(StallProfile(
                device=device, config=config_name, stalls=report.overall_stalls(),
            ))
            if config_name == "slfs":
                for stage, stalls in report.stage_stalls().items():
                    profiles.append(StallProfile(device=device, config=stage, stalls=stalls))
    return profiles


def edge_resource_study(
    workload: str = "avmnist",
    device: str = "nano",
    batch_size: int = 40,
    scale: float = EDGE_SCALE,
    seed: int = 0,
    backend: str | None = "meta",
    store: TraceStore | None = None,
) -> dict[str, dict[str, float]]:
    """Figure 15c: per-stage resource usage of slfs on the Jetson Nano."""
    store = store if store is not None else default_store()
    grid = price_grid([workload], [batch_size], [device], fusion="slfs",
                      seed=seed, backend=backend, scale=scale, store=store)
    return grid[(workload, batch_size, device)].report.stage_counters()


def dominant_stalls(profiles: list[StallProfile], device: str, config: str = "slfs",
                    top: int = 2) -> list[str]:
    """The ``top`` stall reasons for one configuration on one device."""
    for p in profiles:
        if p.device == device and p.config == config:
            ranked = sorted(STALL_REASONS, key=lambda r: -p.stalls.get(r, 0.0))
            return ranked[:top]
    raise KeyError(f"no stall profile for device={device!r} config={config!r}")
