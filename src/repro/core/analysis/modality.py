"""Figure 5: distribution of mutually exclusive correctly-processed sets.

For each dataset the paper trains one model per modality plus the fused
model and partitions the correctly-processed test samples: those the
*major* modality alone handles, those only another single modality
handles, and those only the multi-modal fusion handles. Its finding: more
than 75% of correct samples need only the major modality and under 5%
truly require fusion — motivating adaptive encoder activation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.train import correct_mask, train_model
from repro.data.generators import LatentMultimodalDataset
from repro.workloads.registry import get_workload

DEFAULT_WORKLOADS = ("avmnist", "mmimdb", "cmu_mosei", "mustard")


@dataclass
class ExclusiveSets:
    """The Figure-5 partition for one workload."""

    workload: str
    major_modality: str
    # Fractions of the union of correctly-processed samples, mutually
    # exclusive and summing to 1 with `fusion_only`.
    major_fraction: float
    minor_fractions: dict[str, float]
    fusion_only_fraction: float
    union_size: int

    @property
    def total(self) -> float:
        return self.major_fraction + sum(self.minor_fractions.values()) + self.fusion_only_fraction


def exclusive_correct_analysis(
    workloads: tuple[str, ...] = DEFAULT_WORKLOADS,
    n_train: int = 384,
    n_test: int = 256,
    epochs: int = 6,
    seed: int = 0,
) -> list[ExclusiveSets]:
    """Train per-modality and fused models, partition correct samples."""
    results: list[ExclusiveSets] = []
    for name in workloads:
        info = get_workload(name)
        dataset = LatentMultimodalDataset(info.shapes, info.default_channels(), seed=seed + 17)
        task_kind = info.task_kind

        masks: dict[str, np.ndarray] = {}
        for modality in info.modalities:
            res = train_model(info.build_unimodal(modality, seed=seed), dataset,
                              n_train=n_train, n_test=n_test, epochs=epochs, seed=seed)
            masks[modality] = correct_mask(res.test_outputs, res.test_targets, task_kind)

        fused = train_model(info.build(seed=seed), dataset,
                            n_train=n_train, n_test=n_test, epochs=epochs, seed=seed)
        fused_mask = correct_mask(fused.test_outputs, fused.test_targets, task_kind)

        union = fused_mask.copy()
        for mask in masks.values():
            union |= mask
        union_size = int(union.sum())
        if union_size == 0:
            raise RuntimeError(f"{name}: no test sample processed correctly by any model")

        major = max(masks, key=lambda m: int(masks[m].sum()))
        covered = masks[major].copy()
        major_fraction = float(masks[major].sum()) / union_size

        minor_fractions: dict[str, float] = {}
        remaining = sorted(
            (m for m in masks if m != major), key=lambda m: -int(masks[m].sum())
        )
        for modality in remaining:
            exclusive = masks[modality] & ~covered
            minor_fractions[modality] = float(exclusive.sum()) / union_size
            covered |= masks[modality]

        fusion_only = fused_mask & ~covered
        results.append(ExclusiveSets(
            workload=name,
            major_modality=major,
            major_fraction=major_fraction,
            minor_fractions=minor_fractions,
            fusion_only_fraction=float(fusion_only.sum()) / union_size,
            union_size=union_size,
        ))
    return results
