"""Serving sweeps: throughput/latency curves from the batching simulator.

Extends the Sec. 5.1 batch-size case study from a closed 10,000-task batch
run into an open-loop serving analysis: given an arrival rate, what batch
size minimizes tail latency while sustaining the load? This is the
question the paper's "OS schedules the appropriate kernels" framing leads
to for a deployment engineer.
"""

from __future__ import annotations

from repro.hw.scheduler import ServingResult, batch_time_from_profile, simulate_serving
from repro.profiling.profiler import MMBenchProfiler
from repro.workloads.registry import get_workload


def serving_sweep(
    workload: str = "avmnist",
    fusion: str | None = None,
    batch_sizes: tuple[int, ...] = (1, 8, 40, 100, 400),
    n_tasks: int = 10_000,
    arrival_rate: float | None = None,
    device: str = "2080ti",
    seed: int = 0,
) -> dict[int, ServingResult]:
    """Simulate serving ``n_tasks`` at each batch size; returns per-size stats.

    ``arrival_rate=None`` reproduces the paper's closed-batch setting (all
    tasks queued at t=0); a finite rate simulates an open Poisson stream.
    """
    info = get_workload(workload)
    model = info.build(fusion, seed=seed)
    profiler = MMBenchProfiler(device)
    batch_time = batch_time_from_profile(profiler, model, device, seed=seed)

    results: dict[int, ServingResult] = {}
    for batch_size in batch_sizes:
        results[batch_size] = simulate_serving(
            batch_time, batch_size, n_tasks, arrival_rate=arrival_rate, seed=seed,
        )
    return results


def best_batch_for_slo(results: dict[int, ServingResult], p99_slo: float) -> int | None:
    """Largest batch size whose p99 latency meets the SLO (None if none do)."""
    feasible = [b for b, r in results.items() if r.p99_latency <= p99_slo]
    return max(feasible) if feasible else None
