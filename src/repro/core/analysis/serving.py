"""Serving analyses: batch-size sweeps and dynamic-batching policy studies.

Extends the Sec. 5.1 batch-size case study from a closed 10,000-task batch
run into open-loop serving analyses on the :mod:`repro.serving` engine:
given an arrival rate, what *fixed* batch size minimizes tail latency
while sustaining the load (:func:`serving_sweep` /
:func:`best_batch_for_slo`) — and how much better does a *dynamic*
batching policy do under the same stream (:func:`policy_study`)?
"""

from __future__ import annotations

from repro.hw.scheduler import ServingResult, serving_result_from_report
from repro.serving import (
    BatchingPolicy,
    FixedBatchPolicy,
    ProfiledCostModel,
    ServingReport,
    make_policy,
    simulate,
)


def serving_sweep(
    workload: str = "avmnist",
    fusion: str | None = None,
    batch_sizes: tuple[int, ...] = (1, 8, 40, 100, 400),
    n_tasks: int = 10_000,
    arrival_rate: float | None = None,
    device: str = "2080ti",
    seed: int = 0,
) -> dict[int, ServingResult]:
    """Simulate serving ``n_tasks`` at each fixed batch size; per-size stats.

    ``arrival_rate=None`` reproduces the paper's closed-batch setting (all
    tasks queued at t=0); a finite rate simulates an open Poisson stream.
    """
    cost = ProfiledCostModel(workload, fusion, seed=seed)
    results: dict[int, ServingResult] = {}
    for batch_size in batch_sizes:
        report = simulate(
            cost, FixedBatchPolicy(batch_size), devices=(device,),
            n_requests=n_tasks, arrival_rate=arrival_rate, seed=seed,
        )
        results[batch_size] = serving_result_from_report(report, batch_size)
    return results


def best_batch_for_slo(results: dict[int, ServingResult], p99_slo: float) -> int | None:
    """Largest batch size whose p99 latency meets the SLO (None if none do)."""
    feasible = [b for b, r in results.items() if r.p99_latency <= p99_slo]
    return max(feasible) if feasible else None


def policy_study(
    workload: str = "avmnist",
    fusion: str | None = None,
    policies: dict[str, BatchingPolicy] | tuple[str, ...] = ("fixed", "adaptive"),
    devices: tuple[str, ...] = ("2080ti",),
    n_requests: int = 5_000,
    arrival_rate: float | None = 1_000.0,
    slo: float = 50e-3,
    seed: int = 0,
) -> dict[str, ServingReport]:
    """Run each dynamic-batching policy against the same arrival stream.

    ``policies`` is either a mapping of label -> policy instance, or a
    tuple of policy names built via :func:`repro.serving.make_policy`
    (``slo`` seeds the adaptive policy). Identical ``seed`` means every
    policy sees the identical Poisson stream, so differences are purely
    the policy's doing.
    """
    if not isinstance(policies, dict):
        policies = {name: make_policy(name, slo=slo) for name in policies}
    cost = ProfiledCostModel(workload, fusion, seed=seed)
    return {
        label: simulate(cost, policy, devices=devices, n_requests=n_requests,
                        arrival_rate=arrival_rate, seed=seed)
        for label, policy in policies.items()
    }
