"""Figures 6-7: three-stage execution time and resource usage.

Traces one inference batch per workload (dataset-free random inputs) and
prices it on the GPU-server model. The paper's observations to reproduce:

* the encoder stage generally dominates execution time, but complex
  transformer fusion (MuJoCo Push, Vision & Touch) can exceed it;
* encoder stages show higher DRAM utilization, IPC and occupancy than
  fusion/head (more computation, larger data); gld/gst efficiency is
  roughly flat across stages;
* even when transformer fusion takes ~3x the encoder's *time*, it does not
  consume more *resources* per cycle.
"""

from __future__ import annotations

from repro.profiling.profiler import price_grid
from repro.trace.store import TraceStore
from repro.workloads.registry import list_workloads


def stage_time_analysis(
    workloads: list[str] | None = None,
    batch_size: int = 32,
    device: str = "2080ti",
    seed: int = 0,
    backend: str | None = "meta",
    store: TraceStore | None = None,
) -> dict[str, dict[str, float]]:
    """Per-stage device time (seconds) for each workload — Figure 6."""
    names = workloads or list_workloads()
    grid = price_grid(names, [batch_size], [device], seed=seed,
                      backend=backend, store=store)
    return {name: grid[(name, batch_size, device)].report.stage_time()
            for name in names}


def stage_resource_analysis(
    workloads: list[str] | None = None,
    batch_size: int = 32,
    device: str = "2080ti",
    seed: int = 0,
    backend: str | None = "meta",
    store: TraceStore | None = None,
) -> dict[str, dict[str, dict[str, float]]]:
    """Per-stage duration-weighted counters for each workload — Figure 7.

    Counter keys include ``dram_utilization``, ``achieved_occupancy``,
    ``ipc``, ``gld_efficiency`` and ``gst_efficiency`` — the five metrics
    the paper traces with Nsight Compute.
    """
    names = workloads or list_workloads()
    grid = price_grid(names, [batch_size], [device], seed=seed,
                      backend=backend, store=store)
    return {name: grid[(name, batch_size, device)].report.stage_counters()
            for name in names}
