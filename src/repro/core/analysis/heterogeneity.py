"""Figures 8-9: intra-network heterogeneity.

Figure 8 breaks each stage's GPU time down by kernel category (Conv,
BNorm, Elewise, Pooling, Relu, Gemm, Reduce, Other): different stages —
and different modality encoders — are dominated by different operations
(VGG by Gemm, ALBERT by activations), so no single accelerator
specialization covers the whole application.

Figure 9 takes two hotspot kernels on AV-MNIST and compares their
fine-grained counters (a) across stages for a shared hotspot kernel —
resource usage varies by orders of magnitude (the paper reports 15x in
fp32 ops and 80x in read TPS for its Reduce kernel; our lean LeNet has no
Reduce in every stage, so the default is the Gemm kernel, which every
stage launches and which shows the same cross-stage spread) — and (b) across
fusion methods (concat vs tensor) for the Elewise kernel — similar
resource levels but a significant jump in DRAM read bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.profiling.profiler import price_grid
from repro.trace.events import KernelCategory
from repro.trace.store import TraceStore
from repro.workloads.registry import list_workloads


def kernel_breakdown_analysis(
    workloads: list[str] | None = None,
    batch_size: int = 32,
    device: str = "2080ti",
    seed: int = 0,
    backend: str | None = "meta",
    store: TraceStore | None = None,
) -> dict[str, dict[str, dict[str, float]]]:
    """{workload: {stage: {category: time share}}} — Figure 8."""
    names = workloads or list_workloads()
    grid = price_grid(names, [batch_size], [device], seed=seed,
                      backend=backend, store=store)
    out: dict[str, dict[str, dict[str, float]]] = {}
    for name in names:
        cell = grid[(name, batch_size, device)]
        out[name] = {
            stage: {
                cat.value: share
                for cat, share in cell.report.category_time_breakdown(stage).items()
            }
            for stage in cell.trace.stages()
        }
    return out


@dataclass
class HotspotRecord:
    """Counters of one hotspot kernel in one context (stage or fusion)."""

    context: str  # stage name or fusion name
    kernel_name: str
    fp32_ops: float
    dram_read_bytes: float
    read_tps: float
    l1_hit_rate: float
    l2_hit_rate: float
    l2_read_hit_rate: float
    l2_write_hit_rate: float
    duration: float


def hotspot_across_stages(
    workload: str = "avmnist",
    category: KernelCategory = KernelCategory.GEMM,
    batch_size: int = 32,
    device: str = "2080ti",
    seed: int = 0,
    backend: str | None = "meta",
    store: TraceStore | None = None,
) -> list[HotspotRecord]:
    """Figure 9a: the same kernel category's hotspot in each stage."""
    grid = price_grid([workload], [batch_size], [device], seed=seed,
                      backend=backend, store=store)
    result = grid[(workload, batch_size, device)]
    records = []
    for stage in result.trace.stages():
        kx = result.report.hotspot(category, stage=stage)
        if kx is None:
            continue
        c = kx.counters
        records.append(HotspotRecord(
            context=stage, kernel_name=kx.event.name, fp32_ops=c.fp32_ops,
            dram_read_bytes=c.dram_read_bytes,
            read_tps=c.read_transactions_per_second,
            l1_hit_rate=c.l1_hit_rate, l2_hit_rate=c.l2_hit_rate,
            l2_read_hit_rate=c.l2_read_hit_rate, l2_write_hit_rate=c.l2_write_hit_rate,
            duration=c.duration,
        ))
    return records


def hotspot_across_fusions(
    workload: str = "avmnist",
    fusions: tuple[str, ...] = ("concat", "tensor"),
    category: KernelCategory = KernelCategory.ELEWISE,
    batch_size: int = 32,
    device: str = "2080ti",
    seed: int = 0,
    backend: str | None = "meta",
    store: TraceStore | None = None,
) -> list[HotspotRecord]:
    """Figure 9b: a fusion-stage hotspot kernel across fusion methods."""
    records = []
    for fusion in fusions:
        grid = price_grid([workload], [batch_size], [device], fusion=fusion,
                          seed=seed, backend=backend, store=store)
        result = grid[(workload, batch_size, device)]
        kx = result.report.hotspot(category, stage="fusion")
        if kx is None:
            continue
        c = kx.counters
        records.append(HotspotRecord(
            context=fusion, kernel_name=kx.event.name, fp32_ops=c.fp32_ops,
            dram_read_bytes=c.dram_read_bytes,
            read_tps=c.read_transactions_per_second,
            l1_hit_rate=c.l1_hit_rate, l2_hit_rate=c.l2_hit_rate,
            l2_read_hit_rate=c.l2_read_hit_rate, l2_write_hit_rate=c.l2_write_hit_rate,
            duration=c.duration,
        ))
    return records
