"""Robustness to noisy and missing modalities.

MultiBench — the algorithm-level benchmark the paper positions itself
against — evaluates "robustness to noisy and missing modalities"; MMBench
inherits the axis at the system level: sensor dropout is exactly the
scenario behind the paper's warning that naively throttling encoders
"can lead to avoidable task failures resulting from the loss of situation
awareness" (Sec. 4.2.3). This analysis trains a fused model once and
measures its metric as each modality is dropped (zeroed) or progressively
corrupted with noise at evaluation time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.train import TrainResult, evaluate, train_model
from repro.data.generators import LatentMultimodalDataset
from repro.workloads.registry import get_workload


@dataclass
class RobustnessReport:
    """Degradation of one trained model under modality perturbations."""

    workload: str
    clean_metric: float
    higher_is_better: bool
    dropped_modality_metric: dict[str, float] = field(default_factory=dict)
    noise_sweep: dict[float, float] = field(default_factory=dict)  # sigma -> metric

    def degradation(self, modality: str) -> float:
        """Signed metric change when ``modality`` is dropped (negative = worse
        for higher-is-better metrics)."""
        delta = self.dropped_modality_metric[modality] - self.clean_metric
        return delta if self.higher_is_better else -delta

    def worst_modality(self) -> str:
        """Modality whose drop costs the most task metric — the one a
        degraded serving mode should *not* shed lightly."""
        if not self.dropped_modality_metric:
            raise ValueError("no dropped-modality metrics recorded")
        return min(self.dropped_modality_metric, key=self.degradation)


def _zero_modality(batch: dict[str, np.ndarray], modality: str) -> dict[str, np.ndarray]:
    out = dict(batch)
    arr = out[modality]
    if np.issubdtype(arr.dtype, np.integer):
        out[modality] = np.zeros_like(arr)  # pad/unknown token
    else:
        out[modality] = np.zeros_like(arr)
    return out


def _add_noise(batch: dict[str, np.ndarray], sigma: float,
               rng: np.random.Generator) -> dict[str, np.ndarray]:
    out = {}
    for name, arr in batch.items():
        if np.issubdtype(arr.dtype, np.integer):
            out[name] = arr  # token corruption handled via dropout only
        else:
            out[name] = arr + rng.standard_normal(arr.shape).astype(arr.dtype) * sigma
    return out


def robustness_analysis(
    workload: str = "avmnist",
    noise_levels: tuple[float, ...] = (0.5, 1.0, 2.0),
    n_train: int = 256,
    n_test: int = 192,
    epochs: int = 5,
    seed: int = 0,
) -> RobustnessReport:
    """Train the fused model, then perturb each modality at eval time."""
    info = get_workload(workload)
    dataset = LatentMultimodalDataset(info.shapes, info.default_channels(), seed=seed + 17)
    result: TrainResult = train_model(info.build(seed=seed), dataset,
                                      n_train=n_train, n_test=n_test, epochs=epochs,
                                      seed=seed)
    model = result.model
    task_kind = info.task_kind

    test_batch, test_targets = dataset.sample(n_test, seed=seed + 10_000)
    _, clean = evaluate(model, test_batch, test_targets, task_kind)

    report = RobustnessReport(workload=workload, clean_metric=clean,
                              higher_is_better=result.higher_is_better)

    for modality in info.modalities:
        perturbed = _zero_modality(test_batch, modality)
        _, metric = evaluate(model, perturbed, test_targets, task_kind)
        report.dropped_modality_metric[modality] = metric

    rng = np.random.default_rng(seed + 99)
    for sigma in noise_levels:
        noisy = _add_noise(test_batch, sigma, rng)
        _, metric = evaluate(model, noisy, test_targets, task_kind)
        report.noise_sweep[sigma] = metric

    return report


def degraded_mode_cost(workload: str, modality: str, **kwargs) -> float:
    """Accuracy cost of serving ``workload`` with ``modality`` shed.

    The bridge between the serving stack's graceful degradation
    (:class:`repro.serving.faults.DegradedMode`) and this algorithm-level
    analysis: runs :func:`robustness_analysis` (``kwargs`` forwarded, e.g.
    ``epochs=2`` for a quick quote) and returns the signed metric change
    of dropping the modality — the number a degraded-mode SLO decision
    should weigh against the latency relief.
    """
    report = robustness_analysis(workload, **kwargs)
    return report.degradation(modality)
