"""Figures 12-13: the batch-size case study (Sec. 5.1).

10,000 inference tasks are scheduled at batch size 40 vs 400 on AV-MNIST,
comparing the multi-modal ``slfs`` implementation against its uni-modal
(image) counterpart. The paper's findings to reproduce:

* larger batches shift the kernel population toward large (>50us)
  kernels, and the multi-modal network uses more large kernels;
* a 10x batch increase reduces latency by much less than 10x, and the
  multi-modal GPU time shrinks by a *smaller* factor than the uni-modal;
* peak memory: the model component is batch-invariant while dataset and
  intermediate grow linearly, with multi-modal carrying a larger
  intermediate share (Figure 13).

Traces come from the shared :class:`~repro.trace.store.TraceStore` and
are captured on the **meta** backend by default: the sweep prices cached
or analytically-propagated event streams, so batch sizes well beyond
physical RAM stay reachable and repeated sweeps are cache hits. Pricing
goes through :func:`repro.profiling.profiler.price_grid` — each variant's
whole batch ladder is priced in one columnar pass.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.memory import MemoryBreakdown
from repro.profiling.profiler import GridCell, price_grid
from repro.trace.store import TraceStore, default_store

VARIANTS = (("slfs", True), ("image", False))  # (name, is_multimodal)


@dataclass
class BatchSizeResult:
    """One (variant, batch size) cell of Figure 12."""

    variant: str
    batch_size: int
    n_batches: int
    kernel_size_distribution: dict[str, float]  # fraction per duration bin
    gpu_time_total: float  # for all `total_tasks` tasks
    inference_time_total: float
    per_batch_gpu_time: float
    per_batch_total_time: float


def _variant_grid(store: TraceStore, workload: str, variant: str,
                  is_multimodal: bool, batch_sizes: tuple[int, ...],
                  device: str, seed: int,
                  backend: str | None) -> dict[int, GridCell]:
    """Price one variant's whole batch ladder in a single columnar pass."""
    grid = price_grid(
        [workload], batch_sizes, [device],
        fusion=variant if is_multimodal else None,
        unimodal=None if is_multimodal else variant,
        seed=seed, backend=backend, store=store,
    )
    return {b: grid[(workload, int(b), device)] for b in batch_sizes}


def batch_size_study(
    workload: str = "avmnist",
    batch_sizes: tuple[int, ...] = (40, 400),
    total_tasks: int = 10_000,
    device: str = "2080ti",
    seed: int = 0,
    backend: str | None = "meta",
    store: TraceStore | None = None,
) -> list[BatchSizeResult]:
    """Figure 12: kernel population and time vs batch size, uni vs multi."""
    store = store if store is not None else default_store()
    results: list[BatchSizeResult] = []
    for variant, is_multi in VARIANTS:
        cells = _variant_grid(store, workload, variant, is_multi,
                              tuple(batch_sizes), device, seed, backend)
        for batch_size in batch_sizes:
            report = cells[batch_size].report
            n_batches = max(1, total_tasks // batch_size)
            results.append(BatchSizeResult(
                variant=variant,
                batch_size=batch_size,
                n_batches=n_batches,
                kernel_size_distribution=report.kernel_size_distribution(),
                gpu_time_total=report.gpu_time * n_batches,
                inference_time_total=report.total_time * n_batches,
                per_batch_gpu_time=report.gpu_time,
                per_batch_total_time=report.total_time,
            ))
    return results


def peak_memory_study(
    workload: str = "avmnist",
    batch_sizes: tuple[int, ...] = (20, 40, 100, 200, 400),
    device: str = "2080ti",
    seed: int = 0,
    backend: str | None = "meta",
    store: TraceStore | None = None,
) -> dict[str, dict[int, MemoryBreakdown]]:
    """Figure 13: peak memory decomposition vs batch size, uni vs multi."""
    store = store if store is not None else default_store()
    out: dict[str, dict[int, MemoryBreakdown]] = {}
    for variant, is_multi in VARIANTS:
        cells = _variant_grid(store, workload, variant, is_multi,
                              tuple(batch_sizes), device, seed, backend)
        out[variant] = {b: cells[b].report.memory for b in batch_sizes}
    return out


def speedup_factor(results: list[BatchSizeResult], variant: str,
                   small: int, large: int) -> float:
    """Inference-time ratio small-batch/large-batch for one variant.

    A value well under ``large/small`` demonstrates the paper's point that
    a 10x batch increase does not buy a 10x latency reduction.
    """
    by_key = {(r.variant, r.batch_size): r for r in results}
    t_small = by_key[(variant, small)].inference_time_total
    t_large = by_key[(variant, large)].inference_time_total
    if t_large <= 0:
        raise ValueError("degenerate large-batch time")
    return t_small / t_large
