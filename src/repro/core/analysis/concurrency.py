"""Concurrent-modality execution analysis (the Sec. 4.3.3 idle-resource claim).

The paper observes that if the encoder sub-networks were executed
concurrently — one stream per modality, each holding a share of the
device — the modality imbalance would leave most of those resources idle:
"If executed concurrently, nearly 75% of the resources assigned to the
application will stay idle for more [than] 77% of the entire encoder
execution" (MuJoCo Push, whose image encoder is a 4.09x straggler).

This module derives exactly those quantities from an
:class:`~repro.hw.engine.ExecutionReport`: the concurrent encoder wall
time (the straggler's time), the serial time (what a single-stream
executor pays), and the idle-resource geometry of the concurrent schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.engine import ExecutionReport


@dataclass(frozen=True)
class ConcurrencyAnalysis:
    """Idle-resource geometry of a concurrent per-modality schedule."""

    modality_times: dict[str, float]
    straggler: str
    straggler_ratio: float  # straggler time / fastest modality time
    serial_encoder_time: float  # sum of modality times (single stream)
    concurrent_encoder_time: float  # max of modality times (one stream each)
    concurrency_speedup: float  # serial / concurrent
    # With one equal resource share per modality: fraction of the
    # (resources x encoder-window) area that sits idle.
    idle_resource_fraction: float
    # Fraction of the encoder window for which the non-straggler streams
    # (covering (M-1)/M of the resources) have already finished.
    idle_window_fraction: float
    idle_stream_share: float  # (M-1)/M — the "75% of resources" in the paper


def analyze_concurrency(report: ExecutionReport) -> ConcurrencyAnalysis:
    """Analyze the encoder stage's concurrent-execution geometry."""
    times = report.modality_time()
    if len(times) < 2:
        raise ValueError("concurrency analysis needs a multi-modal report")
    straggler = max(times, key=times.get)
    t_max = times[straggler]
    t_min = min(times.values())
    serial = sum(times.values())
    m = len(times)

    # Idle area: each of the m equal resource shares is busy for its
    # modality's time and idle until the straggler finishes.
    idle_area = sum(t_max - t for t in times.values())
    idle_fraction = idle_area / (m * t_max) if t_max > 0 else 0.0

    # The paper's phrasing: the other (m-1) streams go idle once their own
    # work finishes; on average that happens after mean(non-straggler time).
    others = [t for name, t in times.items() if name != straggler]
    mean_other = sum(others) / len(others)
    idle_window = 1.0 - (mean_other / t_max) if t_max > 0 else 0.0

    return ConcurrencyAnalysis(
        modality_times=times,
        straggler=straggler,
        straggler_ratio=t_max / t_min if t_min > 0 else float("inf"),
        serial_encoder_time=serial,
        concurrent_encoder_time=t_max,
        concurrency_speedup=serial / t_max if t_max > 0 else 1.0,
        idle_resource_fraction=idle_fraction,
        idle_window_fraction=idle_window,
        idle_stream_share=(m - 1) / m,
    )


def concurrency_study(
    workloads: tuple[str, ...] = ("avmnist", "mmimdb", "mujoco_push", "vision_touch"),
    batch_size: int = 64,
    device: str = "2080ti",
    seed: int = 0,
) -> dict[str, ConcurrencyAnalysis]:
    """Run the idle-resource analysis across workloads."""
    from repro.data.synthetic import random_batch
    from repro.profiling.profiler import MMBenchProfiler
    from repro.workloads.registry import get_workload

    profiler = MMBenchProfiler(device)
    out: dict[str, ConcurrencyAnalysis] = {}
    for name in workloads:
        info = get_workload(name)
        model = info.build(seed=seed)
        batch = random_batch(info.shapes, batch_size, seed=seed)
        report = profiler.profile(model, batch).report
        out[name] = analyze_concurrency(report)
    return out
