"""Concurrent-modality execution analysis (the Sec. 4.3.3 idle-resource claim).

The paper observes that if the encoder sub-networks were executed
concurrently — one stream per modality, each holding a share of the
device — the modality imbalance would leave most of those resources idle:
"If executed concurrently, nearly 75% of the resources assigned to the
application will stay idle for more [than] 77% of the entire encoder
execution" (MuJoCo Push, whose image encoder is a 4.09x straggler).

:func:`analyze_concurrency` derives those quantities from a *simulated
schedule*: :mod:`repro.hw.streams` executes the one-stream-per-modality
timeline on an equal-share device partition, and the idle-resource
geometry is read off the per-stream busy/idle windows. The closed-form
max/sum shortcut the module originally used is kept as
:func:`analytic_concurrency`; a tier-1 test pins the two to each other on
every multi-modal workload.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.engine import ExecutionReport


@dataclass(frozen=True)
class ConcurrencyAnalysis:
    """Idle-resource geometry of a concurrent per-modality schedule."""

    modality_times: dict[str, float]
    straggler: str
    straggler_ratio: float  # straggler time / fastest modality time
    serial_encoder_time: float  # sum of modality times (single stream)
    concurrent_encoder_time: float  # max of modality times (one stream each)
    concurrency_speedup: float  # serial / concurrent
    # With one equal resource share per modality: fraction of the
    # (resources x encoder-window) area that sits idle.
    idle_resource_fraction: float
    # Fraction of the encoder window for which the non-straggler streams
    # (covering (M-1)/M of the resources) have already finished.
    idle_window_fraction: float
    idle_stream_share: float  # (M-1)/M — the "75% of resources" in the paper


def analytic_concurrency(times: dict[str, float]) -> ConcurrencyAnalysis:
    """The closed-form max/sum shortcut over per-modality encoder times.

    Kept as the reference the schedule-derived :func:`analyze_concurrency`
    is differentially tested against.
    """
    if len(times) < 2:
        raise ValueError("concurrency analysis needs a multi-modal report")
    straggler = max(times, key=times.get)
    t_max = times[straggler]
    t_min = min(times.values())
    serial = sum(times.values())
    m = len(times)

    # Idle area: each of the m equal resource shares is busy for its
    # modality's time and idle until the straggler finishes.
    idle_area = sum(t_max - t for t in times.values())
    idle_fraction = idle_area / (m * t_max) if t_max > 0 else 0.0

    # The paper's phrasing: the other (m-1) streams go idle once their own
    # work finishes; on average that happens after mean(non-straggler time).
    others = [t for name, t in times.items() if name != straggler]
    mean_other = sum(others) / len(others)
    idle_window = 1.0 - (mean_other / t_max) if t_max > 0 else 0.0

    return ConcurrencyAnalysis(
        modality_times=times,
        straggler=straggler,
        straggler_ratio=t_max / t_min if t_min > 0 else float("inf"),
        serial_encoder_time=serial,
        concurrent_encoder_time=t_max,
        concurrency_speedup=serial / t_max if t_max > 0 else 1.0,
        idle_resource_fraction=idle_fraction,
        idle_window_fraction=idle_window,
        idle_stream_share=(m - 1) / m,
    )


def analyze_concurrency(report: ExecutionReport) -> ConcurrencyAnalysis:
    """Analyze the encoder stage's concurrent-execution geometry.

    Simulates the one-stream-per-modality schedule on an equal-share
    partition of the report's device
    (:meth:`~repro.hw.engine.ExecutionReport.stream_schedule`) and derives
    every quantity from the schedule's busy/idle windows. Absolute times
    are reported at native (full-device) speed — the idle *fractions* are
    share-scale-invariant under equal shares, which is exactly why the
    paper can quote them without fixing a partitioning.
    """
    if len(report.modality_time()) < 2:
        raise ValueError("concurrency analysis needs a multi-modal report")
    schedule = report.stream_schedule()
    native = schedule.native_times()
    straggler = schedule.straggler
    t_max = native[straggler]
    t_min = min(native.values())
    m = len(native)
    return ConcurrencyAnalysis(
        modality_times=native,
        straggler=straggler,
        straggler_ratio=t_max / t_min if t_min > 0 else float("inf"),
        serial_encoder_time=schedule.serial_time(),
        concurrent_encoder_time=t_max,
        concurrency_speedup=schedule.concurrency_speedup(),
        idle_resource_fraction=schedule.idle_resource_fraction(),
        idle_window_fraction=schedule.idle_window_fraction(),
        idle_stream_share=(m - 1) / m,
    )


def concurrency_study(
    workloads: tuple[str, ...] = ("avmnist", "mmimdb", "mujoco_push", "vision_touch"),
    batch_size: int = 64,
    device: str = "2080ti",
    seed: int = 0,
) -> dict[str, ConcurrencyAnalysis]:
    """Run the idle-resource analysis across workloads."""
    from repro.data.synthetic import random_batch
    from repro.profiling.profiler import MMBenchProfiler
    from repro.workloads.registry import get_workload

    profiler = MMBenchProfiler(device)
    out: dict[str, ConcurrencyAnalysis] = {}
    for name in workloads:
        info = get_workload(name)
        model = info.build(seed=seed)
        batch = random_batch(info.shapes, batch_size, seed=seed)
        report = profiler.profile(model, batch).report
        out[name] = analyze_concurrency(report)
    return out
