"""Figures 10-11: the two levels of synchronization overhead.

*Modality synchronization* (Fig. 10): encoders for different modalities
take very different times — the image modality is the straggler (4.09x in
MuJoCo Push) — so a fusion stage that waits on all modalities leaves most
of the concurrent resources idle.

*Data synchronization* (Fig. 11): multi-modal implementations spend a
larger share of wall time in CPU+Runtime work (transfers, intermediate
data preparation, sync calls) than their uni-modal counterparts, keeping
the GPU stalled waiting for data.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.synthetic import random_batch
from repro.profiling.profiler import MMBenchProfiler
from repro.workloads.registry import get_workload

MODALITY_TIME_WORKLOADS = ("avmnist", "mmimdb", "mujoco_push")
SYNC_SHARE_WORKLOADS = ("avmnist", "mujoco_push", "medical_seg", "vision_touch")


def modality_time_analysis(
    workloads: tuple[str, ...] = MODALITY_TIME_WORKLOADS,
    batch_size: int = 32,
    device: str = "2080ti",
    seed: int = 0,
    normalize: bool = True,
) -> dict[str, dict[str, float]]:
    """Per-modality encoder time — Figure 10.

    With ``normalize=True`` each workload's fastest modality is 1.0, which
    is how the paper plots it (Norm. Time).
    """
    profiler = MMBenchProfiler(device)
    out: dict[str, dict[str, float]] = {}
    for name in workloads:
        info = get_workload(name)
        model = info.build(seed=seed)
        batch = random_batch(info.shapes, batch_size, seed=seed)
        result = profiler.profile(model, batch)
        times = result.report.modality_time()
        if normalize and times:
            floor = min(times.values())
            times = {m: t / floor for m, t in times.items()}
        out[name] = times
    return out


@dataclass
class SyncShare:
    """CPU+Runtime vs GPU split for one implementation — one bar of Fig. 11."""

    workload: str
    variant: str  # "uni" or "multi"
    cpu_runtime_share: float
    gpu_share: float
    cpu_runtime_time: float
    gpu_time: float


def sync_share_analysis(
    workloads: tuple[str, ...] = SYNC_SHARE_WORKLOADS,
    batch_size: int = 32,
    device: str = "2080ti",
    seed: int = 0,
) -> list[SyncShare]:
    """CPU+Runtime/GPU proportions for uni- vs multi-modal — Figure 11.

    The uni-modal baseline uses each workload's heaviest (first image-like)
    modality, matching the paper's uni implementations.
    """
    profiler = MMBenchProfiler(device)
    rows: list[SyncShare] = []
    for name in workloads:
        info = get_workload(name)
        # Uni-modal: prefer an image-like modality (the paper's choice).
        uni_modality = next(
            (m for m in info.modalities if "image" in m or m in ("t1", "flair")),
            info.modalities[0],
        )
        for variant, model in (
            ("uni", info.build_unimodal(uni_modality, seed=seed)),
            ("multi", info.build(seed=seed)),
        ):
            shapes = model.shapes
            batch = random_batch(shapes, batch_size, seed=seed)
            result = profiler.profile(model, batch)
            share = result.report.cpu_runtime_share
            rows.append(SyncShare(
                workload=name, variant=variant,
                cpu_runtime_share=share, gpu_share=1.0 - share,
                cpu_runtime_time=result.report.host_time,
                gpu_time=result.report.gpu_time,
            ))
    return rows
