"""Training-step characterization over traced training executions.

Everything here consumes *traced* training steps — real forward, loss,
backward and optimizer kernels captured by
:func:`repro.profiling.training.trace_training_step` through the shared
trace store — and prices them with the vectorized execution engine. The
pre-traced 2x heuristic survives only as a cross-check
(:func:`traced_vs_synthetic`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.hw.device import DeviceSpec, get_device
from repro.hw.engine import ExecutionEngine, ExecutionReport
from repro.profiling.training import (
    synthetic_training_trace,
    traced_training_flops_ratio,
    traced_training_step,
    training_memory_factor,
)
from repro.trace.store import TraceStore, default_store
from repro.workloads.registry import list_workloads


@dataclass
class TrainingStepBreakdown:
    """One workload's priced training step on one device."""

    workload: str
    batch_size: int
    device: str
    optimizer: str
    total_time: float
    gpu_time: float
    host_time: float
    pass_time: dict[str, float]  # forward/loss/backward/optimizer -> seconds
    pass_stage_time: dict[str, dict[str, float]]  # pass -> stage -> seconds
    modality_pass_time: dict[str, dict[str, float]]  # modality -> pass -> seconds
    flops: float
    forward_flops: float
    flops_ratio: float  # full traced step over its forward pass
    memory_pressure: float
    report: ExecutionReport = field(repr=False)

    @property
    def steps_per_second(self) -> float:
        return 1.0 / self.total_time if self.total_time > 0 else 0.0

    @property
    def samples_per_second(self) -> float:
        return self.batch_size * self.steps_per_second

    def pass_share(self) -> dict[str, float]:
        """Each pass's fraction of device time (sums to ~1)."""
        total = sum(self.pass_time.values())
        if total <= 0:
            return {p: 0.0 for p in self.pass_time}
        return {p: t / total for p, t in self.pass_time.items()}


def _price_training(stored, device: DeviceSpec, optimizer: str) -> ExecutionReport:
    """Price a stored training trace (training-resident memory footprint)."""
    engine = ExecutionEngine(device)
    return engine.run(
        stored.trace,
        model_bytes=stored.parameter_bytes * training_memory_factor(optimizer),
        input_bytes=stored.input_bytes,
    )


def _breakdown(workload: str, stored, report: ExecutionReport,
               batch_size: int, optimizer: str) -> TrainingStepBreakdown:
    cols = stored.trace.columns()
    forward_flops = float(cols.flops[cols.kernel_indices_for_pass("forward")].sum())
    return TrainingStepBreakdown(
        workload=workload,
        batch_size=batch_size,
        device=report.device.name,
        optimizer=optimizer,
        total_time=report.total_time,
        gpu_time=report.gpu_time,
        host_time=report.host_time,
        pass_time=report.pass_time(),
        pass_stage_time=report.pass_stage_time(),
        modality_pass_time=report.pass_modality_time(),
        flops=stored.trace.total_flops,
        forward_flops=forward_flops,
        flops_ratio=(stored.trace.total_flops / forward_flops
                     if forward_flops > 0 else 0.0),
        memory_pressure=report.memory_pressure,
        report=report,
    )


def training_step_analysis(
    workloads: Sequence[str] | None = None,
    device: str | DeviceSpec = "2080ti",
    batch_size: int = 8,
    optimizer: str = "adam",
    fusion: str | None = None,
    unimodal: str | None = None,
    seed: int = 0,
    backend: str | None = "meta",
    store: TraceStore | None = None,
) -> dict[str, TrainingStepBreakdown]:
    """Per-stage / per-pass training-step breakdown for each workload.

    Traces come from the shared store's pass-aware training keys; pricing
    runs on the vectorized engine with the optimizer-state-aware memory
    footprint.
    """
    workloads = list(workloads) if workloads is not None else list_workloads()
    spec = get_device(device) if isinstance(device, str) else device
    store = store if store is not None else default_store()
    out: dict[str, TrainingStepBreakdown] = {}
    for workload in workloads:
        stored = traced_training_step(
            workload, fusion=fusion, unimodal=unimodal,
            batch_size=batch_size, seed=seed, backend=backend,
            optimizer=optimizer, store=store,
        )
        report = _price_training(stored, spec, optimizer)
        out[workload] = _breakdown(workload, stored, report, batch_size, optimizer)
    return out


def training_batch_sweep(
    workload: str,
    batches: Sequence[int] = (1, 8, 32, 128),
    devices: Sequence[str | DeviceSpec] = ("2080ti",),
    optimizer: str = "adam",
    seed: int = 0,
    backend: str | None = "meta",
    store: TraceStore | None = None,
) -> dict[tuple[int, str], TrainingStepBreakdown]:
    """Training-step pricing over a (batch x device) grid.

    Each batch's training trace is fetched from the store once and priced
    on *all* devices by a single broadcasted
    :meth:`~repro.hw.engine.ExecutionEngine.run_sweep` pass — the same
    one-pass shape the inference grids use.
    """
    store = store if store is not None else default_store()
    specs = [get_device(d) if isinstance(d, str) else d for d in devices]
    keys = [d if isinstance(d, str) else d.name for d in devices]
    factor = training_memory_factor(optimizer)
    out: dict[tuple[int, str], TrainingStepBreakdown] = {}
    for batch_size in batches:
        stored = traced_training_step(
            workload, batch_size=batch_size, seed=seed, backend=backend,
            optimizer=optimizer, store=store,
        )
        engine = ExecutionEngine(specs[0])
        reports = engine.run_sweep(
            stored.trace, specs,
            model_bytes=stored.parameter_bytes * factor,
            input_bytes=stored.input_bytes,
        )
        for key, report in zip(keys, reports):
            out[(int(batch_size), key)] = _breakdown(
                workload, stored, report, int(batch_size), optimizer)
    return out


@dataclass
class TrainingCrossCheck:
    """Traced vs synthetic training accounting for one workload."""

    workload: str
    traced_ratio: float  # traced full-step FLOPs / traced forward FLOPs
    synthetic_ratio: float  # heuristic full-step FLOPs / forward FLOPs
    traced_flops: float
    synthetic_flops: float

    @property
    def agreement(self) -> float:
        """Traced over synthetic FLOPs (1.0 = the heuristic was exact)."""
        return (self.traced_flops / self.synthetic_flops
                if self.synthetic_flops > 0 else 0.0)


def traced_vs_synthetic(
    workload: str,
    batch_size: int = 8,
    optimizer: str = "adam",
    seed: int = 0,
    backend: str | None = "meta",
    store: TraceStore | None = None,
) -> TrainingCrossCheck:
    """Differential between the traced step and the 2x heuristic."""
    store = store if store is not None else default_store()
    traced = traced_training_step(
        workload, batch_size=batch_size, seed=seed, backend=backend,
        optimizer=optimizer, store=store,
    )
    forward = store.get_or_capture(
        workload, batch_size=batch_size, seed=seed, backend=backend)
    synthetic = synthetic_training_trace(
        forward.trace, forward.parameter_bytes, optimizer)
    return TrainingCrossCheck(
        workload=workload,
        traced_ratio=traced_training_flops_ratio(traced.trace),
        synthetic_ratio=synthetic.total_flops / forward.trace.total_flops,
        traced_flops=traced.trace.total_flops,
        synthetic_flops=synthetic.total_flops,
    )
