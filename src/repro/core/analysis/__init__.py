"""The paper's characterization analyses, one module per figure group."""

from repro.core.analysis.batchsize import (
    BatchSizeResult,
    batch_size_study,
    peak_memory_study,
    speedup_factor,
)
from repro.core.analysis.concurrency import (
    ConcurrencyAnalysis,
    analytic_concurrency,
    analyze_concurrency,
    concurrency_study,
)
from repro.core.analysis.edge import (
    EDGE_SCALE,
    EdgeLatency,
    StallProfile,
    dominant_stalls,
    edge_latency_study,
    edge_resource_study,
    edge_stall_study,
    multimodal_ratio,
)
from repro.core.analysis.heterogeneity import (
    HotspotRecord,
    hotspot_across_fusions,
    hotspot_across_stages,
    kernel_breakdown_analysis,
)
from repro.core.analysis.modality import ExclusiveSets, exclusive_correct_analysis
from repro.core.analysis.performance import (
    PerformanceRow,
    best_by_kind,
    fusion_spread,
    performance_analysis,
)
from repro.core.analysis.robustness import RobustnessReport, robustness_analysis
from repro.core.analysis.serving import best_batch_for_slo, policy_study, serving_sweep
from repro.core.analysis.stage import stage_resource_analysis, stage_time_analysis
from repro.core.analysis.training import (
    TrainingCrossCheck,
    TrainingStepBreakdown,
    traced_vs_synthetic,
    training_batch_sweep,
    training_step_analysis,
)
from repro.core.analysis.synchronization import (
    SyncShare,
    modality_time_analysis,
    sync_share_analysis,
)

__all__ = [
    "ConcurrencyAnalysis", "analytic_concurrency", "analyze_concurrency",
    "concurrency_study",
    "RobustnessReport", "robustness_analysis",
    "best_batch_for_slo", "policy_study", "serving_sweep",
    "BatchSizeResult", "batch_size_study", "peak_memory_study", "speedup_factor",
    "EDGE_SCALE", "EdgeLatency", "StallProfile", "dominant_stalls",
    "edge_latency_study", "edge_resource_study", "edge_stall_study", "multimodal_ratio",
    "HotspotRecord", "hotspot_across_fusions", "hotspot_across_stages",
    "kernel_breakdown_analysis",
    "ExclusiveSets", "exclusive_correct_analysis",
    "PerformanceRow", "best_by_kind", "fusion_spread", "performance_analysis",
    "stage_resource_analysis", "stage_time_analysis",
    "SyncShare", "modality_time_analysis", "sync_share_analysis",
    "TrainingCrossCheck", "TrainingStepBreakdown", "traced_vs_synthetic",
    "training_batch_sweep", "training_step_analysis",
]
