"""Figure 4: multi-modal vs uni-modal application performance.

Trains every requested workload's uni-modal baselines and multi-modal
fusion variants on latent-factor datasets and reports the headline metric
per variant. The paper's observations to reproduce:

* multi-modal DNNs outperform the best uni-modal baseline, and
* different fusion schemes yield materially different results (several
  points of absolute metric — e.g. MuJoCo Push late-fusion-LSTM MSE < 0.3
  vs tensor-fusion 0.58), with some fusions underperforming uni-modal.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.train import train_model
from repro.data.generators import LatentMultimodalDataset
from repro.workloads.registry import get_workload


@dataclass(frozen=True)
class PerformanceRow:
    """One bar of Figure 4."""

    workload: str
    variant: str  # modality name (uni-modal) or fusion name (multi-modal)
    is_multimodal: bool
    metric_name: str
    value: float
    higher_is_better: bool


def performance_analysis(
    workloads: list[str] | None = None,
    fusions_per_workload: int = 2,
    n_train: int = 384,
    n_test: int = 256,
    epochs: int = 6,
    seed: int = 0,
) -> list[PerformanceRow]:
    """Train uni-modal and multi-modal variants; one row per bar of Fig. 4."""
    names = workloads or ["avmnist", "mmimdb", "mujoco_push"]
    rows: list[PerformanceRow] = []
    for name in names:
        info = get_workload(name)
        dataset = LatentMultimodalDataset(info.shapes, info.default_channels(), seed=seed + 17)

        for modality in info.modalities:
            result = train_model(
                info.build_unimodal(modality, seed=seed), dataset,
                n_train=n_train, n_test=n_test, epochs=epochs, seed=seed,
            )
            rows.append(PerformanceRow(
                workload=name, variant=modality, is_multimodal=False,
                metric_name=info.metric, value=result.metric,
                higher_is_better=result.higher_is_better,
            ))

        for fusion in info.fusions[:fusions_per_workload]:
            result = train_model(
                info.build(fusion, seed=seed), dataset,
                n_train=n_train, n_test=n_test, epochs=epochs, seed=seed,
            )
            rows.append(PerformanceRow(
                workload=name, variant=fusion, is_multimodal=True,
                metric_name=info.metric, value=result.metric,
                higher_is_better=result.higher_is_better,
            ))
    return rows


def best_by_kind(rows: list[PerformanceRow], workload: str) -> dict[str, PerformanceRow]:
    """Best uni-modal and best multi-modal row for one workload."""
    mine = [r for r in rows if r.workload == workload]
    if not mine:
        raise KeyError(f"no rows for workload {workload!r}")

    def best(candidates: list[PerformanceRow]) -> PerformanceRow:
        key = (lambda r: r.value) if candidates[0].higher_is_better else (lambda r: -r.value)
        return max(candidates, key=key)

    uni = [r for r in mine if not r.is_multimodal]
    multi = [r for r in mine if r.is_multimodal]
    out = {}
    if uni:
        out["unimodal"] = best(uni)
    if multi:
        out["multimodal"] = best(multi)
    return out


def fusion_spread(rows: list[PerformanceRow], workload: str) -> float:
    """Max absolute metric difference across fusion variants (Sec. 4.2.2)."""
    values = [r.value for r in rows if r.workload == workload and r.is_multimodal]
    if len(values) < 2:
        return 0.0
    return max(values) - min(values)
