"""``mmbench`` command-line interface.

Mirrors the paper's usage model (Fig. 2: model choice and measurement
options as command-line parameters)::

    mmbench list
    mmbench run --workload avmnist --fusion tensor --batch-size 40
    mmbench run --workload mmimdb --unimodal image --device nano
    mmbench run --workload transfuser --backend eager   # dense numpy capture
    mmbench analyze stage-time --device 2080ti
    mmbench analyze batch-size --cache-dir ~/.cache/mmbench
    mmbench serve --workload avmnist --arrival-rate 100 --policy adaptive
    mmbench serve --mix heavy-head --arrival-rate 2000 --devices 2080ti,orin,nano

Trace-capturing subcommands accept ``--backend {eager,meta}`` (meta — the
default — propagates shapes analytically and emits an event-for-event
identical trace) and ``--cache-dir DIR`` (content-addressed on-disk trace
cache, shared across runs); each prints a trace-store cache-stats line.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.suite import BenchmarkSuite, RunConfig
from repro.profiling.report import format_table
from repro.workloads.registry import WORKLOADS, list_workloads


def _configure_store(args):
    """Honor ``--cache-dir`` by re-pointing the process-wide trace store."""
    from repro.trace.store import configure_default_store, default_store

    if getattr(args, "cache_dir", None):
        return configure_default_store(args.cache_dir)
    return default_store()


def _print_store_stats() -> None:
    from repro.trace.store import default_store

    print(default_store().stats_line())


def _validate_common(args) -> None:
    """Fail fast, with one clean line, on anything the user typed wrong."""
    from repro.hw.device import get_device
    from repro.workloads.registry import get_workload

    if hasattr(args, "device"):
        get_device(args.device)  # KeyError with the available names on typo
    info = get_workload(args.workload) if hasattr(args, "workload") else None
    if info is not None and getattr(args, "fusion", None) is not None:
        if args.fusion not in info.fusions:
            raise KeyError(f"unknown fusion {args.fusion!r} for {args.workload}; "
                           f"available: {sorted(info.fusions)}")
    if info is not None and getattr(args, "unimodal", None) is not None:
        if args.unimodal not in info.modalities:
            raise KeyError(f"unknown modality {args.unimodal!r} for {args.workload}; "
                           f"available: {list(info.modalities)}")
    if getattr(args, "batch_size", 1) <= 0:
        raise ValueError(f"--batch-size must be positive, got {args.batch_size}")
    if getattr(args, "seed", 0) < 0:
        raise ValueError(f"--seed must be non-negative, got {args.seed}")


def _cmd_list(_args) -> int:
    rows = []
    for name in list_workloads():
        info = WORKLOADS[name]
        rows.append([
            name, info.domain, info.model_size,
            ",".join(info.modalities), ",".join(info.fusions), info.task_kind,
        ])
    print(format_table(
        ["workload", "domain", "size", "modalities", "fusions", "task"], rows,
        title="MMBench workloads (Table 3)",
    ))
    return 0


def _cmd_run(args) -> int:
    try:
        _validate_common(args)
    except (KeyError, ValueError) as exc:
        print(exc.args[0] if exc.args else str(exc), file=sys.stderr)
        return 2
    _configure_store(args)
    config = RunConfig(
        workload=args.workload,
        fusion=args.fusion,
        unimodal=args.unimodal,
        batch_size=args.batch_size,
        device=args.device,
        seed=args.seed,
        backend=args.backend,
    )
    suite = BenchmarkSuite(args.device)
    result = suite.run_inference(config)
    print(suite.summarize(result))
    _print_store_stats()
    return 0


def _cmd_report(args) -> int:
    try:
        _validate_common(args)
    except (KeyError, ValueError) as exc:
        print(exc.args[0] if exc.args else str(exc), file=sys.stderr)
        return 2
    _configure_store(args)
    from repro.core.report import characterization_report

    text = characterization_report(args.workload, fusion=args.fusion,
                                   batch_size=args.batch_size,
                                   backend=args.backend)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    _print_store_stats()
    return 0


def _parse_devices(spec: str) -> tuple[str, ...]:
    """Split a ``--devices`` list, rejecting empty components up front."""
    devices = tuple(d.strip() for d in spec.split(","))
    if not spec.strip() or any(not d for d in devices):
        raise ValueError(f"--devices must be a comma-separated list of device "
                         f"names, got {spec!r}")
    return devices


def _build_fault_inputs(args, devices):
    """Resolve the serve fault flags into a validated ``(plan, retry)`` pair.

    Raises :class:`~repro.serving.faults.FaultPlanError` (a ``ValueError``)
    on any malformed input, so the serve commands' up-front validation
    turns it into a clean exit-2 line instead of a traceback mid-run.
    """
    import os

    from repro.serving import (RetryPolicy, chaos_plan, load_fault_plan,
                               validate_fault_plan)
    from repro.serving.faults import CHAOS_SCENARIO_NAMES, FaultPlanError

    if args.retry_max < 0:
        raise ValueError(f"--retry-max must be non-negative, got {args.retry_max}")
    if args.retry_backoff <= 0:
        raise ValueError(f"--retry-backoff must be positive, "
                         f"got {args.retry_backoff}")
    if args.request_deadline is not None and args.request_deadline <= 0:
        raise ValueError(f"--request-deadline must be positive, "
                         f"got {args.request_deadline}")
    plan = None
    if args.faults is not None:
        if args.faults in CHAOS_SCENARIO_NAMES:
            if args.arrival_rate is None:
                raise ValueError(
                    f"--faults {args.faults} needs --arrival-rate to size its "
                    "horizon (n_requests / rate)")
            horizon = args.n_requests / args.arrival_rate
            plan = chaos_plan(args.faults, devices, horizon, seed=args.seed)
        elif os.path.exists(args.faults):
            plan = load_fault_plan(args.faults)
        else:
            raise FaultPlanError(
                f"--faults must name a chaos scenario "
                f"({', '.join(CHAOS_SCENARIO_NAMES)}) or an existing plan "
                f"JSON file, got {args.faults!r}")
        validate_fault_plan(plan, devices)
    retry = None
    if plan is not None or args.request_deadline is not None:
        retry = RetryPolicy(max_retries=args.retry_max,
                            backoff_base=args.retry_backoff,
                            deadline=args.request_deadline)
    return plan, retry


def _cmd_serve(args) -> int:
    from repro.serving import ProfiledCostModel, make_policy, make_router, simulate
    from repro.serving.report import serving_summary

    from repro.hw.device import get_device
    from repro.workloads.registry import get_workload

    if args.fleet:
        return _cmd_serve_fleet(args)
    if args.mix is not None:
        return _cmd_serve_mix(args)
    args.workload = args.workload or "avmnist"

    # Validate everything user-typed up front: typos get one clean line and
    # exit 2, while errors raised later inside the simulation stay loud.
    try:
        if args.workloads is not None:
            raise ValueError("--workloads only applies with --mix; for one "
                             "workload use --workload")
        if args.degrade_after is not None:
            raise ValueError("--degrade-after applies to --mix runs "
                             "(degraded modes are per-tenant)")
        policies = {
            name: make_policy(name, batch_size=args.batch_size,
                              timeout=args.timeout, slo=args.slo,
                              max_batch=args.max_batch)
            for name in args.policy.split(",")
        }
        devices = _parse_devices(args.devices)
        for device in devices:
            get_device(device)
        info = get_workload(args.workload)
        if args.fusion is not None and args.fusion not in info.fusions:
            raise KeyError(f"unknown fusion {args.fusion!r} for {args.workload}; "
                           f"available: {sorted(info.fusions)}")
        if args.n_requests <= 0:
            raise ValueError(f"--n-requests must be positive, got {args.n_requests}")
        if args.arrival_rate is not None and args.arrival_rate <= 0:
            raise ValueError("--arrival-rate must be positive")
        if args.seed < 0:
            raise ValueError(f"--seed must be non-negative, got {args.seed}")
        fault_plan, retry = _build_fault_inputs(args, devices)
    except (KeyError, ValueError) as exc:
        print(exc.args[0] if exc.args else str(exc), file=sys.stderr)
        return 2

    _configure_store(args)
    cost = ProfiledCostModel(args.workload, args.fusion, seed=args.seed,
                             backend=args.backend)
    # A fresh router per run: routers are stateful (round-robin rotation)
    # and each policy must see identical starting conditions.
    reports = {
        policy.name: simulate(
            cost, policy, devices=devices, n_requests=args.n_requests,
            arrival_rate=args.arrival_rate, router=make_router(args.router),
            seed=args.seed, faults=fault_plan, retry=retry,
        )
        for policy in policies.values()
    }
    print(f"workload={args.workload} fusion={args.fusion or 'default'} "
          f"devices={','.join(devices)}")
    print(serving_summary(reports, slo=args.slo))
    _print_store_stats()
    return 0


def _cmd_serve_mix(args) -> int:
    """The ``mmbench serve --mix`` path: a multi-tenant workload mix."""
    from repro.serving import (
        get_scenario,
        make_finetune_jobs,
        make_policy,
        make_router,
        make_tenants,
        mixed_serving_summary,
        simulate_mixed,
    )

    from repro.hw.device import get_device
    from repro.workloads.registry import get_workload

    try:
        if args.workload is not None or args.fusion is not None:
            raise ValueError("--workload/--fusion don't apply to --mix; "
                             "name the tenants with --workloads instead")
        get_scenario(args.mix)
        policy_names = args.policy.split(",")

        def policy_factory(name):
            return lambda _workload: make_policy(
                name, batch_size=args.batch_size, timeout=args.timeout,
                slo=args.slo, max_batch=args.max_batch)

        for name in policy_names:  # validate every policy name up front
            policy_factory(name)("probe")
        workloads = tuple((args.workloads or ",".join(list_workloads())).split(","))
        if len(set(workloads)) != len(workloads):
            raise ValueError(f"duplicate workloads in --workloads: "
                             f"{','.join(workloads)}")
        for workload in workloads:
            get_workload(workload)
        devices = _parse_devices(args.devices)
        for device in devices:
            get_device(device)
        if args.n_requests <= 0:
            raise ValueError(f"--n-requests must be positive, got {args.n_requests}")
        if args.arrival_rate is not None and args.arrival_rate <= 0:
            raise ValueError("--arrival-rate must be positive")
        if get_scenario(args.mix).needs_rate and args.arrival_rate is None:
            raise ValueError(f"--mix {args.mix} needs --arrival-rate "
                             "(its traffic shape is time-varying)")
        if args.slo <= 0:
            raise ValueError(f"--slo must be positive, got {args.slo}")
        if args.seed < 0:
            raise ValueError(f"--seed must be non-negative, got {args.seed}")
        if not 0.0 < args.finetune_share < 1.0:
            raise ValueError(f"--finetune-share must be in (0, 1), got "
                             f"{args.finetune_share}")
        finetune_workloads = ()
        if args.mix == "finetune" or args.finetune_workloads is not None:
            # Background training jobs: the named workloads (default: the
            # first tenant) fine-tune behind the inference traffic.
            finetune_workloads = tuple(
                (args.finetune_workloads or workloads[0]).split(","))
            if len(set(finetune_workloads)) != len(finetune_workloads):
                raise ValueError(f"duplicate workloads in --finetune-workloads: "
                                 f"{','.join(finetune_workloads)}")
            for workload in finetune_workloads:
                get_workload(workload)
        fault_plan, retry = _build_fault_inputs(args, devices)
        if args.degrade_after is not None and args.degrade_after <= 0:
            raise ValueError(f"--degrade-after must be positive, "
                             f"got {args.degrade_after}")
        # Fault runs degrade by default: sustained pressure past 4x the SLO
        # flips multi-modal tenants to their shed-encoder serving mode.
        degrade_after = args.degrade_after
        if degrade_after is None and fault_plan is not None:
            degrade_after = 4.0 * args.slo
    except (KeyError, ValueError) as exc:
        print(exc.args[0] if exc.args else str(exc), file=sys.stderr)
        return 2

    _configure_store(args)
    finetune = make_finetune_jobs(
        finetune_workloads, share=args.finetune_share,
        seed=args.seed, backend=args.backend or "meta",
    ) if finetune_workloads else None
    # Like the single-workload path, run every listed policy against the
    # identical scenario stream (same seed) and report each; a fresh
    # router and fresh per-tenant policy instances per run.
    for name in policy_names:
        tenants = make_tenants(workloads, policy_factory=policy_factory(name),
                               slo=args.slo, seed=args.seed,
                               backend=args.backend)
        if degrade_after is not None:
            from repro.serving import degraded_mode_for

            for spec in tenants:
                # Single-modality tenants have no encoder to shed.
                if len(get_workload(spec.name).modalities) > 1:
                    spec.degraded = degraded_mode_for(
                        spec.name, enter_wait=degrade_after,
                        seed=args.seed, backend=args.backend or "meta")
        report = simulate_mixed(
            tenants, devices=devices, n_requests=args.n_requests,
            arrival_rate=args.arrival_rate, scenario=args.mix,
            router=make_router(args.router), finetune=finetune, seed=args.seed,
            faults=fault_plan, retry=retry,
        )
        print(f"mix={args.mix} policy={name} "
              f"workloads={','.join(workloads)} devices={','.join(devices)}")
        print(mixed_serving_summary(report))
        print()
    _print_store_stats()
    return 0


def _cmd_serve_fleet(args) -> int:
    """The ``mmbench serve --fleet`` path: device groups + autoscaling."""
    import os

    from repro.serving import (
        chaos_plan,
        fleet_summary,
        get_scenario,
        load_fault_plan,
        make_policy,
        make_tenants,
        parse_autoscale,
        parse_groups,
        simulate_fleet,
    )
    from repro.serving.faults import CHAOS_SCENARIO_NAMES
    from repro.workloads.registry import get_workload

    from repro.hw.device import get_device

    scenario = args.mix or "uniform"
    try:
        if args.workload is not None or args.fusion is not None:
            raise ValueError("--workload/--fusion don't apply to --fleet; "
                             "name the tenants with --workloads instead")
        if args.groups is None:
            raise ValueError("--fleet needs --groups DEV:REPLICAS[:POOL],...")
        if args.router not in ("earliest-finish", "eft"):
            raise ValueError("--fleet routes per group with earliest-finish "
                             f"placement; --router {args.router} is a "
                             "per-slot router")
        if args.finetune_workloads is not None:
            raise ValueError("--finetune-workloads doesn't apply to --fleet")
        if args.request_deadline is not None or args.degrade_after is not None:
            raise ValueError("--request-deadline/--degrade-after are classic-"
                             "simulator features; the fleet loop never sheds")
        get_scenario(scenario)
        policy_names = args.policy.split(",")

        def policy_factory(name):
            return lambda _workload: make_policy(
                name, batch_size=args.batch_size, timeout=args.timeout,
                slo=args.slo, max_batch=args.max_batch)

        for name in policy_names:  # validate every policy name up front
            policy_factory(name)("probe")
        workloads = tuple((args.workloads or ",".join(list_workloads())).split(","))
        if len(set(workloads)) != len(workloads):
            raise ValueError(f"duplicate workloads in --workloads: "
                             f"{','.join(workloads)}")
        for workload in workloads:
            get_workload(workload)
        groups = parse_groups(args.groups)
        for group in groups:
            get_device(group.device)
        if args.n_requests <= 0:
            raise ValueError(f"--n-requests must be positive, got {args.n_requests}")
        if args.arrival_rate is not None and args.arrival_rate <= 0:
            raise ValueError("--arrival-rate must be positive")
        if get_scenario(scenario).needs_rate and args.arrival_rate is None:
            raise ValueError(f"--mix {scenario} needs --arrival-rate "
                             "(its traffic shape is time-varying)")
        if args.slo <= 0:
            raise ValueError(f"--slo must be positive, got {args.slo}")
        if args.seed < 0:
            raise ValueError(f"--seed must be non-negative, got {args.seed}")
        if args.hop_bytes < 0:
            raise ValueError(f"--hop-bytes must be non-negative, "
                             f"got {args.hop_bytes}")
        autoscale = None
        if args.autoscale is not None:
            autoscale = parse_autoscale(args.autoscale,
                                        min_replicas=args.autoscale_min,
                                        max_replicas=args.autoscale_max)
        group_names = tuple(g.device for g in groups)
        plan = None
        if args.faults is not None:
            if args.faults in CHAOS_SCENARIO_NAMES:
                if args.arrival_rate is None:
                    raise ValueError(
                        f"--faults {args.faults} needs --arrival-rate to size "
                        "its horizon (n_requests / rate)")
                horizon = args.n_requests / args.arrival_rate
                plan = chaos_plan(args.faults, group_names, horizon,
                                  seed=args.seed)
            elif os.path.exists(args.faults):
                plan = load_fault_plan(args.faults)
            else:
                raise ValueError(
                    f"--faults must name a chaos scenario "
                    f"({', '.join(CHAOS_SCENARIO_NAMES)}) or an existing plan "
                    f"JSON file, got {args.faults!r}")
            # Validate at group granularity up front: unknown groups and
            # slot-level stall events get one clean line, not a traceback.
            resolved = plan.resolve(list(group_names),
                                    {g: g for g in group_names})
            if any(kind == "stall" for _, _, kind, _, _ in resolved):
                raise ValueError(
                    f"--faults {args.faults} contains transient stalls, "
                    "which are slot-level events the fleet loop rejects; "
                    "pick a stall-free scenario (e.g. single-failure, "
                    "thermal-brownout) or run without --fleet")
        from repro.lint import check, lint_fleet

        check(lint_fleet(groups, autoscale=autoscale, faults=plan,
                         source="mmbench serve --fleet"),
              what="fleet configuration")
    except (KeyError, ValueError) as exc:
        print(exc.args[0] if exc.args else str(exc), file=sys.stderr)
        return 2

    _configure_store(args)
    for name in policy_names:
        tenants = make_tenants(workloads, policy_factory=policy_factory(name),
                               slo=args.slo, seed=args.seed,
                               backend=args.backend)
        report = simulate_fleet(
            tenants, groups, n_requests=args.n_requests,
            arrival_rate=args.arrival_rate, scenario=scenario,
            autoscale=autoscale, faults=plan, hop_bytes=args.hop_bytes,
            seed=args.seed,
        )
        print(f"fleet mix={scenario} policy={name} "
              f"workloads={','.join(workloads)} groups={args.groups}")
        print(fleet_summary(report))
        print()
    _print_store_stats()
    return 0


def _cmd_train_analyze(args) -> int:
    """Per-pass / per-stage breakdown of traced training steps."""
    try:
        from repro.hw.device import get_device
        from repro.nn.optim import OPTIMIZERS

        if args.optimizer not in OPTIMIZERS:
            raise KeyError(f"unknown optimizer {args.optimizer!r}; "
                           f"available: {sorted(OPTIMIZERS)}")
        workloads = (args.workloads.split(",") if args.workloads
                     else [args.workload])
        for workload in workloads:
            args.workload = workload
            _validate_common(args)
        if args.sweep is not None and len(workloads) != 1:
            raise ValueError("--sweep takes exactly one workload")
        sweep_batches = None
        if args.sweep is not None:
            try:
                sweep_batches = tuple(int(b) for b in args.sweep.split(","))
            except ValueError:
                raise ValueError(f"--sweep must be comma-separated ints, "
                                 f"got {args.sweep!r}") from None
            if any(b <= 0 for b in sweep_batches):
                raise ValueError(f"--sweep batch sizes must be positive, "
                                 f"got {args.sweep!r}")
            for device in _parse_devices(args.devices):
                get_device(device)
    except (KeyError, ValueError) as exc:
        print(exc.args[0] if exc.args else str(exc), file=sys.stderr)
        return 2
    _configure_store(args)
    from repro.core.analysis.training import (
        traced_vs_synthetic,
        training_batch_sweep,
        training_step_analysis,
    )

    if sweep_batches is not None:
        devices = tuple(args.devices.split(","))
        grid = training_batch_sweep(
            workloads[0], batches=sweep_batches, devices=devices,
            optimizer=args.optimizer, seed=args.seed, backend=args.backend)
        rows = [[b, dev, f"{cell.total_time * 1e3:.3f} ms",
                 f"{cell.samples_per_second:,.0f}/s",
                 f"{cell.pass_share().get('backward', 0.0):.0%}",
                 f"{cell.memory_pressure:.2f}"]
                for (b, dev), cell in grid.items()]
        print(format_table(
            ["batch", "device", "step time", "samples", "bwd share", "mem pressure"],
            rows, title=f"Training batch-size sweep: {workloads[0]} ({args.optimizer})"))
        _print_store_stats()
        return 0

    data = training_step_analysis(
        workloads=workloads, device=args.device, batch_size=args.batch_size,
        optimizer=args.optimizer, seed=args.seed, backend=args.backend)
    rows = []
    for workload, b in data.items():
        share = b.pass_share()
        rows.append([
            workload, f"{b.total_time * 1e3:.3f} ms",
            f"{share.get('forward', 0.0):.0%}", f"{share.get('loss', 0.0):.0%}",
            f"{share.get('backward', 0.0):.0%}",
            f"{share.get('optimizer', 0.0):.0%}", f"{b.flops_ratio:.2f}x",
        ])
    print(format_table(
        ["workload", "step time", "fwd", "loss", "bwd", "opt", "flops vs fwd"],
        rows, title=f"Traced training step ({args.optimizer}, "
                    f"batch {args.batch_size}, {args.device})"))
    for workload, b in data.items():
        stages = b.pass_stage_time
        stage_rows = [[pass_name] +
                      [f"{stages[pass_name].get(s, 0.0) * 1e3:.3f} ms"
                       for s in ("encoder", "fusion", "head", "optimizer")]
                      for pass_name in stages]
        print(format_table(
            ["pass", "encoder", "fusion", "head", "optimizer"], stage_rows,
            title=f"{workload}: per-stage time by pass"))
    if args.cross_check:
        rows = []
        for workload in workloads:
            check = traced_vs_synthetic(
                workload, batch_size=args.batch_size, optimizer=args.optimizer,
                seed=args.seed, backend=args.backend)
            rows.append([workload, f"{check.traced_ratio:.2f}x",
                         f"{check.synthetic_ratio:.2f}x", f"{check.agreement:.2f}"])
        print(format_table(
            ["workload", "traced ratio", "synthetic ratio", "traced/synthetic"],
            rows, title="Traced vs synthetic (2x-heuristic) cross-check"))
    _print_store_stats()
    return 0


def _cmd_analyze(args) -> int:
    try:
        _validate_common(args)
    except (KeyError, ValueError) as exc:
        print(exc.args[0] if exc.args else str(exc), file=sys.stderr)
        return 2
    _configure_store(args)
    from repro.core import analysis

    name = args.analysis
    if name == "stage-time":
        data = analysis.stage_time_analysis(device=args.device, backend=args.backend)
        rows = [[w] + [f"{t * 1e3:.3f} ms" for t in stages.values()]
                for w, stages in data.items()]
        print(format_table(["workload", "encoder", "fusion", "head"], rows,
                           title="Figure 6: per-stage execution time"))
    elif name == "kernel-breakdown":
        data = analysis.kernel_breakdown_analysis(device=args.device,
                                                  backend=args.backend)
        rows = []
        for workload, stages in data.items():
            for stage, cats in stages.items():
                top = max(cats, key=cats.get)
                rows.append([workload, stage, top, f"{cats[top]:.0%}"])
        print(format_table(["workload", "stage", "dominant kernel", "share"], rows,
                           title="Figure 8: dominant kernel category per stage"))
    elif name == "batch-size":
        results = analysis.batch_size_study(device=args.device, backend=args.backend)
        rows = [[r.variant, r.batch_size, f"{r.gpu_time_total:.3f} s",
                 f"{r.inference_time_total:.3f} s",
                 f"{r.kernel_size_distribution['>100']:.0%} large kernels"]
                for r in results]
        print(format_table(["variant", "batch", "GPU time", "inference time", "kernel mix"],
                           rows, title="Figure 12: batch size case study (10k tasks)"))
    elif name == "edge":
        results = analysis.edge_latency_study(backend=args.backend)
        rows = [[r.device, r.variant, r.batch_size, f"{r.inference_time:.2f} s",
                 f"{r.memory_pressure:.2f}"] for r in results]
        print(format_table(["device", "variant", "batch", "inference time", "mem pressure"],
                           rows, title="Figure 14: edge migration"))
    else:
        print(f"unknown analysis {name!r}", file=sys.stderr)
        return 2
    _print_store_stats()
    return 0


def _cmd_export(args) -> int:
    """Serialize a built-in workload's trace to execution-graph JSON."""
    try:
        _validate_common(args)
        if args.training:
            from repro.nn.optim import OPTIMIZERS

            if args.optimizer not in OPTIMIZERS:
                raise KeyError(f"unknown optimizer {args.optimizer!r}; "
                               f"available: {sorted(OPTIMIZERS)}")
    except (KeyError, ValueError) as exc:
        print(exc.args[0] if exc.args else str(exc), file=sys.stderr)
        return 2
    store = _configure_store(args)
    from repro.export.graph import stored_to_graph, write_graph

    if args.training:
        stored = store.get_or_capture_training(
            args.workload, fusion=args.fusion, unimodal=args.unimodal,
            batch_size=args.batch_size, seed=args.seed, backend=args.backend,
            optimizer=args.optimizer)
    else:
        stored = store.get_or_capture(
            args.workload, fusion=args.fusion, unimodal=args.unimodal,
            batch_size=args.batch_size, seed=args.seed, backend=args.backend)
    graph = stored_to_graph(stored, batch_size=args.batch_size)
    path = write_graph(graph, args.output)
    print(f"wrote {path} ({len(graph['nodes'])} nodes, "
          f"batch {args.batch_size}, {stored.model_name})")
    _print_store_stats()
    return 0


def _cmd_ingest(args) -> int:
    """Price an external execution-graph JSON end-to-end."""
    from repro.hw.device import get_device
    from repro.trace.ingest import IngestError, OpMappingRegistry

    try:
        get_device(args.device)
        devices = _parse_devices(args.devices) if args.devices else (args.device,)
        for device in devices:
            get_device(device)
        sweep_batches = None
        if args.sweep is not None:
            try:
                sweep_batches = tuple(int(b) for b in args.sweep.split(","))
            except ValueError:
                raise ValueError(f"--sweep must be comma-separated ints, "
                                 f"got {args.sweep!r}") from None
            if any(b <= 0 for b in sweep_batches):
                raise ValueError(f"--sweep batch sizes must be positive, "
                                 f"got {args.sweep!r}")
        if args.batch_size is not None and args.batch_size <= 0:
            raise ValueError(f"--batch-size must be positive, got {args.batch_size}")
        if args.n_requests <= 0:
            raise ValueError(f"--n-requests must be positive, got {args.n_requests}")
        if args.arrival_rate is not None and args.arrival_rate <= 0:
            raise ValueError("--arrival-rate must be positive")
        if args.seed < 0:
            raise ValueError(f"--seed must be non-negative, got {args.seed}")
        registry = None
        if args.op_map:
            import json as _json

            try:
                with open(args.op_map) as fh:
                    mapping = _json.load(fh)
            except (OSError, ValueError) as exc:
                raise ValueError(f"cannot read --op-map {args.op_map}: {exc}") from None
            if not isinstance(mapping, dict):
                raise ValueError("--op-map must be a JSON object of "
                                 "{pattern: category}")
            registry = OpMappingRegistry.from_mapping(mapping)
    except (KeyError, ValueError) as exc:
        print(exc.args[0] if exc.args else str(exc), file=sys.stderr)
        return 2

    store = _configure_store(args)
    from repro.profiling.profiler import MMBenchProfiler
    from repro.trace.ingest import IngestReport

    try:
        stored = store.get_or_ingest(args.graph, registry=registry)
    except IngestError as exc:
        print(f"ingest failed: {exc}", file=sys.stderr)
        return 2

    # Provenance rides in StoredTrace.extra so warm store hits still
    # surface the unknown-op fraction.
    report = IngestReport.from_dict(stored.extra["ingest"])
    base_batch = int(stored.extra.get("batch_size", 1))
    for line in report.summary_lines():
        print(line)

    batch_size = args.batch_size or base_batch
    profiler = MMBenchProfiler(args.device)

    if args.report or not (args.sweep or args.serve):
        from repro.profiling.report import profile_summary

        result = profiler.profile_stored(stored, batch_size)
        print()
        print(profile_summary(result))

    if sweep_batches is not None:
        from repro.hw.engine import ExecutionEngine
        from repro.trace.timeline import scale_trace

        specs = [get_device(d) for d in devices]
        rows = []
        for b in sweep_batches:
            factor = b / base_batch
            trace = (stored.trace if factor == 1.0
                     else scale_trace(stored.trace, factor))
            engine = ExecutionEngine(specs[0])
            reports = engine.run_sweep(
                trace, specs,
                model_bytes=stored.parameter_bytes,
                input_bytes=stored.input_bytes * factor,
            )
            for device, priced in zip(devices, reports):
                rows.append([b, device, f"{priced.total_time * 1e3:.3f} ms",
                             f"{b / priced.total_time:,.0f}/s",
                             f"{priced.memory_pressure:.2f}"])
        print()
        print(format_table(
            ["batch", "device", "latency", "throughput", "mem pressure"], rows,
            title=f"Ingested batch sweep: {stored.model_name}"))

    if args.serve:
        from repro.serving import TraceCostModel, make_policy, make_router, simulate
        from repro.serving.report import serving_summary

        cost = TraceCostModel(stored, base_batch_size=base_batch)
        policy = make_policy(args.policy, batch_size=batch_size, slo=args.slo)
        serve_report = simulate(
            cost, policy, devices=devices, n_requests=args.n_requests,
            arrival_rate=args.arrival_rate, router=make_router(args.router),
            seed=args.seed,
        )
        print()
        print(f"serving {stored.model_name} devices={','.join(devices)}")
        print(serving_summary({policy.name: serve_report}, slo=args.slo))

    _print_store_stats()
    return 0


def _finish_lint(report, args) -> int:
    """Shared tail of `mmbench lint` and `mmbench store lint`: baseline,
    rendering, exit code."""
    from repro.lint import load_baseline, write_baseline

    if getattr(args, "write_baseline", None):
        count = write_baseline(args.write_baseline, report)
        print(f"wrote {count} suppression(s) to {args.write_baseline}",
              file=sys.stderr)
    if getattr(args, "baseline", None):
        report = report.apply_baseline(load_baseline(args.baseline))
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.render())
    return report.exit_code(strict=args.strict)


def _cmd_lint(args) -> int:
    """Statically analyze traces, graphs, fault plans and store entries."""
    import os

    from repro.lint import LintReport, lint_path, lint_trace

    store = _configure_store(args)
    options = {"unknown_threshold": args.unknown_threshold}
    merged = LintReport()
    for target in args.targets:
        if Path(target).exists():
            try:
                merged.extend(lint_path(target, **options))
            except (ValueError, KeyError) as exc:
                print(f"lint: {target}: {exc}", file=sys.stderr)
                return 2
            continue
        if target in WORKLOADS:
            stored = store.get_or_capture(
                target, batch_size=args.batch_size, backend=args.backend)
            merged.extend(lint_trace(stored, source=f"workload:{target}",
                                     **options))
            continue
        # Neither a file nor a workload: try a store digest prefix.
        cache_dir = args.cache_dir or os.environ.get("MMBENCH_CACHE_DIR")
        try:
            stored = store.load_digest(target)
        except KeyError as exc:
            hint = ("" if cache_dir
                    else " (store keys need --cache-dir or $MMBENCH_CACHE_DIR)")
            print(f"lint: {target}: not a file, workload or store key: "
                  f"{exc.args[0]}{hint}", file=sys.stderr)
            return 2
        merged.extend(lint_trace(stored, source=f"store:{target}", **options))
    return _finish_lint(merged, args)


def _cmd_store(args) -> int:
    """Corpus operations on the on-disk trace store (schema v5 binary tier)."""
    import os

    from repro.trace.store import TraceStore

    cache_dir = args.cache_dir or os.environ.get("MMBENCH_CACHE_DIR")
    if not cache_dir:
        print("mmbench store needs --cache-dir (or $MMBENCH_CACHE_DIR)",
              file=sys.stderr)
        return 2
    store = TraceStore(cache_dir)

    if args.action == "ls":
        rows = []
        for info in store.entries():
            key = info["key"] or {}
            what = (key.get("workload", "?") if info["status"] == "ok" else "?")
            mode = key.get("mode", "?")
            if isinstance(mode, str) and mode.startswith("ingest:"):
                mode = "ingest"
            rows.append([
                info["digest"][:12], info["format"],
                info["schema"] if info["schema"] is not None else "-",
                what, mode, key.get("batch_size", "-"),
                key.get("backend", "-"), info["n"],
                f"{info['bytes'] / 1024:.1f} KiB",
                ("corrupt" if info["status"] == "corrupt"
                 else "stale" if info["stale"] else "ok"),
            ])
        if not rows:
            print(f"trace store [{cache_dir}]: empty")
            return 0
        print(format_table(
            ["digest", "format", "schema", "workload", "mode", "batch",
             "backend", "kernels", "size", "status"],
            rows, title=f"trace store [{cache_dir}]"))
        return 0

    if args.action == "stats":
        infos = store.entries()
        by_format: dict[str, int] = {}
        total_bytes = 0
        kernels = 0
        stale = corrupt = 0
        for info in infos:
            by_format[info["format"]] = by_format.get(info["format"], 0) + 1
            total_bytes += info["bytes"]
            kernels += info["n"]
            stale += bool(info["stale"])
            corrupt += info["status"] == "corrupt"
        interned = len(store._interner) if store._interner is not None else 0
        print(f"trace store [{cache_dir}]: {len(infos)} entries "
              f"({', '.join(f'{n} {f}' for f, n in sorted(by_format.items())) or 'none'})")
        print(f"  {total_bytes / 1e6:.2f} MB on disk, {kernels:,} kernels, "
              f"{interned} interned strings")
        print(f"  {stale} stale (old code fingerprint), {corrupt} corrupt")
        return 0

    if args.action == "gc":
        removed = store.gc(stale=not args.keep_stale)
        print(f"gc [{cache_dir}]: removed "
              f"{removed['stale']} stale, {removed['corrupt']} quarantined, "
              f"{removed['unreadable']} unreadable, {removed['tmp']} torn tmp")
        return 0

    if args.action == "migrate":
        migrated = store.migrate()
        print(f"migrate [{cache_dir}]: {migrated} legacy gzip-JSON entries "
              f"rewritten as v5 binary")
        if store.stats["corrupt"]:
            print(f"  {store.stats['corrupt']} unreadable entries quarantined")
        return 0

    if args.action == "lint":
        from repro.lint import LintReport, lint_trace

        merged = LintReport()
        skipped = 0
        for info in store.entries():
            if info["status"] != "ok":
                skipped += 1
                continue
            try:
                entry = store.load_digest(info["digest"])
            except KeyError:
                skipped += 1
                continue
            key = info["key"] or {}
            merged.extend(lint_trace(
                entry,
                source=f"store:{info['digest'][:12]} "
                       f"({key.get('workload', '?')})"))
        if skipped:
            print(f"lint [{cache_dir}]: skipped {skipped} unreadable "
                  f"entr{'y' if skipped == 1 else 'ies'}", file=sys.stderr)
        return _finish_lint(merged, args)

    print(f"unknown store action {args.action!r}", file=sys.stderr)
    return 2


def _add_lint_options(sub_parser) -> None:
    """Severity gating + output flags shared by `lint` and `store lint`."""
    sub_parser.add_argument(
        "--strict", action="store_true",
        help="warnings also fail the exit code (errors always do)")
    sub_parser.add_argument(
        "--format", default="human", choices=["human", "json"],
        help="render diagnostics for people or for machines")
    sub_parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="suppress diagnostics listed in FILE (codes or fingerprints)")
    sub_parser.add_argument(
        "--write-baseline", default=None, metavar="FILE",
        help="adopt every current diagnostic into FILE, then ratchet")


def _add_trace_options(sub_parser) -> None:
    """Backend + cache flags shared by every trace-capturing subcommand."""
    sub_parser.add_argument(
        "--backend", default="meta", choices=["eager", "meta"],
        help="trace-capture backend: 'meta' propagates shapes analytically "
             "(order-of-magnitude faster, event-identical to eager)")
    sub_parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persist captured traces to DIR (content-addressed; reused "
             "across runs; also honors $MMBENCH_CACHE_DIR)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="mmbench",
                                     description="MMBench reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the nine workloads").set_defaults(fn=_cmd_list)

    run = sub.add_parser("run", help="profile one workload")
    run.add_argument("--workload", default="avmnist", choices=list_workloads())
    run.add_argument("--fusion", default=None)
    run.add_argument("--unimodal", default=None, metavar="MODALITY")
    run.add_argument("--batch-size", type=int, default=8)
    run.add_argument("--device", default="2080ti")
    run.add_argument("--seed", type=int, default=0)
    _add_trace_options(run)
    run.set_defaults(fn=_cmd_run)

    report = sub.add_parser("report", help="full characterization report (markdown)")
    report.add_argument("--workload", default="avmnist", choices=list_workloads())
    report.add_argument("--fusion", default=None)
    report.add_argument("--batch-size", type=int, default=32)
    report.add_argument("-o", "--output", default=None, metavar="FILE")
    _add_trace_options(report)
    report.set_defaults(fn=_cmd_report)

    serve = sub.add_parser(
        "serve", help="open-loop serving simulation with dynamic batching")
    # Default None so the --mix path can reject an explicit --workload
    # instead of silently ignoring it; the single path falls back to avmnist.
    serve.add_argument("--workload", default=None, choices=list_workloads())
    serve.add_argument("--fusion", default=None)
    serve.add_argument("--mix", default=None, metavar="SCENARIO",
                       help="serve a multi-tenant workload mix instead of one "
                            "workload: uniform, heavy-head, diurnal, bursty, "
                            "finetune")
    serve.add_argument("--workloads", default=None, metavar="W1,W2,...",
                       help="tenants of the --mix run (default: all nine)")
    serve.add_argument("--finetune-workloads", default=None, metavar="W1,W2,...",
                       help="background fine-tuning jobs sharing the devices "
                            "(default for --mix finetune: the first tenant)")
    serve.add_argument("--finetune-share", type=float, default=0.25,
                       help="aggregate device share the fine-tuning jobs hold")
    serve.add_argument("--arrival-rate", type=float, default=None, metavar="REQ_PER_S",
                       help="Poisson arrival rate (default: closed batch, all at t=0)")
    serve.add_argument("--n-requests", type=int, default=5_000)
    serve.add_argument("--policy", default="fixed,adaptive",
                       help="comma-separated: fixed, timeout, adaptive")
    serve.add_argument("--batch-size", type=int, default=40,
                       help="batch cap for the fixed/timeout policies")
    serve.add_argument("--timeout", type=float, default=2e-3,
                       help="batch-formation timeout (seconds) for the timeout policy")
    serve.add_argument("--slo", type=float, default=50e-3,
                       help="p99 latency SLO (seconds); drives the adaptive policy")
    serve.add_argument("--max-batch", type=int, default=512,
                       help="largest batch the adaptive policy may form")
    serve.add_argument("--devices", default="2080ti,nano",
                       help="comma-separated device models to route across")
    serve.add_argument("--router", default="earliest-finish",
                       choices=["earliest-finish", "round-robin"])
    serve.add_argument("--faults", default=None, metavar="SCENARIO|PLAN.json",
                       help="inject a fault plan: a named chaos scenario "
                            "(single-failure, rolling-restart, "
                            "thermal-brownout, flaky-device) or a plan JSON "
                            "file (see docs/serving.md)")
    serve.add_argument("--retry-max", type=int, default=3,
                       help="aborted-request retry budget before shedding")
    serve.add_argument("--retry-backoff", type=float, default=2e-3,
                       help="base retry backoff (seconds; doubles per attempt)")
    serve.add_argument("--request-deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="shed any request in the system longer than this "
                            "(activates shedding even without --faults)")
    serve.add_argument("--degrade-after", type=float, default=None,
                       metavar="SECONDS",
                       help="--mix only: tenants shed their costliest modality "
                            "encoder (degraded mode) once their oldest queued "
                            "request waits this long")
    serve.add_argument("--fleet", action="store_true",
                       help="fleet-scale simulator: homogeneous device groups "
                            "with vectorized event epochs (needs --groups)")
    serve.add_argument("--groups", default=None,
                       metavar="DEV:REPLICAS[:POOL],...",
                       help="--fleet device groups, e.g. "
                            "2080ti:64,orin:32,nano:16 (POOL = autoscale "
                            "ceiling, default REPLICAS)")
    serve.add_argument("--autoscale", default=None,
                       metavar="METRIC:THRESHOLD[:INTERVAL[:COOLDOWN]]",
                       help="--fleet reactive autoscaling, e.g. queue:64 or "
                            "p99:0.1:0.05:0.25 (metric: queue depth or "
                            "windowed p99 latency)")
    serve.add_argument("--autoscale-min", type=int, default=1,
                       metavar="REPLICAS",
                       help="per-group autoscale floor (default 1)")
    serve.add_argument("--autoscale-max", type=int, default=None,
                       metavar="REPLICAS",
                       help="per-group autoscale ceiling (default: the "
                            "group's pool)")
    serve.add_argument("--hop-bytes", type=float, default=0.0,
                       metavar="BYTES",
                       help="--fleet per-request payload priced as an h2d "
                            "transfer whenever a tenant's batch moves to a "
                            "different group")
    serve.add_argument("--seed", type=int, default=0)
    _add_trace_options(serve)
    serve.set_defaults(fn=_cmd_serve)

    export = sub.add_parser(
        "export", help="serialize a workload trace to execution-graph JSON")
    export.add_argument("--workload", default="avmnist", choices=list_workloads())
    export.add_argument("--fusion", default=None)
    export.add_argument("--unimodal", default=None, metavar="MODALITY")
    export.add_argument("--batch-size", type=int, default=8)
    export.add_argument("--training", action="store_true",
                        help="export a full traced training step "
                             "(forward+loss+backward+optimizer)")
    export.add_argument("--optimizer", default="adam",
                        help="optimizer for --training exports")
    export.add_argument("--seed", type=int, default=0)
    export.add_argument("-o", "--output", required=True, metavar="FILE")
    _add_trace_options(export)
    export.set_defaults(fn=_cmd_export)

    ingest = sub.add_parser(
        "ingest", help="price an external execution-graph JSON "
                       "(PyTorch ET / PARAM / Chakra-style)")
    ingest.add_argument("graph", metavar="GRAPH.json")
    ingest.add_argument("--device", default="2080ti")
    ingest.add_argument("--batch-size", type=int, default=None,
                        help="price at this batch size (default: the "
                             "graph's own batch size)")
    ingest.add_argument("--op-map", default=None, metavar="FILE",
                        help="JSON object of {op-name-pattern: kernel "
                             "category} layered over the default mapping")
    ingest.add_argument("--report", action="store_true",
                        help="full profile summary (default when neither "
                             "--sweep nor --serve is given)")
    ingest.add_argument("--sweep", default=None, metavar="B1,B2,...",
                        help="batch-size sweep across --devices")
    ingest.add_argument("--serve", action="store_true",
                        help="serving simulation driven by the ingested trace")
    ingest.add_argument("--devices", default=None,
                        help="comma-separated devices for --sweep/--serve "
                             "(default: --device)")
    ingest.add_argument("--arrival-rate", type=float, default=None,
                        metavar="REQ_PER_S")
    ingest.add_argument("--n-requests", type=int, default=2_000)
    ingest.add_argument("--policy", default="adaptive",
                        choices=["fixed", "timeout", "adaptive"])
    ingest.add_argument("--slo", type=float, default=50e-3)
    ingest.add_argument("--router", default="earliest-finish",
                        choices=["earliest-finish", "round-robin"])
    ingest.add_argument("--seed", type=int, default=0)
    ingest.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="persist ingested traces to DIR "
                             "(content-addressed on the file digest)")
    ingest.set_defaults(fn=_cmd_ingest)

    lint_p = sub.add_parser(
        "lint", help="statically analyze traces, execution graphs, fault "
                     "plans and store entries (no execution)")
    lint_p.add_argument(
        "targets", nargs="+", metavar="TARGET",
        help="what to lint: an execution-graph or fault-plan JSON file, a "
             "workload name (lints its captured trace), or a store digest "
             "prefix from `mmbench store ls`")
    _add_lint_options(lint_p)
    lint_p.add_argument("--unknown-threshold", type=float, default=0.25,
                        metavar="FRAC",
                        help="MMB202 fires when more than FRAC of kernels "
                             "sit in the unknown-op bucket (default 0.25)")
    lint_p.add_argument("--batch-size", type=int, default=8,
                        help="batch size for workload-name targets")
    _add_trace_options(lint_p)
    lint_p.set_defaults(fn=_cmd_lint)

    store_p = sub.add_parser(
        "store", help="corpus operations on the on-disk trace cache "
                      "(ls / stats / gc / migrate / lint)")
    store_sub = store_p.add_subparsers(dest="action", required=True)
    for action, help_text in (
        ("ls", "list every disk entry (format, schema, key, size, status)"),
        ("stats", "aggregate corpus statistics"),
        ("gc", "remove stale, quarantined and torn-write files"),
        ("migrate", "rewrite legacy gzip-JSON entries as v5 binary files"),
        ("lint", "lint every readable entry in the store"),
    ):
        action_p = store_sub.add_parser(action, help=help_text)
        action_p.add_argument("--cache-dir", default=None, metavar="DIR",
                              help="store directory (also $MMBENCH_CACHE_DIR)")
        if action == "gc":
            action_p.add_argument("--keep-stale", action="store_true",
                                  help="only remove corrupt/torn files, keep "
                                       "entries with old code fingerprints")
        if action == "lint":
            _add_lint_options(action_p)
        action_p.set_defaults(fn=_cmd_store)

    analyze = sub.add_parser("analyze", help="run a characterization analysis")
    analyze.add_argument("analysis",
                         choices=["stage-time", "kernel-breakdown", "batch-size", "edge"])
    analyze.add_argument("--device", default="2080ti")
    _add_trace_options(analyze)
    analyze.set_defaults(fn=_cmd_analyze)

    train = sub.add_parser(
        "train-analyze",
        help="per-pass/per-stage breakdown of traced training steps")
    train.add_argument("--workload", default="avmnist", choices=list_workloads())
    train.add_argument("--workloads", default=None, metavar="W1,W2,...",
                       help="analyze several workloads (overrides --workload; "
                            "'all' via comma list)")
    train.add_argument("--batch-size", type=int, default=8)
    train.add_argument("--device", default="2080ti")
    train.add_argument("--optimizer", default="adam",
                       help="sgd, sgd_momentum, adam, adamw")
    train.add_argument("--sweep", default=None, metavar="B1,B2,...",
                       help="batch-size sweep (one-pass run_sweep pricing "
                            "across --devices)")
    train.add_argument("--devices", default="2080ti",
                       help="comma-separated devices for --sweep")
    train.add_argument("--cross-check", action="store_true",
                       help="also report the traced-vs-synthetic (2x "
                            "heuristic) differential")
    train.add_argument("--seed", type=int, default=0)
    _add_trace_options(train)
    train.set_defaults(fn=_cmd_train_analyze)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
