"""``mmbench`` command-line interface.

Mirrors the paper's usage model (Fig. 2: model choice and measurement
options as command-line parameters)::

    mmbench list
    mmbench run --workload avmnist --fusion tensor --batch-size 40
    mmbench run --workload mmimdb --unimodal image --device nano
    mmbench analyze stage-time --device 2080ti
    mmbench analyze batch-size
"""

from __future__ import annotations

import argparse
import sys

from repro.core.suite import BenchmarkSuite, RunConfig
from repro.profiling.report import format_table
from repro.workloads.registry import WORKLOADS, list_workloads


def _cmd_list(_args) -> int:
    rows = []
    for name in list_workloads():
        info = WORKLOADS[name]
        rows.append([
            name, info.domain, info.model_size,
            ",".join(info.modalities), ",".join(info.fusions), info.task_kind,
        ])
    print(format_table(
        ["workload", "domain", "size", "modalities", "fusions", "task"], rows,
        title="MMBench workloads (Table 3)",
    ))
    return 0


def _cmd_run(args) -> int:
    config = RunConfig(
        workload=args.workload,
        fusion=args.fusion,
        unimodal=args.unimodal,
        batch_size=args.batch_size,
        device=args.device,
        seed=args.seed,
    )
    suite = BenchmarkSuite(args.device)
    result = suite.run_inference(config)
    print(suite.summarize(result))
    return 0


def _cmd_report(args) -> int:
    from repro.core.report import characterization_report

    text = characterization_report(args.workload, fusion=args.fusion,
                                   batch_size=args.batch_size)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _cmd_analyze(args) -> int:
    from repro.core import analysis

    name = args.analysis
    if name == "stage-time":
        data = analysis.stage_time_analysis(device=args.device)
        rows = [[w] + [f"{t * 1e3:.3f} ms" for t in stages.values()]
                for w, stages in data.items()]
        print(format_table(["workload", "encoder", "fusion", "head"], rows,
                           title="Figure 6: per-stage execution time"))
    elif name == "kernel-breakdown":
        data = analysis.kernel_breakdown_analysis(device=args.device)
        rows = []
        for workload, stages in data.items():
            for stage, cats in stages.items():
                top = max(cats, key=cats.get)
                rows.append([workload, stage, top, f"{cats[top]:.0%}"])
        print(format_table(["workload", "stage", "dominant kernel", "share"], rows,
                           title="Figure 8: dominant kernel category per stage"))
    elif name == "batch-size":
        results = analysis.batch_size_study(device=args.device)
        rows = [[r.variant, r.batch_size, f"{r.gpu_time_total:.3f} s",
                 f"{r.inference_time_total:.3f} s",
                 f"{r.kernel_size_distribution['>100']:.0%} large kernels"]
                for r in results]
        print(format_table(["variant", "batch", "GPU time", "inference time", "kernel mix"],
                           rows, title="Figure 12: batch size case study (10k tasks)"))
    elif name == "edge":
        results = analysis.edge_latency_study()
        rows = [[r.device, r.variant, r.batch_size, f"{r.inference_time:.2f} s",
                 f"{r.memory_pressure:.2f}"] for r in results]
        print(format_table(["device", "variant", "batch", "inference time", "mem pressure"],
                           rows, title="Figure 14: edge migration"))
    else:
        print(f"unknown analysis {name!r}", file=sys.stderr)
        return 2
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="mmbench",
                                     description="MMBench reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the nine workloads").set_defaults(fn=_cmd_list)

    run = sub.add_parser("run", help="profile one workload")
    run.add_argument("--workload", default="avmnist", choices=list_workloads())
    run.add_argument("--fusion", default=None)
    run.add_argument("--unimodal", default=None, metavar="MODALITY")
    run.add_argument("--batch-size", type=int, default=8)
    run.add_argument("--device", default="2080ti")
    run.add_argument("--seed", type=int, default=0)
    run.set_defaults(fn=_cmd_run)

    report = sub.add_parser("report", help="full characterization report (markdown)")
    report.add_argument("--workload", default="avmnist", choices=list_workloads())
    report.add_argument("--fusion", default=None)
    report.add_argument("--batch-size", type=int, default=32)
    report.add_argument("-o", "--output", default=None, metavar="FILE")
    report.set_defaults(fn=_cmd_report)

    analyze = sub.add_parser("analyze", help="run a characterization analysis")
    analyze.add_argument("analysis",
                         choices=["stage-time", "kernel-breakdown", "batch-size", "edge"])
    analyze.add_argument("--device", default="2080ti")
    analyze.set_defaults(fn=_cmd_analyze)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
