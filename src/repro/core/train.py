"""Training/evaluation harness for the accuracy experiments (Figs. 4-5).

Selects the loss and headline metric from the workload's task kind,
runs mini-batch training with Adam, and provides per-sample correctness
masks — the ingredient of the Figure-5 exclusive-correct-set analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import nn
from repro.data.generators import LatentMultimodalDataset
from repro.data.loader import DataLoader
from repro.nn import losses
from repro.nn.tensor import Tensor
from repro.workloads.base import MultiModalModel


def loss_fn_for(task_kind: str):
    """The training loss for a task kind."""
    if task_kind == "classification":
        return losses.cross_entropy
    if task_kind == "multilabel":
        return losses.binary_cross_entropy_with_logits
    if task_kind == "regression":
        return losses.mse_loss
    if task_kind == "segmentation":
        return losses.segmentation_loss
    if task_kind == "generation":
        return _generation_loss
    raise ValueError(f"unknown task kind {task_kind!r}")


def _generation_loss(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Per-position cross-entropy over (B, L, V) logits."""
    b, length, vocab = logits.shape
    flat = logits.reshape((b * length, vocab))
    return losses.cross_entropy(flat, np.asarray(targets).reshape(-1))


def metric_fn_for(task_kind: str):
    """(metric function, higher_is_better) for a task kind."""
    if task_kind == "classification":
        return losses.accuracy, True
    if task_kind == "multilabel":
        return losses.f1_micro, True
    if task_kind == "regression":
        return losses.mse_metric, False
    if task_kind == "segmentation":
        return losses.dice_score, True
    if task_kind == "generation":
        return _token_accuracy, True
    raise ValueError(f"unknown task kind {task_kind!r}")


def _token_accuracy(logits, targets) -> float:
    arr = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    return float((arr.argmax(axis=-1) == np.asarray(targets)).mean())


def correct_mask(output: Tensor, targets: np.ndarray, task_kind: str) -> np.ndarray:
    """Per-sample boolean correctness (drives the Figure-5 analysis)."""
    arr = output.data
    t = np.asarray(targets)
    if task_kind == "classification":
        return arr.argmax(axis=-1) == t
    if task_kind == "multilabel":
        pred = arr > 0
        truth = t.astype(bool)
        tp = (pred & truth).sum(axis=1).astype(np.float64)
        denom = pred.sum(axis=1) + truth.sum(axis=1)
        f1 = np.where(denom > 0, 2 * tp / np.maximum(denom, 1), 1.0)
        return f1 > 0.5
    if task_kind == "regression":
        err = np.abs(arr - t).mean(axis=tuple(range(1, arr.ndim)))
        return err < 0.35
    if task_kind == "segmentation":
        pred = arr > 0
        truth = t.astype(bool)
        axes = tuple(range(1, arr.ndim))
        inter = (pred & truth).sum(axis=axes).astype(np.float64)
        denom = pred.sum(axis=axes) + truth.sum(axis=axes)
        dice = (2 * inter + 1.0) / (denom + 1.0)
        return dice > 0.5
    if task_kind == "generation":
        return (arr.argmax(axis=-1) == t).all(axis=-1)
    raise ValueError(f"unknown task kind {task_kind!r}")


@dataclass
class TrainResult:
    """Outcome of one training run."""

    model: MultiModalModel
    metric: float
    higher_is_better: bool
    loss_history: list[float] = field(default_factory=list)
    test_outputs: Tensor | None = None
    test_targets: np.ndarray | None = None


def evaluate(model: MultiModalModel, batch: dict[str, np.ndarray], targets: np.ndarray,
             task_kind: str, eval_batch_size: int = 64) -> tuple[Tensor, float]:
    """Inference over a (possibly large) batch; returns (outputs, metric)."""
    metric_fn, _ = metric_fn_for(task_kind)
    outputs = []
    loader = DataLoader(batch, targets, batch_size=eval_batch_size)
    model.eval()
    with nn.no_grad():
        for xb, _ in loader:
            outputs.append(model(xb).data)
    merged = Tensor(np.concatenate(outputs, axis=0))
    return merged, metric_fn(merged, targets)


def train_model(
    model: MultiModalModel,
    dataset: LatentMultimodalDataset,
    n_train: int = 256,
    n_test: int = 128,
    epochs: int = 4,
    batch_size: int = 32,
    lr: float = 2e-3,
    seed: int = 0,
) -> TrainResult:
    """Train a workload model on a latent-factor dataset and evaluate it."""
    task_kind = dataset.shapes.task.kind
    loss_fn = loss_fn_for(task_kind)
    _, higher = metric_fn_for(task_kind)

    train_batch, train_targets = dataset.sample(n_train, seed=seed)
    test_batch, test_targets = dataset.sample(n_test, seed=seed + 10_000)

    # Uni-modal models only consume their own modality's stream.
    wanted = set(model.modality_names)
    train_batch = {k: v for k, v in train_batch.items() if k in wanted}
    test_batch = {k: v for k, v in test_batch.items() if k in wanted}

    optimizer = nn.optim.Adam(model.parameters(), lr=lr)
    loader = DataLoader(train_batch, train_targets, batch_size=batch_size,
                        shuffle=True, seed=seed)
    history: list[float] = []
    model.train()
    for _ in range(epochs):
        for xb, yb in loader:
            optimizer.zero_grad()
            out = model(xb)
            loss = loss_fn(out, yb)
            loss.backward()
            nn.optim.clip_grad_norm(model.parameters(), 5.0)
            optimizer.step()
            history.append(loss.item())

    outputs, metric = evaluate(model, test_batch, test_targets, task_kind)
    return TrainResult(
        model=model,
        metric=metric,
        higher_is_better=higher,
        loss_history=history,
        test_outputs=outputs,
        test_targets=test_targets,
    )
