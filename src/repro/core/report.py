"""Full per-workload characterization reports.

MMBench promises "comprehensive profiling tools and insights at the
architecture and system levels" beyond raw scoreboards (Sec. 1). This
module rolls every hardware-level analysis into one markdown document for
a single workload: the three-stage profile, kernel mix, modality balance,
synchronization split, memory decomposition, energy and a cross-device
summary — the report a systems engineer would attach to a design review.
"""

from __future__ import annotations

import io

from repro.hw.energy import report_energy, stage_energy
from repro.hw.stalls import STALL_REASONS
from repro.profiling.profiler import MMBenchProfiler
from repro.profiling.report import format_bytes, format_seconds
from repro.workloads.registry import get_workload


def _md_table(headers: list[str], rows: list[list]) -> str:
    out = io.StringIO()
    out.write("| " + " | ".join(headers) + " |\n")
    out.write("|" + "|".join("---" for _ in headers) + "|\n")
    for row in rows:
        out.write("| " + " | ".join(str(c) for c in row) + " |\n")
    return out.getvalue()


def characterization_report(
    workload: str,
    fusion: str | None = None,
    batch_size: int = 32,
    devices: tuple[str, ...] = ("2080ti", "orin", "nano"),
    seed: int = 0,
    backend: str | None = "meta",
) -> str:
    """Render a markdown characterization report for one workload.

    The trace comes from the shared store (meta backend by default), so
    regenerating a report over the same configuration is a cache hit.
    """
    from repro.trace.store import default_store

    info = get_workload(workload)
    store = default_store()
    stored = store.get_or_capture(workload, fusion=fusion,
                                  batch_size=batch_size, seed=seed, backend=backend)
    model = store.model(workload, fusion, seed=seed)
    profiler = MMBenchProfiler(devices[0])
    trace = stored.trace

    out = io.StringIO()
    out.write(f"# MMBench characterization: {model.name}\n\n")
    out.write(f"Domain: {info.domain} · modalities: {', '.join(info.modalities)} · "
              f"task: {info.task_kind} · batch size: {batch_size}\n\n")

    # Algorithm level.
    out.write("## Algorithm level\n\n")
    out.write(_md_table(
        ["parameters", "parameter bytes", "FLOPs / sample"],
        [[f"{model.num_parameters():,}", format_bytes(model.parameter_bytes()),
          f"{trace.total_flops / batch_size:,.0f}"]],
    ))
    out.write("\n")

    # Primary device deep dive.
    primary = profiler.price(model, trace, batch_size, device=devices[0])
    out.write(f"## Three-stage profile on {devices[0]}\n\n")
    stage_rows = []
    counters = primary.stage_counters()
    energies = stage_energy(primary)
    for stage, t in primary.stage_time().items():
        c = counters[stage]
        stage_rows.append([
            stage, format_seconds(t), f"{c['dram_utilization']:.3f}",
            f"{c['achieved_occupancy']:.3f}", f"{c['ipc']:.2f}",
            f"{energies.get(stage, 0.0) * 1e3:.3f} mJ",
        ])
    out.write(_md_table(
        ["stage", "time", "DRAM util", "occupancy", "IPC", "energy"], stage_rows))
    out.write("\n")

    out.write("### Kernel mix per stage (time share)\n\n")
    mix_rows = []
    for stage in primary.stage_time():
        cats = primary.category_time_breakdown(stage)
        ranked = sorted(cats.items(), key=lambda kv: -kv[1])[:3]
        mix_rows.append([stage, ", ".join(f"{c.value} {v:.0%}" for c, v in ranked)])
    out.write(_md_table(["stage", "dominant kernel categories"], mix_rows))
    out.write("\n")

    if model.is_multimodal:
        out.write("### Modality balance (encoder stage)\n\n")
        times = primary.modality_time()
        floor = min(times.values()) or 1.0
        out.write(_md_table(
            ["modality", "time", "normalized"],
            [[m, format_seconds(t), f"{t / floor:.2f}x"] for m, t in times.items()],
        ))
        out.write(f"\nStraggler ratio: **{primary.modality_imbalance():.2f}x**\n\n")

    out.write("### Synchronization split\n\n")
    out.write(_md_table(
        ["GPU time", "CPU+Runtime", "CPU+Runtime share", "transfers", "data prep",
         "sync"],
        [[format_seconds(primary.gpu_time), format_seconds(primary.host_time),
          f"{primary.cpu_runtime_share:.1%}", format_seconds(primary.transfer_time),
          format_seconds(primary.data_prep_time), format_seconds(primary.sync_time)]],
    ))
    out.write("\n")

    out.write("### Peak memory\n\n")
    mem = primary.memory
    out.write(_md_table(
        ["model", "dataset", "intermediate", "total", "pressure"],
        [[format_bytes(mem.model), format_bytes(mem.dataset),
          format_bytes(mem.intermediate), format_bytes(mem.total),
          f"{primary.memory_pressure:.2f}"]],
    ))
    out.write("\n")

    # Cross-device summary.
    out.write("## Cross-device summary\n\n")
    device_rows = []
    for device in devices:
        rep = profiler.price(model, trace, batch_size, device=device)
        energy = report_energy(rep)
        stalls = rep.overall_stalls()
        dominant = max(STALL_REASONS, key=lambda r: stalls.get(r, 0.0))
        device_rows.append([
            device, format_seconds(rep.total_time),
            f"{rep.cpu_runtime_share:.0%}", f"{energy.total * 1e3:.2f} mJ",
            f"{dominant} ({stalls[dominant]:.0%})",
        ])
    out.write(_md_table(
        ["device", "batch latency", "CPU+Runtime share", "energy", "dominant stall"],
        device_rows))
    return out.getvalue()
