"""Batched-serving simulator (legacy single-server entry points).

Sec. 5.1 frames the batch-size case study as an OS scheduling problem:
"when a batch of tasks arrive, the operating system schedules the
appropriate kernels to handle those tasks" — 10,000 inference tasks
dispatched at batch 40 vs 400. These entry points keep that original
single-device, fixed-batch interface but now run on the general
discrete-event engine in :mod:`repro.serving` (dynamic batching
policies, multi-device routing, per-request latency decomposition).
Use :func:`repro.serving.simulate` directly for anything beyond a
fixed-size batcher on one device.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ServingResult:
    """Statistics of one serving simulation."""

    batch_size: int
    n_tasks: int
    makespan: float  # completion time of the last task
    throughput: float  # tasks / second over the makespan
    mean_latency: float
    p50_latency: float
    p99_latency: float
    server_utilization: float  # busy time / makespan


def simulate_serving(
    batch_time,
    batch_size: int,
    n_tasks: int,
    arrival_rate: float | None = None,
    seed: int = 0,
) -> ServingResult:
    """Simulate a single fixed-batch server.

    Parameters
    ----------
    batch_time:
        ``batch_time(k)`` -> seconds to process a batch of ``k`` tasks.
        Typically a closure over a profiled
        :class:`~repro.hw.engine.ExecutionReport`.
    batch_size:
        Maximum tasks per batch. The server takes ``min(queue, batch_size)``
        tasks whenever it is free and the queue is non-empty (no artificial
        batching delay).
    n_tasks:
        Total tasks to serve.
    arrival_rate:
        Mean arrivals per second (Poisson). ``None`` = all tasks arrive at
        t=0, the paper's closed-batch setup.
    """
    from repro.serving import CallableCostModel, FixedBatchPolicy, simulate

    report = simulate(
        CallableCostModel(batch_time),
        FixedBatchPolicy(batch_size),
        devices=("server",),
        n_requests=n_tasks,
        arrival_rate=arrival_rate,
        seed=seed,
    )
    return serving_result_from_report(report, batch_size)


def serving_result_from_report(report, batch_size: int) -> ServingResult:
    """Collapse a multi-device :class:`~repro.serving.ServingReport` into
    the legacy single-server summary."""
    return ServingResult(
        batch_size=batch_size,
        n_tasks=report.n_requests,
        makespan=report.makespan,
        throughput=report.throughput,
        mean_latency=report.mean_latency,
        p50_latency=report.p50_latency,
        p99_latency=report.p99_latency,
        server_utilization=report.total_utilization,
    )


def batch_time_from_profile(profiler, model, device: str, seed: int = 0):
    """Build a ``batch_time(k)`` closure from profiled batch latencies.

    Profiles the model at the cost-model anchor batch sizes and
    interpolates per-batch latency linearly in between (latency is affine
    in batch size to good approximation under the roofline model: fixed
    launch overhead plus work that scales with the batch). Anchor traces
    and prices are memoized in :mod:`repro.serving.costmodel` per *model
    instance*, so repeated closures over the same model object never
    re-profile; a rebuilt model starts fresh (two models are not assumed
    interchangeable just because they share a name). For registry
    workloads, :class:`~repro.serving.costmodel.ProfiledCostModel` caches
    by ``(workload, fusion, seed)`` instead and is the better entry point.
    """
    from repro.serving.costmodel import anchored_batch_time

    return anchored_batch_time(profiler, model, device, seed=seed)
