"""Batched-serving simulator.

Sec. 5.1 frames the batch-size case study as an OS scheduling problem:
"when a batch of tasks arrive, the operating system schedules the
appropriate kernels to handle those tasks" — 10,000 inference tasks
dispatched at batch 40 vs 400. This module generalizes that setup into a
small discrete-event simulator: tasks arrive over time (Poisson or
all-at-once), a single device serves them in batches of a configurable
size, and per-task latency statistics fall out. It turns the suite's
per-batch latency model into the throughput/latency tradeoff curves a
deployment engineer actually tunes against.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ServingResult:
    """Statistics of one serving simulation."""

    batch_size: int
    n_tasks: int
    makespan: float  # completion time of the last task
    throughput: float  # tasks / second over the makespan
    mean_latency: float
    p50_latency: float
    p99_latency: float
    server_utilization: float  # busy time / makespan


def simulate_serving(
    batch_time,
    batch_size: int,
    n_tasks: int,
    arrival_rate: float | None = None,
    seed: int = 0,
) -> ServingResult:
    """Simulate a single batching server.

    Parameters
    ----------
    batch_time:
        ``batch_time(k)`` -> seconds to process a batch of ``k`` tasks.
        Typically a closure over a profiled
        :class:`~repro.hw.engine.ExecutionReport`.
    batch_size:
        Maximum tasks per batch. The server takes ``min(queue, batch_size)``
        tasks whenever it is free and the queue is non-empty (no artificial
        batching delay).
    n_tasks:
        Total tasks to serve.
    arrival_rate:
        Mean arrivals per second (Poisson). ``None`` = all tasks arrive at
        t=0, the paper's closed-batch setup.
    """
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    if n_tasks <= 0:
        raise ValueError(f"n_tasks must be positive, got {n_tasks}")

    rng = np.random.default_rng(seed)
    if arrival_rate is None:
        arrivals = np.zeros(n_tasks)
    else:
        if arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        arrivals = np.cumsum(rng.exponential(1.0 / arrival_rate, size=n_tasks))

    latencies = np.empty(n_tasks)
    busy_time = 0.0
    server_free_at = 0.0
    i = 0
    while i < n_tasks:
        # The server starts when it is free and at least one task has arrived.
        start = max(server_free_at, arrivals[i])
        # Take every task that has arrived by `start`, up to batch_size.
        j = i
        while j < n_tasks and arrivals[j] <= start and (j - i) < batch_size:
            j += 1
        took = j - i
        duration = batch_time(took)
        if duration <= 0:
            raise ValueError("batch_time must return a positive duration")
        finish = start + duration
        latencies[i:j] = finish - arrivals[i:j]
        busy_time += duration
        server_free_at = finish
        i = j

    makespan = float(server_free_at)
    return ServingResult(
        batch_size=batch_size,
        n_tasks=n_tasks,
        makespan=makespan,
        throughput=n_tasks / makespan if makespan > 0 else 0.0,
        mean_latency=float(latencies.mean()),
        p50_latency=float(np.percentile(latencies, 50)),
        p99_latency=float(np.percentile(latencies, 99)),
        server_utilization=busy_time / makespan if makespan > 0 else 0.0,
    )


def batch_time_from_profile(profiler, model, device: str, seed: int = 0):
    """Build a ``batch_time(k)`` closure from profiled batch latencies.

    Profiles the model at a few anchor batch sizes and interpolates
    per-batch latency linearly in between (latency is affine in batch size
    to good approximation under the roofline model: fixed launch overhead
    plus work that scales with the batch).
    """
    from repro.data.synthetic import random_batch

    anchors = [1, 8, 32, 128, 512]
    times = []
    for k in anchors:
        batch = random_batch(model.shapes, k, seed=seed)
        trace = profiler.capture(model, batch)
        report = profiler.price(model, trace, k, device=device)
        times.append(report.total_time)

    anchor_arr = np.array(anchors, dtype=np.float64)
    time_arr = np.array(times, dtype=np.float64)

    def batch_time(k: int) -> float:
        return float(np.interp(k, anchor_arr, time_arr))

    return batch_time
