"""Execution engine: replays a trace against a device model, columnar-fast.

This is the reproduction's stand-in for "run the workload on the 2080Ti /
Jetson and profile it with Nsight". Given a :class:`~repro.trace.Trace`
(captured once, device-independently) and a
:class:`~repro.hw.device.DeviceSpec`, the engine prices every kernel with
the roofline latency model, derives its profiler counters and stall
attribution, prices every host event (transfers, synchronization, data
preparation) and produces an :class:`ExecutionReport` with all the
aggregations the paper's figures need.

Pricing is *vectorized*: the engine pulls the trace's cached
:class:`~repro.trace.columns.TraceColumns` and runs the batch roofline /
counter / stall models from :mod:`repro.hw.vectorized` over whole columns
— a handful of numpy ops regardless of kernel count. Report aggregations
(per-stage/modality/category times, duration-weighted counters and
stalls, the kernel-size histogram) are ``np.bincount`` group-bys over the
integer code columns. Per-kernel :class:`KernelExecution` records remain
available for API compatibility but are materialized lazily, only when a
consumer indexes into ``report.kernels``. The original one-event-at-a-time
implementation is kept in :mod:`repro.hw.reference` and pinned to this one
by a golden-equivalence test suite.

:meth:`ExecutionEngine.run_sweep` prices one trace on *many* devices in a
single broadcasted pass — the device-model parameters become ``(D, 1)``
columns and every kernel array broadcasts to ``(D, K)`` — which is what
the batch-size / edge / heterogeneity analyses and the serving cost model
fill their grids with.

The timeline model is serialized: GPU kernels execute back-to-back and
host work (launches, copies, data prep, syncs) adds to wall time. This is
the conservative single-stream behaviour the paper observes — GPUs "stay
idle for most of the application time" waiting on host-side work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.hw.counters import KernelCounters
from repro.hw.device import DeviceSpec, get_device
from repro.hw.latency import LatencyBreakdown
from repro.hw.memory import (
    MemoryBreakdown,
    capacity_pressure,
    memory_breakdown_columns,
    thrash_factor,
)
from repro.hw.stalls import STALL_REASONS
from repro.hw.vectorized import (
    CounterColumns,
    DeviceParams,
    LatencyColumns,
    derive_counters_batch,
    device_row,
    kernel_latency_batch,
    saturated_latency_batch,
    stall_breakdown_batch,
)
from repro.trace.columns import (
    CATEGORY_CODES,
    CATEGORY_ORDER,
    HOST_KIND_CODES,
    NO_MODALITY,
    PASS_ORDER,
    TraceColumns,
)
from repro.trace.events import HostEvent, HostOpKind, KernelCategory, KernelEvent
from repro.trace.tracer import Trace

# Kernel-duration bins (microseconds) used by the Figure-12 histogram.
KERNEL_SIZE_BINS = ("0-10", "10-50", "50-100", ">100")
_SIZE_BIN_EDGES_US = np.array([10.0, 50.0, 100.0])

_H2D = HOST_KIND_CODES[HostOpKind.H2D]
_D2H = HOST_KIND_CODES[HostOpKind.D2H]
_DATA_PREP = HOST_KIND_CODES[HostOpKind.DATA_PREP]
_PREPROCESS = HOST_KIND_CODES[HostOpKind.PREPROCESS]
_SYNC = HOST_KIND_CODES[HostOpKind.SYNC]
_LAUNCH = HOST_KIND_CODES[HostOpKind.LAUNCH]


@dataclass
class KernelExecution:
    """One kernel launch priced on a device."""

    event: KernelEvent
    latency: LatencyBreakdown
    counters: KernelCounters
    stalls: dict[str, float]

    @property
    def duration(self) -> float:
        return self.latency.total


@dataclass(eq=False)
class ExecutionReport:
    """Everything the analyses need about one inference run on one device.

    Internally columnar: per-kernel latencies, counters and stall shares
    are numpy arrays aligned with the trace's
    :class:`~repro.trace.columns.TraceColumns`; aggregations are bincount
    group-bys. ``report.kernels`` materializes the per-kernel
    :class:`KernelExecution` records on first access (Nsight-style per-
    kernel views are rare on hot paths but still supported).
    """

    device: DeviceSpec
    trace: Trace = field(repr=False)
    columns: TraceColumns = field(repr=False)
    gpu_time: float
    host_time: float  # CPU + runtime: launches, copies, data prep, syncs
    launch_time: float
    transfer_time: float
    data_prep_time: float
    sync_time: float
    memory: MemoryBreakdown
    memory_pressure: float
    slowdown: float  # thrashing multiplier already applied to times
    # Per-kernel pricing columns. ``durations`` has the thrash slowdown
    # applied; ``raw_latency`` (and the lazily-derived counters) are
    # pre-thrash, matching the scalar model (counters describe the
    # un-thrashed kernel).
    durations: np.ndarray = field(repr=False)
    raw_latency: LatencyColumns = field(repr=False)
    params: DeviceParams = field(repr=False)  # single-device scalars
    _counter_columns: "CounterColumns | None" = field(default=None, init=False, repr=False)
    _stall_shares: "np.ndarray | None" = field(default=None, init=False, repr=False)
    _kernels: "list[KernelExecution] | None" = field(default=None, init=False, repr=False)
    _host_events: "list[HostEvent] | None" = field(default=None, init=False, repr=False)

    # -- derived pricing columns (lazy) ----------------------------------------
    # Time-only consumers (cost-model fills, latency grids) never read
    # counters or stalls, so deriving them is deferred to first use.

    @property
    def counter_columns(self) -> CounterColumns:
        if self._counter_columns is None:
            self._counter_columns = derive_counters_batch(
                self.columns, self.params, self.raw_latency
            )
        return self._counter_columns

    @property
    def stall_shares(self) -> np.ndarray:
        """Per-kernel stall shares, shape (K, len(STALL_REASONS))."""
        if self._stall_shares is None:
            self._stall_shares = stall_breakdown_batch(
                self.columns, self.params, self.raw_latency
            )
        return self._stall_shares

    # -- per-kernel view (lazy) -------------------------------------------------

    def _kernel_execution(self, i: int) -> KernelExecution:
        lat = self.raw_latency
        c = self.counter_columns
        s = self.slowdown
        latency = LatencyBreakdown(
            total=float(lat.total[i] * s) if s != 1.0 else float(lat.total[i]),
            compute_time=float(lat.compute_time[i] * s) if s != 1.0 else float(lat.compute_time[i]),
            memory_time=float(lat.memory_time[i] * s) if s != 1.0 else float(lat.memory_time[i]),
            fixed_overhead=float(np.asarray(lat.fixed_overhead).reshape(-1)[0]),
            dram_bytes=float(lat.dram_bytes[i]),
            compute_utilization=float(lat.compute_utilization[i]),
            occupancy=float(lat.occupancy[i]),
        )
        counters = KernelCounters(
            duration=float(c.duration[i]),
            dram_utilization=float(c.dram_utilization[i]),
            achieved_occupancy=float(c.achieved_occupancy[i]),
            ipc=float(c.ipc[i]),
            gld_efficiency=float(c.gld_efficiency[i]),
            gst_efficiency=float(c.gst_efficiency[i]),
            l1_hit_rate=float(c.l1_hit_rate[i]),
            l2_hit_rate=float(c.l2_hit_rate[i]),
            l2_read_hit_rate=float(c.l2_read_hit_rate[i]),
            l2_write_hit_rate=float(c.l2_write_hit_rate[i]),
            fp32_ops=float(c.fp32_ops[i]),
            dram_read_bytes=float(c.dram_read_bytes[i]),
            read_transactions_per_second=float(c.read_transactions_per_second[i]),
        )
        stalls = {r: float(self.stall_shares[i, j]) for j, r in enumerate(STALL_REASONS)}
        return KernelExecution(
            event=self.trace.kernels[i], latency=latency, counters=counters, stalls=stalls
        )

    @property
    def kernels(self) -> list[KernelExecution]:
        """Per-kernel records, materialized on first access."""
        if self._kernels is None:
            self._kernels = [self._kernel_execution(i) for i in range(self.columns.n)]
        return self._kernels

    @property
    def host_events(self) -> list[HostEvent]:
        """Snapshot of the trace's host events (own list, like the scalar
        engine's — mutating it never touches the shared stored trace)."""
        if self._host_events is None:
            self._host_events = list(self.trace.host_events)
        return self._host_events

    # -- headline numbers ------------------------------------------------------

    @property
    def total_time(self) -> float:
        return self.gpu_time + self.host_time

    @property
    def cpu_runtime_share(self) -> float:
        """Fraction of wall time spent in CPU + runtime work (Figure 11)."""
        total = self.total_time
        return self.host_time / total if total > 0 else 0.0

    # -- group-by helpers ------------------------------------------------------

    def _stage_groups(self) -> tuple[np.ndarray, np.ndarray]:
        """(per-stage kernel counts, per-stage duration sums) over the table."""
        cols = self.columns
        n_stages = len(cols.stage_table)
        counts = np.bincount(cols.stage_codes, minlength=n_stages)
        sums = np.bincount(cols.stage_codes, weights=self.durations, minlength=n_stages)
        return counts, sums

    # -- per-stage aggregations (Figures 6, 7, 8) -------------------------------

    def stage_time(self) -> dict[str, float]:
        """Device time per stage, including per-kernel launch overhead."""
        counts, sums = self._stage_groups()
        overhead = self.device.kernel_launch_overhead * self.slowdown
        return {
            stage: float(sums[code] + counts[code] * overhead)
            for code, stage in enumerate(self.columns.stage_table)
            if counts[code]
        }

    def stage_counters(self) -> dict[str, dict[str, float]]:
        """Duration-weighted counters per stage (Figure 7)."""
        cols = self.columns
        c = self.counter_columns
        n_stages = len(cols.stage_table)
        codes = cols.stage_codes
        w = self.durations
        wsum = np.bincount(codes, weights=w, minlength=n_stages)
        counts = np.bincount(codes, minlength=n_stages)
        averaged = {
            name: np.bincount(codes, weights=getattr(c, name) * w, minlength=n_stages)
            for name in (
                "dram_utilization", "achieved_occupancy", "ipc",
                "gld_efficiency", "gst_efficiency", "l1_hit_rate", "l2_hit_rate",
            )
        }
        fp32 = np.bincount(codes, weights=c.fp32_ops, minlength=n_stages)
        dram_read = np.bincount(codes, weights=c.dram_read_bytes, minlength=n_stages)
        out: dict[str, dict[str, float]] = {}
        for code, stage in enumerate(cols.stage_table):
            if not counts[code] or wsum[code] <= 0:
                continue
            entry = {name: float(vals[code] / wsum[code]) for name, vals in averaged.items()}
            entry["duration"] = float(wsum[code])
            entry["fp32_ops"] = float(fp32[code])
            entry["dram_read_bytes"] = float(dram_read[code])
            out[stage] = entry
        return out

    def _weighted_stalls(self, codes: np.ndarray, minlength: int) -> np.ndarray:
        """Per-group duration-weighted stall shares, shape (G, reasons)."""
        w = self.durations
        wsum = np.bincount(codes, weights=w, minlength=minlength)
        num = np.empty((minlength, len(STALL_REASONS)))
        for j in range(len(STALL_REASONS)):
            num[:, j] = np.bincount(codes, weights=self.stall_shares[:, j] * w,
                                    minlength=minlength)
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(wsum[:, None] > 0, num / np.where(wsum[:, None] > 0,
                                                              wsum[:, None], 1.0), 0.0)

    def stage_stalls(self) -> dict[str, dict[str, float]]:
        """Duration-weighted stall breakdown per stage (Figure 15)."""
        cols = self.columns
        counts, _ = self._stage_groups()
        shares = self._weighted_stalls(cols.stage_codes, len(cols.stage_table))
        return {
            stage: {r: float(shares[code, j]) for j, r in enumerate(STALL_REASONS)}
            for code, stage in enumerate(cols.stage_table)
            if counts[code]
        }

    def overall_stalls(self) -> dict[str, float]:
        w = self.durations
        total_w = float(w.sum())
        if total_w <= 0:
            return {r: 0.0 for r in STALL_REASONS}
        agg = (self.stall_shares * w[:, None]).sum(axis=0) / total_w
        return {r: float(agg[j]) for j, r in enumerate(STALL_REASONS)}

    def category_time_breakdown(self, stage: str | None = None) -> dict[KernelCategory, float]:
        """Time share per kernel category, optionally within one stage (Fig. 8)."""
        cols = self.columns
        codes = cols.category_codes
        w = self.durations
        if stage is not None:
            stage_code = cols.stage_code(stage)
            if stage_code is None:
                return {}
            mask = cols.stage_codes == stage_code
            codes, w = codes[mask], w[mask]
        n_cats = len(CATEGORY_ORDER)
        totals = np.bincount(codes, weights=w, minlength=n_cats)
        counts = np.bincount(codes, minlength=n_cats)
        grand = totals.sum()
        if grand <= 0:
            return {}
        return {
            CATEGORY_ORDER[i]: float(totals[i] / grand)
            for i in range(n_cats)
            if counts[i]
        }

    # -- per-pass aggregations (traced training steps) ---------------------------

    def pass_time(self) -> dict[str, float]:
        """Device time per pass (forward/loss/backward/optimizer),
        including per-kernel launch overhead. Inference traces report a
        single ``forward`` entry."""
        cols = self.columns
        n_passes = len(PASS_ORDER)
        counts = np.bincount(cols.pass_codes, minlength=n_passes)
        sums = np.bincount(cols.pass_codes, weights=self.durations, minlength=n_passes)
        overhead = self.device.kernel_launch_overhead * self.slowdown
        return {
            PASS_ORDER[code]: float(sums[code] + counts[code] * overhead)
            for code in range(n_passes)
            if counts[code]
        }

    def pass_stage_time(self) -> dict[str, dict[str, float]]:
        """Device time per (pass, stage) — the training-step breakdown
        grid: ``out["backward"]["encoder"]`` is the encoder's share of the
        backward pass."""
        cols = self.columns
        n_stages = len(cols.stage_table)
        combined = cols.pass_codes * n_stages + cols.stage_codes
        minlength = len(PASS_ORDER) * n_stages
        counts = np.bincount(combined, minlength=minlength)
        sums = np.bincount(combined, weights=self.durations, minlength=minlength)
        overhead = self.device.kernel_launch_overhead * self.slowdown
        out: dict[str, dict[str, float]] = {}
        for code in np.nonzero(counts)[0]:
            pass_name = PASS_ORDER[int(code) // n_stages]
            stage = cols.stage_table[int(code) % n_stages]
            out.setdefault(pass_name, {})[stage] = float(
                sums[code] + counts[code] * overhead)
        return out

    def pass_modality_time(self) -> dict[str, dict[str, float]]:
        """Device time per (modality, pass) over modality-attributed
        kernels — how each encoder's forward/backward shares compare."""
        cols = self.columns
        mask = cols.modality_codes != NO_MODALITY
        if not mask.any():
            return {}
        n_mods = len(cols.modality_table)
        combined = cols.modality_codes[mask] * len(PASS_ORDER) + cols.pass_codes[mask]
        minlength = n_mods * len(PASS_ORDER)
        counts = np.bincount(combined, minlength=minlength)
        sums = np.bincount(combined, weights=self.durations[mask], minlength=minlength)
        overhead = self.device.kernel_launch_overhead * self.slowdown
        out: dict[str, dict[str, float]] = {}
        for code in np.nonzero(counts)[0]:
            modality = cols.modality_table[int(code) // len(PASS_ORDER)]
            pass_name = PASS_ORDER[int(code) % len(PASS_ORDER)]
            out.setdefault(modality, {})[pass_name] = float(
                sums[code] + counts[code] * overhead)
        return out

    # -- per-modality aggregations (Figure 10) ----------------------------------

    def modality_time(self) -> dict[str, float]:
        """Encoder-stage device time per modality."""
        cols = self.columns
        mask = cols.modality_codes != NO_MODALITY
        codes = cols.modality_codes[mask]
        n_mods = len(cols.modality_table)
        sums = np.bincount(codes, weights=self.durations[mask], minlength=n_mods)
        counts = np.bincount(codes, minlength=n_mods)
        overhead = self.device.kernel_launch_overhead * self.slowdown
        return {
            mod: float(sums[code] + counts[code] * overhead)
            for code, mod in enumerate(cols.modality_table)
            if counts[code]
        }

    def modality_imbalance(self) -> float:
        """Straggler ratio: slowest modality time over fastest (>= 1)."""
        times = list(self.modality_time().values())
        if len(times) < 2 or min(times) <= 0:
            return 1.0
        return max(times) / min(times)

    def stream_schedule(self, shares: "dict[str, float] | None" = None,
                        stage: str = "encoder"):
        """Simulate the one-stream-per-modality schedule of this run.

        Each modality's encoder kernels run back-to-back in their own
        stream on a partition of the device (equal resource shares unless
        ``shares`` is given); see :mod:`repro.hw.streams`. Returns a
        :class:`~repro.hw.streams.StreamSchedule` whose per-stream
        busy/idle windows drive the Sec. 4.3.3 idle-resource analysis.
        """
        from repro.hw.streams import modality_schedule

        return modality_schedule(self, shares=shares, stage=stage)

    # -- kernel population (Figure 12) -----------------------------------------

    def kernel_size_distribution(self) -> dict[str, float]:
        """Fraction of kernels per duration bin (microseconds)."""
        n = self.columns.n
        if not n:
            return dict.fromkeys(KERNEL_SIZE_BINS, 0.0)
        bins = np.searchsorted(_SIZE_BIN_EDGES_US, self.durations * 1e6, side="right")
        counts = np.bincount(bins, minlength=len(KERNEL_SIZE_BINS))
        return {b: float(counts[i] / n) for i, b in enumerate(KERNEL_SIZE_BINS)}

    def hotspot(self, category: KernelCategory, stage: str | None = None) -> "KernelExecution | None":
        """Largest kernel of a category (optionally in a stage) by duration."""
        cols = self.columns
        mask = cols.category_codes == CATEGORY_CODES[category]
        if stage is not None:
            stage_code = cols.stage_code(stage)
            if stage_code is None:
                return None
            mask &= cols.stage_codes == stage_code
        idx = np.nonzero(mask)[0]
        if idx.size == 0:
            return None
        best = int(idx[np.argmax(self.durations[idx])])
        return self._kernel_execution(best)


class ExecutionEngine:
    """Prices traces against device models.

    ``concurrent_modalities=True`` models one CUDA stream per modality in
    the encoder stage: on a device with enough SMs, each stream gets a fair
    share of compute and bandwidth and the encoder's wall time is the
    straggler stream's time; on a device with fewer SMs than modalities
    (the Jetson Nano's single SM) the streams time-share and execution
    degenerates to serial. This is the mechanism behind the paper's
    observation that the multi/uni time ratio is higher on edge boards —
    "GPU servers possess more idle resources" to absorb the extra
    modalities (Sec. 5.2).
    """

    def __init__(self, device: DeviceSpec, concurrent_modalities: bool = False):
        self.device = device
        self.concurrent_modalities = concurrent_modalities

    # -- vectorized sub-models --------------------------------------------------

    @staticmethod
    def _concurrent_encoder_adjustment(
        cols: TraceColumns, device: DeviceSpec, totals: np.ndarray,
        saturated: np.ndarray,
    ) -> float:
        """Concurrent-stream encoder makespan minus the serial encoder time.

        Classic makespan bound: the wall time is the larger of (a) the
        critical stream's time running alone (latency bound) and (b) the
        device's time to chew the *total* work at full rates (throughput
        bound); see the class docstring.
        """
        enc_code = cols.stage_code("encoder")
        if enc_code is None:
            return 0.0
        enc = cols.stage_codes == enc_code
        serial = float(totals[enc].sum())
        mod_codes = cols.modality_codes[enc]
        attributed = mod_codes != NO_MODALITY
        stream_counts = np.bincount(mod_codes[attributed],
                                    minlength=len(cols.modality_table))
        n_streams = int((stream_counts > 0).sum())
        if n_streams < 2 or device.sm_count < n_streams:
            return 0.0  # serial == serial

        enc_totals = totals[enc]
        per_stream = np.bincount(mod_codes[attributed],
                                 weights=enc_totals[attributed],
                                 minlength=len(cols.modality_table))
        latency_bound = float(per_stream[stream_counts > 0].max())
        throughput_bound = float(saturated[enc][attributed].sum())
        tail = float(enc_totals[~attributed].sum())
        return max(latency_bound, throughput_bound) + tail - serial

    def _price_host_events(self, cols: TraceColumns) -> tuple[float, float, float, float]:
        """Vectorized host-event pricing: (launch, transfer, data_prep, sync)."""
        d = self.device
        kinds = cols.host_kind_codes
        hbytes = cols.host_bytes

        transfer_mask = (kinds == _H2D) | (kinds == _D2H)
        n_transfers = int(transfer_mask.sum())
        transfer = n_transfers * d.transfer_latency
        if not d.unified_memory and n_transfers:
            transfer += float(hbytes[transfer_mask].sum()) / d.pcie_bandwidth

        host_speed = d.host_gflops * 1e9
        data_prep = (
            float(hbytes[kinds == _DATA_PREP].sum()) * 8.0 / host_speed
            + float(hbytes[kinds == _PREPROCESS].sum()) * 6.0 / host_speed
        )
        sync = int((kinds == _SYNC).sum()) * 5.0 * d.kernel_launch_overhead
        launch = int((kinds == _LAUNCH).sum()) * d.kernel_launch_overhead
        return launch, transfer, data_prep, sync

    # -- entry points -----------------------------------------------------------

    def run(self, trace: Trace, model_bytes: float = 0.0, input_bytes: float = 0.0) -> ExecutionReport:
        """Price every event in the trace and aggregate.

        ``model_bytes``: parameter footprint of the model; ``input_bytes``:
        total size of the input batch across modalities. Both feed the
        memory model; capacity pressure beyond ~80% applies a thrashing
        slowdown to all times (the Jetson Nano b=320 cliff of Figure 14).
        """
        cols = trace.columns()
        params = DeviceParams.from_spec(self.device)
        lat = kernel_latency_batch(cols, params)

        gpu_time = float(lat.total.sum())
        if self.concurrent_modalities:
            gpu_time += self._concurrent_encoder_adjustment(
                cols, self.device, lat.total, saturated_latency_batch(cols, params)
            )

        extra_launch, transfer_time, data_prep_time, sync_time = self._price_host_events(cols)
        launch_time = cols.n * self.device.kernel_launch_overhead + extra_launch

        mem = memory_breakdown_columns(cols, model_bytes=model_bytes, input_bytes=input_bytes)
        pressure = capacity_pressure(mem, self.device)
        slowdown = thrash_factor(pressure)

        host_time = (launch_time + transfer_time + data_prep_time + sync_time) * slowdown
        gpu_time *= slowdown
        durations = lat.total * slowdown if slowdown != 1.0 else lat.total

        return ExecutionReport(
            device=self.device,
            trace=trace,
            columns=cols,
            gpu_time=gpu_time,
            host_time=host_time,
            launch_time=launch_time * slowdown,
            transfer_time=transfer_time * slowdown,
            data_prep_time=data_prep_time * slowdown,
            sync_time=sync_time * slowdown,
            memory=mem,
            memory_pressure=pressure,
            slowdown=slowdown,
            durations=durations,
            raw_latency=lat,
            params=params,
        )

    def run_sweep(
        self,
        trace: Trace,
        devices: Sequence[str | DeviceSpec],
        model_bytes: float = 0.0,
        input_bytes: float = 0.0,
    ) -> list[ExecutionReport]:
        """Price one trace on many devices in a single broadcasted pass.

        The device parameters become ``(D, 1)`` columns, so the roofline,
        counter and stall models evaluate ``(D, K)`` arrays once instead
        of re-running per device. Returns one :class:`ExecutionReport` per
        entry of ``devices`` (order preserved); each report is a row view
        of the shared arrays.
        """
        specs = [get_device(d) if isinstance(d, str) else d for d in devices]
        if not specs:
            return []
        cols = trace.columns()
        params = DeviceParams.from_specs(specs)
        lat = kernel_latency_batch(cols, params)
        mem = memory_breakdown_columns(cols, model_bytes=model_bytes, input_bytes=input_bytes)
        saturated = (
            saturated_latency_batch(cols, params) if self.concurrent_modalities else None
        )

        reports = []
        for d, spec in enumerate(specs):
            engine = ExecutionEngine(spec, self.concurrent_modalities)
            lat_d = LatencyColumns(
                total=lat.total[d],
                compute_time=device_row(lat.compute_time, d),
                memory_time=device_row(lat.memory_time, d),
                dram_bytes=device_row(lat.dram_bytes, d),
                compute_utilization=device_row(lat.compute_utilization, d),
                occupancy=device_row(lat.occupancy, d),
                fixed_overhead=spec.kernel_fixed_overhead,
            )

            gpu_time = float(lat_d.total.sum())
            if self.concurrent_modalities:
                gpu_time += self._concurrent_encoder_adjustment(
                    cols, spec, lat_d.total, device_row(saturated, d)
                )

            extra_launch, transfer_time, data_prep_time, sync_time = (
                engine._price_host_events(cols)
            )
            launch_time = cols.n * spec.kernel_launch_overhead + extra_launch
            pressure = capacity_pressure(mem, spec)
            slowdown = thrash_factor(pressure)
            host_time = (launch_time + transfer_time + data_prep_time + sync_time) * slowdown
            gpu_time *= slowdown
            durations = lat_d.total * slowdown if slowdown != 1.0 else lat_d.total

            reports.append(ExecutionReport(
                device=spec,
                trace=trace,
                columns=cols,
                gpu_time=gpu_time,
                host_time=host_time,
                launch_time=launch_time * slowdown,
                transfer_time=transfer_time * slowdown,
                data_prep_time=data_prep_time * slowdown,
                sync_time=sync_time * slowdown,
                memory=mem,
                memory_pressure=pressure,
                slowdown=slowdown,
                durations=durations,
                raw_latency=lat_d,
                params=DeviceParams.from_spec(spec),
            ))
        return reports
