"""Execution engine: replays a trace against a device model.

This is the reproduction's stand-in for "run the workload on the 2080Ti /
Jetson and profile it with Nsight". Given a :class:`~repro.trace.Trace`
(captured once, device-independently) and a
:class:`~repro.hw.device.DeviceSpec`, the engine prices every kernel with
the roofline latency model, derives its profiler counters and stall
attribution, prices every host event (transfers, synchronization, data
preparation) and produces an :class:`ExecutionReport` with all the
aggregations the paper's figures need.

The timeline model is serialized: GPU kernels execute back-to-back and
host work (launches, copies, data prep, syncs) adds to wall time. This is
the conservative single-stream behaviour the paper observes — GPUs "stay
idle for most of the application time" waiting on host-side work.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.hw.counters import KernelCounters, aggregate_counters, derive_counters
from repro.hw.device import DeviceSpec
from repro.hw.latency import LatencyBreakdown, kernel_latency, saturated_latency
from repro.hw.memory import MemoryBreakdown, capacity_pressure, memory_breakdown, thrash_factor
from repro.hw.stalls import aggregate_stalls, stall_breakdown
from repro.hw.transfer import d2h_time, h2d_time, host_data_prep_time
from repro.trace.events import HostEvent, HostOpKind, KernelCategory, KernelEvent
from repro.trace.tracer import Trace

# Kernel-duration bins (microseconds) used by the Figure-12 histogram.
KERNEL_SIZE_BINS = ("0-10", "10-50", "50-100", ">100")


@dataclass
class KernelExecution:
    """One kernel launch priced on a device."""

    event: KernelEvent
    latency: LatencyBreakdown
    counters: KernelCounters
    stalls: dict[str, float]

    @property
    def duration(self) -> float:
        return self.latency.total


@dataclass
class ExecutionReport:
    """Everything the analyses need about one inference run on one device."""

    device: DeviceSpec
    kernels: list[KernelExecution]
    gpu_time: float
    host_time: float  # CPU + runtime: launches, copies, data prep, syncs
    launch_time: float
    transfer_time: float
    data_prep_time: float
    sync_time: float
    memory: MemoryBreakdown
    memory_pressure: float
    slowdown: float  # thrashing multiplier already applied to times
    host_events: list[HostEvent] = field(default_factory=list)

    # -- headline numbers ------------------------------------------------------

    @property
    def total_time(self) -> float:
        return self.gpu_time + self.host_time

    @property
    def cpu_runtime_share(self) -> float:
        """Fraction of wall time spent in CPU + runtime work (Figure 11)."""
        total = self.total_time
        return self.host_time / total if total > 0 else 0.0

    # -- per-stage aggregations (Figures 6, 7, 8) -------------------------------

    def stage_time(self) -> dict[str, float]:
        """Device time per stage, including per-kernel launch overhead."""
        out: dict[str, float] = defaultdict(float)
        for kx in self.kernels:
            out[kx.event.stage] += kx.duration + self.device.kernel_launch_overhead * self.slowdown
        return dict(out)

    def stage_counters(self) -> dict[str, dict[str, float]]:
        """Duration-weighted counters per stage (Figure 7)."""
        groups: dict[str, list[tuple[KernelCounters, float]]] = defaultdict(list)
        for kx in self.kernels:
            groups[kx.event.stage].append((kx.counters, kx.duration))
        return {stage: aggregate_counters(items) for stage, items in groups.items()}

    def stage_stalls(self) -> dict[str, dict[str, float]]:
        """Duration-weighted stall breakdown per stage (Figure 15)."""
        groups: dict[str, list[tuple[dict[str, float], float]]] = defaultdict(list)
        for kx in self.kernels:
            groups[kx.event.stage].append((kx.stalls, kx.duration))
        return {stage: aggregate_stalls(items) for stage, items in groups.items()}

    def overall_stalls(self) -> dict[str, float]:
        return aggregate_stalls([(kx.stalls, kx.duration) for kx in self.kernels])

    def category_time_breakdown(self, stage: str | None = None) -> dict[KernelCategory, float]:
        """Time share per kernel category, optionally within one stage (Fig. 8)."""
        totals: dict[KernelCategory, float] = defaultdict(float)
        for kx in self.kernels:
            if stage is not None and kx.event.stage != stage:
                continue
            totals[kx.event.category] += kx.duration
        grand = sum(totals.values())
        if grand <= 0:
            return {}
        return {cat: t / grand for cat, t in totals.items()}

    # -- per-modality aggregations (Figure 10) ----------------------------------

    def modality_time(self) -> dict[str, float]:
        """Encoder-stage device time per modality."""
        out: dict[str, float] = defaultdict(float)
        for kx in self.kernels:
            if kx.event.modality is not None:
                out[kx.event.modality] += (
                    kx.duration + self.device.kernel_launch_overhead * self.slowdown
                )
        return dict(out)

    def modality_imbalance(self) -> float:
        """Straggler ratio: slowest modality time over fastest (>= 1)."""
        times = list(self.modality_time().values())
        if len(times) < 2 or min(times) <= 0:
            return 1.0
        return max(times) / min(times)

    # -- kernel population (Figure 12) -----------------------------------------

    def kernel_size_distribution(self) -> dict[str, float]:
        """Fraction of kernels per duration bin (microseconds)."""
        counts = dict.fromkeys(KERNEL_SIZE_BINS, 0)
        for kx in self.kernels:
            us = kx.duration * 1e6
            if us < 10:
                counts["0-10"] += 1
            elif us < 50:
                counts["10-50"] += 1
            elif us < 100:
                counts["50-100"] += 1
            else:
                counts[">100"] += 1
        n = len(self.kernels)
        return {b: c / n for b, c in counts.items()} if n else dict.fromkeys(KERNEL_SIZE_BINS, 0.0)

    def hotspot(self, category: KernelCategory, stage: str | None = None) -> "KernelExecution | None":
        """Largest kernel of a category (optionally in a stage) by duration."""
        pool = [
            kx
            for kx in self.kernels
            if kx.event.category == category and (stage is None or kx.event.stage == stage)
        ]
        return max(pool, key=lambda kx: kx.duration) if pool else None


class ExecutionEngine:
    """Prices traces against device models.

    ``concurrent_modalities=True`` models one CUDA stream per modality in
    the encoder stage: on a device with enough SMs, each stream gets a fair
    share of compute and bandwidth and the encoder's wall time is the
    straggler stream's time; on a device with fewer SMs than modalities
    (the Jetson Nano's single SM) the streams time-share and execution
    degenerates to serial. This is the mechanism behind the paper's
    observation that the multi/uni time ratio is higher on edge boards —
    "GPU servers possess more idle resources" to absorb the extra
    modalities (Sec. 5.2).
    """

    def __init__(self, device: DeviceSpec, concurrent_modalities: bool = False):
        self.device = device
        self.concurrent_modalities = concurrent_modalities

    def _concurrent_encoder_time(self, encoder_kernels: list[KernelEvent]) -> float:
        """Encoder wall time under one work-conserving stream per modality.

        Classic makespan bound: the wall time is the larger of
        (a) the critical stream's time running alone (latency bound — on an
        underutilized device, streams overlap essentially for free), and
        (b) the device's time to chew the *total* work at full rates
        (throughput bound — once the machine is saturated, concurrency
        cannot help and execution degenerates toward serial).
        """
        streams: dict[str, list[KernelEvent]] = defaultdict(list)
        unattributed: list[KernelEvent] = []
        for ev in encoder_kernels:
            if ev.modality is None:
                unattributed.append(ev)
            else:
                streams[ev.modality].append(ev)
        n = len(streams)
        if n < 2 or self.device.sm_count < n:
            # Single modality, or too few SMs to co-schedule (Jetson Nano's
            # single SM time-shares): serial execution.
            return sum(kernel_latency(ev, self.device).total for ev in encoder_kernels)

        latency_bound = max(
            sum(kernel_latency(ev, self.device).total for ev in events)
            for events in streams.values()
        )
        throughput_bound = sum(
            saturated_latency(ev, self.device) for ev in encoder_kernels if ev.modality
        )
        tail = sum(kernel_latency(ev, self.device).total for ev in unattributed)
        return max(latency_bound, throughput_bound) + tail

    def _price_host_event(self, ev: HostEvent) -> tuple[str, float]:
        """Return (bucket, seconds) for one host event."""
        d = self.device
        if ev.kind == HostOpKind.H2D:
            return "transfer", h2d_time(ev.bytes, d)
        if ev.kind == HostOpKind.D2H:
            return "transfer", d2h_time(ev.bytes, d)
        if ev.kind == HostOpKind.DATA_PREP:
            # Intermediate feature maps are re-laid-out, padded and glued on
            # the host — the "lengthy intermediate data operations" that can
            # even outweigh GPU computation (Sec. 4.3.3).
            return "data_prep", host_data_prep_time(ev.bytes, d, ops_per_byte=8.0)
        if ev.kind == HostOpKind.PREPROCESS:
            return "data_prep", host_data_prep_time(ev.bytes, d, ops_per_byte=6.0)
        if ev.kind == HostOpKind.SYNC:
            # A cudaStreamSynchronize-style round trip.
            return "sync", 5.0 * d.kernel_launch_overhead
        if ev.kind == HostOpKind.LAUNCH:
            return "launch", d.kernel_launch_overhead
        raise ValueError(f"unknown host event kind {ev.kind}")

    def run(self, trace: Trace, model_bytes: float = 0.0, input_bytes: float = 0.0) -> ExecutionReport:
        """Price every event in the trace and aggregate.

        ``model_bytes``: parameter footprint of the model; ``input_bytes``:
        total size of the input batch across modalities. Both feed the
        memory model; capacity pressure beyond ~80% applies a thrashing
        slowdown to all times (the Jetson Nano b=320 cliff of Figure 14).
        """
        kernels: list[KernelExecution] = []
        gpu_time = 0.0
        for ev in trace.kernels:
            lat = kernel_latency(ev, self.device)
            counters = derive_counters(ev, self.device, lat)
            stalls = stall_breakdown(ev, self.device, lat)
            kernels.append(KernelExecution(event=ev, latency=lat, counters=counters, stalls=stalls))
            gpu_time += lat.total

        if self.concurrent_modalities:
            # Replace the encoder stage's serial time with the concurrent
            # stream makespan; per-kernel records keep their isolated
            # latencies (that is what Nsight reports per kernel, too).
            encoder_events = [ev for ev in trace.kernels if ev.stage == "encoder"]
            serial_encoder = sum(
                kx.latency.total for kx in kernels if kx.event.stage == "encoder"
            )
            gpu_time += self._concurrent_encoder_time(encoder_events) - serial_encoder

        launch_time = len(kernels) * self.device.kernel_launch_overhead
        transfer_time = 0.0
        data_prep_time = 0.0
        sync_time = 0.0
        for ev in trace.host_events:
            bucket, seconds = self._price_host_event(ev)
            if bucket == "transfer":
                transfer_time += seconds
            elif bucket == "data_prep":
                data_prep_time += seconds
            elif bucket == "sync":
                sync_time += seconds
            else:
                launch_time += seconds

        mem = memory_breakdown(trace, model_bytes=model_bytes, input_bytes=input_bytes)
        pressure = capacity_pressure(mem, self.device)
        slowdown = thrash_factor(pressure)

        host_time = (launch_time + transfer_time + data_prep_time + sync_time) * slowdown
        gpu_time *= slowdown
        if slowdown != 1.0:
            for kx in kernels:
                kx.latency = LatencyBreakdown(
                    total=kx.latency.total * slowdown,
                    compute_time=kx.latency.compute_time * slowdown,
                    memory_time=kx.latency.memory_time * slowdown,
                    fixed_overhead=kx.latency.fixed_overhead,
                    dram_bytes=kx.latency.dram_bytes,
                    compute_utilization=kx.latency.compute_utilization,
                    occupancy=kx.latency.occupancy,
                )

        return ExecutionReport(
            device=self.device,
            kernels=kernels,
            gpu_time=gpu_time,
            host_time=host_time,
            launch_time=launch_time * slowdown,
            transfer_time=transfer_time * slowdown,
            data_prep_time=data_prep_time * slowdown,
            sync_time=sync_time * slowdown,
            memory=mem,
            memory_pressure=pressure,
            slowdown=slowdown,
            host_events=list(trace.host_events),
        )
