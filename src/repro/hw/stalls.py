"""Warp-stall attribution model (Figure 15).

Nsight classifies the reasons warps could not issue each cycle. The paper
buckets them into seven groups: cache dependency, memory dependency,
execution dependency, busy pipeline, synchronization, instruction not
fetched, and everything else. Its key edge-migration finding is that the
dominant stall reasons *shift* between platforms: memory/cache dependency
dominates on the 2080Ti server, while execution dependency and instruction
fetch dominate on the compute-starved Jetson Nano.

We reproduce that mechanism: stall shares are derived from the kernel's
roofline balance on the device (memory-bound time begets Mem/Cache stalls,
compute-bound time begets Exec/Pipe stalls) modulated by device pressure
parameters that encode how starved the machine's front end and ALUs are.
"""

from __future__ import annotations

from repro.hw.device import DeviceSpec
from repro.hw.latency import LatencyBreakdown, kernel_latency
from repro.trace.events import KernelCategory, KernelEvent

STALL_REASONS = ("Cache", "Mem", "Exec", "Pipe", "Sync", "Inst", "Else")

# Category-intrinsic synchronization weight: reductions and batch-norm
# kernels barrier across the block; other categories barely do.
_SYNC_WEIGHT: dict[KernelCategory, float] = {
    KernelCategory.REDUCE: 0.30,
    KernelCategory.BNORM: 0.22,
    KernelCategory.POOLING: 0.10,
    KernelCategory.GEMM: 0.05,
    KernelCategory.CONV: 0.06,
    KernelCategory.ELEWISE: 0.02,
    KernelCategory.RELU: 0.02,
    KernelCategory.OTHER: 0.04,
}


def stall_breakdown(
    kernel: KernelEvent, device: DeviceSpec, latency: LatencyBreakdown | None = None
) -> dict[str, float]:
    """Normalized stall-reason shares for one kernel on one device."""
    lat = latency or kernel_latency(kernel, device)
    duration = max(lat.total, 1e-12)
    mem_frac = lat.memory_time / duration
    comp_frac = lat.compute_time / duration

    # Cache-resident reuse turns DRAM stalls into (shorter) cache stalls.
    reuse = max(kernel.reuse_factor, 1.0)
    l2_hit = min(0.95, 1.0 - 1.0 / reuse)

    weights = {
        "Mem": mem_frac * (1.0 - l2_hit) * 1.2,
        "Cache": mem_frac * l2_hit * 0.9,
        "Exec": comp_frac * device.exec_dep_pressure * 3.0,
        "Pipe": comp_frac * 0.5,
        "Sync": _SYNC_WEIGHT[kernel.category],
        "Inst": device.inst_fetch_pressure * (0.4 + 0.6 * comp_frac),
        "Else": 0.08,
    }
    total = sum(weights.values())
    return {reason: weights[reason] / total for reason in STALL_REASONS}


def aggregate_stalls(items: list[tuple[dict[str, float], float]]) -> dict[str, float]:
    """Duration-weighted aggregate of per-kernel stall breakdowns."""
    total_w = sum(w for _, w in items)
    if total_w <= 0:
        return {reason: 0.0 for reason in STALL_REASONS}
    return {
        reason: sum(b.get(reason, 0.0) * w for b, w in items) / total_w
        for reason in STALL_REASONS
    }
