"""Hardware simulation substrate: device models, latency, counters, stalls."""

from repro.hw.counters import KernelCounters, aggregate_counters, derive_counters
from repro.hw.device import (
    DEVICES,
    DeviceSpec,
    JETSON_NANO,
    JETSON_ORIN,
    RTX_2080TI,
    get_device,
)
from repro.hw.energy import (
    EnergyBreakdown,
    energy_delay_product,
    modality_energy,
    report_energy,
    stage_energy,
)
from repro.hw.engine import (
    ExecutionEngine,
    ExecutionReport,
    KERNEL_SIZE_BINS,
    KernelExecution,
)
from repro.hw.latency import LatencyBreakdown, dram_traffic, kernel_latency, machine_fill
from repro.hw.memory import (
    MemoryBreakdown,
    capacity_pressure,
    memory_breakdown,
    memory_breakdown_columns,
    thrash_factor,
)
from repro.hw.reference import ScalarExecutionEngine, ScalarExecutionReport
from repro.hw.stalls import STALL_REASONS, aggregate_stalls, stall_breakdown
from repro.hw.streams import (
    StreamLoad,
    StreamSchedule,
    StreamScheduler,
    StreamWindow,
    modality_schedule,
    modality_streams,
    tenant_schedule,
    tenant_streams,
)
from repro.hw.scheduler import ServingResult, batch_time_from_profile, simulate_serving
from repro.hw.transfer import d2h_time, h2d_time, host_data_prep_time
from repro.hw.vectorized import (
    CounterColumns,
    DeviceParams,
    LatencyColumns,
    derive_counters_batch,
    kernel_latency_batch,
    saturated_latency_batch,
    stall_breakdown_batch,
)

__all__ = [
    "EnergyBreakdown", "energy_delay_product", "modality_energy", "report_energy", "stage_energy",
    "ServingResult", "batch_time_from_profile", "simulate_serving",
    "KernelCounters", "aggregate_counters", "derive_counters",
    "DEVICES", "DeviceSpec", "JETSON_NANO", "JETSON_ORIN", "RTX_2080TI", "get_device",
    "ExecutionEngine", "ExecutionReport", "KERNEL_SIZE_BINS", "KernelExecution",
    "ScalarExecutionEngine", "ScalarExecutionReport",
    "LatencyBreakdown", "dram_traffic", "kernel_latency", "machine_fill",
    "MemoryBreakdown", "capacity_pressure", "memory_breakdown",
    "memory_breakdown_columns", "thrash_factor",
    "STALL_REASONS", "aggregate_stalls", "stall_breakdown",
    "StreamLoad", "StreamSchedule", "StreamScheduler", "StreamWindow",
    "modality_schedule", "modality_streams", "tenant_schedule", "tenant_streams",
    "d2h_time", "h2d_time", "host_data_prep_time",
    "CounterColumns", "DeviceParams", "LatencyColumns",
    "derive_counters_batch", "kernel_latency_batch",
    "saturated_latency_batch", "stall_breakdown_batch",
]
