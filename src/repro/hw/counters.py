"""Nsight-Compute-style per-kernel counters, derived analytically.

The paper traces five microarchitectural metrics with ``nsight compute``
(Sec. 4.3.1): DRAM utilization, achieved occupancy, IPC, global-load
efficiency and global-store efficiency; its Figure-9 kernel deep dives add
L1/L2 hit rates, fp32 op counts, DRAM read bytes and read transactions.
This module derives each of those from the same underlying quantities the
real counters measure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.device import DeviceSpec
from repro.hw.latency import LatencyBreakdown, kernel_latency
from repro.trace.events import KernelCategory, KernelEvent

# Transaction size used to convert bytes to read transactions (32B sectors).
_SECTOR_BYTES = 32.0

# Issue-rate ceiling per kernel category: how close each category's
# instruction mix gets to the scheduler's peak issue rate. Shared with the
# vectorized counter model (see repro.hw.vectorized).
_ISSUE_EFFICIENCY: dict[KernelCategory, float] = {
    KernelCategory.GEMM: 1.0,
    KernelCategory.CONV: 0.95,
    KernelCategory.BNORM: 0.55,
    KernelCategory.ELEWISE: 0.70,
    KernelCategory.POOLING: 0.60,
    KernelCategory.RELU: 0.75,
    KernelCategory.REDUCE: 0.40,
    KernelCategory.OTHER: 0.35,
}


@dataclass(frozen=True)
class KernelCounters:
    """Simulated profiler counters for one kernel execution."""

    duration: float  # seconds
    dram_utilization: float  # 0..1 (nsight reports 0..10; we keep a fraction)
    achieved_occupancy: float  # 0..1
    ipc: float  # instructions per cycle per SM scheduler
    gld_efficiency: float  # 0..1
    gst_efficiency: float  # 0..1
    l1_hit_rate: float  # 0..1
    l2_hit_rate: float  # 0..1
    l2_read_hit_rate: float
    l2_write_hit_rate: float
    fp32_ops: float
    dram_read_bytes: float
    read_transactions_per_second: float


def derive_counters(
    kernel: KernelEvent, device: DeviceSpec, latency: LatencyBreakdown | None = None
) -> KernelCounters:
    """Compute the counter set for ``kernel`` executed on ``device``."""
    lat = latency or kernel_latency(kernel, device)
    duration = lat.total

    # DRAM utilization: the share of the kernel's lifetime the DRAM pipes
    # are busy, scaled by how close the achieved bandwidth is to peak.
    busy = lat.memory_time / duration if duration > 0 else 0.0
    achieved_bw = lat.dram_bytes / duration if duration > 0 else 0.0
    dram_util = min(1.0, busy * min(1.0, achieved_bw / max(device.dram_bandwidth, 1.0) * 4.0))

    # IPC: issue rate scaled by compute-side business. Memory-bound kernels
    # leave the schedulers idle waiting on loads.
    compute_busy = lat.compute_time / duration if duration > 0 else 0.0
    issue_efficiency = _ISSUE_EFFICIENCY[kernel.category]
    ipc = device.issue_width * compute_busy * issue_efficiency
    # Even pure copy kernels retire some instructions.
    ipc = max(ipc, 0.08 * device.issue_width * min(1.0, busy + compute_busy))

    # Load/store efficiency mirror the access pattern's coalescing.
    gld = kernel.coalesced_fraction
    gst = min(1.0, kernel.coalesced_fraction + 0.08)

    # Cache hit rates follow data reuse; L1 captures a fixed fraction of
    # what the L2 would otherwise serve.
    reuse = max(kernel.reuse_factor, 1.0)
    l2_hit = min(0.95, 1.0 - 1.0 / reuse)
    small_working_set = kernel.bytes_read > 0 and kernel.bytes_read < device.l2_bytes
    if small_working_set:
        l2_hit = max(l2_hit, 0.60)
    l1_hit = 0.45 * l2_hit
    l2_read_hit = l2_hit
    # Writes mostly allocate in L2 on modern parts.
    l2_write_hit = min(0.98, l2_hit + 0.25)

    dram_read = lat.dram_bytes - kernel.bytes_written
    dram_read = max(dram_read, 0.0)
    read_tps = (kernel.bytes_read / _SECTOR_BYTES) / duration if duration > 0 else 0.0

    return KernelCounters(
        duration=duration,
        dram_utilization=dram_util,
        achieved_occupancy=lat.occupancy,
        ipc=ipc,
        gld_efficiency=gld,
        gst_efficiency=gst,
        l1_hit_rate=l1_hit,
        l2_hit_rate=l2_hit,
        l2_read_hit_rate=l2_read_hit,
        l2_write_hit_rate=l2_write_hit,
        fp32_ops=kernel.flops,
        dram_read_bytes=dram_read,
        read_transactions_per_second=read_tps,
    )


def aggregate_counters(items: list[tuple[KernelCounters, float]]) -> dict[str, float]:
    """Duration-weighted average of counters; items are (counters, weight).

    This is how per-stage resource-usage numbers (Figure 7) are produced:
    each kernel's counters are weighted by its share of the stage's time,
    which is what a per-stage nsight summary reports.
    """
    total_w = sum(w for _, w in items)
    if total_w <= 0:
        return {}
    fields = (
        "dram_utilization",
        "achieved_occupancy",
        "ipc",
        "gld_efficiency",
        "gst_efficiency",
        "l1_hit_rate",
        "l2_hit_rate",
    )
    out = {f: sum(getattr(c, f) * w for c, w in items) / total_w for f in fields}
    out["duration"] = total_w
    out["fp32_ops"] = sum(c.fp32_ops for c, _ in items)
    out["dram_read_bytes"] = sum(c.dram_read_bytes for c, _ in items)
    return out
