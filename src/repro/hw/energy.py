"""Device energy model.

The paper motivates MMBench with the energy constraints of edge inference
("supporting the inference of such diverse and heterogeneous workloads
with high energy efficiency ... is becoming a great challenge") and its
modality analysis proposes throttling encoders to save energy; the
Timeloop integration it advertises outputs latency *and energy*. This
module provides the matching energy accounting for the reproduction.

Per-kernel energy is the sum of a compute term (pJ/FLOP), a memory term
(pJ/DRAM-byte) and idle leakage over the kernel's duration; host work
burns host power. The per-device coefficients follow the usual
technology-node figures (server-class Turing vs 20 nm Maxwell vs
Ampere-class Orin) with the board-level TDPs from the datasheets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hw.device import DeviceSpec
from repro.hw.engine import ExecutionReport
from repro.trace.columns import NO_MODALITY

# Energy coefficients per device, keyed by DeviceSpec.name.
#   pj_per_flop: dynamic compute energy
#   pj_per_dram_byte: DRAM access energy
#   idle_watts: board idle power while the device is active
#   host_watts: CPU power during host-side work
_COEFFICIENTS: dict[str, dict[str, float]] = {
    "rtx2080ti": dict(pj_per_flop=9.0, pj_per_dram_byte=70.0, idle_watts=55.0,
                      host_watts=65.0),
    "jetson_nano": dict(pj_per_flop=21.0, pj_per_dram_byte=120.0, idle_watts=1.5,
                        host_watts=3.0),
    "jetson_orin": dict(pj_per_flop=6.0, pj_per_dram_byte=60.0, idle_watts=6.0,
                        host_watts=10.0),
}


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy (joules) for one execution report."""

    compute: float
    memory: float
    idle: float
    host: float

    @property
    def total(self) -> float:
        return self.compute + self.memory + self.idle + self.host

    @property
    def device_total(self) -> float:
        return self.compute + self.memory + self.idle

    def as_dict(self) -> dict[str, float]:
        return {
            "compute": self.compute,
            "memory": self.memory,
            "idle": self.idle,
            "host": self.host,
            "total": self.total,
        }


def coefficients_for(device: DeviceSpec) -> dict[str, float]:
    try:
        return _COEFFICIENTS[device.name]
    except KeyError:
        raise KeyError(
            f"no energy coefficients for device {device.name!r}; "
            f"known: {sorted(_COEFFICIENTS)}"
        ) from None


def report_energy(report: ExecutionReport) -> EnergyBreakdown:
    """Energy of one priced inference run."""
    coeff = coefficients_for(report.device)
    cols = report.columns
    compute = float(cols.flops.sum()) * coeff["pj_per_flop"] * 1e-12
    memory = float(report.raw_latency.dram_bytes.sum()) * coeff["pj_per_dram_byte"] * 1e-12
    idle = report.gpu_time * coeff["idle_watts"]
    host = report.host_time * coeff["host_watts"]
    return EnergyBreakdown(compute=compute, memory=memory, idle=idle, host=host)


def _per_kernel_joules(report: ExecutionReport, coeff: dict[str, float]):
    """Device energy per kernel: compute + DRAM + idle-over-duration."""
    return (
        report.columns.flops * (coeff["pj_per_flop"] * 1e-12)
        + report.raw_latency.dram_bytes * (coeff["pj_per_dram_byte"] * 1e-12)
        + report.durations * coeff["idle_watts"]
    )


def stage_energy(report: ExecutionReport) -> dict[str, float]:
    """Device energy per stage (joules), compute + memory + idle share."""
    coeff = coefficients_for(report.device)
    cols = report.columns
    joules = _per_kernel_joules(report, coeff)
    sums = np.bincount(cols.stage_codes, weights=joules, minlength=len(cols.stage_table))
    counts = np.bincount(cols.stage_codes, minlength=len(cols.stage_table))
    return {
        stage: float(sums[code])
        for code, stage in enumerate(cols.stage_table)
        if counts[code]
    }


def energy_delay_product(report: ExecutionReport) -> float:
    """EDP in joule-seconds — the standard efficiency figure of merit."""
    return report_energy(report).total * report.total_time


def modality_energy(report: ExecutionReport) -> dict[str, float]:
    """Device energy per modality — the basis of the encoder-throttling
    tradeoff the paper's Sec. 4.2.3 discusses."""
    coeff = coefficients_for(report.device)
    cols = report.columns
    mask = cols.modality_codes != NO_MODALITY
    joules = _per_kernel_joules(report, coeff)[mask]
    codes = cols.modality_codes[mask]
    sums = np.bincount(codes, weights=joules, minlength=len(cols.modality_table))
    counts = np.bincount(codes, minlength=len(cols.modality_table))
    return {
        mod: float(sums[code])
        for code, mod in enumerate(cols.modality_table)
        if counts[code]
    }
