"""Host-device data movement model.

On the discrete-GPU server every modality's input batch crosses PCIe
(host-to-device) and intermediate results that need host post-processing
cross back (device-to-host); each call also pays a fixed runtime latency.
On Jetson-class devices CPU and GPU share one physical memory, so the copy
itself vanishes but the runtime synchronization cost remains — exactly the
unified-memory behaviour the paper notes in Sec. 3.3.
"""

from __future__ import annotations

from repro.hw.device import DeviceSpec


def h2d_time(bytes_: float, device: DeviceSpec) -> float:
    """Host-to-device transfer time for one call."""
    if bytes_ < 0:
        raise ValueError("negative transfer size")
    if device.unified_memory:
        return device.transfer_latency
    return device.transfer_latency + bytes_ / device.pcie_bandwidth


def d2h_time(bytes_: float, device: DeviceSpec) -> float:
    """Device-to-host transfer time for one call."""
    # Symmetric link in this model.
    return h2d_time(bytes_, device)


def host_data_prep_time(bytes_: float, device: DeviceSpec, ops_per_byte: float = 2.0) -> float:
    """CPU time to massage intermediate data (reshaping, gluing features).

    The fusion stage's host-side preparation of feature maps is the "lengthy
    intermediate data operations" the paper identifies as a multi-modal
    bottleneck; its cost scales with the host's (not the GPU's) speed.
    """
    if bytes_ < 0:
        raise ValueError("negative data size")
    return (bytes_ * ops_per_byte) / (device.host_gflops * 1e9)
