"""Roofline-style kernel latency model with size-dependent efficiency.

A kernel's device time is ``max(compute time, memory time)`` plus a small
fixed ramp. Both components are derated by utilization factors that fall
off for small kernels — the mechanism behind the paper's batch-size case
study (Sec. 5.1): small-batch workloads launch many sub-10-microsecond
kernels that cannot fill the machine, so a 10x batch increase yields far
less than a 10x latency reduction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.device import DeviceSpec
from repro.trace.events import KernelCategory, KernelEvent

# Peak-fraction ceilings per kernel category for large kernels. GEMM and
# conv (implicit GEMM) approach peak; element-wise ops are bandwidth-bound
# so their compute ceiling rarely matters; reductions serialize partially.
_COMPUTE_EFFICIENCY: dict[KernelCategory, float] = {
    KernelCategory.GEMM: 0.80,
    KernelCategory.CONV: 0.72,
    KernelCategory.BNORM: 0.45,
    KernelCategory.ELEWISE: 0.60,
    KernelCategory.POOLING: 0.50,
    KernelCategory.RELU: 0.65,
    KernelCategory.REDUCE: 0.35,
    KernelCategory.OTHER: 0.40,
}

# Achievable fraction of DRAM bandwidth for perfectly coalesced access.
_MEM_EFFICIENCY_CEILING = 0.85

# How much of a kernel's logical read traffic the cache hierarchy can
# absorb, as a cap on the reuse factor's effect.
_MAX_CACHE_REUSE = 48.0


@dataclass(frozen=True)
class LatencyBreakdown:
    """Latency components for one kernel on one device."""

    total: float
    compute_time: float
    memory_time: float
    fixed_overhead: float
    dram_bytes: float
    compute_utilization: float  # 0..1 fraction of the machine the kernel fills
    occupancy: float

    @property
    def bound(self) -> str:
        return "memory" if self.memory_time >= self.compute_time else "compute"


def dram_traffic(kernel: KernelEvent, device: DeviceSpec) -> float:
    """Estimate DRAM bytes after cache filtering of the logical traffic.

    Reads are filtered by the reuse factor (bounded by what the L2 could
    plausibly capture); writes mostly go through to DRAM.
    """
    reuse = min(max(kernel.reuse_factor, 1.0), _MAX_CACHE_REUSE)
    # A tiny working set that fits in L2 entirely gets extra filtering.
    if kernel.bytes_read > 0 and kernel.bytes_read < device.l2_bytes:
        reuse = max(reuse, 2.0)
    return kernel.bytes_read / reuse + kernel.bytes_written


def machine_fill(kernel: KernelEvent, device: DeviceSpec) -> float:
    """Fraction of the device the kernel's parallelism can occupy (0..1].

    A saturating ramp in the number of threads relative to the device's
    resident-thread capacity. Small kernels on big devices fill little of
    the machine; the same kernel on a Jetson Nano fills all of it.
    """
    capacity = device.max_resident_threads
    # Half-saturation at one full wave of threads.
    return kernel.threads / (kernel.threads + capacity)


def saturated_latency(kernel: KernelEvent, device: DeviceSpec) -> float:
    """Kernel time at full machine utilization (throughput bound).

    The time the device needs to chew the kernel's work when the machine is
    already saturated by co-running work — no fill derating and no
    per-kernel ramp, just raw work over peak rates. Used by the
    concurrent-modality makespan model.
    """
    ceiling = _COMPUTE_EFFICIENCY[kernel.category]
    compute = kernel.flops / (device.peak_fp32_flops * ceiling)
    memory = dram_traffic(kernel, device) / (device.dram_bandwidth * _MEM_EFFICIENCY_CEILING)
    return max(compute, memory)


def kernel_latency(kernel: KernelEvent, device: DeviceSpec) -> LatencyBreakdown:
    """Latency of one kernel on one device."""
    fill = machine_fill(kernel, device)
    occupancy = min(1.0, kernel.threads / device.max_resident_threads)

    ceiling = _COMPUTE_EFFICIENCY[kernel.category]
    effective_flops = device.peak_fp32_flops * ceiling * max(fill, 1e-6)
    compute_time = kernel.flops / effective_flops if kernel.flops > 0 else 0.0

    bytes_dram = dram_traffic(kernel, device)
    # Memory pipelines saturate with less parallelism than the ALUs do, so
    # the bandwidth ramp rises faster than the compute ramp and has a floor.
    mem_fill = min(1.0, 0.25 + 0.75 * min(fill * 8.0, 1.0))
    effective_bw = (
        device.dram_bandwidth
        * _MEM_EFFICIENCY_CEILING
        * max(kernel.coalesced_fraction, 0.05)
        * max(mem_fill, 0.25)
    )
    memory_time = bytes_dram / effective_bw if bytes_dram > 0 else 0.0

    total = max(compute_time, memory_time) + device.kernel_fixed_overhead
    return LatencyBreakdown(
        total=total,
        compute_time=compute_time,
        memory_time=memory_time,
        fixed_overhead=device.kernel_fixed_overhead,
        dram_bytes=bytes_dram,
        compute_utilization=fill,
        occupancy=occupancy,
    )
