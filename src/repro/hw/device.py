"""Device models for the platforms the paper evaluates on.

The paper's testbed: a GPU server with four RTX 2080Ti GPUs (one used per
experiment), a Jetson Nano (128-core Maxwell, 4 GB unified LPDDR4) and a
Jetson Orin (2048-core Ampere, 32 GB unified LPDDR5). Since this
reproduction has no GPU, each platform is an analytical
:class:`DeviceSpec` whose parameters come from the public datasheets; the
execution engine turns traced kernels into latencies/counters against
these specs. Cross-device *relative* behaviour (server vs edge, batch
scaling, capacity cliffs) is what the paper's figures compare, and that is
preserved by construction.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DeviceSpec:
    """An analytical GPU (or CPU) platform model."""

    name: str
    # Compute.
    peak_fp32_flops: float  # FLOP/s
    sm_count: int
    max_threads_per_sm: int
    clock_hz: float
    issue_width: float  # max IPC per SM scheduler quadrant (nsight-style ipc ceiling)
    # Memory system.
    dram_bandwidth: float  # B/s
    dram_capacity: float  # bytes
    l2_bytes: float
    # Host link.
    pcie_bandwidth: float  # B/s (ignored when unified_memory)
    unified_memory: bool
    # Host/runtime overheads.
    kernel_launch_overhead: float  # seconds of CPU+runtime work per launch
    kernel_fixed_overhead: float  # seconds of device-side ramp per kernel
    transfer_latency: float  # fixed seconds per H2D/D2H call
    host_gflops: float  # CPU speed for preprocessing / data prep
    # Microarchitectural stall tendencies (dimensionless weights).
    inst_fetch_pressure: float  # grows on low-clock, small-I$ parts (edge)
    exec_dep_pressure: float  # grows when compute units are scarce

    @property
    def max_resident_threads(self) -> int:
        return self.sm_count * self.max_threads_per_sm

    @property
    def flops_per_byte_balance(self) -> float:
        """Roofline ridge point (FLOPs per DRAM byte)."""
        return self.peak_fp32_flops / self.dram_bandwidth


RTX_2080TI = DeviceSpec(
    name="rtx2080ti",
    peak_fp32_flops=13.45e12,
    sm_count=68,
    max_threads_per_sm=1024,
    clock_hz=1.545e9,
    issue_width=4.0,
    dram_bandwidth=616e9,
    dram_capacity=11e9,
    l2_bytes=5.5e6,
    pcie_bandwidth=15.75e9,  # PCIe 3.0 x16 effective
    unified_memory=False,
    kernel_launch_overhead=4.0e-6,
    kernel_fixed_overhead=1.5e-6,
    transfer_latency=10e-6,
    host_gflops=40.0,
    inst_fetch_pressure=0.05,
    exec_dep_pressure=0.15,
)

JETSON_NANO = DeviceSpec(
    name="jetson_nano",
    peak_fp32_flops=236e9,  # 128 Maxwell cores @ 921 MHz, FMA
    sm_count=1,
    max_threads_per_sm=2048,
    clock_hz=0.921e9,
    issue_width=2.0,
    dram_bandwidth=25.6e9,
    dram_capacity=4e9,
    l2_bytes=256e3,
    pcie_bandwidth=0.0,
    unified_memory=True,
    kernel_launch_overhead=18.0e-6,  # weak quad-A57 host
    kernel_fixed_overhead=4.0e-6,
    transfer_latency=4e-6,  # zero-copy, but the runtime still syncs
    host_gflops=4.0,
    inst_fetch_pressure=0.40,
    exec_dep_pressure=1.0,
)

JETSON_ORIN = DeviceSpec(
    name="jetson_orin",
    peak_fp32_flops=5.3e12,  # 2048 Ampere cores @ ~1.3 GHz
    sm_count=16,
    max_threads_per_sm=1536,
    clock_hz=1.3e9,
    issue_width=4.0,
    dram_bandwidth=204.8e9,
    dram_capacity=32e9,
    l2_bytes=4e6,
    pcie_bandwidth=0.0,
    unified_memory=True,
    kernel_launch_overhead=7.0e-6,
    kernel_fixed_overhead=2.0e-6,
    transfer_latency=5e-6,
    host_gflops=20.0,
    inst_fetch_pressure=0.12,
    exec_dep_pressure=0.22,
)

DEVICES: dict[str, DeviceSpec] = {
    d.name: d for d in (RTX_2080TI, JETSON_NANO, JETSON_ORIN)
}

# Aliases matching the paper's shorthand.
DEVICES["2080ti"] = RTX_2080TI
DEVICES["nano"] = JETSON_NANO
DEVICES["orin"] = JETSON_ORIN


def get_device(name: str) -> DeviceSpec:
    """Look up a device model by name (``2080ti``, ``nano``, ``orin``)."""
    try:
        return DEVICES[name]
    except KeyError:
        raise KeyError(f"unknown device {name!r}; available: {sorted(DEVICES)}") from None
