"""Vectorized counterparts of the scalar roofline / counter / stall models.

The scalar functions in :mod:`repro.hw.latency`, :mod:`repro.hw.counters`
and :mod:`repro.hw.stalls` price one :class:`~repro.trace.events.KernelEvent`
at a time; these batch versions run the identical math over a whole
:class:`~repro.trace.columns.TraceColumns` at once — per-category
efficiency tables become lookup vectors indexed by the category-code
column, and device scalars broadcast over the kernel axis.

Shapes: with a single :class:`DeviceParams` (scalar parameters) every
output array is ``(K,)`` for K kernels. With
:meth:`DeviceParams.from_specs` the parameters have shape ``(D, 1)`` and
device-dependent outputs broadcast to ``(D, K)`` — one pass prices a trace
on every device of a sweep. Device-independent columns (e.g. load/store
efficiency, which depends only on the access pattern) stay ``(K,)``;
:func:`device_row` slices either form down to one device.

The scalar implementations remain the source of truth: the lookup vectors
are built from their tables, and the golden-equivalence suite
(``tests/hw/test_vectorized_equivalence.py``) pins the two paths together
to 1e-9 relative tolerance on every report field.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.hw.counters import _ISSUE_EFFICIENCY, _SECTOR_BYTES
from repro.hw.device import DeviceSpec
from repro.hw.latency import (
    _COMPUTE_EFFICIENCY,
    _MAX_CACHE_REUSE,
    _MEM_EFFICIENCY_CEILING,
)
from repro.hw.stalls import STALL_REASONS, _SYNC_WEIGHT
from repro.trace.columns import CATEGORY_ORDER, TraceColumns


def _category_vector(table: dict) -> np.ndarray:
    """Turn a {KernelCategory: value} table into a code-indexed vector."""
    return np.array([table[cat] for cat in CATEGORY_ORDER], dtype=np.float64)


#: Lookup vectors aligned with :data:`repro.trace.columns.CATEGORY_ORDER`.
COMPUTE_EFFICIENCY_VEC = _category_vector(_COMPUTE_EFFICIENCY)
ISSUE_EFFICIENCY_VEC = _category_vector(_ISSUE_EFFICIENCY)
SYNC_WEIGHT_VEC = _category_vector(_SYNC_WEIGHT)


@dataclass(frozen=True)
class DeviceParams:
    """Device scalars in broadcast-ready form.

    Single device: plain floats/ints. Sweep (:meth:`from_specs`): each
    field is a ``(D, 1)`` array so kernel-axis arrays broadcast to
    ``(D, K)``.
    """

    peak_fp32_flops: object
    dram_bandwidth: object
    l2_bytes: object
    max_resident_threads: object
    kernel_fixed_overhead: object
    issue_width: object
    exec_dep_pressure: object
    inst_fetch_pressure: object
    sm_count: object

    @classmethod
    def from_spec(cls, device: DeviceSpec) -> "DeviceParams":
        return cls(
            peak_fp32_flops=device.peak_fp32_flops,
            dram_bandwidth=device.dram_bandwidth,
            l2_bytes=device.l2_bytes,
            max_resident_threads=device.max_resident_threads,
            kernel_fixed_overhead=device.kernel_fixed_overhead,
            issue_width=device.issue_width,
            exec_dep_pressure=device.exec_dep_pressure,
            inst_fetch_pressure=device.inst_fetch_pressure,
            sm_count=device.sm_count,
        )

    @classmethod
    def from_specs(cls, devices: Sequence[DeviceSpec]) -> "DeviceParams":
        def col(attr: str) -> np.ndarray:
            return np.array([getattr(d, attr) for d in devices],
                            dtype=np.float64)[:, None]

        return cls(
            peak_fp32_flops=col("peak_fp32_flops"),
            dram_bandwidth=col("dram_bandwidth"),
            l2_bytes=col("l2_bytes"),
            max_resident_threads=col("max_resident_threads"),
            kernel_fixed_overhead=col("kernel_fixed_overhead"),
            issue_width=col("issue_width"),
            exec_dep_pressure=col("exec_dep_pressure"),
            inst_fetch_pressure=col("inst_fetch_pressure"),
            sm_count=col("sm_count"),
        )


def device_row(arr: np.ndarray, d: int) -> np.ndarray:
    """Slice a possibly device-broadcast array down to device ``d``.

    Device-independent columns stay 1-D ``(K,)`` even in a sweep; this
    returns them unchanged, and takes row ``d`` of ``(D, K)`` arrays.
    """
    return arr if arr.ndim == 1 else arr[d]


@dataclass
class LatencyColumns:
    """Batch analogue of :class:`~repro.hw.latency.LatencyBreakdown`."""

    total: np.ndarray
    compute_time: np.ndarray
    memory_time: np.ndarray
    dram_bytes: np.ndarray
    compute_utilization: np.ndarray  # machine fill, 0..1
    occupancy: np.ndarray
    fixed_overhead: object  # scalar, or (D, 1) in a sweep


@dataclass
class CounterColumns:
    """Batch analogue of :class:`~repro.hw.counters.KernelCounters`."""

    duration: np.ndarray  # pre-thrash latency, like the scalar model
    dram_utilization: np.ndarray
    achieved_occupancy: np.ndarray
    ipc: np.ndarray
    gld_efficiency: np.ndarray
    gst_efficiency: np.ndarray
    l1_hit_rate: np.ndarray
    l2_hit_rate: np.ndarray
    l2_read_hit_rate: np.ndarray
    l2_write_hit_rate: np.ndarray
    fp32_ops: np.ndarray
    dram_read_bytes: np.ndarray
    read_transactions_per_second: np.ndarray


def dram_traffic_batch(cols: TraceColumns, params: DeviceParams) -> np.ndarray:
    """Vectorized :func:`repro.hw.latency.dram_traffic`."""
    reuse = np.clip(cols.reuse_factor, 1.0, _MAX_CACHE_REUSE)
    small = (cols.bytes_read > 0) & (cols.bytes_read < params.l2_bytes)
    reuse = np.where(small, np.maximum(reuse, 2.0), reuse)
    return cols.bytes_read / reuse + cols.bytes_written


def kernel_latency_batch(cols: TraceColumns, params: DeviceParams) -> LatencyColumns:
    """Vectorized :func:`repro.hw.latency.kernel_latency` over a trace."""
    threads = cols.threads_f
    fill = threads / (threads + params.max_resident_threads)
    occupancy = np.minimum(1.0, threads / params.max_resident_threads)

    ceiling = COMPUTE_EFFICIENCY_VEC[cols.category_codes]
    effective_flops = params.peak_fp32_flops * ceiling * np.maximum(fill, 1e-6)
    compute_time = np.where(cols.flops > 0, cols.flops / effective_flops, 0.0)

    dram_bytes = dram_traffic_batch(cols, params)
    mem_fill = np.minimum(1.0, 0.25 + 0.75 * np.minimum(fill * 8.0, 1.0))
    effective_bw = (
        params.dram_bandwidth
        * _MEM_EFFICIENCY_CEILING
        * np.maximum(cols.coalesced_fraction, 0.05)
        * np.maximum(mem_fill, 0.25)
    )
    memory_time = np.where(dram_bytes > 0, dram_bytes / effective_bw, 0.0)

    total = np.maximum(compute_time, memory_time) + params.kernel_fixed_overhead
    return LatencyColumns(
        total=total,
        compute_time=compute_time,
        memory_time=np.broadcast_to(memory_time, total.shape),
        dram_bytes=dram_bytes,
        compute_utilization=np.broadcast_to(fill, total.shape),
        occupancy=np.broadcast_to(occupancy, total.shape),
        fixed_overhead=params.kernel_fixed_overhead,
    )


def saturated_latency_batch(cols: TraceColumns, params: DeviceParams) -> np.ndarray:
    """Vectorized :func:`repro.hw.latency.saturated_latency`."""
    ceiling = COMPUTE_EFFICIENCY_VEC[cols.category_codes]
    compute = cols.flops / (params.peak_fp32_flops * ceiling)
    memory = dram_traffic_batch(cols, params) / (
        params.dram_bandwidth * _MEM_EFFICIENCY_CEILING
    )
    return np.maximum(compute, memory)


def derive_counters_batch(
    cols: TraceColumns, params: DeviceParams, lat: LatencyColumns
) -> CounterColumns:
    """Vectorized :func:`repro.hw.counters.derive_counters` over a trace."""
    duration = lat.total
    positive = duration > 0
    busy = np.where(positive, lat.memory_time / duration, 0.0)
    achieved_bw = np.where(positive, lat.dram_bytes / duration, 0.0)
    dram_util = np.minimum(
        1.0,
        busy * np.minimum(1.0, achieved_bw / np.maximum(params.dram_bandwidth, 1.0) * 4.0),
    )

    compute_busy = np.where(positive, lat.compute_time / duration, 0.0)
    issue_efficiency = ISSUE_EFFICIENCY_VEC[cols.category_codes]
    ipc = params.issue_width * compute_busy * issue_efficiency
    ipc = np.maximum(
        ipc, 0.08 * params.issue_width * np.minimum(1.0, busy + compute_busy)
    )

    gld = cols.coalesced_fraction
    gst = np.minimum(1.0, cols.coalesced_fraction + 0.08)

    reuse = np.maximum(cols.reuse_factor, 1.0)
    l2_hit = np.minimum(0.95, 1.0 - 1.0 / reuse)
    small = (cols.bytes_read > 0) & (cols.bytes_read < params.l2_bytes)
    l2_hit = np.where(small, np.maximum(l2_hit, 0.60), l2_hit)
    l1_hit = 0.45 * l2_hit
    l2_write_hit = np.minimum(0.98, l2_hit + 0.25)

    dram_read = np.maximum(lat.dram_bytes - cols.bytes_written, 0.0)
    read_tps = np.where(positive, (cols.bytes_read / _SECTOR_BYTES) / duration, 0.0)

    return CounterColumns(
        duration=duration,
        dram_utilization=dram_util,
        achieved_occupancy=lat.occupancy,
        ipc=ipc,
        gld_efficiency=gld,
        gst_efficiency=gst,
        l1_hit_rate=l1_hit,
        l2_hit_rate=l2_hit,
        l2_read_hit_rate=l2_hit,
        l2_write_hit_rate=l2_write_hit,
        fp32_ops=cols.flops,
        dram_read_bytes=dram_read,
        read_transactions_per_second=read_tps,
    )


def stall_breakdown_batch(
    cols: TraceColumns, params: DeviceParams, lat: LatencyColumns
) -> np.ndarray:
    """Vectorized :func:`repro.hw.stalls.stall_breakdown`.

    Returns normalized shares of shape ``(..., K, len(STALL_REASONS))``
    with the last axis in :data:`~repro.hw.stalls.STALL_REASONS` order.
    """
    duration = np.maximum(lat.total, 1e-12)
    mem_frac = lat.memory_time / duration
    comp_frac = lat.compute_time / duration

    reuse = np.maximum(cols.reuse_factor, 1.0)
    l2_hit = np.minimum(0.95, 1.0 - 1.0 / reuse)

    weights = {
        "Mem": mem_frac * (1.0 - l2_hit) * 1.2,
        "Cache": mem_frac * l2_hit * 0.9,
        "Exec": comp_frac * params.exec_dep_pressure * 3.0,
        "Pipe": comp_frac * 0.5,
        "Sync": SYNC_WEIGHT_VEC[cols.category_codes],
        "Inst": params.inst_fetch_pressure * (0.4 + 0.6 * comp_frac),
        "Else": np.full_like(duration, 0.08),
    }
    stacked = np.stack(
        np.broadcast_arrays(*(weights[r] for r in STALL_REASONS)), axis=-1
    )
    total = stacked.sum(axis=-1, keepdims=True)
    return stacked / total
