"""Stream-level concurrent schedules on a partitioned device.

The paper's Sec. 4.3.3 idle-resource claim ("nearly 75% of the resources
assigned to the application will stay idle for more than 77% of the
encoder execution") describes a *schedule*: one CUDA stream per modality,
each holding a share of the device, every stream launched at t=0 and
running its kernels back-to-back on its partition. This module executes
that schedule instead of short-cutting it with max/sum arithmetic:

* a :class:`StreamLoad` is the work one stream runs — its kernels' native
  (full-device) durations plus the resource share it holds;
* :class:`StreamScheduler.schedule` simulates the partitioned timeline —
  a share ``w`` scales the stream's effective roofline, so its kernels
  take ``duration / w`` on its partition — and returns a
  :class:`StreamSchedule` of per-stream busy/idle windows;
* :func:`modality_streams` / :func:`tenant_streams` build the two
  assignments the paper and the serving layer care about: one stream per
  modality inside one model's encoder stage, or one stream per tenant
  when several workloads time-share a device.

The idle-resource geometry (:meth:`StreamSchedule.idle_resource_fraction`
/ :meth:`~StreamSchedule.idle_window_fraction`) is derived from the
simulated windows; :func:`repro.core.analysis.concurrency.analyze_concurrency`
is built on it, and a tier-1 test pins the schedule-derived numbers to the
closed-form shortcut on every multi-modal workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.hw.device import DeviceSpec, get_device
from repro.hw.vectorized import DeviceParams, kernel_latency_batch
from repro.trace.columns import TraceColumns

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hw.engine import ExecutionReport
    from repro.trace.tracer import Trace

_SHARE_TOL = 1e-9


@dataclass(frozen=True)
class StreamLoad:
    """The work one stream executes and the resource share it holds.

    ``durations`` are *native* per-kernel seconds — what each kernel takes
    with the whole device to itself, in issue order. ``share`` is the
    fraction of the device this stream's partition holds; the scheduler
    scales the effective roofline by it, so the stream's kernels run
    ``1/share`` slower on the partition.
    """

    name: str
    durations: np.ndarray = field(repr=False)
    share: float = 1.0

    def __post_init__(self):
        if not 0.0 < self.share <= 1.0:
            raise ValueError(f"stream share must be in (0, 1], got {self.share}")

    @property
    def native_time(self) -> float:
        """Seconds this stream's work takes with the full device."""
        return float(np.sum(self.durations))


@dataclass(frozen=True)
class StreamWindow:
    """One stream's simulated timeline on its partition.

    The stream starts at t=0 and runs its kernels back-to-back; ``start``
    and ``end`` are the per-kernel boundaries on the partition (already
    share-scaled). The stream is busy on ``[0, busy_until)`` and idle from
    then until the schedule's makespan.
    """

    name: str
    share: float
    start: np.ndarray = field(repr=False)
    end: np.ndarray = field(repr=False)

    @property
    def n_kernels(self) -> int:
        return int(self.end.size)

    @property
    def busy_until(self) -> float:
        """When this stream finishes (== its busy time: no gaps)."""
        return float(self.end[-1]) if self.end.size else 0.0

    @property
    def busy_time(self) -> float:
        return self.busy_until

    @property
    def native_time(self) -> float:
        """Full-device-equivalent seconds of the work (busy * share)."""
        return self.busy_until * self.share

    def idle_window(self, makespan: float) -> tuple[float, float]:
        """The (start, end) interval this stream sits idle in the schedule."""
        return (self.busy_until, makespan)

    def idle_time(self, makespan: float) -> float:
        return max(0.0, makespan - self.busy_until)


@dataclass(frozen=True)
class StreamSchedule:
    """A simulated concurrent timeline: every stream's windows + makespan."""

    device: DeviceSpec
    streams: dict[str, StreamWindow]
    makespan: float

    def busy_times(self) -> dict[str, float]:
        return {name: w.busy_time for name, w in self.streams.items()}

    def native_times(self) -> dict[str, float]:
        """Full-device-equivalent time per stream (share-scaling undone)."""
        return {name: w.native_time for name, w in self.streams.items()}

    @property
    def straggler(self) -> str:
        """The stream that finishes last (defines the makespan)."""
        return max(self.streams, key=lambda n: self.streams[n].busy_until)

    @property
    def total_share(self) -> float:
        return sum(w.share for w in self.streams.values())

    def idle_resource_fraction(self) -> float:
        """Idle fraction of the (resources x makespan) area of the schedule.

        Each stream's partition (``share`` of the device) is busy until the
        stream finishes and idle until the straggler does; this is the
        paper's "resources assigned to the application stay idle" area.
        """
        if self.makespan <= 0:
            return 0.0
        idle_area = sum(w.share * w.idle_time(self.makespan)
                        for w in self.streams.values())
        return idle_area / (self.total_share * self.makespan)

    def idle_window_fraction(self) -> float:
        """Mean fraction of the schedule the non-straggler streams sit idle.

        The paper's phrasing: the other ``(M-1)/M`` of the resources have
        already finished their own work and wait for the straggler.
        """
        if self.makespan <= 0 or len(self.streams) < 2:
            return 0.0
        straggler = self.straggler
        others = [w.idle_time(self.makespan) / self.makespan
                  for name, w in self.streams.items() if name != straggler]
        return float(sum(others) / len(others))

    def serial_time(self) -> float:
        """What a single full-device stream would pay for all the work."""
        return sum(w.native_time for w in self.streams.values())

    def native_makespan(self) -> float:
        """The straggler's native time: the wall time of the *ideal*
        overlap, where every stream keeps full-device speed (the paper's
        concurrent encoder time)."""
        return max(w.native_time for w in self.streams.values())

    def concurrency_speedup(self) -> float:
        """Serial time over the ideal-overlap makespan (both native, so
        the ratio is independent of how the shares were drawn)."""
        native_max = self.native_makespan()
        return self.serial_time() / native_max if native_max > 0 else 1.0


class StreamScheduler:
    """Simulates static stream-partitioned schedules on one device.

    The model matches :class:`~repro.hw.engine.ExecutionEngine`'s
    single-stream semantics per partition: each stream runs its kernels
    back-to-back, and a resource share ``w`` scales the partition's
    effective roofline (compute and bandwidth alike), so every kernel
    duration scales by ``1/w``. Shares must not oversubscribe the device
    (``sum(shares) <= 1``).
    """

    def __init__(self, device: str | DeviceSpec):
        self.device = get_device(device) if isinstance(device, str) else device

    def schedule(self, loads: Sequence[StreamLoad]) -> StreamSchedule:
        """Simulate the timeline of ``loads`` sharing this device."""
        if not loads:
            raise ValueError("need at least one stream")
        names = [load.name for load in loads]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate stream names: {names}")
        total = sum(load.share for load in loads)
        if total > 1.0 + _SHARE_TOL:
            raise ValueError(
                f"stream shares oversubscribe the device: sum={total:.6f} > 1")
        windows: dict[str, StreamWindow] = {}
        makespan = 0.0
        for load in loads:
            scaled = np.asarray(load.durations, dtype=np.float64) / load.share
            end = np.cumsum(scaled)
            start = end - scaled
            window = StreamWindow(name=load.name, share=load.share,
                                  start=start, end=end)
            windows[load.name] = window
            makespan = max(makespan, window.busy_until)
        return StreamSchedule(device=self.device, streams=windows,
                              makespan=makespan)

    def schedule_trace(
        self,
        trace: "Trace | TraceColumns",
        stage: str = "encoder",
        shares: Mapping[str, float] | None = None,
    ) -> StreamSchedule:
        """Price a columnar trace on this device and schedule one stream
        per modality of ``stage`` (equal shares unless given).

        This is the trace-level entry: kernel durations come straight from
        the vectorized roofline (per-kernel launch overhead included); the
        memory/thrash model needs footprints and lives on the report-level
        path (:func:`modality_schedule`).
        """
        cols = trace if isinstance(trace, TraceColumns) else trace.columns()
        lat = kernel_latency_batch(cols, DeviceParams.from_spec(self.device))
        loads = modality_streams(
            cols, lat.total, stage=stage,
            launch_overhead=self.device.kernel_launch_overhead, shares=shares,
        )
        return self.schedule(loads)


def _resolve_shares(
    names: Sequence[str], shares: Mapping[str, float] | None
) -> dict[str, float]:
    """Equal split by default; validate user-given shares cover every stream."""
    if shares is None:
        return {name: 1.0 / len(names) for name in names}
    missing = [name for name in names if name not in shares]
    if missing:
        raise KeyError(f"no share given for streams {missing}")
    return {name: float(shares[name]) for name in names}


def modality_streams(
    cols: TraceColumns,
    durations: np.ndarray,
    stage: str = "encoder",
    launch_overhead: float = 0.0,
    shares: Mapping[str, float] | None = None,
) -> list[StreamLoad]:
    """One :class:`StreamLoad` per modality among the kernels of ``stage``.

    ``durations`` are the priced per-kernel seconds aligned with ``cols``;
    ``launch_overhead`` (per kernel) is folded into each kernel's duration,
    matching :meth:`~repro.hw.engine.ExecutionReport.modality_time`
    semantics. Kernels of the stage with no modality attribution are not
    stream work and are skipped.
    """
    stage_code = cols.stage_code(stage)
    if stage_code is None:
        raise ValueError(f"trace has no {stage!r} stage")
    in_stage = cols.stage_codes == stage_code
    modalities = [
        mod for mod in cols.modality_table
        if np.any(in_stage & (cols.modality_codes == cols.modality_code(mod)))
    ]
    if not modalities:
        raise ValueError(f"no modality-attributed kernels in stage {stage!r}")
    resolved = _resolve_shares(modalities, shares)
    loads = []
    for mod in modalities:
        idx = np.nonzero(in_stage & (cols.modality_codes == cols.modality_code(mod)))[0]
        loads.append(StreamLoad(name=mod,
                                durations=durations[idx] + launch_overhead,
                                share=resolved[mod]))
    return loads


def modality_schedule(
    report: "ExecutionReport",
    shares: Mapping[str, float] | None = None,
    stage: str = "encoder",
) -> StreamSchedule:
    """Schedule one stream per modality from a priced execution report.

    Uses the report's final per-kernel durations (thrash slowdown applied)
    plus the per-kernel launch overhead, so each stream's native time
    equals its entry in :meth:`~repro.hw.engine.ExecutionReport.modality_time`.
    """
    overhead = report.device.kernel_launch_overhead * report.slowdown
    loads = modality_streams(report.columns, report.durations, stage=stage,
                             launch_overhead=overhead, shares=shares)
    return StreamScheduler(report.device).schedule(loads)


def tenant_streams(
    reports: Mapping[str, "ExecutionReport"],
    shares: Mapping[str, float] | None = None,
) -> list[StreamLoad]:
    """One :class:`StreamLoad` per tenant: each tenant's whole trace
    (every stage) runs in its own stream on a shared device."""
    if not reports:
        raise ValueError("need at least one tenant report")
    resolved = _resolve_shares(list(reports), shares)
    loads = []
    for tenant, report in reports.items():
        overhead = report.device.kernel_launch_overhead * report.slowdown
        loads.append(StreamLoad(name=tenant,
                                durations=report.durations + overhead,
                                share=resolved[tenant]))
    return loads


def tenant_schedule(
    reports: Mapping[str, "ExecutionReport"],
    shares: Mapping[str, float] | None = None,
) -> StreamSchedule:
    """Schedule several tenants' priced traces concurrently on one device.

    All reports must be priced on the same device model (they share it).
    """
    devices = {report.device.name for report in reports.values()}
    if len(devices) > 1:
        raise ValueError(f"tenant reports span several devices: {sorted(devices)}")
    first = next(iter(reports.values()))
    return StreamScheduler(first.device).schedule(tenant_streams(reports, shares))
