"""Peak-memory accounting: model / dataset / intermediate (Figure 13).

The paper decomposes peak memory into three components and shows that the
model's share is batch-invariant while dataset and intermediate grow
linearly with batch size — and that multi-modal DNNs carry a larger
intermediate share (more modalities, plus fusion features), making them
hit GPU capacity earlier.

``MemoryModel`` derives the same decomposition from a trace: model bytes
come from the parameter count, dataset bytes from the input batch, and the
intermediate component from the largest per-stage sum of live activation
outputs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hw.device import DeviceSpec
from repro.trace.columns import TraceColumns
from repro.trace.tracer import Trace


@dataclass(frozen=True)
class MemoryBreakdown:
    """Peak memory decomposition in bytes."""

    model: float
    dataset: float
    intermediate: float

    @property
    def total(self) -> float:
        return self.model + self.dataset + self.intermediate

    def as_dict(self) -> dict[str, float]:
        return {
            "model": self.model,
            "dataset": self.dataset,
            "intermediate": self.intermediate,
            "total": self.total,
        }


def memory_breakdown(trace: Trace, model_bytes: float, input_bytes: float) -> MemoryBreakdown:
    """Decompose peak memory for one inference batch.

    The intermediate component is the maximum over stages of the stage's
    total activation output — a standard proxy for the live set under a
    stage-granular allocator. It preserves the two properties Figure 13
    demonstrates: linearity in batch size and a larger share for
    multi-modal models.
    """
    stage_bytes: dict[str, float] = {}
    for k in trace.kernels:
        stage_bytes[k.stage] = stage_bytes.get(k.stage, 0.0) + k.bytes_written
    intermediate = max(stage_bytes.values()) if stage_bytes else 0.0
    return MemoryBreakdown(model=float(model_bytes), dataset=float(input_bytes),
                           intermediate=float(intermediate))


def memory_breakdown_columns(
    cols: TraceColumns, model_bytes: float, input_bytes: float
) -> MemoryBreakdown:
    """:func:`memory_breakdown` over a columnar trace (no event objects)."""
    if cols.n:
        stage_sums = np.bincount(cols.stage_codes, weights=cols.bytes_written,
                                 minlength=len(cols.stage_table))
        intermediate = float(stage_sums.max())
    else:
        intermediate = 0.0
    return MemoryBreakdown(model=float(model_bytes), dataset=float(input_bytes),
                           intermediate=intermediate)


def capacity_pressure(breakdown: MemoryBreakdown, device: DeviceSpec) -> float:
    """Fraction of device memory the run needs (>1 means over capacity)."""
    capacity = device.dram_capacity
    if device.unified_memory:
        # The OS, CUDA runtime and host process share the same physical
        # memory on Jetson boards; reserve a fixed cut for them.
        capacity = capacity * 0.75 - 0.5e9
    return breakdown.total / max(capacity, 1.0)


def thrash_factor(pressure: float) -> float:
    """Latency multiplier once a run approaches/overflows device memory.

    Below 80% pressure there is no penalty. Past that, paging and allocator
    retries inflate time sharply — the mechanism behind the Jetson Nano's
    latency *increase* at batch 320 in Figure 14.
    """
    if pressure <= 0.8:
        return 1.0
    # Quadratic blow-up past the knee; capped to keep the model sane.
    over = pressure - 0.8
    return min(1.0 + 6.0 * over * over + 2.0 * over, 12.0)
