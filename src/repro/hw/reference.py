"""Scalar reference implementation of the execution engine.

This is the original, pre-columnar pricing path: one
:func:`~repro.hw.latency.kernel_latency` / :func:`~repro.hw.counters.derive_counters`
/ :func:`~repro.hw.stalls.stall_breakdown` call per kernel event, and
pure-Python dict loops for every aggregation. It is deliberately kept
in-tree, unchanged, as the golden reference:

* ``tests/hw/test_vectorized_equivalence.py`` asserts the vectorized
  :class:`~repro.hw.engine.ExecutionEngine` matches this implementation on
  every report field to 1e-9 relative tolerance, across all registry
  workloads and device models;
* ``benchmarks/bench_engine.py`` measures the vectorized/scalar speedup
  against it, and the CI gate fails if that ratio regresses.

Do not "optimize" this module — its value is being the slow, obviously
correct spelling of the model.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.hw.counters import KernelCounters, aggregate_counters, derive_counters
from repro.hw.device import DeviceSpec
from repro.hw.latency import LatencyBreakdown, kernel_latency, saturated_latency
from repro.hw.memory import MemoryBreakdown, capacity_pressure, memory_breakdown, thrash_factor
from repro.hw.stalls import aggregate_stalls, stall_breakdown
from repro.hw.transfer import d2h_time, h2d_time, host_data_prep_time
from repro.trace.events import HostEvent, HostOpKind, KernelCategory, KernelEvent
from repro.trace.tracer import Trace

# Kernel-duration bins (microseconds) used by the Figure-12 histogram.
KERNEL_SIZE_BINS = ("0-10", "10-50", "50-100", ">100")


@dataclass
class ScalarKernelExecution:
    """One kernel launch priced on a device (scalar reference)."""

    event: KernelEvent
    latency: LatencyBreakdown
    counters: KernelCounters
    stalls: dict[str, float]

    @property
    def duration(self) -> float:
        return self.latency.total


@dataclass
class ScalarExecutionReport:
    """Reference report: eager per-kernel records, dict-loop aggregations."""

    device: DeviceSpec
    kernels: list[ScalarKernelExecution]
    gpu_time: float
    host_time: float
    launch_time: float
    transfer_time: float
    data_prep_time: float
    sync_time: float
    memory: MemoryBreakdown
    memory_pressure: float
    slowdown: float
    host_events: list[HostEvent] = field(default_factory=list)

    @property
    def total_time(self) -> float:
        return self.gpu_time + self.host_time

    @property
    def cpu_runtime_share(self) -> float:
        total = self.total_time
        return self.host_time / total if total > 0 else 0.0

    def stage_time(self) -> dict[str, float]:
        out: dict[str, float] = defaultdict(float)
        for kx in self.kernels:
            out[kx.event.stage] += kx.duration + self.device.kernel_launch_overhead * self.slowdown
        return dict(out)

    def stage_counters(self) -> dict[str, dict[str, float]]:
        groups: dict[str, list[tuple[KernelCounters, float]]] = defaultdict(list)
        for kx in self.kernels:
            groups[kx.event.stage].append((kx.counters, kx.duration))
        return {stage: aggregate_counters(items) for stage, items in groups.items()}

    def stage_stalls(self) -> dict[str, dict[str, float]]:
        groups: dict[str, list[tuple[dict[str, float], float]]] = defaultdict(list)
        for kx in self.kernels:
            groups[kx.event.stage].append((kx.stalls, kx.duration))
        return {stage: aggregate_stalls(items) for stage, items in groups.items()}

    def overall_stalls(self) -> dict[str, float]:
        return aggregate_stalls([(kx.stalls, kx.duration) for kx in self.kernels])

    def category_time_breakdown(self, stage: str | None = None) -> dict[KernelCategory, float]:
        totals: dict[KernelCategory, float] = defaultdict(float)
        for kx in self.kernels:
            if stage is not None and kx.event.stage != stage:
                continue
            totals[kx.event.category] += kx.duration
        grand = sum(totals.values())
        if grand <= 0:
            return {}
        return {cat: t / grand for cat, t in totals.items()}

    def modality_time(self) -> dict[str, float]:
        out: dict[str, float] = defaultdict(float)
        for kx in self.kernels:
            if kx.event.modality is not None:
                out[kx.event.modality] += (
                    kx.duration + self.device.kernel_launch_overhead * self.slowdown
                )
        return dict(out)

    def modality_imbalance(self) -> float:
        times = list(self.modality_time().values())
        if len(times) < 2 or min(times) <= 0:
            return 1.0
        return max(times) / min(times)

    def kernel_size_distribution(self) -> dict[str, float]:
        counts = dict.fromkeys(KERNEL_SIZE_BINS, 0)
        for kx in self.kernels:
            us = kx.duration * 1e6
            if us < 10:
                counts["0-10"] += 1
            elif us < 50:
                counts["10-50"] += 1
            elif us < 100:
                counts["50-100"] += 1
            else:
                counts[">100"] += 1
        n = len(self.kernels)
        return {b: c / n for b, c in counts.items()} if n else dict.fromkeys(KERNEL_SIZE_BINS, 0.0)

    def hotspot(self, category: KernelCategory,
                stage: str | None = None) -> "ScalarKernelExecution | None":
        pool = [
            kx
            for kx in self.kernels
            if kx.event.category == category and (stage is None or kx.event.stage == stage)
        ]
        return max(pool, key=lambda kx: kx.duration) if pool else None


class ScalarExecutionEngine:
    """Prices traces one event at a time (reference path).

    Semantics are identical to :class:`~repro.hw.engine.ExecutionEngine`
    including ``concurrent_modalities``; see that class for the model
    documentation.
    """

    def __init__(self, device: DeviceSpec, concurrent_modalities: bool = False):
        self.device = device
        self.concurrent_modalities = concurrent_modalities

    def _concurrent_encoder_time(self, encoder_kernels: list[KernelEvent]) -> float:
        streams: dict[str, list[KernelEvent]] = defaultdict(list)
        unattributed: list[KernelEvent] = []
        for ev in encoder_kernels:
            if ev.modality is None:
                unattributed.append(ev)
            else:
                streams[ev.modality].append(ev)
        n = len(streams)
        if n < 2 or self.device.sm_count < n:
            return sum(kernel_latency(ev, self.device).total for ev in encoder_kernels)

        latency_bound = max(
            sum(kernel_latency(ev, self.device).total for ev in events)
            for events in streams.values()
        )
        throughput_bound = sum(
            saturated_latency(ev, self.device) for ev in encoder_kernels if ev.modality
        )
        tail = sum(kernel_latency(ev, self.device).total for ev in unattributed)
        return max(latency_bound, throughput_bound) + tail

    def _price_host_event(self, ev: HostEvent) -> tuple[str, float]:
        d = self.device
        if ev.kind == HostOpKind.H2D:
            return "transfer", h2d_time(ev.bytes, d)
        if ev.kind == HostOpKind.D2H:
            return "transfer", d2h_time(ev.bytes, d)
        if ev.kind == HostOpKind.DATA_PREP:
            return "data_prep", host_data_prep_time(ev.bytes, d, ops_per_byte=8.0)
        if ev.kind == HostOpKind.PREPROCESS:
            return "data_prep", host_data_prep_time(ev.bytes, d, ops_per_byte=6.0)
        if ev.kind == HostOpKind.SYNC:
            return "sync", 5.0 * d.kernel_launch_overhead
        if ev.kind == HostOpKind.LAUNCH:
            return "launch", d.kernel_launch_overhead
        raise ValueError(f"unknown host event kind {ev.kind}")

    def run(self, trace: Trace, model_bytes: float = 0.0,
            input_bytes: float = 0.0) -> ScalarExecutionReport:
        """Price every event with per-event scalar calls and aggregate."""
        kernels: list[ScalarKernelExecution] = []
        gpu_time = 0.0
        for ev in trace.kernels:
            lat = kernel_latency(ev, self.device)
            counters = derive_counters(ev, self.device, lat)
            stalls = stall_breakdown(ev, self.device, lat)
            kernels.append(
                ScalarKernelExecution(event=ev, latency=lat, counters=counters, stalls=stalls)
            )
            gpu_time += lat.total

        if self.concurrent_modalities:
            encoder_events = [ev for ev in trace.kernels if ev.stage == "encoder"]
            serial_encoder = sum(
                kx.latency.total for kx in kernels if kx.event.stage == "encoder"
            )
            gpu_time += self._concurrent_encoder_time(encoder_events) - serial_encoder

        launch_time = len(kernels) * self.device.kernel_launch_overhead
        transfer_time = 0.0
        data_prep_time = 0.0
        sync_time = 0.0
        for ev in trace.host_events:
            bucket, seconds = self._price_host_event(ev)
            if bucket == "transfer":
                transfer_time += seconds
            elif bucket == "data_prep":
                data_prep_time += seconds
            elif bucket == "sync":
                sync_time += seconds
            else:
                launch_time += seconds

        mem = memory_breakdown(trace, model_bytes=model_bytes, input_bytes=input_bytes)
        pressure = capacity_pressure(mem, self.device)
        slowdown = thrash_factor(pressure)

        host_time = (launch_time + transfer_time + data_prep_time + sync_time) * slowdown
        gpu_time *= slowdown
        if slowdown != 1.0:
            for kx in kernels:
                kx.latency = LatencyBreakdown(
                    total=kx.latency.total * slowdown,
                    compute_time=kx.latency.compute_time * slowdown,
                    memory_time=kx.latency.memory_time * slowdown,
                    fixed_overhead=kx.latency.fixed_overhead,
                    dram_bytes=kx.latency.dram_bytes,
                    compute_utilization=kx.latency.compute_utilization,
                    occupancy=kx.latency.occupancy,
                )

        return ScalarExecutionReport(
            device=self.device,
            kernels=kernels,
            gpu_time=gpu_time,
            host_time=host_time,
            launch_time=launch_time * slowdown,
            transfer_time=transfer_time * slowdown,
            data_prep_time=data_prep_time * slowdown,
            sync_time=sync_time * slowdown,
            memory=mem,
            memory_pressure=pressure,
            slowdown=slowdown,
            host_events=list(trace.host_events),
        )
