"""Export native traces to the execution-graph JSON the ingest path reads.

This is the differential-testing half of the ingest story: every built-in
workload trace can be serialized to the ``mmbench-eg/1`` schema, re-read
by :func:`repro.trace.ingest.ingest_graph`, and priced — and the result
must match the native trace to 1e-9 relative (a tier-1 invariant, the
ingest analogue of the meta==eager check).

To make that equivalence exact rather than approximate, the exporter
writes **explicit work descriptors** (``flops`` / ``bytes_read`` /
``bytes_written`` / ``threads`` / ``coalesced_fraction`` /
``reuse_factor``) and explicit ``category`` / ``stage`` / ``modality`` /
``pass`` fields on every node; the importer honors explicit values
verbatim and only falls back to shape/dtype estimation and name
heuristics when they are absent (i.e. for graphs produced by other
tools). Events are emitted in global-``seq`` order as a serial dependency
chain, so the importer's topological sort reproduces the capture order —
and hence identical columns — deterministically.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.trace.ingest import GRAPH_SCHEMA
from repro.trace.tracer import Trace


def _kernel_node(event, node_id: int, parents: list[int]) -> dict:
    return {
        "id": node_id,
        "name": event.name,
        "parents": parents,
        "category": event.category.value,
        "stage": event.stage,
        "modality": event.modality,
        "pass": event.pass_,
        "flops": event.flops,
        "bytes_read": event.bytes_read,
        "bytes_written": event.bytes_written,
        "threads": event.threads,
        "coalesced_fraction": event.coalesced_fraction,
        "reuse_factor": event.reuse_factor,
        "attrs": dict(event.meta),
    }


def _host_node(event, node_id: int, parents: list[int]) -> dict:
    return {
        "id": node_id,
        "name": event.name or f"host_{event.kind.value}",
        "parents": parents,
        "host": True,
        "kind": event.kind.value,
        "bytes": event.bytes,
        "stage": event.stage,
        "modality": event.modality,
        "pass": event.pass_,
        "attrs": dict(event.meta),
    }


def trace_to_graph(trace: Trace, name: str = "trace",
                   batch_size: int = 1, model: dict | None = None) -> dict:
    """Serialize a native trace to an ``mmbench-eg/1`` graph dict.

    Kernels and host events are merged by global ``seq`` and chained
    serially (each node's sole parent is its predecessor), which pins the
    importer's topological order to the capture order.
    """
    events = [("kernel", e) for e in trace.kernels]
    events += [("host", e) for e in trace.host_events]
    events.sort(key=lambda pair: pair[1].seq)

    nodes = []
    prev_id = None
    for i, (kind, event) in enumerate(events):
        node_id = i + 1
        parents = [prev_id] if prev_id is not None else []
        if kind == "kernel":
            nodes.append(_kernel_node(event, node_id, parents))
        else:
            nodes.append(_host_node(event, node_id, parents))
        prev_id = node_id

    graph = {
        "schema": GRAPH_SCHEMA,
        "name": name,
        "batch_size": int(batch_size),
        "nodes": nodes,
    }
    if model:
        graph["model"] = model
    return graph


def stored_to_graph(stored, batch_size: int = 1, name: str | None = None) -> dict:
    """Serialize a :class:`~repro.trace.store.StoredTrace` with its model
    scalars, so re-ingest recovers parameter/input bytes for pricing."""
    return trace_to_graph(
        stored.trace,
        name=name or stored.model_name,
        batch_size=batch_size,
        model={
            "parameters": stored.parameters,
            "parameter_bytes": stored.parameter_bytes,
            "input_bytes": stored.input_bytes,
            "modalities": list(stored.modalities),
        },
    )


def write_graph(graph: dict, path) -> Path:
    """Write a graph dict to ``path`` as pretty-printed JSON."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(graph, indent=1) + "\n", encoding="utf-8")
    return out
