"""Exports: accelerator-simulation problems and execution-graph JSON."""

from repro.export.graph import (
    GRAPH_SCHEMA,
    stored_to_graph,
    trace_to_graph,
    write_graph,
)
from repro.export.timeloop import export_problems, export_summary, kernel_to_problem

__all__ = [
    "GRAPH_SCHEMA", "stored_to_graph", "trace_to_graph", "write_graph",
    "export_problems", "export_summary", "kernel_to_problem",
]
