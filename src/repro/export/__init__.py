"""Exports for accelerator-simulation frameworks (Timeloop-style)."""

from repro.export.timeloop import export_problems, export_summary, kernel_to_problem

__all__ = ["export_problems", "export_summary", "kernel_to_problem"]
