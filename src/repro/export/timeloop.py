"""Timeloop-style layer-shape export (Sec. 3.1).

The paper notes that accelerator-simulation frameworks such as
Timeloop [33] "simply take the data shape and network shape as input", and
that MMBench "is able to directly provide this abstraction and free users
of manual conversion". This module walks a traced workload and emits the
per-layer problem shapes in a Timeloop-like dict format (one problem per
Conv/Gemm kernel), ready to serialize as YAML-equivalent structures.
"""

from __future__ import annotations

from repro.trace.events import KernelCategory, KernelEvent
from repro.trace.tracer import Trace


def kernel_to_problem(kernel: KernelEvent) -> dict | None:
    """One traced kernel -> a Timeloop problem dict (Conv/Gemm only)."""
    if kernel.category == KernelCategory.GEMM:
        meta = kernel.meta
        if not {"m", "n", "k"} <= set(meta):
            return None
        return {
            "problem": {
                "shape": "gemm",
                "M": int(meta["m"]),
                "N": int(meta["n"]),
                "K": int(meta["k"]),
            },
            "stage": kernel.stage,
            "modality": kernel.modality,
        }
    if kernel.category == KernelCategory.CONV:
        meta = kernel.meta
        if not {"kh", "kw", "stride"} <= set(meta):
            return None
        return {
            "problem": {
                "shape": "cnn-layer",
                "R": int(meta["kh"]),
                "S": int(meta["kw"]),
                "Wstride": int(meta["stride"]),
                "Hstride": int(meta["stride"]),
                "flops": kernel.flops,
            },
            "stage": kernel.stage,
            "modality": kernel.modality,
        }
    return None


def export_problems(trace: Trace) -> list[dict]:
    """All exportable layer problems from a trace, in execution order."""
    problems = []
    for kernel in trace.kernels:
        problem = kernel_to_problem(kernel)
        if problem is not None:
            problems.append(problem)
    return problems


def export_summary(trace: Trace) -> dict:
    """Aggregate export header: totals a simulator needs for sanity checks."""
    problems = export_problems(trace)
    return {
        "num_problems": len(problems),
        "total_flops": trace.total_flops,
        "total_bytes": trace.total_bytes,
        "stages": trace.stages(),
        "modalities": trace.modalities(),
    }
