"""Background fine-tuning tenants sharing serving devices.

A production fleet rarely dedicates devices to fine-tuning: training jobs
run *behind* the inference traffic, holding a resource share of each
device. This module models that through the stream-share semantics of
:mod:`repro.hw.streams`: a job with share ``w`` runs on a partition whose
effective roofline is scaled by ``w`` (its steps take ``step_time / w``),
and the inference streams keep the remaining ``1 - sum(w)`` of every
device, so every batch slows down by ``1 / (1 - sum(w))``.

Training-step times come from the traced training path — the shared trace
store's pass-aware keys price one full forward + loss + backward +
optimizer step per (workload, batch, optimizer, device) — so the
background jobs and the foreground traffic are costed by the same
vectorized engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.hw.device import get_device
from repro.hw.streams import StreamLoad

#: Matches the StreamScheduler's oversubscription tolerance.
_SHARE_TOL = 1e-9


@dataclass(frozen=True)
class FinetuneJob:
    """One background fine-tuning job riding on the serving pool.

    The job holds ``share`` of *every* device slot in the pool (a
    fleet-wide background train loop); its training steps run at
    ``step_time / share`` on that partition, the
    :class:`~repro.hw.streams.StreamLoad` scaling rule.
    """

    name: str
    workload: str
    share: float
    batch_size: int = 32
    optimizer: str = "adam"
    fusion: str | None = None
    seed: int = 0
    backend: str = "meta"
    # Checkpoint every N steps: when a device failure interrupts the job,
    # progress on that slot resumes from the last completed multiple of
    # this interval (steps past it are lost and counted).
    checkpoint_interval: int = 100

    def __post_init__(self):
        if not 0.0 < self.share < 1.0:
            raise ValueError(
                f"finetune share must be in (0, 1), got {self.share}")
        if self.batch_size <= 0:
            raise ValueError(
                f"finetune batch_size must be positive, got {self.batch_size}")
        if self.checkpoint_interval <= 0:
            raise ValueError(f"checkpoint_interval must be positive, "
                             f"got {self.checkpoint_interval}")


def total_background_share(jobs: Sequence[FinetuneJob]) -> float:
    """Sum of job shares; rejects oversubscription (inference needs > 0)."""
    names = [job.name for job in jobs]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate finetune job names: {names}")
    total = sum(job.share for job in jobs)
    if total >= 1.0 - _SHARE_TOL:
        raise ValueError(
            f"finetune shares leave no room for inference: sum={total:.6f} >= 1")
    return total


def inference_slowdown(jobs: Sequence[FinetuneJob]) -> float:
    """Batch-latency multiplier for the inference partition.

    Inference keeps ``1 - sum(shares)`` of each device; under the
    share-scaled roofline of :class:`~repro.hw.streams.StreamScheduler`
    every kernel (hence every batch) runs ``1 / (1 - sum)`` slower.
    """
    if not jobs:
        return 1.0
    return 1.0 / (1.0 - total_background_share(jobs))


class TrainingCostModel:
    """Memoized native training-step seconds per device for one job."""

    def __init__(self, job: FinetuneJob, store=None):
        self.job = job
        self._store = store
        self._times: dict[str, float] = {}

    def step_time(self, device: str) -> float:
        """Seconds for one full-device training step on ``device``."""
        canonical = get_device(device).name
        if canonical not in self._times:
            from repro.core.analysis.training import training_step_analysis

            breakdown = training_step_analysis(
                workloads=[self.job.workload], device=canonical,
                batch_size=self.job.batch_size, optimizer=self.job.optimizer,
                fusion=self.job.fusion, seed=self.job.seed,
                backend=self.job.backend, store=self._store,
            )[self.job.workload]
            self._times[canonical] = breakdown.total_time
        return self._times[canonical]


@dataclass(frozen=True)
class FinetuneStats:
    """What one background job achieved during a serving run."""

    name: str
    workload: str
    share: float
    optimizer: str
    batch_size: int
    makespan: float  # the serving run's wall time the job trained through
    steps_completed: float  # fractional: jobs run continuously
    samples_processed: float
    step_times: dict[str, float] = field(default_factory=dict)  # slot -> native s
    per_slot_steps: dict[str, float] = field(default_factory=dict)
    # Checkpoint/restart accounting under fault injection: device
    # failures roll each interrupted slot back to its last checkpoint.
    lost_steps: float = 0.0  # steps re-done after rollbacks
    restarts: int = 0  # checkpoint restores (one per interrupting down window)
    downtime: float = 0.0  # total slot-seconds the job could not train

    @property
    def steps_per_second(self) -> float:
        return self.steps_completed / self.makespan if self.makespan > 0 else 0.0


def _up_windows(makespan: float,
                down: Sequence[tuple[float, float]]) -> list[tuple[float, float]]:
    """Invert a slot's down windows over ``[0, makespan]``.

    Returns the up windows, each tagged with whether it ended because of
    a failure: ``(length, interrupted)`` pairs in time order.
    """
    windows: list[tuple[float, bool]] = []
    cursor = 0.0
    for start, end in sorted(down):
        if start >= makespan:  # failed after serving ended: no restart
            continue
        start = max(0.0, min(start, makespan))
        end = max(0.0, min(end, makespan))
        if start > cursor:
            windows.append((start - cursor, True))
        cursor = max(cursor, end)
    if makespan > cursor:
        windows.append((makespan - cursor, False))
    return windows


def finetune_progress(
    jobs: Sequence[FinetuneJob],
    slots: Mapping[str, str],
    makespan: float,
    store=None,
    down_windows: Mapping[str, Sequence[tuple[float, float]]] | None = None,
) -> dict[str, FinetuneStats]:
    """Steps each background job completed while the traffic was served.

    ``slots`` maps slot labels to device model names (the simulator's
    labelling). Each job holds its share on every slot; on one slot its
    partitioned step time is ``step_time / share``
    (:class:`~repro.hw.streams.StreamLoad` semantics), so it completes
    ``makespan * share / step_time`` steps there.

    ``down_windows`` (slot label -> ``(start, end)`` fault windows from
    the serving run) gives jobs checkpoint/restart semantics: a job
    trains only through a slot's up windows, and every down window rolls
    the slot's progress back to the last completed multiple of the job's
    ``checkpoint_interval`` — the steps past it are lost (re-done after
    recovery) and each rollback counts as a restart.
    """
    if not jobs:
        return {}
    total_background_share(jobs)  # validates
    down_windows = down_windows or {}
    out: dict[str, FinetuneStats] = {}
    for job in jobs:
        cost = TrainingCostModel(job, store=store)
        step_times: dict[str, float] = {}
        per_slot: dict[str, float] = {}
        lost_steps = 0.0
        restarts = 0
        downtime = 0.0
        interval = float(job.checkpoint_interval)
        for label, device in slots.items():
            native = cost.step_time(device)
            # The stream-share scaling rule, spelled out through the
            # hw.streams primitive the scheduler itself uses.
            load = StreamLoad(name=job.name, durations=np.array([native]),
                              share=job.share)
            partitioned = float(load.durations[0] / load.share)
            down = down_windows.get(label, ())
            if partitioned <= 0:
                per_slot[label] = 0.0
            elif not down:
                per_slot[label] = makespan / partitioned
            else:
                downtime += sum(min(e, makespan) - max(s, 0.0)
                                for s, e in down if e > 0 and s < makespan)
                # Progress is checkpoint-aligned after every failure:
                # within each up window the job advances continuously,
                # then a failure rolls it back to the last checkpoint.
                progress = 0.0
                for length, interrupted in _up_windows(makespan, down):
                    reached = progress + length / partitioned
                    if interrupted:
                        checkpointed = (reached // interval) * interval
                        lost_steps += reached - checkpointed
                        restarts += 1
                        progress = checkpointed
                    else:
                        progress = reached
                per_slot[label] = progress
            step_times[label] = native
        steps = float(sum(per_slot.values()))
        out[job.name] = FinetuneStats(
            name=job.name,
            workload=job.workload,
            share=job.share,
            optimizer=job.optimizer,
            batch_size=job.batch_size,
            makespan=makespan,
            steps_completed=steps,
            samples_processed=steps * job.batch_size,
            step_times=step_times,
            per_slot_steps=per_slot,
            lost_steps=float(lost_steps),
            restarts=restarts,
            downtime=float(downtime),
        )
    return out


def make_finetune_jobs(
    workloads: Sequence[str],
    share: float = 0.25,
    batch_size: int = 32,
    optimizer: str = "adam",
    seed: int = 0,
    backend: str = "meta",
) -> list[FinetuneJob]:
    """One background job per workload, splitting ``share`` equally."""
    if not workloads:
        return []
    if len(set(workloads)) != len(workloads):
        raise ValueError(f"duplicate finetune workloads: {list(workloads)}")
    if not 0.0 < share < 1.0:
        raise ValueError(f"aggregate finetune share must be in (0, 1), got {share}")
    each = share / len(workloads)
    return [
        FinetuneJob(name=f"{workload}:finetune", workload=workload, share=each,
                    batch_size=batch_size, optimizer=optimizer, seed=seed,
                    backend=backend)
        for workload in workloads
    ]
