"""Background fine-tuning tenants sharing serving devices.

A production fleet rarely dedicates devices to fine-tuning: training jobs
run *behind* the inference traffic, holding a resource share of each
device. This module models that through the stream-share semantics of
:mod:`repro.hw.streams`: a job with share ``w`` runs on a partition whose
effective roofline is scaled by ``w`` (its steps take ``step_time / w``),
and the inference streams keep the remaining ``1 - sum(w)`` of every
device, so every batch slows down by ``1 / (1 - sum(w))``.

Training-step times come from the traced training path — the shared trace
store's pass-aware keys price one full forward + loss + backward +
optimizer step per (workload, batch, optimizer, device) — so the
background jobs and the foreground traffic are costed by the same
vectorized engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.hw.device import get_device
from repro.hw.streams import StreamLoad

#: Matches the StreamScheduler's oversubscription tolerance.
_SHARE_TOL = 1e-9


@dataclass(frozen=True)
class FinetuneJob:
    """One background fine-tuning job riding on the serving pool.

    The job holds ``share`` of *every* device slot in the pool (a
    fleet-wide background train loop); its training steps run at
    ``step_time / share`` on that partition, the
    :class:`~repro.hw.streams.StreamLoad` scaling rule.
    """

    name: str
    workload: str
    share: float
    batch_size: int = 32
    optimizer: str = "adam"
    fusion: str | None = None
    seed: int = 0
    backend: str = "meta"

    def __post_init__(self):
        if not 0.0 < self.share < 1.0:
            raise ValueError(
                f"finetune share must be in (0, 1), got {self.share}")
        if self.batch_size <= 0:
            raise ValueError(
                f"finetune batch_size must be positive, got {self.batch_size}")


def total_background_share(jobs: Sequence[FinetuneJob]) -> float:
    """Sum of job shares; rejects oversubscription (inference needs > 0)."""
    names = [job.name for job in jobs]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate finetune job names: {names}")
    total = sum(job.share for job in jobs)
    if total >= 1.0 - _SHARE_TOL:
        raise ValueError(
            f"finetune shares leave no room for inference: sum={total:.6f} >= 1")
    return total


def inference_slowdown(jobs: Sequence[FinetuneJob]) -> float:
    """Batch-latency multiplier for the inference partition.

    Inference keeps ``1 - sum(shares)`` of each device; under the
    share-scaled roofline of :class:`~repro.hw.streams.StreamScheduler`
    every kernel (hence every batch) runs ``1 / (1 - sum)`` slower.
    """
    if not jobs:
        return 1.0
    return 1.0 / (1.0 - total_background_share(jobs))


class TrainingCostModel:
    """Memoized native training-step seconds per device for one job."""

    def __init__(self, job: FinetuneJob, store=None):
        self.job = job
        self._store = store
        self._times: dict[str, float] = {}

    def step_time(self, device: str) -> float:
        """Seconds for one full-device training step on ``device``."""
        canonical = get_device(device).name
        if canonical not in self._times:
            from repro.core.analysis.training import training_step_analysis

            breakdown = training_step_analysis(
                workloads=[self.job.workload], device=canonical,
                batch_size=self.job.batch_size, optimizer=self.job.optimizer,
                fusion=self.job.fusion, seed=self.job.seed,
                backend=self.job.backend, store=self._store,
            )[self.job.workload]
            self._times[canonical] = breakdown.total_time
        return self._times[canonical]


@dataclass(frozen=True)
class FinetuneStats:
    """What one background job achieved during a serving run."""

    name: str
    workload: str
    share: float
    optimizer: str
    batch_size: int
    makespan: float  # the serving run's wall time the job trained through
    steps_completed: float  # fractional: jobs run continuously
    samples_processed: float
    step_times: dict[str, float] = field(default_factory=dict)  # slot -> native s
    per_slot_steps: dict[str, float] = field(default_factory=dict)

    @property
    def steps_per_second(self) -> float:
        return self.steps_completed / self.makespan if self.makespan > 0 else 0.0


def finetune_progress(
    jobs: Sequence[FinetuneJob],
    slots: Mapping[str, str],
    makespan: float,
    store=None,
) -> dict[str, FinetuneStats]:
    """Steps each background job completed while the traffic was served.

    ``slots`` maps slot labels to device model names (the simulator's
    labelling). Each job holds its share on every slot; on one slot its
    partitioned step time is ``step_time / share``
    (:class:`~repro.hw.streams.StreamLoad` semantics), so it completes
    ``makespan * share / step_time`` steps there.
    """
    if not jobs:
        return {}
    total_background_share(jobs)  # validates
    out: dict[str, FinetuneStats] = {}
    for job in jobs:
        cost = TrainingCostModel(job, store=store)
        step_times: dict[str, float] = {}
        per_slot: dict[str, float] = {}
        for label, device in slots.items():
            native = cost.step_time(device)
            # The stream-share scaling rule, spelled out through the
            # hw.streams primitive the scheduler itself uses.
            load = StreamLoad(name=job.name, durations=np.array([native]),
                              share=job.share)
            partitioned = float(load.durations[0] / load.share)
            step_times[label] = native
            per_slot[label] = makespan / partitioned if partitioned > 0 else 0.0
        steps = float(sum(per_slot.values()))
        out[job.name] = FinetuneStats(
            name=job.name,
            workload=job.workload,
            share=job.share,
            optimizer=job.optimizer,
            batch_size=job.batch_size,
            makespan=makespan,
            steps_completed=steps,
            samples_processed=steps * job.batch_size,
            step_times=step_times,
            per_slot_steps=per_slot,
        )
    return out


def make_finetune_jobs(
    workloads: Sequence[str],
    share: float = 0.25,
    batch_size: int = 32,
    optimizer: str = "adam",
    seed: int = 0,
    backend: str = "meta",
) -> list[FinetuneJob]:
    """One background job per workload, splitting ``share`` equally."""
    if not workloads:
        return []
    if len(set(workloads)) != len(workloads):
        raise ValueError(f"duplicate finetune workloads: {list(workloads)}")
    if not 0.0 < share < 1.0:
        raise ValueError(f"aggregate finetune share must be in (0, 1), got {share}")
    each = share / len(workloads)
    return [
        FinetuneJob(name=f"{workload}:finetune", workload=workload, share=each,
                    batch_size=batch_size, optimizer=optimizer, seed=seed,
                    backend=backend)
        for workload in workloads
    ]
