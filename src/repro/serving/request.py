"""Requests and arrival processes for the open-loop serving simulator.

A :class:`Request` is one inference task travelling through the serving
system. Its timeline decomposes end-to-end latency the way a deployment
engineer debugs it:

    arrival --(queueing)--> could_start --(batch formation)--> dispatch
            --(compute)--> finish

``queueing`` is time spent waiting because every device was busy;
``batch formation`` is time the batching policy *chose* to hold the
request while a device sat idle (timeout-based policies trade this
against larger, more efficient batches); ``compute`` is the batch's
service time on the device it was routed to.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class Request:
    """One inference task; timing fields are filled in by the simulator."""

    index: int
    arrival: float
    dispatch: float = field(default=float("nan"))
    finish: float = field(default=float("nan"))
    device: str = ""
    batch_size: int = 0  # size of the batch this request rode in
    formation_wait: float = 0.0  # policy-induced wait while a device was idle

    @property
    def queue_time(self) -> float:
        """Total pre-dispatch wait (queueing + batch formation)."""
        return self.dispatch - self.arrival

    @property
    def service_time(self) -> float:
        return self.finish - self.dispatch

    @property
    def latency(self) -> float:
        """End-to-end: arrival to completion."""
        return self.finish - self.arrival


def poisson_arrivals(n_requests: int, arrival_rate: float, seed: int = 0) -> np.ndarray:
    """Cumulative arrival times of a Poisson stream with the given mean rate."""
    if n_requests <= 0:
        raise ValueError(f"n_requests must be positive, got {n_requests}")
    if arrival_rate <= 0:
        raise ValueError("arrival_rate must be positive")
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.exponential(1.0 / arrival_rate, size=n_requests))


def closed_arrivals(n_requests: int) -> np.ndarray:
    """All requests queued at t=0 — the paper's closed 10,000-task setting."""
    if n_requests <= 0:
        raise ValueError(f"n_requests must be positive, got {n_requests}")
    return np.zeros(n_requests)


def make_requests(arrivals: np.ndarray) -> list[Request]:
    """Wrap an arrival-time array into simulator requests (FIFO order)."""
    return [Request(index=i, arrival=float(t)) for i, t in enumerate(arrivals)]
