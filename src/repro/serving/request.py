"""Requests and arrival processes for the open-loop serving simulator.

A :class:`Request` is one inference task travelling through the serving
system. Its timeline decomposes end-to-end latency the way a deployment
engineer debugs it:

    arrival --(queueing)--> could_start --(batch formation)--> dispatch
            --(compute)--> finish

``queueing`` is time spent waiting because every device was busy;
``batch formation`` is time the batching policy *chose* to hold the
request while a device sat idle (timeout-based policies trade this
against larger, more efficient batches); ``compute`` is the batch's
service time on the device it was routed to.

Multi-tenant streams tag each request with the ``tenant`` (workload) it
belongs to; the simulator keeps one FIFO queue per tenant and never
batches across tenants (different workloads cannot share a batch).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np


@dataclass(slots=True)
class Request:
    """One inference task; timing fields are filled in by the simulator."""

    index: int
    arrival: float
    tenant: str = ""  # workload/tenant tag; "" in single-tenant simulations
    dispatch: float = field(default=float("nan"))
    finish: float = field(default=float("nan"))
    device: str = ""
    batch_size: int = 0  # size of the batch this request rode in
    formation_wait: float = 0.0  # policy-induced wait while a device was idle
    retries: int = 0  # times this request was aborted by a device failure
    shed: bool = False  # dropped (retries/deadline exhausted), never completed
    degraded: bool = False  # served in the tenant's degraded mode

    @property
    def queue_time(self) -> float:
        """Total pre-dispatch wait (queueing + batch formation)."""
        return self.dispatch - self.arrival

    @property
    def service_time(self) -> float:
        return self.finish - self.dispatch

    @property
    def latency(self) -> float:
        """End-to-end: arrival to completion."""
        return self.finish - self.arrival


def poisson_arrivals(n_requests: int, arrival_rate: float, seed: int = 0) -> np.ndarray:
    """Cumulative arrival times of a Poisson stream with the given mean rate.

    ``n_requests=0`` yields an empty stream (an empty simulation is
    well-formed); negative counts are rejected.
    """
    if n_requests < 0:
        raise ValueError(f"n_requests must be non-negative, got {n_requests}")
    if arrival_rate <= 0:
        raise ValueError("arrival_rate must be positive")
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.exponential(1.0 / arrival_rate, size=n_requests))


def closed_arrivals(n_requests: int) -> np.ndarray:
    """All requests queued at t=0 — the paper's closed 10,000-task setting."""
    if n_requests < 0:
        raise ValueError(f"n_requests must be non-negative, got {n_requests}")
    return np.zeros(n_requests)


def make_requests(arrivals: np.ndarray, tenant: str = "") -> list[Request]:
    """Wrap an arrival-time array into simulator requests (FIFO order)."""
    return [Request(index=i, arrival=float(t), tenant=tenant)
            for i, t in enumerate(arrivals)]


def make_mixed_requests(
    arrivals: np.ndarray,
    tenant_codes: np.ndarray,
    tenants: Sequence[str],
) -> list[Request]:
    """Build a tagged, arrival-sorted request stream for a tenant mix.

    ``arrivals`` and ``tenant_codes`` are parallel arrays (code ``j``
    means ``tenants[j]``); the merged stream is sorted by arrival time
    (stable, so same-instant requests keep their generated order) and
    indexed globally.
    """
    arrivals = np.asarray(arrivals, dtype=np.float64)
    tenant_codes = np.asarray(tenant_codes, dtype=np.int64)
    if arrivals.shape != tenant_codes.shape:
        raise ValueError("arrivals and tenant_codes must be parallel arrays")
    order = np.argsort(arrivals, kind="stable")
    return [
        Request(index=i, arrival=float(arrivals[j]), tenant=tenants[int(tenant_codes[j])])
        for i, j in enumerate(order)
    ]
