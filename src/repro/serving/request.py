"""Requests and arrival processes for the open-loop serving simulator.

A :class:`Request` is one inference task travelling through the serving
system. Its timeline decomposes end-to-end latency the way a deployment
engineer debugs it:

    arrival --(queueing)--> could_start --(batch formation)--> dispatch
            --(compute)--> finish

``queueing`` is time spent waiting because every device was busy;
``batch formation`` is time the batching policy *chose* to hold the
request while a device sat idle (timeout-based policies trade this
against larger, more efficient batches); ``compute`` is the batch's
service time on the device it was routed to.

Multi-tenant streams tag each request with the ``tenant`` (workload) it
belongs to; the simulator keeps one FIFO queue per tenant and never
batches across tenants (different workloads cannot share a batch).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np


@dataclass(slots=True)
class Request:
    """One inference task; timing fields are filled in by the simulator."""

    index: int
    arrival: float
    tenant: str = ""  # workload/tenant tag; "" in single-tenant simulations
    dispatch: float = field(default=float("nan"))
    finish: float = field(default=float("nan"))
    device: str = ""
    batch_size: int = 0  # size of the batch this request rode in
    formation_wait: float = 0.0  # policy-induced wait while a device was idle
    retries: int = 0  # times this request was aborted by a device failure
    shed: bool = False  # dropped (retries/deadline exhausted), never completed
    degraded: bool = False  # served in the tenant's degraded mode

    @property
    def queue_time(self) -> float:
        """Total pre-dispatch wait (queueing + batch formation)."""
        return self.dispatch - self.arrival

    @property
    def service_time(self) -> float:
        return self.finish - self.dispatch

    @property
    def latency(self) -> float:
        """End-to-end: arrival to completion."""
        return self.finish - self.arrival


def poisson_arrivals(n_requests: int, arrival_rate: float, seed: int = 0) -> np.ndarray:
    """Cumulative arrival times of a Poisson stream with the given mean rate.

    ``n_requests=0`` yields an empty stream (an empty simulation is
    well-formed); negative counts are rejected.
    """
    if n_requests < 0:
        raise ValueError(f"n_requests must be non-negative, got {n_requests}")
    if arrival_rate <= 0:
        raise ValueError("arrival_rate must be positive")
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.exponential(1.0 / arrival_rate, size=n_requests))


def closed_arrivals(n_requests: int) -> np.ndarray:
    """All requests queued at t=0 — the paper's closed 10,000-task setting."""
    if n_requests < 0:
        raise ValueError(f"n_requests must be non-negative, got {n_requests}")
    return np.zeros(n_requests)


def make_requests(arrivals: np.ndarray, tenant: str = "") -> list[Request]:
    """Wrap an arrival-time array into simulator requests (FIFO order)."""
    return [Request(index=i, arrival=float(t), tenant=tenant)
            for i, t in enumerate(arrivals)]


@dataclass(frozen=True)
class RequestColumns:
    """A tagged, arrival-sorted request stream as parallel columns.

    The columnar twin of a ``list[Request]``: ``arrivals`` is sorted
    ascending, ``codes[i]`` indexes ``tenants`` for request ``i``. The
    fleet simulator (:mod:`repro.serving.fleet`) consumes the columns
    directly; the classic per-request loop materializes objects via
    :meth:`to_requests`.
    """

    arrivals: np.ndarray  # float64, sorted ascending
    codes: np.ndarray  # int64 index into ``tenants``, parallel to arrivals
    tenants: tuple[str, ...]

    def __post_init__(self):
        arrivals = np.ascontiguousarray(self.arrivals, dtype=np.float64)
        codes = np.ascontiguousarray(self.codes, dtype=np.int64)
        if arrivals.shape != codes.shape or arrivals.ndim != 1:
            raise ValueError("arrivals and codes must be parallel 1-D arrays")
        if codes.size and (codes.min() < 0 or codes.max() >= len(self.tenants)):
            raise ValueError("tenant codes out of range")
        object.__setattr__(self, "arrivals", arrivals)
        object.__setattr__(self, "codes", codes)
        object.__setattr__(self, "tenants", tuple(self.tenants))

    def __len__(self) -> int:
        return int(self.arrivals.size)

    def to_requests(self) -> list[Request]:
        """Materialize the stream as simulator ``Request`` objects.

        A thin adapter for the classic per-request event loop; one
        ``tolist`` per column instead of a per-attribute numpy indexing
        loop.
        """
        names = list(self.tenants)
        return [
            Request(index=i, arrival=arrival, tenant=names[code])
            for i, (arrival, code) in enumerate(
                zip(self.arrivals.tolist(), self.codes.tolist()))
        ]


def sort_request_columns(
    arrivals: np.ndarray,
    tenant_codes: np.ndarray,
    tenants: Sequence[str],
) -> RequestColumns:
    """Sort parallel (arrival, code) arrays into :class:`RequestColumns`.

    The sort is stable (same-instant requests keep their generated order)
    and skipped entirely when the arrivals are already non-decreasing —
    the common case, since Poisson-style generators emit cumulative sums.
    """
    arrivals = np.asarray(arrivals, dtype=np.float64)
    tenant_codes = np.asarray(tenant_codes, dtype=np.int64)
    if arrivals.shape != tenant_codes.shape:
        raise ValueError("arrivals and tenant_codes must be parallel arrays")
    if arrivals.size and np.any(np.diff(arrivals) < 0):
        order = np.argsort(arrivals, kind="stable")
        arrivals = arrivals[order]
        tenant_codes = tenant_codes[order]
    return RequestColumns(arrivals, tenant_codes, tuple(tenants))


def make_mixed_requests(
    arrivals: np.ndarray,
    tenant_codes: np.ndarray,
    tenants: Sequence[str],
) -> list[Request]:
    """Build a tagged, arrival-sorted request stream for a tenant mix.

    ``arrivals`` and ``tenant_codes`` are parallel arrays (code ``j``
    means ``tenants[j]``); the merged stream is sorted by arrival time
    (stable, so same-instant requests keep their generated order) and
    indexed globally.
    """
    return sort_request_columns(arrivals, tenant_codes, tenants).to_requests()
