"""Fleet-scale serving simulator: device groups, vectorized epochs, autoscaling.

The classic simulator (:mod:`repro.serving.simulator`) pops one Python
object per event off a heap — exact, but ~250k simulated req/s on a
handful of devices. A production fleet is a different shape: *hundreds*
of replicas behind a global router, almost all of them interchangeable.
This module exploits that structure. Devices are grouped into
homogeneous :class:`DeviceGroup`\\ s (``DeviceGroup("2080ti", 64)``),
and the event loop processes *epochs* of events as numpy arrays per
group:

* arrivals come in as columnar arrays straight from
  :func:`repro.serving.scenarios.scenario_columns` and are absorbed in
  bulk with ``searchsorted`` — under saturation, one epoch swallows
  thousands of arrivals without visiting them individually;
* each group keeps a replica free-time *vector*; idleness checks,
  replica selection (argmin within the group) and completion handling
  are array comparisons instead of per-slot heap events;
* batch latencies reuse the cost models' memoized anchor curves
  (:class:`~repro.serving.costmodel.ProfiledCostModel`) as a dense
  precomputed interpolation table per (tenant, device), so the hot loop
  never re-enters the interpolator.

Routing happens per *group*, not per slot: every replica of a group
shares one latency curve, so ranking 64 identical slots is 63 wasted
cost-model calls. On top of the core loop:

* **cross-group hop costs** — when the router moves a tenant's traffic
  to a different group than its previous batch, the batch pays a
  host-to-device transfer (:func:`repro.hw.transfer.h2d_time`) of
  ``hop_bytes`` per request on the destination device;
* **reactive autoscaling** — an :class:`AutoscalePolicy` evaluated on a
  fixed interval scales groups out on queue depth (or windowed p99) and
  back in on idleness, with cooldowns and per-group min/max replicas;
  every action lands in the report as a :class:`ScalingEvent`.

The classic loop stays as the *reference implementation*: with
autoscaling off, no faults and no hop costs, :func:`simulate_fleet`
visits a subset of the classic loop's event times but makes the
identical dispatch decisions at the identical instants, so completions,
latency percentiles and per-tenant SLO attainment agree to float
round-off — a tier-1-enforced differential invariant.

Fault plans compose at group granularity: ``DeviceDown``/``Recover``
takes a whole group out of routing (in-flight batches *drain* — their
timing was finalized at dispatch — rather than aborting as the classic
fault runtime does), and ``ThermalThrottle`` scales a group's latency
curves for its window. Slot-level ``TransientStall`` events have no
group-level meaning and are rejected.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.hw.transfer import h2d_time
from repro.serving.faults import FaultPlan
from repro.serving.simulator import TenantSpec, TenantStats

__all__ = [
    "AutoscalePolicy",
    "DeviceGroup",
    "FleetConfig",
    "FleetConfigError",
    "FleetReport",
    "GroupStats",
    "ScalingEvent",
    "parse_autoscale",
    "parse_groups",
    "simulate_fleet",
]


class FleetConfigError(ValueError):
    """A fleet configuration is malformed; the message names the offender."""


@dataclass(frozen=True)
class DeviceGroup:
    """``replicas`` interchangeable instances of one device model.

    ``pool`` is the provisioned ceiling the autoscaler may scale out to;
    it defaults to ``replicas`` (no headroom). The simulation starts
    with ``replicas`` active.
    """

    device: str
    replicas: int
    pool: int | None = None

    def __post_init__(self):
        if not self.device:
            raise FleetConfigError("device group needs a device name")
        if self.replicas < 1:
            raise FleetConfigError(
                f"group {self.device!r} needs at least 1 replica, "
                f"got {self.replicas}")
        if self.pool is not None and self.pool < self.replicas:
            raise FleetConfigError(
                f"group {self.device!r} pool ({self.pool}) smaller than its "
                f"initial replicas ({self.replicas})")

    @property
    def capacity(self) -> int:
        """Provisioned replica ceiling (``pool`` or ``replicas``)."""
        return self.replicas if self.pool is None else self.pool


@dataclass(frozen=True)
class AutoscalePolicy:
    """Reactive per-group scaling, evaluated every ``interval`` seconds.

    * **scale-out** when the fleet-wide metric (``"queue"`` = requests
      queued, ``"p99"`` = p99 latency of batches dispatched since the
      last evaluation) exceeds ``threshold`` — the group grows by
      ``step`` replicas up to ``max_replicas`` (never past its pool);
    * **scale-in** when nothing is queued and at least
      ``idle_fraction`` of the group's active replicas sit idle — the
      group shrinks by ``step`` down to ``min_replicas``. Scale-in only
      retires *capacity*: a busy replica keeps draining its in-flight
      batch (timing is finalized at dispatch, nothing is ever aborted).
    * ``cooldown`` suppresses any action on a group within ``cooldown``
      seconds of its previous action.
    """

    metric: str = "queue"
    threshold: float = 64.0
    interval: float = 0.05
    cooldown: float = 0.25
    step: int = 1
    min_replicas: int = 1
    max_replicas: int | None = None
    idle_fraction: float = 0.5

    def __post_init__(self):
        if self.metric not in ("queue", "p99"):
            raise FleetConfigError(
                f"autoscale metric must be 'queue' or 'p99', got {self.metric!r}")
        if self.threshold <= 0:
            raise FleetConfigError(
                f"autoscale threshold must be positive, got {self.threshold}")
        if self.interval <= 0:
            raise FleetConfigError(
                f"autoscale interval must be positive, got {self.interval}")
        if self.cooldown < 0:
            raise FleetConfigError(
                f"autoscale cooldown must be non-negative, got {self.cooldown}")
        if self.step < 1:
            raise FleetConfigError(
                f"autoscale step must be >= 1, got {self.step}")
        if self.min_replicas < 1:
            raise FleetConfigError(
                f"autoscale min_replicas must be >= 1, got {self.min_replicas}")
        if self.max_replicas is not None and self.max_replicas < self.min_replicas:
            raise FleetConfigError(
                f"autoscale max_replicas ({self.max_replicas}) below "
                f"min_replicas ({self.min_replicas})")
        if not 0 < self.idle_fraction <= 1:
            raise FleetConfigError(
                f"autoscale idle_fraction must be in (0, 1], "
                f"got {self.idle_fraction}")


@dataclass(frozen=True)
class ScalingEvent:
    """One autoscaler action: group ``group`` went ``before`` → ``after``."""

    time: float
    group: str
    before: int
    after: int
    reason: str


@dataclass(frozen=True)
class GroupStats:
    """Per-group accounting of one fleet simulation."""

    group: str  # device model name
    replicas: int  # active replicas at the end of the run
    peak_replicas: int
    mean_replicas: float  # time-weighted mean active replicas (occupancy)
    batches: int
    requests: int
    busy_time: float
    utilization: float  # busy time / (mean_replicas * makespan)
    mean_batch: float
    hop_batches: int  # batches that paid a cross-group transfer
    hop_time: float  # total transfer seconds added to those batches


@dataclass(frozen=True)
class FleetReport:
    """Everything one fleet simulation produced."""

    policy: str
    router: str
    n_requests: int
    arrival_rate: float | None
    makespan: float
    throughput: float
    mean_latency: float
    p50_latency: float
    p95_latency: float
    p99_latency: float
    mean_queue_time: float
    mean_formation_wait: float
    mean_service_time: float
    group_stats: dict[str, GroupStats]
    tenant_stats: dict[str, TenantStats]
    scaling_events: tuple[ScalingEvent, ...] = ()
    latencies: np.ndarray = field(default_factory=lambda: np.empty(0),
                                  repr=False)

    def slo_attainment(self, slo: float) -> float:
        """Fraction of requests whose end-to-end latency met ``slo``."""
        if not self.latencies.size:
            return 1.0
        return float((self.latencies <= slo).mean())

    @property
    def completed(self) -> int:
        """Dispatch finalizes timing and the fleet never sheds: all of them."""
        return self.n_requests


@dataclass(frozen=True)
class FleetConfig:
    """Declarative fleet configuration — the lint artifact.

    Bundles what :func:`simulate_fleet` is about to run so the MMB31x
    rules (:mod:`repro.lint.fleet_rules`) can vet it statically:
    oversubscribed autoscale bounds, thrash-prone cooldowns, fault plans
    naming unknown groups.
    """

    groups: tuple[DeviceGroup, ...]
    autoscale: AutoscalePolicy | None = None
    faults: FaultPlan | None = None


def parse_groups(spec: str) -> tuple[DeviceGroup, ...]:
    """Parse ``"2080ti:64,orin:32,nano:16"`` into device groups.

    Each entry is ``DEVICE:REPLICAS`` or ``DEVICE:REPLICAS:POOL`` (the
    autoscaler's provisioned ceiling).
    """
    groups: list[DeviceGroup] = []
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        parts = entry.split(":")
        if len(parts) not in (2, 3):
            raise FleetConfigError(
                f"bad group spec {entry!r}; expected DEVICE:REPLICAS[:POOL]")
        try:
            replicas = int(parts[1])
            pool = int(parts[2]) if len(parts) == 3 else None
        except ValueError:
            raise FleetConfigError(
                f"bad group spec {entry!r}; replicas/pool must be integers"
            ) from None
        groups.append(DeviceGroup(parts[0], replicas, pool))
    if not groups:
        raise FleetConfigError(f"no device groups in spec {spec!r}")
    return tuple(groups)


def parse_autoscale(spec: str, min_replicas: int = 1,
                    max_replicas: int | None = None) -> AutoscalePolicy:
    """Parse ``"queue:64"`` / ``"p99:0.1:0.05:0.25"`` into a policy.

    The spec is ``METRIC:THRESHOLD[:INTERVAL[:COOLDOWN]]``; the replica
    bounds come in separately (``--autoscale-min``/``--autoscale-max``
    on the CLI).
    """
    parts = spec.split(":")
    if len(parts) < 2 or len(parts) > 4:
        raise FleetConfigError(
            f"bad autoscale spec {spec!r}; expected "
            f"METRIC:THRESHOLD[:INTERVAL[:COOLDOWN]]")
    kwargs: dict = {"metric": parts[0]}
    try:
        kwargs["threshold"] = float(parts[1])
        if len(parts) > 2:
            kwargs["interval"] = float(parts[2])
        if len(parts) > 3:
            kwargs["cooldown"] = float(parts[3])
    except ValueError:
        raise FleetConfigError(
            f"bad autoscale spec {spec!r}; threshold/interval/cooldown "
            f"must be numbers") from None
    return AutoscalePolicy(min_replicas=min_replicas,
                           max_replicas=max_replicas, **kwargs)


# ---------------------------------------------------------------------------
# Dense latency tables
# ---------------------------------------------------------------------------

# A dense table never needs to stretch past the policies' decision range;
# anything larger falls back to the exact per-query path.
_MAX_TABLE = 4096


def _dense_curve(cost, device: str, max_k: int) -> np.ndarray | None:
    """Precompute ``latency(device, k)`` for ``k = 1..max_k``, or ``None``.

    Only cost models exposing their anchor representation
    (``_anchor_arr`` + ``_anchor_curve``, i.e. the profiled/trace
    models) are vectorized; everything else (e.g. test callables) goes
    through the exact per-query fallback. The vectorized interpolation
    reproduces :func:`repro.serving.costmodel._interp_affine`
    operation-for-operation, so table lookups are bit-identical to the
    scalar path the classic simulator takes.
    """
    anchors = getattr(cost, "_anchor_arr", None)
    curve_fn = getattr(cost, "_anchor_curve", None)
    if anchors is None or curve_fn is None:
        return None
    times = curve_fn(device)
    ks = np.arange(1, max_k + 1, dtype=np.float64)
    out = np.interp(ks, anchors, times)
    if anchors.size > 1:
        hi = ks > anchors[-1]
        if hi.any():
            slope = (times[-1] - times[-2]) / (anchors[-1] - anchors[-2])
            out[hi] = times[-1] + slope * (ks[hi] - anchors[-1])
        lo = ks < anchors[0]
        if lo.any():
            slope = (times[1] - times[0]) / (anchors[1] - anchors[0])
            out[lo] = np.maximum(times[0] - slope * (anchors[0] - ks[lo]),
                                 times[0] * ks[lo] / anchors[0])
    return out


class _GroupCost:
    """Per-tenant cost adapter the policies and the group router see.

    Groups are addressed by device model name, so ``device_name`` is the
    identity and ``underlying`` exposes the tenant's cost model — the
    same contract the classic loop's ``_SlotCost`` provides, which keeps
    :class:`~repro.serving.policies.AdaptiveSLOPolicy`'s drain memo
    shared (and valid) across both simulators.

    ``throttle`` is the live group → factor dict the fault edges mutate.
    """

    __slots__ = ("underlying", "_max_k", "_tables", "_memo", "_throttle")

    def __init__(self, cost, throttle: dict[str, float], max_k: int):
        self.underlying = cost
        self._max_k = min(int(max_k), _MAX_TABLE)
        self._tables: dict[str, np.ndarray | None] = {}
        self._memo: dict[tuple[str, int], float] = {}
        self._throttle = throttle

    def latency(self, device: str, batch_size: int) -> float:
        try:
            table = self._tables[device]
        except KeyError:
            table = self._tables[device] = _dense_curve(
                self.underlying, device, self._max_k)
        if table is not None and 1 <= batch_size <= table.size:
            base = float(table[batch_size - 1])
        else:
            key = (device, batch_size)
            base = self._memo.get(key)
            if base is None:
                base = self._memo[key] = float(
                    self.underlying.latency(device, batch_size))
        factor = self._throttle.get(device)
        if factor is not None:
            base *= factor
        return base

    def device_name(self, device: str) -> str:
        return device


def _policy_max_batch(policy, probe_cap: int) -> int:
    """Largest batch size a policy's decisions can ever price."""
    return max(int(probe_cap),
               int(getattr(policy, "max_batch", 0) or 0),
               int(getattr(policy, "batch_size", 0) or 0),
               1)


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


class _FleetEngine:
    """Vectorized event loop over device groups.

    One *epoch* = advance the clock to the next relevant instant, absorb
    everything due (fault edges, arrivals in bulk, autoscale ticks),
    then offer queued work to idle groups until every policy holds.
    Request timing is written straight into preallocated output columns;
    no per-request Python objects exist anywhere.
    """

    def __init__(self, tenants: Sequence[TenantSpec],
                 groups: Sequence[DeviceGroup], columns,
                 autoscale: AutoscalePolicy | None,
                 faults: FaultPlan | None,
                 hop_bytes: float, probe_cap: int):
        self.tenants = list(tenants)
        self.groups = list(groups)
        self.autoscale = autoscale
        self.hop_bytes = float(hop_bytes)
        self.probe_cap = int(probe_cap)

        n = len(columns)
        self.n = n
        self.arr_all = columns.arrivals
        self.codes = columns.codes

        # Per-tenant views of the stream. A single stable argsort groups
        # the request indices by tenant while preserving arrival order
        # within each tenant (one O(n log n) pass instead of one mask
        # scan per tenant). The only per-request output the report needs
        # elementwise is the latency (percentiles, SLO attainment), so
        # that is the only per-request buffer kept — a batch is always a
        # slice of one tenant's queue, making the hot-loop write a
        # cache-friendly contiguous fill. Queue/formation/service waits
        # only ever surface as means, so they fold into scalar
        # accumulators while the batch slice is still cache-hot.
        K = len(self.tenants)
        order = np.argsort(self.codes, kind="stable")
        bounds = np.zeros(K + 1, dtype=np.int64)
        np.cumsum(np.bincount(self.codes, minlength=K), out=bounds[1:])
        self.arr_t = [np.ascontiguousarray(
            self.arr_all[order[bounds[t]:bounds[t + 1]]]) for t in range(K)]
        self.lat_t = [np.empty(a.size, dtype=np.float64) for a in self.arr_t]
        self.arr_sum = [0.0] * K   # sum of dispatched requests' arrivals
        self.disp_sum = [0.0] * K  # sum of dispatch instants (x batch size)
        self.form_sum = 0.0        # global formation-wait sum
        self.serv_sum = 0.0        # global service-time sum
        self.head = [0] * K
        self.tail = [0] * K
        self.last_group: list[int | None] = [None] * K

        self.throttle: dict[str, float] = {}
        self.policies = [spec.policy for spec in self.tenants]
        self.tcost = [
            _GroupCost(spec.cost, self.throttle,
                       _policy_max_batch(spec.policy, probe_cap))
            for spec in self.tenants
        ]

        # Per-group replica state: free-time vectors over the full
        # provisioned pool; ``act`` bounds the autoscaler-active prefix.
        G = len(self.groups)
        self.gdev = [g.device for g in self.groups]
        self.free = [np.zeros(g.capacity, dtype=np.float64) for g in self.groups]
        self.act = [g.replicas for g in self.groups]
        self.down = [False] * G
        self.batches = [0] * G
        self.requests = [0] * G
        self.busy = [0.0] * G
        self.hop_batches = [0] * G
        self.hop_time = [0.0] * G
        self.peak = [g.replicas for g in self.groups]
        self.occ_int = [0.0] * G  # integral of act over time
        self.occ_last = [0.0] * G
        self.last_action = [-np.inf] * G
        self.scaling: list[ScalingEvent] = []

        self.edges: list[tuple] = []
        if faults is not None and not faults.empty:
            resolved = faults.resolve(self.gdev, {d: d for d in self.gdev})
            for when, _seq, kind, grp, arg in resolved:
                if kind == "stall":
                    raise FleetConfigError(
                        f"fault plan stalls {grp!r}: transient stalls are "
                        "slot-level events with no group meaning; use the "
                        "classic simulator for stall studies")
                self.edges.append((when, kind, grp, arg))
        self.edge_ptr = 0

        self.completed = 0
        self.makespan = 0.0
        self.next_arr = 0
        self.pending_wakeup: float | None = None
        self.tick_count = 0
        # Rolling window of batch latencies for the p99 autoscale metric.
        self.p99_window: list[np.ndarray] = []

        # Busy-replica bookkeeping. The free-time vectors are the ground
        # truth, but scanning them per epoch is O(replicas x epochs); the
        # hot loop instead keeps (a) a min-heap of in-flight batch
        # finish times — so the next completion is O(1) to peek — and
        # (b) a per-group count of idle replicas in the active prefix,
        # decremented at dispatch and re-incremented as entries drain
        # off the heap. Scaling events re-derive the counts from the
        # vectors (rare; ticks only).
        self.busy_heap: list[tuple[float, int, int]] = []
        self.idle_count = [g.replicas for g in self.groups]

        self._gindex = {d: i for i, d in enumerate(self.gdev)}
        self._device_specs: dict[str, object] = {}  # lazy, hop pricing only

    # -- time stepping -----------------------------------------------------------

    def _next_tick(self) -> float:
        if self.autoscale is None:
            return math.inf
        return (self.tick_count + 1) * self.autoscale.interval

    def _next_time(self, now: float) -> float:
        """Earliest instant after ``now`` at which anything can change."""
        candidates = []
        if self.pending_wakeup is not None:
            candidates.append(self.pending_wakeup)
        if self.edge_ptr < len(self.edges):
            candidates.append(self.edges[self.edge_ptr][0])
        tick = self._next_tick()
        if tick < math.inf:
            candidates.append(tick)
        if self.busy_heap:
            # Entries at or before ``now`` were drained in _advance, so
            # the heap top is the next batch completion across the fleet.
            candidates.append(self.busy_heap[0][0])
        if self.next_arr < self.n:
            for g in range(len(self.groups)):
                if not self.down[g] and self.idle_count[g]:
                    # Some active replica is idle right now; between here
                    # and the next free event nothing busies it, so the
                    # next arrival is a dispatch opportunity worth
                    # visiting.
                    candidates.append(float(self.arr_all[self.next_arr]))
                    break
        nxt = min((c for c in candidates if c > now), default=math.inf)
        return nxt

    def _advance(self, now: float) -> None:
        """Absorb everything due at ``now``: completions, fault edges,
        arrivals, ticks."""
        heap = self.busy_heap
        while heap and heap[0][0] <= now:
            _finish, g, ridx = heapq.heappop(heap)
            if ridx < self.act[g]:
                self.idle_count[g] += 1
            # else: the replica drained outside the autoscaler-active
            # prefix; its free time stays on the vector and is picked
            # back up by the recount if the group scales out again.
        while self.edge_ptr < len(self.edges) and self.edges[self.edge_ptr][0] <= now:
            _when, kind, grp, arg = self.edges[self.edge_ptr]
            self.edge_ptr += 1
            g = self._gindex[grp]
            if kind == "down":
                self.down[g] = True
            elif kind == "recover":
                self.down[g] = False
            elif kind == "throttle-on":
                self.throttle[grp] = arg
            elif kind == "throttle-off":
                self.throttle.pop(grp, None)
        if self.next_arr < self.n:
            old = self.next_arr
            new_total = int(np.searchsorted(self.arr_all, now, side="right"))
            if new_total > old:
                self.next_arr = new_total
                counts = np.bincount(self.codes[old:new_total],
                                     minlength=len(self.tenants))
                for t, c in enumerate(counts.tolist()):
                    self.tail[t] += c
        if self.autoscale is not None:
            n_scaled = len(self.scaling)
            while self._next_tick() <= now:
                tick = self._next_tick()
                self.tick_count += 1
                self._tick(tick)
            if len(self.scaling) != n_scaled:
                # Active prefixes moved; re-derive the idle counts from
                # the free-time vectors (w.r.t. *now* — everything due
                # has already drained off the heap).
                for g in range(len(self.groups)):
                    act = self.act[g]
                    self.idle_count[g] = int(
                        (self.free[g][:act] <= now).sum())
        if self.pending_wakeup is not None and now >= self.pending_wakeup:
            self.pending_wakeup = None

    # -- autoscaling -------------------------------------------------------------

    def _tick(self, when: float) -> None:
        scale = self.autoscale
        queued = self.next_arr - self.completed
        if scale.metric == "queue":
            value = float(queued)
        else:  # p99 of batch latencies dispatched since the last tick
            if self.p99_window:
                value = float(np.percentile(np.concatenate(self.p99_window), 99))
            else:
                value = 0.0
            self.p99_window.clear()
        for g, group in enumerate(self.groups):
            if self.down[g]:
                continue
            if when - self.last_action[g] < scale.cooldown:
                continue
            act = self.act[g]
            max_r = min(scale.max_replicas or group.capacity, group.capacity)
            min_r = min(scale.min_replicas, max_r)
            if value > scale.threshold and act < max_r:
                after = min(act + scale.step, max_r)
                reason = f"{scale.metric}={value:g}>{scale.threshold:g}"
            elif queued == 0 and act > min_r:
                idle = int((self.free[g][:act] <= when).sum())
                if idle / act < scale.idle_fraction:
                    continue
                after = max(act - scale.step, min_r)
                reason = f"idle {idle}/{act}"
            else:
                continue
            self.occ_int[g] += act * (when - self.occ_last[g])
            self.occ_last[g] = when
            self.act[g] = after
            self.peak[g] = max(self.peak[g], after)
            self.last_action[g] = when
            self.scaling.append(
                ScalingEvent(when, self.gdev[g], act, after, reason))

    # -- the offer loop ----------------------------------------------------------

    def _idle_groups(self, now: float) -> list[int]:
        counts = self.idle_count
        down = self.down
        return [g for g in range(len(self.groups))
                if counts[g] and not down[g]]

    def _offer(self, now: float) -> None:
        """Offer queued work to idle groups until every policy holds.

        Mirrors the classic loop: tenants in oldest-head-first order
        (stable on ties, i.e. spec order), groups in router order
        (amortized per-request latency at the probe batch, device-name
        tie-break); the first (tenant, group) pair whose policy
        dispatches restarts the scan.
        """
        K = len(self.tenants)
        while True:
            active = [t for t in range(K) if self.head[t] < self.tail[t]]
            if not active:
                return
            idle = self._idle_groups(now)
            if not idle:
                return
            if len(active) > 1:
                active.sort(key=lambda t: float(self.arr_t[t][self.head[t]]))
            chosen_t = chosen_g = size = None
            for t in active:
                qlen = self.tail[t] - self.head[t]
                cost = self.tcost[t]
                if len(idle) == 1:
                    ranked = idle
                else:
                    probe = max(1, min(qlen, self.probe_cap))
                    ranked = sorted(
                        idle,
                        key=lambda g: (cost.latency(self.gdev[g], probe) / probe,
                                       self.gdev[g]))
                oldest_wait = now - float(self.arr_t[t][self.head[t]])
                for g in ranked:
                    size = self.policies[t].decide(
                        now, qlen, oldest_wait, self.gdev[g], cost)
                    if size is not None:
                        chosen_t, chosen_g = t, g
                        break
                if size is not None:
                    break
            if size is None:
                self._hold(now, active)
                return
            self._dispatch(chosen_t, chosen_g, size, now)

    def _hold(self, now: float, active: list[int]) -> None:
        wakes = (self.policies[t].next_wakeup(
                    now, float(self.arr_t[t][self.head[t]])) for t in active)
        wake = min((w for w in wakes if w is not None and w > now), default=None)
        if wake is not None and (self.pending_wakeup is None
                                 or wake < self.pending_wakeup):
            self.pending_wakeup = wake
        if (self.pending_wakeup is None and self.next_arr >= self.n
                and self.edge_ptr >= len(self.edges)
                and not self.busy_heap):
            names = ",".join(self.policies[t].name for t in active)
            raise RuntimeError(f"policy {names!r} held with no pending events")

    def _dispatch(self, t: int, g: int, size: int, now: float) -> None:
        head = self.head[t]
        qlen = self.tail[t] - head
        size = max(1, min(int(size), qlen))
        device = self.gdev[g]
        duration = self.tcost[t].latency(device, size)
        if duration <= 0:
            raise ValueError("batch_time must return a positive duration")
        fa = self.free[g]
        act = self.act[g]
        ridx = int(np.argmax(fa[:act] <= now))
        idle_since = float(fa[ridx])
        finish = now + duration
        busy = duration
        if self.hop_bytes > 0.0 and self.last_group[t] not in (None, g):
            spec = self._device_specs.get(device)
            if spec is None:
                from repro.hw.device import get_device

                spec = self._device_specs[device] = get_device(device)
            hop = h2d_time(self.hop_bytes * size, spec)
            finish += hop
            busy += hop
            self.hop_batches[g] += 1
            self.hop_time[g] += hop
        self.last_group[t] = g

        end = head + size
        batch_arr = self.arr_t[t][head:end]
        lat = self.lat_t[t][head:end]
        np.subtract(finish, batch_arr, out=lat)
        # Queued requests arrived at or before ``now`` and the chosen
        # replica freed at or before ``now``, so the classic
        # ``max(0, now - max(arrival, idle_since))`` formation wait
        # reduces to a min of two non-negative terms; it (and the queue
        # and service waits) only ever surface as means, so they fold
        # into scalar accumulators here rather than per-request buffers.
        asum = float(batch_arr.sum())
        self.arr_sum[t] += asum
        self.disp_sum[t] += now * size
        self.serv_sum += (finish - now) * size
        self.form_sum += float(
            np.minimum(now - batch_arr, now - idle_since).sum())
        self.head[t] = end
        fa[ridx] = finish
        heapq.heappush(self.busy_heap, (finish, g, ridx))
        self.idle_count[g] -= 1
        self.batches[g] += 1
        self.requests[g] += size
        self.busy[g] += busy
        self.completed += size
        if finish > self.makespan:
            self.makespan = finish
        if self.autoscale is not None and self.autoscale.metric == "p99":
            self.p99_window.append(lat)

    # -- run ---------------------------------------------------------------------

    def run(self) -> float:
        if self.n == 0:
            return 0.0
        first = [float(self.arr_all[0])]
        if self.edges:
            first.append(self.edges[0][0])
        tick = self._next_tick()
        if tick < math.inf:
            first.append(tick)
        now = min(first)
        while self.completed < self.n:
            self._advance(now)
            self._offer(now)
            if self.completed >= self.n:
                break
            nxt = self._next_time(now)
            if nxt == math.inf:
                raise RuntimeError(
                    "fleet event loop stalled with requests pending")
            now = nxt
        for g in range(len(self.groups)):
            self.occ_int[g] += self.act[g] * (self.makespan - self.occ_last[g])
            self.occ_last[g] = self.makespan
        return self.makespan


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def _group_stats(engine: _FleetEngine, makespan: float) -> dict[str, GroupStats]:
    out: dict[str, GroupStats] = {}
    for g, group in enumerate(engine.groups):
        mean_rep = (engine.occ_int[g] / makespan if makespan > 0
                    else float(group.replicas))
        denom = mean_rep * makespan
        out[group.device] = GroupStats(
            group=group.device,
            replicas=engine.act[g],
            peak_replicas=engine.peak[g],
            mean_replicas=mean_rep,
            batches=engine.batches[g],
            requests=engine.requests[g],
            busy_time=engine.busy[g],
            utilization=engine.busy[g] / denom if denom > 0 else 0.0,
            mean_batch=(engine.requests[g] / engine.batches[g]
                        if engine.batches[g] else 0.0),
            hop_batches=engine.hop_batches[g],
            hop_time=engine.hop_time[g],
        )
    return out


def _tenant_stats(engine: _FleetEngine, makespan: float) -> dict[str, TenantStats]:
    out: dict[str, TenantStats] = {}
    for i, spec in enumerate(engine.tenants):
        lat = engine.lat_t[i]
        n = int(lat.size)
        if n:
            p50, p95, p99 = np.percentile(lat, [50, 95, 99])
            mean_lat = float(lat.mean())
            mean_queue = (engine.disp_sum[i] - engine.arr_sum[i]) / n
            attainment = (float((lat <= spec.slo).mean())
                          if spec.slo is not None else None)
        else:
            p50 = p95 = p99 = mean_lat = mean_queue = 0.0
            attainment = 1.0 if spec.slo is not None else None
        out[spec.name] = TenantStats(
            tenant=spec.name,
            n_requests=n,
            slo=spec.slo,
            throughput=n / makespan if makespan > 0 else 0.0,
            mean_latency=mean_lat,
            p50_latency=float(p50),
            p95_latency=float(p95),
            p99_latency=float(p99),
            mean_queue_time=mean_queue,
            slo_attainment=attainment,
        )
    return out


def simulate_fleet(
    tenants: Sequence[TenantSpec],
    groups: Sequence[DeviceGroup] | str,
    n_requests: int = 10_000,
    arrival_rate: float | None = None,
    scenario: str = "uniform",
    columns=None,
    autoscale: AutoscalePolicy | None = None,
    faults: FaultPlan | None = None,
    hop_bytes: float = 0.0,
    probe_cap: int = 128,
    seed: int = 0,
    lint: bool = True,
) -> FleetReport:
    """Serve a tenant mix on a fleet of homogeneous device groups.

    Parameters mirror :func:`~repro.serving.simulator.simulate_mixed`
    where they overlap; the differences:

    ``groups``
        Device groups (or a ``"dev:replicas[:pool],..."`` spec string).
        Group device names must be unique — a group *is* the unit of
        routing, scaling and fault targeting.
    ``columns``
        A prebuilt :class:`~repro.serving.request.RequestColumns`
        stream to serve instead of generating one from ``scenario``;
        its tenant axis must match ``tenants`` exactly.
    ``autoscale``
        Reactive :class:`AutoscalePolicy`; ``None`` keeps every group at
        its initial replica count (required for classic parity).
    ``hop_bytes``
        Per-request payload priced through
        :func:`repro.hw.transfer.h2d_time` whenever a tenant's batch
        lands on a different group than its previous one.
    ``probe_cap``
        Probe batch-size cap for the amortized group ranking — the
        group-level analogue of
        :class:`~repro.serving.router.EarliestFinishRouter`'s cap.

    With ``autoscale=None``, ``faults=None`` and ``hop_bytes=0`` the
    result matches the classic simulator's (same devices, earliest-
    finish router) to float round-off; a tier-1 differential test pins
    this.
    """
    if not tenants:
        raise ValueError("need at least one tenant")
    names = [spec.name for spec in tenants]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate tenant names: {names}")
    if isinstance(groups, str):
        groups = parse_groups(groups)
    groups = tuple(groups)
    if not groups:
        raise ValueError("need at least one device group")
    devices = [g.device for g in groups]
    if len(set(devices)) != len(devices):
        raise FleetConfigError(f"duplicate group devices: {devices}")
    if hop_bytes < 0:
        raise ValueError(f"hop_bytes must be non-negative, got {hop_bytes}")
    if probe_cap < 1:
        raise ValueError(f"probe_cap must be >= 1, got {probe_cap}")

    if lint:
        from repro.lint import check, lint_fleet, lint_tenants

        pre = lint_tenants(tenants, source="simulate_fleet")
        pre.extend(lint_fleet(groups, autoscale=autoscale, faults=faults,
                              source="simulate_fleet"))
        check(pre, what="fleet configuration")

    if columns is None:
        from repro.serving.scenarios import scenario_columns

        columns = scenario_columns(scenario, tenants, n_requests=n_requests,
                                   arrival_rate=arrival_rate, seed=seed)
    else:
        if tuple(columns.tenants) != tuple(names):
            raise ValueError(
                f"columns tagged for tenants {list(columns.tenants)}, "
                f"simulating {names}")
        if len(columns):
            arr = columns.arrivals
            if float(arr[0]) < 0.0:
                raise ValueError("request arrivals must be non-negative")
            if np.any(np.diff(arr) < 0):
                raise ValueError(
                    "request columns must be sorted by arrival time; "
                    "see sort_request_columns")
    n = len(columns)

    engine = _FleetEngine(tenants, groups, columns, autoscale, faults,
                          hop_bytes, probe_cap)
    makespan = engine.run()

    if n:
        # All summary statistics are order-invariant (percentiles, means,
        # threshold counts), so they are computed straight off the
        # engine's per-tenant contiguous latency buffers (grouped by
        # tenant, arrival-ordered within each) and the scalar wait
        # accumulators folded in at dispatch time.
        latencies = np.concatenate(engine.lat_t)
        p50, p95, p99 = np.percentile(latencies, [50, 95, 99])
        mean_latency = float(latencies.mean())
        mean_queue = (sum(engine.disp_sum) - sum(engine.arr_sum)) / n
        mean_formation = engine.form_sum / n
        mean_service = engine.serv_sum / n
    else:
        latencies = np.empty(0)
        p50 = p95 = p99 = 0.0
        mean_latency = mean_queue = mean_formation = mean_service = 0.0

    return FleetReport(
        policy=f"mixed({len(tenants)} tenants)",
        router="earliest-finish",
        n_requests=n,
        arrival_rate=arrival_rate,
        makespan=makespan,
        throughput=n / makespan if makespan > 0 else 0.0,
        mean_latency=mean_latency,
        p50_latency=float(p50),
        p95_latency=float(p95),
        p99_latency=float(p99),
        mean_queue_time=mean_queue,
        mean_formation_wait=mean_formation,
        mean_service_time=mean_service,
        group_stats=_group_stats(engine, makespan),
        tenant_stats=_tenant_stats(engine, makespan),
        scaling_events=tuple(engine.scaling),
        latencies=latencies,
    )
