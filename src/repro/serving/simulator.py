"""Discrete-event, open-loop serving simulator.

Generalizes the paper's Sec. 5.1 closed 10,000-task batch run into the
system a deployment actually runs: requests arrive over time (Poisson or
all-at-once), a dynamic batching policy groups them, a router places each
batch on one of several heterogeneous devices, and per-request latency
decomposes into queueing, batch formation and compute. Batch compute
times come from a cost model (profiled and memoized per
(workload, fusion, batch size, device) — see
:mod:`repro.serving.costmodel`), so a simulation of millions of requests
costs milliseconds, not GPU-hours.

Event loop: a heap holds the next arrival, device-free times and policy
wake-ups. At each event the simulator absorbs due arrivals into the FIFO
queue, then repeatedly offers the queue to idle devices in router order;
the policy either dispatches a batch (finalizing those requests' timing
at dispatch, since compute time is deterministic) or holds and schedules
a wake-up.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.serving.costmodel import CallableCostModel
from repro.serving.policies import BatchingPolicy
from repro.serving.request import Request, closed_arrivals, make_requests, poisson_arrivals
from repro.serving.router import EarliestFinishRouter, Router


@dataclass(frozen=True)
class DeviceStats:
    """Per-device accounting of one simulation."""

    slot: str  # unique slot label, e.g. "2080ti" or "2080ti#1"
    device: str  # device model name the slot runs
    batches: int
    requests: int
    busy_time: float
    utilization: float  # busy time / makespan
    mean_batch: float
    batch_histogram: dict[int, int]  # batch size -> dispatch count


@dataclass(frozen=True)
class ServingReport:
    """Everything one open-loop serving simulation produced."""

    policy: str
    router: str
    n_requests: int
    arrival_rate: float | None
    makespan: float
    throughput: float
    mean_latency: float
    p50_latency: float
    p95_latency: float
    p99_latency: float
    mean_queue_time: float
    mean_formation_wait: float
    mean_service_time: float
    device_stats: dict[str, DeviceStats]
    requests: list[Request] = field(repr=False)

    def slo_attainment(self, slo: float) -> float:
        """Fraction of requests whose end-to-end latency met ``slo``."""
        met = sum(1 for r in self.requests if r.latency <= slo)
        return met / len(self.requests)

    def batch_sizes_used(self) -> dict[str, list[int]]:
        """Distinct dispatched batch sizes per device slot (sorted)."""
        return {slot: sorted(s.batch_histogram) for slot, s in self.device_stats.items()}

    @property
    def total_utilization(self) -> float:
        """Mean per-slot utilization: busy time / makespan, averaged over slots."""
        busy = sum(s.busy_time for s in self.device_stats.values())
        n = len(self.device_stats)
        return busy / (n * self.makespan) if self.makespan > 0 else 0.0


class _SlotCost:
    """Maps unique slot labels to device names before cost lookups."""

    def __init__(self, cost, slot_device: dict[str, str]):
        self._cost = cost
        self._slot_device = slot_device

    def latency(self, slot: str, batch_size: int) -> float:
        return self._cost.latency(self._slot_device.get(slot, slot), batch_size)


class _Slot:
    """One device execution slot."""

    __slots__ = ("label", "device", "free_at", "busy_time", "batches",
                 "requests", "histogram")

    def __init__(self, label: str, device: str):
        self.label = label
        self.device = device
        self.free_at = 0.0
        self.busy_time = 0.0
        self.batches = 0
        self.requests = 0
        self.histogram: dict[int, int] = {}


def simulate(
    cost,
    policy: BatchingPolicy,
    devices: tuple[str, ...] = ("2080ti",),
    n_requests: int = 10_000,
    arrival_rate: float | None = None,
    router: Router | None = None,
    seed: int = 0,
) -> ServingReport:
    """Run one open-loop serving simulation.

    Parameters
    ----------
    cost:
        Cost model with ``latency(device, batch_size) -> seconds``; a bare
        ``batch_time(k)`` callable is wrapped automatically.
    policy:
        Dynamic batching policy (see :mod:`repro.serving.policies`).
    devices:
        Device model names to serve on; repeat a name for multiple
        instances (slots get ``name#i`` labels).
    n_requests:
        Total requests to serve.
    arrival_rate:
        Mean arrivals/second (Poisson); ``None`` = all at t=0 (the
        paper's closed-batch setting).
    router:
        Placement strategy across idle devices; default earliest-finish.
    """
    if not devices:
        raise ValueError("need at least one device")
    if callable(cost) and not hasattr(cost, "latency"):
        cost = CallableCostModel(cost)
    router = router or EarliestFinishRouter()

    if arrival_rate is None:
        arrivals = closed_arrivals(n_requests)
    else:
        arrivals = poisson_arrivals(n_requests, arrival_rate, seed=seed)
    requests = make_requests(arrivals)

    totals: dict[str, int] = {}
    for name in devices:
        totals[name] = totals.get(name, 0) + 1
    counts: dict[str, int] = {}
    slots: list[_Slot] = []
    for name in devices:
        n_seen = counts.get(name, 0)
        label = name if totals[name] == 1 else f"{name}#{n_seen}"
        counts[name] = n_seen + 1
        slots.append(_Slot(label, name))
    by_label = {s.label: s for s in slots}
    slot_cost = _SlotCost(cost, {s.label: s.device for s in slots})

    queue: deque[Request] = deque()
    heap: list[tuple[float, int, str]] = []
    tick = itertools.count()  # tie-break so heap never compares strings
    next_arrival = 0
    scheduled_arrival = -1  # highest arrival index with an event in the heap
    pending_wakeup: float | None = None  # earliest wakeup event in the heap

    def push(time: float, tag: str) -> None:
        heapq.heappush(heap, (time, next(tick), tag))

    push(requests[0].arrival, "arrival")
    scheduled_arrival = 0
    dispatched = 0
    makespan = 0.0

    while dispatched < n_requests:
        now, _, tag = heapq.heappop(heap)
        if tag == "wakeup" and pending_wakeup is not None and now >= pending_wakeup:
            pending_wakeup = None

        # Absorb every arrival due by `now`; schedule the next one exactly once.
        while next_arrival < n_requests and requests[next_arrival].arrival <= now:
            queue.append(requests[next_arrival])
            next_arrival += 1
        if next_arrival < n_requests and scheduled_arrival < next_arrival:
            push(requests[next_arrival].arrival, "arrival")
            scheduled_arrival = next_arrival

        # Offer the queue to idle devices until the policy holds or work runs out.
        while queue:
            idle = [s.label for s in slots if s.free_at <= now]
            if not idle:
                break
            # Ranking a single idle slot is a no-op; skipping it also keeps
            # legacy callable cost models (defined only up to their batch
            # cap) away from the router's larger probe batch sizes.
            ranked = idle if len(idle) == 1 else router.rank(idle, len(queue), slot_cost)
            oldest_wait = now - queue[0].arrival
            # A hold is per-device (e.g. adaptive holding on a too-slow
            # slot): offer the queue to every idle slot before giving up.
            slot = None
            size = None
            for label in ranked:
                size = policy.decide(now, len(queue), oldest_wait, label, slot_cost)
                if size is not None:
                    slot = by_label[label]
                    break
            if size is None:
                wake = policy.next_wakeup(now, queue[0].arrival)
                if (wake is not None and wake > now
                        and (pending_wakeup is None or wake < pending_wakeup)):
                    push(wake, "wakeup")
                    pending_wakeup = wake
                if not heap:
                    raise RuntimeError(
                        f"policy {policy.name!r} held with no pending events")
                break
            size = max(1, min(size, len(queue)))
            duration = slot_cost.latency(slot.label, size)
            if duration <= 0:
                raise ValueError("batch_time must return a positive duration")
            idle_since = slot.free_at
            finish = now + duration
            for _ in range(size):
                req = queue.popleft()
                req.dispatch = now
                req.finish = finish
                req.device = slot.label
                req.batch_size = size
                req.formation_wait = max(0.0, now - max(req.arrival, idle_since))
            slot.free_at = finish
            slot.busy_time += duration
            slot.batches += 1
            slot.requests += size
            slot.histogram[size] = slot.histogram.get(size, 0) + 1
            router.note_dispatch(slot.label)
            dispatched += size
            makespan = max(makespan, finish)
            push(finish, "free")

    # One pass over the requests builds every timing column; the latency /
    # queue / service decompositions and all three percentiles fall out of
    # array arithmetic instead of per-request property walks.
    timing = np.empty((4, n_requests))
    for i, r in enumerate(requests):
        timing[0, i] = r.arrival
        timing[1, i] = r.dispatch
        timing[2, i] = r.finish
        timing[3, i] = r.formation_wait
    arrival_col, dispatch_col, finish_col, formation_col = timing
    latencies = finish_col - arrival_col
    queue_times = dispatch_col - arrival_col
    service_times = finish_col - dispatch_col
    p50, p95, p99 = np.percentile(latencies, [50, 95, 99])
    stats = {
        s.label: DeviceStats(
            slot=s.label,
            device=s.device,
            batches=s.batches,
            requests=s.requests,
            busy_time=s.busy_time,
            utilization=s.busy_time / makespan if makespan > 0 else 0.0,
            mean_batch=s.requests / s.batches if s.batches else 0.0,
            batch_histogram=dict(sorted(s.histogram.items())),
        )
        for s in slots
    }
    return ServingReport(
        policy=policy.name,
        router=router.name,
        n_requests=n_requests,
        arrival_rate=arrival_rate,
        makespan=makespan,
        throughput=n_requests / makespan if makespan > 0 else 0.0,
        mean_latency=float(latencies.mean()),
        p50_latency=float(p50),
        p95_latency=float(p95),
        p99_latency=float(p99),
        mean_queue_time=float(queue_times.mean()),
        mean_formation_wait=float(formation_col.mean()),
        mean_service_time=float(service_times.mean()),
        device_stats=stats,
        requests=requests,
    )
