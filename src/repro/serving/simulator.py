"""Discrete-event, open-loop serving simulator (single- and multi-tenant).

Generalizes the paper's Sec. 5.1 closed 10,000-task batch run into the
system a deployment actually runs: requests arrive over time (Poisson or
all-at-once), a dynamic batching policy groups them, a router places each
batch on one of several heterogeneous devices, and per-request latency
decomposes into queueing, batch formation and compute. Batch compute
times come from a cost model (profiled and memoized per
(workload, fusion, batch size, device) — see
:mod:`repro.serving.costmodel`), so a simulation of millions of requests
costs milliseconds, not GPU-hours.

:func:`simulate` serves one workload; :func:`simulate_mixed` serves a
*mix* of tenants concurrently, the way the paper's fleet runs several of
the nine multimodal workloads on shared devices. Each
:class:`TenantSpec` carries its own cost model, batching policy and SLO;
tenants keep separate FIFO queues, batches never mix tenants (different
workloads cannot share a batch), and every policy/router decision sees
the deciding tenant's own latency curves. The report then breaks
latency and SLO attainment down per tenant (:class:`TenantStats`).

Event loop: a heap holds the next arrival, device-free times and policy
wake-ups. At each event the simulator absorbs due arrivals into the
per-tenant FIFO queues, then repeatedly offers work to idle devices —
tenants in oldest-head-of-queue-first order, slots in router order; a
policy either dispatches a batch (finalizing those requests' timing at
dispatch, since compute time is deterministic) or holds, and when every
tenant holds on every idle slot the earliest policy wake-up is scheduled.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.serving.costmodel import CallableCostModel
from repro.serving.faults import (DegradedMode, FaultPlan, FaultRuntime,
                                  FaultStats, RetryPolicy)
from repro.serving.policies import BatchingPolicy
from repro.serving.request import Request, closed_arrivals, make_requests, poisson_arrivals
from repro.serving.router import EarliestFinishRouter, Router


@dataclass(frozen=True)
class DeviceStats:
    """Per-device accounting of one simulation."""

    slot: str  # unique slot label, e.g. "2080ti" or "2080ti#1"
    device: str  # device model name the slot runs
    batches: int
    requests: int
    busy_time: float
    utilization: float  # busy time / makespan
    mean_batch: float
    batch_histogram: dict[int, int]  # batch size -> dispatch count


@dataclass(frozen=True)
class TenantStats:
    """Per-tenant latency / SLO breakdown of one mixed simulation."""

    tenant: str
    n_requests: int
    slo: float | None
    throughput: float  # this tenant's requests / overall makespan
    mean_latency: float
    p50_latency: float
    p95_latency: float
    p99_latency: float
    mean_queue_time: float
    slo_attainment: float | None  # None when the tenant declared no SLO


@dataclass(frozen=True)
class ServingReport:
    """Everything one open-loop serving simulation produced."""

    policy: str
    router: str
    n_requests: int
    arrival_rate: float | None
    makespan: float
    throughput: float
    mean_latency: float
    p50_latency: float
    p95_latency: float
    p99_latency: float
    mean_queue_time: float
    mean_formation_wait: float
    mean_service_time: float
    device_stats: dict[str, DeviceStats]
    requests: list[Request] = field(repr=False)
    tenant_stats: dict[str, TenantStats] = field(default_factory=dict)
    # Background fine-tuning jobs that shared the devices during the run
    # (see repro.serving.finetune); empty for pure-inference simulations.
    finetune_stats: dict = field(default_factory=dict)
    inference_slowdown: float = 1.0  # batch-latency multiplier the jobs imposed
    # What the fault plan did to the run (see repro.serving.faults);
    # None when the run had no fault injection at all.
    fault_stats: FaultStats | None = None

    def slo_attainment(self, slo: float) -> float:
        """Fraction of completed requests whose end-to-end latency met ``slo``.

        Shed requests never complete and count as misses; an empty
        simulation misses nothing (attainment is vacuously 1).
        """
        if not self.requests:
            return 1.0
        met = sum(1 for r in self.requests if not r.shed and r.latency <= slo)
        return met / len(self.requests)

    @property
    def completed(self) -> int:
        """Requests that actually finished (``n_requests`` minus sheds)."""
        shed = self.fault_stats.shed if self.fault_stats is not None else 0
        return self.n_requests - shed

    def batch_sizes_used(self) -> dict[str, list[int]]:
        """Distinct dispatched batch sizes per device slot (sorted)."""
        return {slot: sorted(s.batch_histogram) for slot, s in self.device_stats.items()}

    @property
    def total_utilization(self) -> float:
        """Mean per-slot utilization: busy time / makespan, averaged over slots."""
        busy = sum(s.busy_time for s in self.device_stats.values())
        n = len(self.device_stats)
        return busy / (n * self.makespan) if self.makespan > 0 else 0.0


@dataclass
class TenantSpec:
    """One tenant (workload) of a mixed simulation.

    ``cost`` is the tenant's own cost model (a bare ``batch_time(k)``
    callable is wrapped automatically), ``policy`` its batching policy and
    ``slo`` its end-to-end latency target (drives the report's per-tenant
    attainment column). ``weight`` is the tenant's share of the traffic
    mix — consumed by the scenario generators in
    :mod:`repro.serving.scenarios`, not by the event loop.
    """

    name: str
    cost: object
    policy: BatchingPolicy
    slo: float | None = None
    weight: float = 1.0
    # Optional graceful-degradation mode (repro.serving.faults.DegradedMode):
    # under sustained queue pressure the tenant serves with a shed modality
    # encoder at a reduced latency factor, trading quoted accuracy for drain.
    degraded: DegradedMode | None = None

    def __post_init__(self):
        if callable(self.cost) and not hasattr(self.cost, "latency"):
            self.cost = CallableCostModel(self.cost)
        if self.weight <= 0:
            raise ValueError(f"tenant weight must be positive, got {self.weight}")
        if self.slo is not None and self.slo <= 0:
            raise ValueError(f"tenant slo must be positive, got {self.slo}")
        if self.degraded is not None and not isinstance(self.degraded, DegradedMode):
            raise TypeError(f"degraded must be a DegradedMode, "
                            f"got {type(self.degraded).__name__}")


class _SlotCost:
    """Maps unique slot labels to device names before cost lookups.

    ``underlying`` exposes the wrapped cost model: the wrapper itself is
    rebuilt every simulation, so anything memoizing per cost model (e.g.
    :class:`~repro.serving.policies.AdaptiveSLOPolicy`'s drain batch) must
    key on the underlying model, via :meth:`device_name` for the device
    part so memos survive runs with different slot labellings.

    ``scale`` multiplies every latency uniformly — the inference-partition
    slowdown when background fine-tuning jobs hold device shares. Uniform
    scaling preserves the throughput-optimal batch (``argmax k/latency``),
    so the drain memo keyed on the underlying model stays valid across
    runs with different scales.
    """

    def __init__(self, cost, slot_device: dict[str, str], scale: float = 1.0,
                 faults: FaultRuntime | None = None):
        self.underlying = cost
        self._slot_device = slot_device
        self._scale = scale
        # Fault-injection hooks, both uniform multipliers so the drain
        # memo stays valid: live per-slot thermal-throttle factors
        # (faults.scale) and the tenant's degraded-mode factor.
        self._faults = faults
        self.extra_scale = 1.0

    def latency(self, slot: str, batch_size: int) -> float:
        base = self.underlying.latency(self._slot_device.get(slot, slot), batch_size)
        if self._scale != 1.0:
            base *= self._scale
        if self._faults is not None:
            throttle = self._faults.scale.get(slot)
            if throttle is not None:
                base *= throttle
            if self.extra_scale != 1.0:
                base *= self.extra_scale
        return base

    def device_name(self, slot: str) -> str:
        """Device model name behind a slot label (identity for plain names)."""
        return self._slot_device.get(slot, slot)


class _Slot:
    """One device execution slot."""

    __slots__ = ("label", "device", "free_at", "busy_time", "batches",
                 "requests", "histogram", "down", "stalled_until", "inflight")

    def __init__(self, label: str, device: str):
        self.label = label
        self.device = device
        self.free_at = 0.0
        self.busy_time = 0.0
        self.batches = 0
        self.requests = 0
        self.histogram: dict[int, int] = {}
        # Fault-injection state (only consulted when a plan is active):
        # down slots accept no work, stalled slots resume at stalled_until,
        # and inflight tracks the running batch as (finish, [requests]) so
        # a device failure can abort it.
        self.down = False
        self.stalled_until = 0.0
        self.inflight: tuple[float, list[Request]] | None = None


class _Tenant:
    """Run-time state of one tenant: its FIFO queue and slot-aware cost."""

    __slots__ = ("name", "policy", "queue", "slot_cost", "mode", "degraded")

    def __init__(self, name: str, policy: BatchingPolicy, slot_cost: _SlotCost,
                 mode: DegradedMode | None = None):
        self.name = name
        self.policy = policy
        self.queue: deque[Request] = deque()
        self.slot_cost = slot_cost
        self.mode = mode  # graceful-degradation config, if declared
        self.degraded = False  # currently serving in degraded mode


def _make_slots(devices: tuple[str, ...]) -> tuple[list[_Slot], dict[str, _Slot], dict[str, str]]:
    """Expand device names into labelled slots (``name#i`` for repeats)."""
    totals: dict[str, int] = {}
    for name in devices:
        totals[name] = totals.get(name, 0) + 1
    counts: dict[str, int] = {}
    slots: list[_Slot] = []
    for name in devices:
        n_seen = counts.get(name, 0)
        label = name if totals[name] == 1 else f"{name}#{n_seen}"
        counts[name] = n_seen + 1
        slots.append(_Slot(label, name))
    by_label = {s.label: s for s in slots}
    slot_device = {s.label: s.device for s in slots}
    return slots, by_label, slot_device


def slot_labels(devices: tuple[str, ...]) -> list[str]:
    """Slot labels a device tuple expands to (``name#i`` for repeats).

    Chaos-scenario builders use this to target individual slots of a
    pool without running a simulation.
    """
    slots, _, _ = _make_slots(devices)
    return [s.label for s in slots]


def validate_fault_plan(plan: FaultPlan, devices: tuple[str, ...]) -> None:
    """Validate ``plan`` against a device pool without running anything.

    Raises :class:`~repro.serving.faults.FaultPlanError` exactly as the
    simulation entry points would — lets a CLI fail fast on a malformed
    plan before any profiling happens.
    """
    slots, _, slot_device = _make_slots(devices)
    plan.resolve([s.label for s in slots], slot_device)


def _run_event_loop(
    requests: list[Request],
    tenants: dict[str, _Tenant],
    slots: list[_Slot],
    by_label: dict[str, _Slot],
    router: Router,
    faults: FaultRuntime | None = None,
) -> float:
    """Drive the heap until every request is dispatched; returns makespan.

    With a fault runtime attached the loop additionally processes fault
    happenings (device down/recover, throttle edges, stalls) and retry
    wake-ups, tracks in-flight batches so failures can abort them, and
    runs until every request either completed or was shed — checking the
    request-conservation invariant at every event. Without one, the
    fault branches are skipped entirely and the schedule is bit-identical
    to the pre-fault simulator.
    """
    n_requests = len(requests)
    heap: list[tuple[float, int, str, object]] = []
    tick = itertools.count()  # tie-break so heap never compares payloads
    next_arrival = 0
    scheduled_arrival = -1  # highest arrival index with an event in the heap
    pending_wakeup: float | None = None  # earliest wakeup event in the heap

    def push(time: float, tag: str, payload: object = None) -> None:
        heapq.heappush(heap, (time, next(tick), tag, payload))

    push(requests[0].arrival, "arrival")
    scheduled_arrival = 0
    dispatched = 0
    makespan = 0.0

    if faults is not None:
        for when, _seq, kind, slot_label, arg in faults.happenings:
            push(when, "fault", (kind, slot_label, arg))

    def finished() -> bool:
        if faults is None:
            # Dispatch finalizes timing, so dispatched == done.
            return dispatched >= n_requests
        # Failures can abort dispatched batches; only completion or
        # shedding retires a request.
        return faults.completed + faults.shed >= n_requests

    while not finished():
        now, _, tag, payload = heapq.heappop(heap)
        if tag == "wakeup" and pending_wakeup is not None and now >= pending_wakeup:
            pending_wakeup = None
        elif faults is not None:
            if tag == "fault":
                bump = faults.apply(payload, now, by_label, router, push)
                if bump is not None:
                    makespan = max(makespan, bump)
            elif tag == "retry":
                faults.absorb_retry(payload, now, tenants)
            elif tag == "free":
                faults.complete(payload, now, by_label)

        # Absorb every arrival due by `now`; schedule the next one exactly once.
        while next_arrival < n_requests and requests[next_arrival].arrival <= now:
            req = requests[next_arrival]
            tenants[req.tenant].queue.append(req)
            next_arrival += 1
            if faults is not None:
                faults.queued += 1
        if next_arrival < n_requests and scheduled_arrival < next_arrival:
            push(requests[next_arrival].arrival, "arrival")
            scheduled_arrival = next_arrival

        if faults is not None:
            # No request is ever silently lost: everything issued so far
            # is queued, on a device, awaiting retry, completed or shed.
            faults.shed_expired(tenants, now)
            faults.check_conservation(next_arrival)

        # Offer queued work to idle devices until every policy holds or
        # work/devices run out.
        while True:
            active = [t for t in tenants.values() if t.queue]
            if not active:
                break
            if faults is None:
                idle = [s.label for s in slots if s.free_at <= now]
            else:
                idle = [s.label for s in slots
                        if s.free_at <= now and not s.down
                        and s.stalled_until <= now]
            if not idle:
                break
            if len(active) > 1:
                # FIFO across tenants: offer the oldest waiting head first.
                active.sort(key=lambda t: t.queue[0].arrival)
            # A hold is per-(tenant, device): offer every tenant's queue to
            # every idle slot (ranked per tenant — placement sees *that*
            # tenant's latency curves) before giving up on this instant.
            tenant = None
            slot = None
            size = None
            for tenant in active:
                queue = tenant.queue
                if faults is not None:
                    faults.update_degraded(tenant, now)
                # Ranking a single idle slot is a no-op; skipping it also
                # keeps legacy callable cost models (defined only up to
                # their batch cap) away from the router's larger probes.
                ranked = (idle if len(idle) == 1
                          else router.rank(idle, len(queue), tenant.slot_cost))
                oldest_wait = now - queue[0].arrival
                for label in ranked:
                    size = tenant.policy.decide(now, len(queue), oldest_wait,
                                                label, tenant.slot_cost)
                    if size is not None:
                        slot = by_label[label]
                        break
                if size is not None:
                    break
            if size is None:
                wakes = (t.policy.next_wakeup(now, t.queue[0].arrival) for t in active)
                wake = min((w for w in wakes if w is not None and w > now),
                           default=None)
                if wake is not None and (pending_wakeup is None or wake < pending_wakeup):
                    push(wake, "wakeup")
                    pending_wakeup = wake
                if not heap:
                    names = ",".join(t.policy.name for t in active)
                    raise RuntimeError(
                        f"policy {names!r} held with no pending events")
                break
            queue = tenant.queue
            size = max(1, min(size, len(queue)))
            duration = tenant.slot_cost.latency(slot.label, size)
            if duration <= 0:
                raise ValueError("batch_time must return a positive duration")
            idle_since = slot.free_at
            finish = now + duration
            if faults is None:
                for _ in range(size):
                    req = queue.popleft()
                    req.dispatch = now
                    req.finish = finish
                    req.device = slot.label
                    req.batch_size = size
                    req.formation_wait = max(0.0, now - max(req.arrival, idle_since))
            else:
                degraded = tenant.degraded
                batch: list[Request] = []
                for _ in range(size):
                    req = queue.popleft()
                    req.dispatch = now
                    req.finish = finish
                    req.device = slot.label
                    req.batch_size = size
                    req.formation_wait = max(0.0, now - max(req.arrival, idle_since))
                    req.degraded = degraded
                    batch.append(req)
                if slot.inflight is not None:
                    # The slot's free event is still in the heap (tie at
                    # `now`); absorb the finished batch before overwriting
                    # so it isn't lost. The pending event goes stale.
                    faults.complete(slot.label, now, by_label)
                slot.inflight = (finish, batch)
                faults.note_dispatch(size, degraded, tenant.name)
            slot.free_at = finish
            slot.busy_time += duration
            slot.batches += 1
            slot.requests += size
            slot.histogram[size] = slot.histogram.get(size, 0) + 1
            router.note_dispatch(slot.label)
            dispatched += size
            makespan = max(makespan, finish)
            push(finish, "free", slot.label)
    return makespan


def _timing_columns(requests: list[Request]) -> tuple[np.ndarray, ...]:
    """One pass over the request objects → (arrival, dispatch, finish,
    formation_wait) columns; a single fromiter instead of four
    per-attribute walks."""
    table = np.fromiter(
        ((r.arrival, r.dispatch, r.finish, r.formation_wait) for r in requests),
        dtype=np.dtype((np.float64, 4)), count=len(requests),
    ).reshape(len(requests), 4)
    return table[:, 0], table[:, 1], table[:, 2], table[:, 3]


def _tenant_breakdown(
    requests: list[Request],
    latencies: np.ndarray,
    queue_times: np.ndarray,
    makespan: float,
    tenants: Sequence[TenantSpec],
) -> dict[str, TenantStats]:
    """Per-tenant latency / SLO stats over the finished request stream."""
    index = {spec.name: i for i, spec in enumerate(tenants)}
    codes = np.fromiter((index[r.tenant] for r in requests),
                        dtype=np.int64, count=len(requests))
    out: dict[str, TenantStats] = {}
    for i, spec in enumerate(tenants):
        mask = codes == i
        n = int(mask.sum())
        if n:
            lat = latencies[mask]
            p50, p95, p99 = np.percentile(lat, [50, 95, 99])
            mean_lat = float(lat.mean())
            mean_queue = float(queue_times[mask].mean())
            attainment = (float((lat <= spec.slo).mean())
                          if spec.slo is not None else None)
        else:
            p50 = p95 = p99 = mean_lat = mean_queue = 0.0
            attainment = 1.0 if spec.slo is not None else None
        out[spec.name] = TenantStats(
            tenant=spec.name,
            n_requests=n,
            slo=spec.slo,
            throughput=n / makespan if makespan > 0 else 0.0,
            mean_latency=mean_lat,
            p50_latency=float(p50),
            p95_latency=float(p95),
            p99_latency=float(p99),
            mean_queue_time=mean_queue,
            slo_attainment=attainment,
        )
    return out


def _summarize(
    requests: list[Request],
    slots: list[_Slot],
    makespan: float,
    policy_name: str,
    router_name: str,
    arrival_rate: float | None,
    tenants: Sequence[TenantSpec] | None = None,
    finetune_stats: dict | None = None,
    inference_slowdown: float = 1.0,
    fault_stats: FaultStats | None = None,
) -> ServingReport:
    """Collapse finished requests + slot accounting into a report.

    One pass over the requests builds every timing column; the latency /
    queue / service decompositions and all three percentiles fall out of
    array arithmetic instead of per-request property walks. Handles the
    empty stream (``n_requests=0``) with an all-zero, well-formed report.

    Shed requests (fault runs only) have no completion timing: latency
    statistics cover completed requests, ``n_requests`` stays the issued
    total, and throughput counts only completed requests.
    """
    n_requests = len(requests)
    completed_requests = requests
    if fault_stats is not None and fault_stats.shed:
        completed_requests = [r for r in requests if not r.shed]
    n_completed = len(completed_requests)
    if n_completed:
        arrival_col, dispatch_col, finish_col, formation_col = (
            _timing_columns(completed_requests))
        latencies = finish_col - arrival_col
        queue_times = dispatch_col - arrival_col
        service_times = finish_col - dispatch_col
        p50, p95, p99 = np.percentile(latencies, [50, 95, 99])
        mean_latency = float(latencies.mean())
        mean_queue = float(queue_times.mean())
        mean_formation = float(formation_col.mean())
        mean_service = float(service_times.mean())
    else:
        latencies = queue_times = np.empty(0)
        p50 = p95 = p99 = 0.0
        mean_latency = mean_queue = mean_formation = mean_service = 0.0
    stats = {
        s.label: DeviceStats(
            slot=s.label,
            device=s.device,
            batches=s.batches,
            requests=s.requests,
            busy_time=s.busy_time,
            utilization=s.busy_time / makespan if makespan > 0 else 0.0,
            mean_batch=s.requests / s.batches if s.batches else 0.0,
            batch_histogram=dict(sorted(s.histogram.items())),
        )
        for s in slots
    }
    tenant_stats = (
        _tenant_breakdown(completed_requests, latencies, queue_times, makespan,
                          tenants)
        if tenants is not None else {}
    )
    return ServingReport(
        policy=policy_name,
        router=router_name,
        n_requests=n_requests,
        arrival_rate=arrival_rate,
        makespan=makespan,
        throughput=n_completed / makespan if makespan > 0 else 0.0,
        mean_latency=mean_latency,
        p50_latency=float(p50),
        p95_latency=float(p95),
        p99_latency=float(p99),
        mean_queue_time=mean_queue,
        mean_formation_wait=mean_formation,
        mean_service_time=mean_service,
        device_stats=stats,
        requests=requests,
        tenant_stats=tenant_stats,
        finetune_stats=finetune_stats or {},
        inference_slowdown=inference_slowdown,
        fault_stats=fault_stats,
    )


def _make_fault_runtime(
    faults: FaultPlan | None,
    retry: RetryPolicy | None,
    tenants: Sequence[TenantSpec] | None,
    slots: list[_Slot],
    slot_device: dict[str, str],
) -> FaultRuntime | None:
    """Build the per-run fault runtime, or ``None`` for a fault-free run.

    Any fault input — a plan (even an empty one), a retry policy (its
    deadline sheds without device failures), or a tenant with a declared
    degraded mode — activates the fault path; plan validation happens
    here, before the event loop, so a malformed plan raises
    :class:`~repro.serving.faults.FaultPlanError` instead of deadlocking.
    """
    degraded = any(spec.degraded is not None for spec in tenants or ())
    if faults is None and retry is None and not degraded:
        return None
    return FaultRuntime(faults or FaultPlan(), retry or RetryPolicy(),
                        [s.label for s in slots], slot_device)


def simulate(
    cost,
    policy: BatchingPolicy,
    devices: tuple[str, ...] = ("2080ti",),
    n_requests: int = 10_000,
    arrival_rate: float | None = None,
    router: Router | None = None,
    seed: int = 0,
    faults: FaultPlan | None = None,
    retry: RetryPolicy | None = None,
) -> ServingReport:
    """Run one open-loop serving simulation.

    Parameters
    ----------
    cost:
        Cost model with ``latency(device, batch_size) -> seconds``; a bare
        ``batch_time(k)`` callable is wrapped automatically.
    policy:
        Dynamic batching policy (see :mod:`repro.serving.policies`).
    devices:
        Device model names to serve on; repeat a name for multiple
        instances (slots get ``name#i`` labels).
    n_requests:
        Total requests to serve; ``0`` returns a well-formed empty report.
    arrival_rate:
        Mean arrivals/second (Poisson); ``None`` = all at t=0 (the
        paper's closed-batch setting).
    router:
        Placement strategy across idle devices; default earliest-finish.
    faults:
        Declarative fault plan (:class:`~repro.serving.faults.FaultPlan`)
        injected into the run; an empty plan reproduces the fault-free
        schedule bit-identically. ``retry`` governs how aborted requests
        are retried or shed (default :class:`RetryPolicy`).
    """
    if not devices:
        raise ValueError("need at least one device")
    if callable(cost) and not hasattr(cost, "latency"):
        cost = CallableCostModel(cost)
    router = router or EarliestFinishRouter()

    if arrival_rate is None:
        arrivals = closed_arrivals(n_requests)
    else:
        arrivals = poisson_arrivals(n_requests, arrival_rate, seed=seed)
    requests = make_requests(arrivals)

    slots, by_label, slot_device = _make_slots(devices)
    fault_runtime = _make_fault_runtime(faults, retry, None, slots, slot_device)
    tenant = _Tenant("", policy, _SlotCost(cost, slot_device,
                                           faults=fault_runtime))
    makespan = (
        _run_event_loop(requests, {"": tenant}, slots, by_label, router,
                        faults=fault_runtime)
        if requests else 0.0
    )
    fault_stats = None
    if fault_runtime is not None:
        fault_stats = fault_runtime.build_stats(makespan, requests,
                                                {"": (None, None)})
    return _summarize(requests, slots, makespan, policy.name, router.name,
                      arrival_rate, fault_stats=fault_stats)


def simulate_mixed(
    tenants: Sequence[TenantSpec],
    devices: tuple[str, ...] = ("2080ti",),
    n_requests: int = 10_000,
    arrival_rate: float | None = None,
    scenario: str = "uniform",
    requests: list[Request] | None = None,
    router: Router | None = None,
    finetune: Sequence | None = None,
    seed: int = 0,
    faults: FaultPlan | None = None,
    retry: RetryPolicy | None = None,
    lint: bool = True,
) -> ServingReport:
    """Serve a mix of tenants concurrently on a shared device pool.

    Each tenant keeps its own FIFO queue, cost model, batching policy and
    SLO; batches never mix tenants, and placement decisions are made
    against the deciding tenant's latency curves. When ``requests`` is
    not given, the traffic mix is generated by the named ``scenario``
    (see :mod:`repro.serving.scenarios`) from the tenants' ``weight``
    fields; pass a pre-built, tenant-tagged request list to replay a
    custom stream (the list is copied, so the same stream can be replayed
    across runs without one run's timings clobbering another report's).
    The report carries per-tenant latency/SLO breakdowns in
    ``tenant_stats``.

    ``finetune`` adds background training jobs
    (:class:`~repro.serving.finetune.FinetuneJob`): each holds a stream
    share of every device, inference batches slow down by
    ``1 / (1 - sum(shares))``, and the report's ``finetune_stats`` records
    the training steps each job completed during the run's makespan.

    ``faults`` injects a declarative fault plan
    (:class:`~repro.serving.faults.FaultPlan`) — device failures abort
    in-flight batches (re-queued under ``retry``, shed past its bounds),
    throttle windows slow devices, and tenants with a declared
    ``degraded`` mode shed an encoder under pressure. The report's
    ``fault_stats`` accounts for all of it; background fine-tuning jobs
    additionally checkpoint/restart around each slot's down windows. An
    empty plan reproduces the fault-free schedule bit-identically.
    """
    if not tenants:
        raise ValueError("need at least one tenant")
    names = [spec.name for spec in tenants]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate tenant names: {names}")
    if not devices:
        raise ValueError("need at least one device")
    if lint:
        # Pre-run static lint: the tenant set and the fault plan are both
        # declarative, so errors (an unreachable recover, a plan that
        # blacks out the whole pool) are caught here in microseconds
        # instead of surfacing as a wrong number mid-simulation. Opt out
        # with lint=False to study a deliberately broken configuration.
        from repro.lint import check, lint_fault_plan, lint_tenants

        pre = lint_tenants(tenants, source="simulate_mixed")
        if faults is not None and not faults.empty:
            horizon = (n_requests / arrival_rate
                       if requests is None and arrival_rate else None)
            pre.extend(lint_fault_plan(
                faults, source="simulate_mixed",
                devices=slot_labels(tuple(devices)), horizon=horizon))
        check(pre, what="serving configuration")
    router = router or EarliestFinishRouter()

    slowdown = 1.0
    if finetune:
        from repro.serving.finetune import inference_slowdown

        slowdown = inference_slowdown(finetune)

    if requests is None:
        from repro.serving.scenarios import scenario_requests

        requests = scenario_requests(scenario, tenants, n_requests=n_requests,
                                     arrival_rate=arrival_rate, seed=seed)
    else:
        unknown = {r.tenant for r in requests} - set(names)
        if unknown:
            raise ValueError(f"requests reference unknown tenants {sorted(unknown)}")
        # Fresh copies (timing fields reset): the loop fills them in
        # place, and the caller's stream must stay replayable.
        requests = [Request(index=r.index, arrival=r.arrival, tenant=r.tenant)
                    for r in requests]
        arrivals = np.fromiter((r.arrival for r in requests),
                               dtype=np.float64, count=len(requests))
        if arrivals.size and np.any(np.diff(arrivals) < 0):
            requests.sort(key=lambda r: r.arrival)

    slots, by_label, slot_device = _make_slots(devices)
    fault_runtime = _make_fault_runtime(faults, retry, tenants, slots,
                                        slot_device)
    states = {
        spec.name: _Tenant(spec.name, spec.policy,
                           _SlotCost(spec.cost, slot_device, scale=slowdown,
                                     faults=fault_runtime),
                           mode=spec.degraded)
        for spec in tenants
    }
    makespan = (
        _run_event_loop(requests, states, slots, by_label, router,
                        faults=fault_runtime)
        if requests else 0.0
    )
    fault_stats = None
    if fault_runtime is not None:
        fault_stats = fault_runtime.build_stats(
            makespan, requests,
            {spec.name: (spec.degraded, spec.slo) for spec in tenants})
    finetune_stats = None
    if finetune:
        from repro.serving.finetune import finetune_progress

        down_windows = None
        if fault_stats is not None:
            down_windows = {label: stats.down_windows
                            for label, stats in fault_stats.devices.items()
                            if stats.down_windows}
        finetune_stats = finetune_progress(finetune, slot_device, makespan,
                                           down_windows=down_windows)
    return _summarize(requests, slots, makespan,
                      f"mixed({len(tenants)} tenants)", router.name,
                      arrival_rate, tenants=tenants,
                      finetune_stats=finetune_stats,
                      inference_slowdown=slowdown,
                      fault_stats=fault_stats)
