"""Open-loop serving: dynamic batching, routing, and latency accounting.

The deployment-facing layer of the reproduction (see ``docs/serving.md``).
It answers the question the paper's Sec. 5.1 batch-size case study opens
— "what batch size should the OS schedule for an open request stream?" —
with a discrete-event simulator driven by memoized profiler cost models:

* :mod:`repro.serving.request` — requests and arrival processes
* :mod:`repro.serving.costmodel` — memoized per-batch cost models
* :mod:`repro.serving.policies` — fixed / timeout / SLO-adaptive batching
* :mod:`repro.serving.router` — placement across heterogeneous devices
* :mod:`repro.serving.scenarios` — named multi-tenant traffic mixes
* :mod:`repro.serving.finetune` — background fine-tuning jobs sharing
  devices with inference traffic through stream resource shares
* :mod:`repro.serving.faults` — declarative fault plans (device loss,
  thermal throttling, stalls), retry/shed accounting, graceful
  degradation, and the named chaos scenarios
* :mod:`repro.serving.simulator` — the event loop (single- and
  multi-tenant) and its report
* :mod:`repro.serving.fleet` — fleet-scale simulator: homogeneous
  device groups, vectorized epochs, cross-group hop costs, reactive
  autoscaling
* :mod:`repro.serving.report` — formatted throughput–tail-latency tables
"""

from repro.serving.costmodel import (
    DEFAULT_ANCHORS,
    PROFILE_STATS,
    CallableCostModel,
    ProfiledCostModel,
    TraceCostModel,
    clear_cost_cache,
    throughput_optimal_batch,
)
from repro.serving.faults import (
    CHAOS_SCENARIO_NAMES,
    CHAOS_SCENARIOS,
    DegradedMode,
    DeviceDown,
    DeviceFaultStats,
    DeviceRecover,
    FaultPlan,
    FaultPlanError,
    FaultStats,
    RetryPolicy,
    TenantFaultStats,
    ThermalThrottle,
    TransientStall,
    chaos_plan,
    degraded_mode_for,
    load_fault_plan,
)
from repro.serving.fleet import (
    AutoscalePolicy,
    DeviceGroup,
    FleetConfig,
    FleetConfigError,
    FleetReport,
    GroupStats,
    ScalingEvent,
    parse_autoscale,
    parse_groups,
    simulate_fleet,
)
from repro.serving.finetune import (
    FinetuneJob,
    FinetuneStats,
    TrainingCostModel,
    finetune_progress,
    inference_slowdown,
    make_finetune_jobs,
    total_background_share,
)
from repro.serving.policies import (
    POLICY_NAMES,
    AdaptiveSLOPolicy,
    BatchingPolicy,
    FixedBatchPolicy,
    TimeoutBatchPolicy,
    make_policy,
)
from repro.serving.report import (
    fleet_summary,
    format_device_breakdown,
    format_fault_stats,
    format_finetune_breakdown,
    format_policy_comparison,
    format_tenant_breakdown,
    mixed_serving_summary,
    serving_summary,
)
from repro.serving.request import (
    Request,
    RequestColumns,
    closed_arrivals,
    make_mixed_requests,
    make_requests,
    poisson_arrivals,
    sort_request_columns,
)
from repro.serving.router import (
    EarliestFinishRouter,
    RoundRobinRouter,
    Router,
    RouterScaleError,
    make_router,
)
from repro.serving.scenarios import (
    SCENARIO_NAMES,
    SCENARIOS,
    Scenario,
    get_scenario,
    make_tenants,
    scenario_columns,
    scenario_requests,
)
from repro.serving.simulator import (
    DeviceStats,
    ServingReport,
    TenantSpec,
    TenantStats,
    simulate,
    simulate_mixed,
    slot_labels,
    validate_fault_plan,
)

__all__ = [
    "DEFAULT_ANCHORS", "PROFILE_STATS", "CallableCostModel", "ProfiledCostModel",
    "TraceCostModel", "clear_cost_cache", "throughput_optimal_batch",
    "CHAOS_SCENARIO_NAMES", "CHAOS_SCENARIOS", "DegradedMode", "DeviceDown",
    "DeviceFaultStats", "DeviceRecover", "FaultPlan", "FaultPlanError",
    "FaultStats", "RetryPolicy", "TenantFaultStats", "ThermalThrottle",
    "TransientStall", "chaos_plan", "degraded_mode_for", "load_fault_plan",
    "AutoscalePolicy", "DeviceGroup", "FleetConfig", "FleetConfigError",
    "FleetReport", "GroupStats", "ScalingEvent", "parse_autoscale",
    "parse_groups", "simulate_fleet",
    "FinetuneJob", "FinetuneStats", "TrainingCostModel", "finetune_progress",
    "inference_slowdown", "make_finetune_jobs", "total_background_share",
    "POLICY_NAMES", "AdaptiveSLOPolicy", "BatchingPolicy", "FixedBatchPolicy",
    "TimeoutBatchPolicy", "make_policy",
    "fleet_summary", "format_device_breakdown", "format_fault_stats",
    "format_finetune_breakdown", "format_policy_comparison",
    "format_tenant_breakdown", "mixed_serving_summary", "serving_summary",
    "Request", "RequestColumns", "closed_arrivals", "make_mixed_requests",
    "make_requests", "poisson_arrivals", "sort_request_columns",
    "EarliestFinishRouter", "RoundRobinRouter", "Router", "RouterScaleError",
    "make_router",
    "SCENARIO_NAMES", "SCENARIOS", "Scenario", "get_scenario", "make_tenants",
    "scenario_columns", "scenario_requests",
    "DeviceStats", "ServingReport", "TenantSpec", "TenantStats",
    "simulate", "simulate_mixed", "slot_labels", "validate_fault_plan",
]
