"""Dynamic batching policies.

A policy answers one question, every time a device goes idle while
requests are queued: *dispatch how many now — or hold for a bigger
batch?* The three policies span the deployment spectrum the paper's
Sec. 5.1 case study opens:

* :class:`FixedBatchPolicy` — the paper's setting: serve up to a fixed
  cap immediately, never hold. Simple, but the cap is a static guess.
* :class:`TimeoutBatchPolicy` — classic serving-system batching: hold
  until the batch fills or the oldest request has waited ``timeout``.
* :class:`AdaptiveSLOPolicy` — cost-model-driven: pick the largest batch
  whose predicted compute time still lands the oldest queued request
  inside its latency SLO; when the SLO is already blown, switch to the
  throughput-optimal batch size to drain the queue fastest.
"""

from __future__ import annotations

import math
import weakref


def _wake_after(base: float, delta: float) -> float:
    """``base + delta``, rounded up so ``wake - base >= delta`` holds in floats.

    Wakeup times must satisfy the very comparison ``decide`` will make at
    the wakeup (``now - base >= delta``), or the event fires, the policy
    still holds, and the simulation livelocks on rounding.
    """
    wake = base + delta
    while wake - base < delta:
        wake = math.nextafter(wake, math.inf)
    return wake


class BatchingPolicy:
    """Decides batch sizes; subclasses override :meth:`decide`."""

    name: str = "policy"

    def decide(self, now: float, queue_len: int, oldest_wait: float,
               device: str, cost) -> int | None:
        """Batch size to dispatch on ``device`` now, or ``None`` to hold.

        Called only when ``queue_len > 0`` and ``device`` is idle. ``cost``
        is a cost model with ``latency(device, batch_size)``.
        """
        raise NotImplementedError

    def next_wakeup(self, now: float, oldest_arrival: float) -> float | None:
        """When to re-evaluate after a hold (``None`` = next arrival/finish)."""
        return None

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class FixedBatchPolicy(BatchingPolicy):
    """Serve ``min(queue, batch_size)`` immediately whenever a device frees."""

    def __init__(self, batch_size: int):
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.batch_size = batch_size
        self.name = f"fixed({batch_size})"

    def decide(self, now, queue_len, oldest_wait, device, cost):
        return min(queue_len, self.batch_size)


class TimeoutBatchPolicy(BatchingPolicy):
    """Hold until the batch fills or the oldest request waited ``timeout``."""

    def __init__(self, batch_size: int, timeout: float):
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if timeout < 0:
            raise ValueError(f"timeout must be non-negative, got {timeout}")
        self.batch_size = batch_size
        self.timeout = timeout
        self.name = f"timeout({batch_size},{timeout:g}s)"

    def decide(self, now, queue_len, oldest_wait, device, cost):
        if queue_len >= self.batch_size or oldest_wait >= self.timeout:
            return min(queue_len, self.batch_size)
        return None

    def next_wakeup(self, now, oldest_arrival):
        return _wake_after(oldest_arrival, self.timeout)


class AdaptiveSLOPolicy(BatchingPolicy):
    """Largest batch whose predicted compute keeps the oldest request in SLO.

    With headroom ``safety * slo - oldest_wait`` remaining for the oldest
    queued request, binary-search the largest ``k <= max_batch`` with
    ``cost.latency(device, k) <= headroom`` (latency is monotone in batch
    size). When the offered device cannot serve even a single request
    within the remaining headroom, the oldest request is *held* — a faster
    device in the pool may still land it — until its budget is actually
    spent; from then on the policy stops protecting it and dispatches the
    throughput-optimal batch size, which drains the backlog fastest and
    restores headroom for the requests behind it.
    """

    def __init__(self, slo: float, max_batch: int = 512, safety: float = 0.8):
        if slo <= 0:
            raise ValueError(f"slo must be positive, got {slo}")
        if max_batch <= 0:
            raise ValueError(f"max_batch must be positive, got {max_batch}")
        if not 0 < safety <= 1:
            raise ValueError(f"safety must be in (0, 1], got {safety}")
        self.slo = slo
        self.max_batch = max_batch
        self.safety = safety
        self.name = f"adaptive(slo={slo:g}s)"
        # Memoized drain batch per (cost model, device). Keyed weakly by
        # the *underlying* cost model — the simulator hands ``decide`` a
        # per-run slot wrapper, so keying on the argument itself would
        # rebuild the memo every simulation — while still dying with the
        # model so a reused policy never applies a stale curve's optimum.
        self._drain_batch: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()

    def decide(self, now, queue_len, oldest_wait, device, cost):
        headroom = self.safety * self.slo - oldest_wait
        if headroom >= cost.latency(device, 1):
            return min(queue_len, self._largest_within(device, cost, headroom))
        if oldest_wait >= self.safety * self.slo:
            # Truly blown: stop protecting the oldest and drain fastest to
            # restore headroom for the requests behind it.
            return min(queue_len, self._throughput_optimal(device, cost))
        # This device cannot land the oldest request inside the SLO, but the
        # budget isn't spent yet — hold, so a faster device (or the deadline
        # wakeup below) takes it rather than a guaranteed miss.
        return None

    def next_wakeup(self, now, oldest_arrival):
        # Wake exactly when the oldest request's budget is spent.
        return _wake_after(oldest_arrival, self.safety * self.slo)

    def _largest_within(self, device: str, cost, budget: float) -> int:
        """Largest k in [1, max_batch] with latency(k) <= budget."""
        lo, hi = 1, self.max_batch
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if cost.latency(device, mid) <= budget:
                lo = mid
            else:
                hi = mid - 1
        return lo

    def _throughput_optimal(self, device: str, cost) -> int:
        from repro.serving.costmodel import throughput_optimal_batch

        # Unwrap per-run slot adapters (they expose `underlying` and map
        # slot labels to device model names) so the memo keys on the cost
        # model and the device — both stable across simulations.
        base = getattr(cost, "underlying", cost)
        key = cost.device_name(device) if hasattr(cost, "device_name") else device
        per_cost = self._drain_batch.setdefault(base, {})
        if key not in per_cost:
            per_cost[key] = throughput_optimal_batch(cost, device, self.max_batch)
        return per_cost[key]


POLICY_NAMES = ("fixed", "timeout", "adaptive")


def make_policy(name: str, *, batch_size: int = 40, timeout: float = 2e-3,
                slo: float = 50e-3, max_batch: int = 512) -> BatchingPolicy:
    """Build a policy from its CLI name (``fixed``/``timeout``/``adaptive``)."""
    if name == "fixed":
        return FixedBatchPolicy(batch_size)
    if name == "timeout":
        return TimeoutBatchPolicy(batch_size, timeout)
    if name == "adaptive":
        return AdaptiveSLOPolicy(slo, max_batch=max_batch)
    raise KeyError(f"unknown policy {name!r}; available: {POLICY_NAMES}")
