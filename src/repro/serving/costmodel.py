"""Per-batch cost models driving the serving simulator.

The simulator never executes a model during a run: batch compute times
come from a cost model priced ahead of time. :class:`ProfiledCostModel`
is the production path — it captures each workload's trace at a few
anchor batch sizes and interpolates, exactly the way the paper's
batch-size case study turns a handful of measurements into a scheduling
decision.

Traces come from the shared :class:`~repro.trace.store.TraceStore`
(content-addressed by workload / fusion / batch / backend / code
version), captured on the **meta** backend by default so cost-model fills
never pay dense numpy math; prices per device are memoized at module
level on top. ``clear_cost_cache`` and the ``PROFILE_STATS`` work
counters are kept as thin shims over the store so existing callers and
tests see the same observable behavior the private module-level caches
used to provide.

:class:`CallableCostModel` adapts a plain ``batch_time(k)`` closure for
unit tests and for the legacy :mod:`repro.hw.scheduler` entry points.
"""

from __future__ import annotations

import weakref

import numpy as np

from repro.hw.device import get_device
from repro.trace.store import default_store

DEFAULT_ANCHORS: tuple[int, ...] = (1, 8, 32, 128, 512)

# Device-dependent quantities stay module-level (the trace store is
# device-independent by design):
#   _TIME_CACHE[(workload, fusion, seed, backend, device, k)] -> seconds
_TIME_CACHE: dict = {}

# Observable work counters, for tests and for cache diagnostics.
# "captures"/"hits" mirror the shared trace store; "pricings" counts
# device-model evaluations.
PROFILE_STATS = {"captures": 0, "pricings": 0, "hits": 0}


def clear_cost_cache() -> None:
    """Drop all memoized traces/prices (mainly for tests).

    Back-compat shim: trace and model memoization now live in the shared
    :func:`~repro.trace.store.default_store`; this clears its in-memory
    tier (the disk tier, when configured, persists by design) along with
    the per-device price caches.
    """
    default_store().clear()
    _TIME_CACHE.clear()
    _ANCHOR_FN_CACHE.clear()


def _interp_affine(k: float, anchors: np.ndarray, times: np.ndarray) -> float:
    """Piecewise-linear between anchors; affine extrapolation beyond both ends.

    Below the first anchor the curve follows the first segment's slope
    (mirroring the above-last-anchor path) — ``np.interp`` would flat-clamp
    there, silently overpricing small batches under non-default anchor sets
    like ``(8, 32, 128)``. Affine latency keeps a positive launch-overhead
    intercept; should an anomalous (superlinear) anchor pair extrapolate
    through zero, the result is floored at proportional cost
    (``times[0] * k / anchors[0]``), which is always positive.
    """
    if len(anchors) > 1:
        if k > anchors[-1]:
            slope = (times[-1] - times[-2]) / (anchors[-1] - anchors[-2])
            return float(times[-1] + slope * (k - anchors[-1]))
        if k < anchors[0]:
            slope = (times[1] - times[0]) / (anchors[1] - anchors[0])
            value = times[0] - slope * (anchors[0] - k)
            return float(max(value, times[0] * k / anchors[0]))
    return float(np.interp(k, anchors, times))


def throughput_optimal_batch(cost, device: str, max_batch: int = 512) -> int:
    """Batch size maximizing sustained tasks/second on ``device``.

    The single definition shared by :class:`ProfiledCostModel` and
    :class:`~repro.serving.policies.AdaptiveSLOPolicy`'s drain mode.
    """
    ladder = [k for k in (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)
              if k <= max_batch]
    if max_batch not in ladder:
        ladder.append(max_batch)
    return max(ladder, key=lambda k: k / cost.latency(device, k))


class CallableCostModel:
    """Adapts ``batch_time(k) -> seconds`` into the cost-model interface.

    Device-oblivious: every device sees the same curve. Used by the legacy
    single-server :func:`repro.hw.scheduler.simulate_serving` and by tests
    that want analytic (e.g. affine) service times.
    """

    def __init__(self, batch_time):
        self._batch_time = batch_time

    def latency(self, device: str, batch_size: int) -> float:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        duration = float(self._batch_time(batch_size))
        if duration <= 0:
            raise ValueError("batch_time must return a positive duration")
        return duration


class ProfiledCostModel:
    """Memoized ``latency(device, batch_size)`` for one (workload, fusion).

    Anchors are profiled lazily per device on first use; queries between
    anchors interpolate linearly (latency is affine in batch size to good
    approximation under the roofline model: fixed launch overhead plus
    work that scales with the batch), and queries beyond the last anchor
    extrapolate along the final segment's slope.

    ``backend`` selects the trace-capture backend; the default ``"meta"``
    propagates shapes analytically and is event-for-event identical to
    eager capture (a tier-1-enforced invariant), so the latency curves are
    bit-equal at a fraction of the fill cost.
    """

    def __init__(self, workload: str, fusion: str | None = None,
                 anchors: tuple[int, ...] = DEFAULT_ANCHORS, seed: int = 0,
                 backend: str = "meta"):
        anchors = tuple(int(k) for k in anchors)
        if not anchors or list(anchors) != sorted(set(anchors)) or anchors[0] < 1:
            raise ValueError(f"anchors must be increasing positive ints, got {anchors}")
        from repro.nn.backend import validate_backend
        from repro.workloads.registry import get_workload

        self.workload = workload
        # Normalize so fusion=None and the workload's default fusion name
        # share one cache entry (they build the identical model).
        self.fusion = get_workload(workload).default_fusion if fusion is None else fusion
        self.anchors = anchors
        self.seed = seed
        self.backend = validate_backend(backend)
        self._anchor_arr = np.array(self.anchors, dtype=np.float64)
        self._anchor_times: dict[str, np.ndarray] = {}  # canonical device -> times

    # -- profiling (store-backed, grid-priced) -----------------------------------

    def _time_key(self, device: str, k: int) -> tuple:
        return (self.workload, self.fusion, self.seed, self.backend, device, k)

    def _anchor_curve(self, device: str) -> np.ndarray:
        """Anchor latencies for one device, priced in a single grid pass.

        Anchors already in the module-level price cache are hits; the
        missing ones go through :func:`repro.profiling.profiler.price_grid`
        together, so each uncached trace is fetched from the shared store
        once and priced vectorized.
        """
        canonical = get_device(device).name
        if canonical in self._anchor_times:
            return self._anchor_times[canonical]

        times = np.empty(len(self.anchors), dtype=np.float64)
        missing: list[tuple[int, int]] = []  # (position, anchor batch size)
        for i, k in enumerate(self.anchors):
            cached = _TIME_CACHE.get(self._time_key(canonical, k))
            if cached is not None:
                PROFILE_STATS["hits"] += 1
                times[i] = cached
            else:
                missing.append((i, k))

        if missing:
            from repro.profiling.profiler import price_grid

            store = default_store()
            captures_before = store.stats["captures"]
            grid = price_grid(
                [self.workload], [k for _, k in missing], [canonical],
                fusion=self.fusion, seed=self.seed, backend=self.backend,
                store=store,
            )
            captured = store.stats["captures"] - captures_before
            PROFILE_STATS["captures"] += captured
            PROFILE_STATS["hits"] += len(missing) - captured
            PROFILE_STATS["pricings"] += len(missing)
            for i, k in missing:
                t = grid[(self.workload, k, canonical)].total_time
                _TIME_CACHE[self._time_key(canonical, k)] = t
                times[i] = t

        self._anchor_times[canonical] = times
        return times

    # -- queries ----------------------------------------------------------------

    def latency(self, device: str, batch_size: int) -> float:
        """Seconds to serve one batch of ``batch_size`` on ``device``."""
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        return _interp_affine(batch_size, self._anchor_arr, self._anchor_curve(device))

    def throughput_optimal_batch(self, device: str, max_batch: int = 512) -> int:
        """Batch size maximizing sustained tasks/second on ``device``."""
        return throughput_optimal_batch(self, device, max_batch)

    def batch_time(self, device: str):
        """A ``batch_time(k)`` closure bound to ``device`` (legacy interface)."""
        return lambda k: self.latency(device, k)


class TraceCostModel:
    """``latency(device, batch_size)`` for one already-stored trace.

    The serving adapter for ingested execution graphs: policies and the
    simulator only ever call ``latency``, so any
    :class:`~repro.trace.store.StoredTrace` — regardless of whether a
    model object exists for it — can drive a serving run. Anchor latencies
    are produced by *batch-scaling* the stored trace
    (:func:`repro.trace.timeline.scale_trace` with factor ``k / base``):
    per-kernel work scales with the batch while the parameter footprint
    stays fixed and only the input footprint scales, which is the batch
    semantics (``price_grid``'s ``scale`` path scales both because it
    models scaling the *model*, not the batch).
    """

    def __init__(self, stored, base_batch_size: int = 1,
                 anchors: tuple[int, ...] = DEFAULT_ANCHORS,
                 name: str | None = None):
        anchors = tuple(int(k) for k in anchors)
        if not anchors or list(anchors) != sorted(set(anchors)) or anchors[0] < 1:
            raise ValueError(f"anchors must be increasing positive ints, got {anchors}")
        if base_batch_size < 1:
            raise ValueError(f"base_batch_size must be positive, got {base_batch_size}")
        self.stored = stored
        self.base_batch_size = int(base_batch_size)
        self.anchors = anchors
        self.name = name or stored.model_name
        self._anchor_arr = np.array(anchors, dtype=np.float64)
        self._anchor_times: dict[str, np.ndarray] = {}  # canonical device -> times

    def _anchor_curve(self, device: str) -> np.ndarray:
        canonical = get_device(device).name
        curve = self._anchor_times.get(canonical)
        if curve is not None:
            return curve
        from repro.hw.engine import ExecutionEngine
        from repro.trace.timeline import scale_trace

        engine = ExecutionEngine(get_device(canonical))
        times = np.empty(len(self.anchors), dtype=np.float64)
        for i, k in enumerate(self.anchors):
            factor = k / self.base_batch_size
            trace = (self.stored.trace if factor == 1.0
                     else scale_trace(self.stored.trace, factor))
            report = engine.run(
                trace,
                model_bytes=self.stored.parameter_bytes,
                input_bytes=self.stored.input_bytes * factor,
            )
            PROFILE_STATS["pricings"] += 1
            # Floor keeps the interpolated curve strictly positive even
            # for degenerate (e.g. empty) traces.
            times[i] = max(report.total_time, 1e-12)
        self._anchor_times[canonical] = times
        return times

    def latency(self, device: str, batch_size: int) -> float:
        """Seconds to serve one batch of ``batch_size`` on ``device``."""
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        return _interp_affine(batch_size, self._anchor_arr, self._anchor_curve(device))

    def throughput_optimal_batch(self, device: str, max_batch: int = 512) -> int:
        return throughput_optimal_batch(self, device, max_batch)

    def batch_time(self, device: str):
        """A ``batch_time(k)`` closure bound to ``device`` (legacy interface)."""
        return lambda k: self.latency(device, k)


# Keyed by the model *instance* (weakly, so caches die with their model):
# two models that merely share a name and parameter count must not share
# latency curves. Values: {(device, seed, anchors): times array}.
_ANCHOR_FN_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def anchored_batch_time(profiler, model, device: str,
                        anchors: tuple[int, ...] = DEFAULT_ANCHORS, seed: int = 0,
                        backend: str | None = None):
    """Profile ``model`` at anchor batch sizes; return a ``batch_time(k)`` closure.

    The generic building block behind
    :func:`repro.hw.scheduler.batch_time_from_profile`: works for any
    model object (registered or user-built), interpolating between
    anchors and extrapolating affinely beyond the last one. Anchor times
    are memoized per (model instance, device, seed), so repeated closures
    over the same model never re-profile. ``backend`` selects the batch
    backend (``None`` = the process default).
    """
    canonical = get_device(device).name
    per_model = _ANCHOR_FN_CACHE.setdefault(model, {})
    key = (canonical, seed, tuple(anchors))
    if key in per_model:
        PROFILE_STATS["hits"] += 1
        times = per_model[key]
    else:
        from repro.data.synthetic import random_batch

        measured = []
        for k in anchors:
            batch = random_batch(model.shapes, k, seed=seed, backend=backend)
            trace = profiler.capture(model, batch)
            PROFILE_STATS["captures"] += 1
            report = profiler.price(model, trace, k, device=canonical)
            PROFILE_STATS["pricings"] += 1
            measured.append(report.total_time)
        times = np.array(measured, dtype=np.float64)
        per_model[key] = times

    anchor_arr = np.array(anchors, dtype=np.float64)

    def batch_time(k: int) -> float:
        return _interp_affine(k, anchor_arr, times)

    return batch_time
