"""Fault injection and graceful degradation for the serving simulator.

The paper warns (Sec. 4.2.3) that naively throttling encoders "can lead
to avoidable task failures resulting from the loss of situation
awareness"; :mod:`repro.core.analysis.robustness` reproduces that axis at
the *algorithm* level (modality dropout / noise). This module is the
*system*-level counterpart: simulated devices can die mid-run, overheat
into throttle windows, or stall transiently — and the serving stack must
degrade gracefully instead of losing requests.

A :class:`FaultPlan` is a declarative, seeded timeline of events:

* :class:`DeviceDown` / :class:`DeviceRecover` — a device slot leaves /
  rejoins the pool. In-flight batches on a failing slot are **aborted**
  and their requests re-queued with retry accounting (bounded retries,
  exponential backoff with deterministic jitter).
* :class:`ThermalThrottle` — a time-windowed latency multiplier on one
  slot (batches dispatched inside the window run ``factor`` slower, and
  batching/routing decisions see the throttled curves).
* :class:`TransientStall` — the slot freezes for ``duration`` seconds:
  an in-flight batch finishes late, an idle slot accepts no work.

Requests are never silently lost: a request either completes or is
**shed** (bounded retries exhausted, or its deadline expired), and the
event loop enforces ``completed + shed + in_flight == issued`` at every
step. Tenants may also declare a :class:`DegradedMode`: under sustained
pressure (oldest queued request waiting past ``enter_wait``) the tenant
drops to a cheaper serving configuration — modelled as shedding its
costliest modality encoder, the ``scale_trace``-style trace reduction —
with the accuracy cost quoted from the algorithm-level
:class:`~repro.core.analysis.robustness.RobustnessReport`.

Everything the faults did to the run is reported in
:class:`FaultStats` (``ServingReport.fault_stats``): per-device downtime
and throttle/stall windows, abort/retry/shed counts, degraded-mode
request counts and SLO attainment, and recovery-time percentiles.

Named chaos scenarios (``single-failure``, ``rolling-restart``,
``thermal-brownout``, ``flaky-device``) build ready-made plans for a
device pool and run horizon; ``mmbench serve --faults`` accepts either a
scenario name or a plan JSON file.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np


class FaultPlanError(ValueError):
    """A fault plan is malformed: unknown device, overlapping windows,
    a plan that kills every device at once, or a bad field value. The
    message always names the offender."""


# ---------------------------------------------------------------------------
# Declarative fault events
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DeviceDown:
    """Slot ``device`` fails at ``time``; in-flight work is aborted."""

    device: str
    time: float


@dataclass(frozen=True)
class DeviceRecover:
    """Slot ``device`` rejoins the pool at ``time``."""

    device: str
    time: float


@dataclass(frozen=True)
class ThermalThrottle:
    """Latencies on ``device`` multiply by ``factor`` over ``[time, until)``."""

    device: str
    time: float
    until: float
    factor: float


@dataclass(frozen=True)
class TransientStall:
    """Slot ``device`` freezes for ``duration`` seconds starting at ``time``."""

    device: str
    time: float
    duration: float


FaultEvent = DeviceDown | DeviceRecover | ThermalThrottle | TransientStall

_KINDS = {
    "down": DeviceDown,
    "recover": DeviceRecover,
    "throttle": ThermalThrottle,
    "stall": TransientStall,
}


def _check_event(event: FaultEvent, where: str) -> None:
    if not isinstance(event, (DeviceDown, DeviceRecover, ThermalThrottle,
                              TransientStall)):
        raise FaultPlanError(f"{where}: not a fault event: {event!r}")
    if not event.device:
        raise FaultPlanError(f"{where}: empty device name")
    if event.time < 0:
        raise FaultPlanError(f"{where}: negative time {event.time} "
                             f"for device {event.device!r}")
    if isinstance(event, ThermalThrottle):
        if event.factor <= 0:
            raise FaultPlanError(f"{where}: throttle factor must be positive, "
                                 f"got {event.factor} for {event.device!r}")
        if event.until <= event.time:
            raise FaultPlanError(f"{where}: throttle window must end after it "
                                 f"starts ({event.time} .. {event.until}) "
                                 f"for {event.device!r}")
    if isinstance(event, TransientStall) and event.duration <= 0:
        raise FaultPlanError(f"{where}: stall duration must be positive, "
                             f"got {event.duration} for {event.device!r}")


@dataclass(frozen=True)
class FaultPlan:
    """A declarative timeline of fault events against a device pool.

    Events name either a *slot* label (``2080ti#1``) or a bare device
    model name, which expands to every slot of that model at
    :meth:`resolve` time. An empty plan is a valid plan — and runs
    bit-identically to no plan at all (a tier-1-enforced invariant).
    """

    events: tuple[FaultEvent, ...] = ()

    def __post_init__(self):
        events = tuple(self.events)
        object.__setattr__(self, "events", events)
        for i, event in enumerate(events):
            _check_event(event, f"event[{i}]")

    @property
    def empty(self) -> bool:
        return not self.events

    # -- resolution & validation ------------------------------------------------

    def resolve(self, slot_labels: Sequence[str],
                slot_device: Mapping[str, str]) -> list[tuple]:
        """Expand device names to slots and validate the whole timeline.

        Returns ``(time, seq, kind, slot, arg)`` happenings sorted by
        time (stable in plan order): throttles become on/off pairs,
        stalls carry their duration. Raises :class:`FaultPlanError` for
        an unknown device, a down window overlapping another down window
        on the same slot, a recover with no matching down, or any
        instant at which *every* slot is simultaneously down (the event
        loop could never drain).
        """
        labels = list(slot_labels)
        by_device: dict[str, list[str]] = {}
        for label in labels:
            by_device.setdefault(slot_device.get(label, label), []).append(label)

        def slots_for(name: str, where: str) -> list[str]:
            if name in labels:
                return [name]
            if name in by_device:
                return by_device[name]
            raise FaultPlanError(
                f"{where}: unknown device {name!r}; "
                f"available slots: {', '.join(labels)}")

        happenings: list[tuple] = []
        seq = 0
        for i, event in enumerate(self.events):
            where = f"event[{i}]"
            for slot in slots_for(event.device, where):
                if isinstance(event, DeviceDown):
                    happenings.append((event.time, seq, "down", slot, None))
                elif isinstance(event, DeviceRecover):
                    happenings.append((event.time, seq, "recover", slot, None))
                elif isinstance(event, ThermalThrottle):
                    happenings.append(
                        (event.time, seq, "throttle-on", slot, event.factor))
                    happenings.append(
                        (event.until, seq, "throttle-off", slot, event.factor))
                else:  # TransientStall
                    happenings.append(
                        (event.time, seq, "stall", slot, event.duration))
                seq += 1
        happenings.sort(key=lambda h: (h[0], h[1]))

        down: set[str] = set()
        for when, _, kind, slot, _arg in happenings:
            if kind == "down":
                if slot in down:
                    raise FaultPlanError(
                        f"overlapping down windows for {slot!r} at t={when:g}")
                down.add(slot)
                if len(down) == len(labels):
                    raise FaultPlanError(
                        f"plan kills all {len(labels)} devices at t={when:g}; "
                        "at least one slot must stay up")
            elif kind == "recover":
                if slot not in down:
                    raise FaultPlanError(
                        f"recover without a matching down for {slot!r} "
                        f"at t={when:g}")
                down.discard(slot)
        return happenings

    # -- (de)serialization -------------------------------------------------------

    def to_json(self) -> dict:
        events = []
        for event in self.events:
            if isinstance(event, DeviceDown):
                events.append({"kind": "down", "device": event.device,
                               "time": event.time})
            elif isinstance(event, DeviceRecover):
                events.append({"kind": "recover", "device": event.device,
                               "time": event.time})
            elif isinstance(event, ThermalThrottle):
                events.append({"kind": "throttle", "device": event.device,
                               "time": event.time, "until": event.until,
                               "factor": event.factor})
            else:
                events.append({"kind": "stall", "device": event.device,
                               "time": event.time,
                               "duration": event.duration})
        return {"events": events}

    @classmethod
    def from_json(cls, payload: dict) -> "FaultPlan":
        if not isinstance(payload, dict) or "events" not in payload:
            raise FaultPlanError('fault plan JSON must be {"events": [...]}')
        events: list[FaultEvent] = []
        for i, raw in enumerate(payload["events"]):
            where = f"event[{i}]"
            if not isinstance(raw, dict):
                raise FaultPlanError(f"{where}: not an object: {raw!r}")
            kind = raw.get("kind")
            if kind not in _KINDS:
                raise FaultPlanError(
                    f"{where}: unknown kind {kind!r}; "
                    f"available: {', '.join(sorted(_KINDS))}")
            fields = {k: v for k, v in raw.items() if k != "kind"}
            try:
                event = _KINDS[kind](**fields)
            except TypeError as exc:
                raise FaultPlanError(f"{where}: {exc}") from None
            _check_event(event, where)
            events.append(event)
        return cls(tuple(events))


def load_fault_plan(path) -> FaultPlan:
    """Read a :class:`FaultPlan` from a JSON file (see :meth:`FaultPlan.to_json`)."""
    try:
        with open(path) as fh:
            payload = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise FaultPlanError(f"cannot read fault plan {path!r}: {exc}") from None
    return FaultPlan.from_json(payload)


# ---------------------------------------------------------------------------
# Retry / shed policy
# ---------------------------------------------------------------------------


def _jitter_fraction(index: int, attempt: int) -> float:
    """Deterministic pseudo-uniform fraction in [0, 1) per (request, attempt)."""
    h = (index * 2654435761 + attempt * 40503 + 0x9E3779B9) & 0xFFFFFFFF
    h ^= h >> 16
    h = (h * 0x45D9F3B) & 0xFFFFFFFF
    h ^= h >> 16
    return h / 2.0 ** 32


@dataclass(frozen=True)
class RetryPolicy:
    """How aborted requests are retried — and when they are shed instead.

    A request aborted by a device failure is re-queued after an
    exponential backoff ``backoff_base * backoff_factor**(attempt-1)``
    with deterministic jitter (a hash of the request index and attempt —
    no RNG state, so reruns are bit-identical). A request is **shed**
    once it exceeds ``max_retries`` aborts, or once it has been in the
    system longer than ``deadline`` seconds (``None`` = no deadline).
    Shed requests are counted, never silently dropped.
    """

    max_retries: int = 3
    backoff_base: float = 2e-3
    backoff_factor: float = 2.0
    jitter: float = 0.1
    deadline: float | None = None

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base <= 0:
            raise ValueError(
                f"backoff_base must be positive, got {self.backoff_base}")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be positive, got {self.deadline}")

    def backoff(self, index: int, attempt: int) -> float:
        """Seconds to wait before re-queueing ``attempt``-th retry."""
        base = self.backoff_base * self.backoff_factor ** (attempt - 1)
        return base * (1.0 + self.jitter * _jitter_fraction(index, attempt))


# ---------------------------------------------------------------------------
# Graceful degradation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DegradedMode:
    """A tenant's pressure-relief valve: serve cheaper, admit the cost.

    When the tenant's oldest queued request has waited ``enter_wait``
    seconds the tenant switches to degraded serving — its batches run at
    ``latency_factor`` of normal cost, modelling the shed ``modality``
    encoder (a ``scale_trace``-style trace reduction) — and switches
    back once the oldest wait drops below ``exit_wait`` (hysteresis).
    ``accuracy_cost`` quotes what the shed encoder costs in task metric,
    straight from :meth:`RobustnessReport.degradation
    <repro.core.analysis.robustness.RobustnessReport.degradation>` —
    the paper's "loss of situation awareness" made a number.
    """

    modality: str
    latency_factor: float
    enter_wait: float
    exit_wait: float | None = None
    accuracy_cost: float | None = None

    def __post_init__(self):
        if not 0.0 < self.latency_factor <= 1.0:
            raise ValueError(
                f"latency_factor must be in (0, 1], got {self.latency_factor}")
        if self.enter_wait <= 0:
            raise ValueError(
                f"enter_wait must be positive, got {self.enter_wait}")
        if self.exit_wait is None:
            object.__setattr__(self, "exit_wait", self.enter_wait / 2.0)
        if not 0.0 <= self.exit_wait < self.enter_wait:
            raise ValueError(
                f"exit_wait must be in [0, enter_wait), got {self.exit_wait}")


def degraded_mode_for(
    workload: str,
    enter_wait: float,
    exit_wait: float | None = None,
    modality: str | None = None,
    device: str = "2080ti",
    batch_size: int = 32,
    seed: int = 0,
    backend: str = "meta",
    robustness=None,
) -> DegradedMode:
    """Build a :class:`DegradedMode` from a workload's priced trace.

    The shed encoder defaults to the workload's *costliest* modality (by
    priced per-modality time share on ``device``); the latency factor is
    the trace with that modality's kernels removed, i.e.
    ``1 - modality_time / total_time``. Pass a
    :class:`~repro.core.analysis.robustness.RobustnessReport` as
    ``robustness`` to quote the accuracy cost of the drop.
    """
    from repro.profiling.profiler import MMBenchProfiler
    from repro.workloads.registry import get_workload

    info = get_workload(workload)
    if len(info.modalities) < 2:
        raise ValueError(
            f"{workload!r} has a single modality ({info.modalities[0]!r}); "
            "shedding its only encoder would serve nothing")
    result = MMBenchProfiler(device).profile_workload(
        workload, batch_size=batch_size, seed=seed, backend=backend)
    times = result.report.modality_time()
    if modality is None:
        modality = max(times, key=times.get)
    elif modality not in info.modalities:
        raise KeyError(f"unknown modality {modality!r} for {workload}; "
                       f"available: {list(info.modalities)}")
    total = result.report.total_time
    share = times.get(modality, 0.0) / total if total > 0 else 0.0
    factor = min(1.0, max(0.05, 1.0 - share))
    cost = robustness.degradation(modality) if robustness is not None else None
    return DegradedMode(modality=modality, latency_factor=factor,
                        enter_wait=enter_wait, exit_wait=exit_wait,
                        accuracy_cost=cost)


# ---------------------------------------------------------------------------
# Fault statistics (surfaced on ServingReport.fault_stats)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DeviceFaultStats:
    """What the faults did to one device slot."""

    slot: str
    device: str
    downtime: float
    down_windows: list[tuple[float, float]] = field(default_factory=list)
    throttle_time: float = 0.0
    throttle_windows: list[tuple[float, float, float]] = field(default_factory=list)
    stall_time: float = 0.0
    aborted_batches: int = 0
    aborted_requests: int = 0


@dataclass(frozen=True)
class TenantFaultStats:
    """Shedding / degradation accounting for one tenant."""

    tenant: str
    shed: int = 0
    degraded_available: bool = False  # tenant declared a DegradedMode
    degraded_requests: int = 0
    degraded_slo_attainment: float | None = None
    degraded_time: float = 0.0
    degraded_activations: int = 0
    accuracy_cost: float | None = None  # quoted metric cost of degraded mode


@dataclass(frozen=True)
class FaultStats:
    """Everything a fault plan did to one serving run."""

    plan_events: int
    issued: int
    completed: int
    shed: int
    retries: int  # total abort-retry transitions
    retry_histogram: dict[int, int] = field(default_factory=dict)
    recovery_p50: float = 0.0  # abort -> eventual completion, seconds
    recovery_p99: float = 0.0
    devices: dict[str, DeviceFaultStats] = field(default_factory=dict)
    tenants: dict[str, TenantFaultStats] = field(default_factory=dict)

    @property
    def total_downtime(self) -> float:
        return sum(d.downtime for d in self.devices.values())


# ---------------------------------------------------------------------------
# Runtime: the engine the event loop drives
# ---------------------------------------------------------------------------


class FaultRuntime:
    """Mutable per-run state of one fault plan + retry policy.

    Owned by :func:`repro.serving.simulator._run_event_loop`; maintains
    the conservation counters (``issued == completed + shed + queued +
    on_device + awaiting_retry`` — checked at every event), the live
    throttle scales the cost wrappers consult, and the raw material for
    :class:`FaultStats`.
    """

    def __init__(self, plan: FaultPlan, retry: RetryPolicy,
                 slot_labels: Sequence[str], slot_device: Mapping[str, str]):
        self.plan = plan
        self.retry = retry
        self.happenings = plan.resolve(slot_labels, slot_device)
        self._slot_device = dict(slot_device)
        # Live throttle multiplier per slot (absent == 1.0); _SlotCost reads it.
        self.scale: dict[str, float] = {}
        self._active_throttles: dict[str, list[float]] = {}
        # Conservation counters.
        self.queued = 0
        self.on_device = 0
        self.awaiting_retry = 0
        self.completed = 0
        self.shed = 0
        self.retries = 0
        # Per-slot accounting.
        self._down_since: dict[str, float] = {}
        self._down_windows: dict[str, list[tuple[float, float]]] = {}
        self._stall_time: dict[str, float] = {}
        self._aborted_batches: dict[str, int] = {}
        self._aborted_requests: dict[str, int] = {}
        # Per-tenant accounting.
        self._tenant_shed: dict[str, int] = {}
        self._degraded_requests: dict[str, int] = {}
        self._degraded_since: dict[str, float] = {}
        self._degraded_time: dict[str, float] = {}
        self._degraded_activations: dict[str, int] = {}
        # Recovery-time samples: request index -> last abort time.
        self._abort_time: dict[int, float] = {}
        self.recovery_samples: list[float] = []

    # -- conservation -----------------------------------------------------------

    def check_conservation(self, issued: int) -> None:
        accounted = (self.completed + self.shed + self.queued
                     + self.on_device + self.awaiting_retry)
        if accounted != issued:
            raise RuntimeError(
                f"request conservation violated: issued={issued} but "
                f"completed={self.completed} + shed={self.shed} + "
                f"queued={self.queued} + on_device={self.on_device} + "
                f"awaiting_retry={self.awaiting_retry} = {accounted}")

    # -- event application -------------------------------------------------------

    def apply(self, happening, now: float, by_label, router, push) -> float | None:
        """Apply one fault happening; returns a makespan bump, if any."""
        kind, label, arg = happening
        slot = by_label[label]
        if kind == "down":
            slot.down = True
            router.note_down(label)
            self._down_since[label] = now
            if slot.inflight is not None:
                return self._abort(slot, now, push)
        elif kind == "recover":
            slot.down = False
            router.note_recover(label)
            start = self._down_since.pop(label, now)
            self._down_windows.setdefault(label, []).append((start, now))
            if slot.free_at < now:
                slot.free_at = now
        elif kind == "throttle-on":
            active = self._active_throttles.setdefault(label, [])
            active.append(arg)
            self.scale[label] = float(np.prod(active))
        elif kind == "throttle-off":
            active = self._active_throttles.get(label, [])
            if arg in active:
                active.remove(arg)
            if active:
                self.scale[label] = float(np.prod(active))
            else:
                self.scale.pop(label, None)
        elif kind == "stall":
            if slot.down:
                return None  # a dead device cannot stall further
            self._stall_time[label] = self._stall_time.get(label, 0.0) + arg
            if slot.inflight is not None:
                finish, batch = slot.inflight
                new_finish = finish + arg
                for req in batch:
                    req.finish = new_finish
                slot.inflight = (new_finish, batch)
                slot.free_at = new_finish
                push(new_finish, "free", label)
                return new_finish
            stalled_until = now + arg
            if stalled_until > slot.stalled_until:
                slot.stalled_until = stalled_until
            push(stalled_until, "fault", ("stall-end", label, None))
        # "stall-end" wakes the loop so offers resume; nothing to mutate.
        return None

    def _abort(self, slot, now: float, push) -> None:
        """Abort the in-flight batch on a failing slot; re-queue or shed."""
        finish, batch = slot.inflight
        slot.inflight = None
        size = len(batch)
        slot.free_at = now
        slot.busy_time -= finish - now  # only the executed part counts
        slot.batches -= 1
        slot.requests -= size
        count = slot.histogram.get(size, 0) - 1
        if count > 0:
            slot.histogram[size] = count
        else:
            slot.histogram.pop(size, None)
        self._aborted_batches[slot.label] = (
            self._aborted_batches.get(slot.label, 0) + 1)
        self._aborted_requests[slot.label] = (
            self._aborted_requests.get(slot.label, 0) + size)
        self.on_device -= size
        for req in batch:
            req.dispatch = float("nan")
            req.finish = float("nan")
            req.device = ""
            req.batch_size = 0
            req.formation_wait = 0.0
            req.degraded = False
            req.retries += 1
            if req.retries > self.retry.max_retries:
                self.shed_request(req, now)
            elif (self.retry.deadline is not None
                  and now - req.arrival >= self.retry.deadline):
                self.shed_request(req, now)
            else:
                self.retries += 1
                self._abort_time[req.index] = now
                push(now + self.retry.backoff(req.index, req.retries),
                     "retry", req)
                self.awaiting_retry += 1
        return None

    # -- request lifecycle hooks -------------------------------------------------

    def shed_request(self, req, now: float) -> None:
        req.shed = True
        self.shed += 1
        self._tenant_shed[req.tenant] = self._tenant_shed.get(req.tenant, 0) + 1
        self._abort_time.pop(req.index, None)

    def absorb_retry(self, req, now: float, tenants) -> None:
        """A backoff expired: re-queue the request (or shed past deadline)."""
        self.awaiting_retry -= 1
        if (self.retry.deadline is not None
                and now - req.arrival >= self.retry.deadline):
            self.shed_request(req, now)
            return
        queue = tenants[req.tenant].queue
        if not queue or req.arrival <= queue[0].arrival:
            queue.appendleft(req)
        elif req.arrival >= queue[-1].arrival:
            queue.append(req)
        else:
            items = sorted([*queue, req], key=lambda r: r.arrival)
            queue.clear()
            queue.extend(items)
        self.queued += 1

    def shed_expired(self, tenants, now: float) -> None:
        """Shed queue heads whose deadline expired (queues are arrival-sorted)."""
        deadline = self.retry.deadline
        if deadline is None:
            return
        for tenant in tenants.values():
            queue = tenant.queue
            while queue and now - queue[0].arrival >= deadline:
                self.queued -= 1
                self.shed_request(queue.popleft(), now)

    def note_dispatch(self, size: int, degraded: bool, tenant: str) -> None:
        self.queued -= size
        self.on_device += size
        if degraded:
            self._degraded_requests[tenant] = (
                self._degraded_requests.get(tenant, 0) + size)

    def complete(self, label: str, now: float, by_label) -> None:
        """A slot's free event fired: finalize its batch if genuinely done."""
        slot = by_label[label]
        inflight = slot.inflight
        if inflight is None or inflight[0] > now:
            return  # stale event (aborted batch, or stall-delayed finish)
        _, batch = inflight
        slot.inflight = None
        self.on_device -= len(batch)
        self.completed += len(batch)
        for req in batch:
            aborted_at = self._abort_time.pop(req.index, None)
            if aborted_at is not None:
                self.recovery_samples.append(req.finish - aborted_at)

    def update_degraded(self, tenant, now: float) -> None:
        """Enter/exit degraded mode on queue-pressure hysteresis."""
        mode = tenant.mode
        if mode is None or not tenant.queue:
            return
        oldest_wait = now - tenant.queue[0].arrival
        if not tenant.degraded and oldest_wait >= mode.enter_wait:
            tenant.degraded = True
            tenant.slot_cost.extra_scale = mode.latency_factor
            self._degraded_since[tenant.name] = now
            self._degraded_activations[tenant.name] = (
                self._degraded_activations.get(tenant.name, 0) + 1)
        elif tenant.degraded and oldest_wait <= mode.exit_wait:
            tenant.degraded = False
            tenant.slot_cost.extra_scale = 1.0
            start = self._degraded_since.pop(tenant.name, now)
            self._degraded_time[tenant.name] = (
                self._degraded_time.get(tenant.name, 0.0) + (now - start))

    # -- reporting ---------------------------------------------------------------

    def build_stats(self, makespan: float, requests, tenants) -> FaultStats:
        """Collapse the run's fault bookkeeping into a :class:`FaultStats`.

        ``tenants`` maps tenant name to its :class:`DegradedMode` (or
        ``None``) and SLO, as ``(mode, slo)`` pairs.
        """
        # Close windows still open at drain time.
        down_windows = {k: list(v) for k, v in self._down_windows.items()}
        for label, since in self._down_since.items():
            down_windows.setdefault(label, []).append((since, makespan))
        for name, since in self._degraded_since.items():
            self._degraded_time[name] = (
                self._degraded_time.get(name, 0.0) + (makespan - since))
        self._degraded_since.clear()

        throttle_windows: dict[str, list[tuple[float, float, float]]] = {}
        for when, _, kind, slot, arg in self.happenings:
            if kind != "throttle-on":
                continue
            until = next((w for w, _, k, s, a in self.happenings
                          if k == "throttle-off" and s == slot and a == arg
                          and w > when), makespan)
            start = min(when, makespan)
            end = min(until, makespan)
            if end > start:
                throttle_windows.setdefault(slot, []).append((start, end, arg))

        devices: dict[str, DeviceFaultStats] = {}
        labels = (set(down_windows) | set(throttle_windows)
                  | set(self._stall_time) | set(self._aborted_batches))
        for label in sorted(labels):
            windows = down_windows.get(label, [])
            throttles = throttle_windows.get(label, [])
            devices[label] = DeviceFaultStats(
                slot=label,
                device=self._slot_device.get(label, label),
                downtime=sum(b - a for a, b in windows),
                down_windows=windows,
                throttle_time=sum(b - a for a, b, _ in throttles),
                throttle_windows=throttles,
                stall_time=self._stall_time.get(label, 0.0),
                aborted_batches=self._aborted_batches.get(label, 0),
                aborted_requests=self._aborted_requests.get(label, 0),
            )

        retry_histogram: dict[int, int] = {}
        for req in requests:
            if req.retries:
                retry_histogram[req.retries] = (
                    retry_histogram.get(req.retries, 0) + 1)

        tenant_stats: dict[str, TenantFaultStats] = {}
        names = (set(tenants) | set(self._tenant_shed)
                 | set(self._degraded_requests))
        for name in sorted(names):
            mode, slo = tenants.get(name, (None, None))
            attainment = None
            if slo is not None:
                degraded = [r.latency for r in requests
                            if r.tenant == name and r.degraded and not r.shed]
                if degraded:
                    attainment = float(np.mean(np.array(degraded) <= slo))
            tenant_stats[name] = TenantFaultStats(
                tenant=name,
                shed=self._tenant_shed.get(name, 0),
                degraded_available=mode is not None,
                degraded_requests=self._degraded_requests.get(name, 0),
                degraded_slo_attainment=attainment,
                degraded_time=self._degraded_time.get(name, 0.0),
                degraded_activations=self._degraded_activations.get(name, 0),
                accuracy_cost=mode.accuracy_cost if mode is not None else None,
            )

        samples = np.array(self.recovery_samples, dtype=np.float64)
        p50, p99 = ((float(np.percentile(samples, 50)),
                     float(np.percentile(samples, 99)))
                    if samples.size else (0.0, 0.0))
        return FaultStats(
            plan_events=len(self.plan.events),
            issued=self.completed + self.shed,
            completed=self.completed,
            shed=self.shed,
            retries=self.retries,
            retry_histogram=dict(sorted(retry_histogram.items())),
            recovery_p50=p50,
            recovery_p99=p99,
            devices=devices,
            tenants=tenant_stats,
        )


# ---------------------------------------------------------------------------
# Named chaos scenarios
# ---------------------------------------------------------------------------


def _single_failure(slots, horizon, rng) -> FaultPlan:
    """The fastest device dies a quarter into the run, recovers at 60%."""
    slot = slots[0]
    return FaultPlan((
        DeviceDown(slot, 0.25 * horizon),
        DeviceRecover(slot, 0.60 * horizon),
    ))


def _rolling_restart(slots, horizon, rng) -> FaultPlan:
    """Every slot restarts once, staggered so the pool never fully drains."""
    width = 0.5 * horizon / max(1, len(slots))
    events: list[FaultEvent] = []
    for i, slot in enumerate(slots):
        start = 0.2 * horizon + i * width * 1.1
        events.append(DeviceDown(slot, start))
        events.append(DeviceRecover(slot, start + width))
    return FaultPlan(tuple(events))


def _thermal_brownout(slots, horizon, rng) -> FaultPlan:
    """Every device throttles 2.5x through the middle of the run."""
    return FaultPlan(tuple(
        ThermalThrottle(slot, 0.30 * horizon, 0.75 * horizon, 2.5)
        for slot in slots
    ))


def _flaky_device(slots, horizon, rng) -> FaultPlan:
    """The last slot flaps down/up eight times with jittered stalls between."""
    slot = slots[-1]
    events: list[FaultEvent] = []
    period = horizon / 10.0
    for i in range(8):
        start = (0.5 + i) * period * (1.0 + 0.05 * float(rng.random()))
        events.append(DeviceDown(slot, start))
        events.append(DeviceRecover(slot, start + 0.3 * period))
        events.append(TransientStall(slot, start + 0.45 * period,
                                     0.05 * period))
    return FaultPlan(tuple(events))


CHAOS_SCENARIOS = {
    "single-failure": _single_failure,
    "rolling-restart": _rolling_restart,
    "thermal-brownout": _thermal_brownout,
    "flaky-device": _flaky_device,
}

CHAOS_SCENARIO_NAMES: tuple[str, ...] = tuple(CHAOS_SCENARIOS)


def chaos_plan(name: str, devices: Sequence[str], horizon: float,
               seed: int = 0) -> FaultPlan:
    """Build a named chaos scenario's :class:`FaultPlan` for a device pool.

    ``devices`` are the device names exactly as passed to
    :func:`~repro.serving.simulator.simulate` (repeats expand to slots);
    ``horizon`` is the expected run length in seconds (for an open-loop
    run, ``n_requests / arrival_rate``). Deterministic in ``seed``.
    """
    if name not in CHAOS_SCENARIOS:
        raise FaultPlanError(
            f"unknown chaos scenario {name!r}; "
            f"available: {', '.join(CHAOS_SCENARIO_NAMES)}")
    if horizon <= 0:
        raise FaultPlanError(f"chaos horizon must be positive, got {horizon}")
    from repro.serving.simulator import slot_labels

    slots = slot_labels(tuple(devices))
    if not slots:
        raise FaultPlanError("chaos scenario needs at least one device")
    rng = np.random.default_rng(seed)
    return CHAOS_SCENARIOS[name](slots, horizon, rng)
