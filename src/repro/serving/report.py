"""Formatted throughput–tail-latency reports for serving simulations."""

from __future__ import annotations

from repro.profiling.report import format_seconds, format_table
from repro.serving.simulator import ServingReport


def _batch_sizes_summary(report: ServingReport) -> str:
    parts = []
    for slot, sizes in sorted(report.batch_sizes_used().items()):
        if not sizes:
            parts.append(f"{slot}: -")
        elif len(sizes) <= 4:
            parts.append(f"{slot}: {','.join(map(str, sizes))}")
        else:
            parts.append(f"{slot}: {sizes[0]}..{sizes[-1]} ({len(sizes)} sizes)")
    return "; ".join(parts)


def format_policy_comparison(
    reports: dict[str, ServingReport], slo: float | None = None
) -> str:
    """One row per policy: throughput, tail latency, SLO attainment, batches."""
    headers = ["policy", "throughput", "p50 latency", "p99 latency",
               "formation wait"]
    if slo is not None:
        headers.append(f"SLO<= {format_seconds(slo)}")
    headers.append("batch sizes")
    rows = []
    for label, report in reports.items():
        row = [
            label,
            f"{report.throughput:,.0f} req/s",
            format_seconds(report.p50_latency),
            format_seconds(report.p99_latency),
            format_seconds(report.mean_formation_wait),
        ]
        if slo is not None:
            row.append(f"{report.slo_attainment(slo):.1%}")
        row.append(_batch_sizes_summary(report))
        rows.append(row)
    return format_table(headers, rows, title="Serving policies: throughput vs tail latency")


def format_tenant_breakdown(report: ServingReport) -> str:
    """One row per tenant: traffic share, tail latency, SLO attainment."""
    rows = []
    for name, stats in report.tenant_stats.items():
        rows.append([
            name,
            stats.n_requests,
            f"{stats.throughput:,.0f} req/s",
            format_seconds(stats.p50_latency),
            format_seconds(stats.p99_latency),
            "-" if stats.slo is None else format_seconds(stats.slo),
            "-" if stats.slo_attainment is None else f"{stats.slo_attainment:.1%}",
        ])
    return format_table(
        ["tenant", "requests", "throughput", "p50 latency", "p99 latency",
         "SLO", "attainment"],
        rows, title="Per-tenant latency / SLO breakdown")


def format_finetune_breakdown(report: ServingReport) -> str:
    """One row per background fine-tuning job: share, step time, progress."""
    rows = []
    for name, stats in report.finetune_stats.items():
        step_times = list(stats.step_times.values())
        mean_step = sum(step_times) / len(step_times) if step_times else 0.0
        rows.append([
            name,
            f"{stats.share:.0%}",
            stats.optimizer,
            format_seconds(mean_step),
            f"{stats.steps_completed:,.0f}",
            f"{stats.samples_processed:,.0f}",
            f"{stats.steps_per_second:,.1f}/s",
        ])
    return format_table(
        ["job", "share", "optimizer", "step time", "steps", "samples", "rate"],
        rows, title="Background fine-tuning jobs (stream shares)")


def mixed_serving_summary(report: ServingReport) -> str:
    """Full ``mmbench serve --mix`` report: tenant + device breakdowns."""
    rate = ("closed batch (all at t=0)" if report.arrival_rate is None
            else f"~{report.arrival_rate:g} req/s aggregate")
    lines = [
        f"mixed serving: {report.n_requests} requests over "
        f"{len(report.tenant_stats)} tenants, {rate}, router={report.router}",
        f"makespan {format_seconds(report.makespan)}, "
        f"{report.throughput:,.0f} req/s served",
        "",
        format_tenant_breakdown(report),
        "",
        format_device_breakdown({report.policy: report}),
    ]
    if report.finetune_stats:
        lines += [
            "",
            f"inference slowed {report.inference_slowdown:.2f}x by background "
            "training shares",
            format_finetune_breakdown(report),
        ]
    return "\n".join(lines)


def format_device_breakdown(reports: dict[str, ServingReport]) -> str:
    """Per-(policy, device slot) routing and utilization breakdown."""
    rows = []
    for label, report in reports.items():
        for slot, stats in sorted(report.device_stats.items()):
            rows.append([
                label, slot, stats.batches, stats.requests,
                f"{stats.mean_batch:.1f}", f"{stats.utilization:.0%}",
            ])
    return format_table(
        ["policy", "device", "batches", "requests", "mean batch", "utilization"],
        rows, title="Per-device routing breakdown")


def serving_summary(reports: dict[str, ServingReport], slo: float | None = None) -> str:
    """Full ``mmbench serve`` report: comparison table + device breakdown."""
    first = next(iter(reports.values()))
    rate = ("closed batch (all at t=0)" if first.arrival_rate is None
            else f"Poisson {first.arrival_rate:g} req/s")
    lines = [
        f"open-loop serving: {first.n_requests} requests, {rate}, "
        f"router={first.router}",
        "",
        format_policy_comparison(reports, slo=slo),
        "",
        format_device_breakdown(reports),
    ]
    return "\n".join(lines)
