"""Formatted throughput–tail-latency reports for serving simulations."""

from __future__ import annotations

from repro.profiling.report import format_seconds, format_table
from repro.serving.simulator import ServingReport


def _batch_sizes_summary(report: ServingReport) -> str:
    parts = []
    for slot, sizes in sorted(report.batch_sizes_used().items()):
        if not sizes:
            parts.append(f"{slot}: -")
        elif len(sizes) <= 4:
            parts.append(f"{slot}: {','.join(map(str, sizes))}")
        else:
            parts.append(f"{slot}: {sizes[0]}..{sizes[-1]} ({len(sizes)} sizes)")
    return "; ".join(parts)


def format_policy_comparison(
    reports: dict[str, ServingReport], slo: float | None = None
) -> str:
    """One row per policy: throughput, tail latency, SLO attainment, batches."""
    headers = ["policy", "throughput", "p50 latency", "p99 latency",
               "formation wait"]
    if slo is not None:
        headers.append(f"SLO<= {format_seconds(slo)}")
    headers.append("batch sizes")
    rows = []
    for label, report in reports.items():
        row = [
            label,
            f"{report.throughput:,.0f} req/s",
            format_seconds(report.p50_latency),
            format_seconds(report.p99_latency),
            format_seconds(report.mean_formation_wait),
        ]
        if slo is not None:
            row.append(f"{report.slo_attainment(slo):.1%}")
        row.append(_batch_sizes_summary(report))
        rows.append(row)
    return format_table(headers, rows, title="Serving policies: throughput vs tail latency")


def format_tenant_breakdown(report: ServingReport) -> str:
    """One row per tenant: traffic share, tail latency, SLO attainment."""
    rows = []
    for name, stats in report.tenant_stats.items():
        rows.append([
            name,
            stats.n_requests,
            f"{stats.throughput:,.0f} req/s",
            format_seconds(stats.p50_latency),
            format_seconds(stats.p99_latency),
            "-" if stats.slo is None else format_seconds(stats.slo),
            "-" if stats.slo_attainment is None else f"{stats.slo_attainment:.1%}",
        ])
    return format_table(
        ["tenant", "requests", "throughput", "p50 latency", "p99 latency",
         "SLO", "attainment"],
        rows, title="Per-tenant latency / SLO breakdown")


def format_finetune_breakdown(report: ServingReport) -> str:
    """One row per background fine-tuning job: share, step time, progress."""
    rows = []
    for name, stats in report.finetune_stats.items():
        step_times = list(stats.step_times.values())
        mean_step = sum(step_times) / len(step_times) if step_times else 0.0
        rows.append([
            name,
            f"{stats.share:.0%}",
            stats.optimizer,
            format_seconds(mean_step),
            f"{stats.steps_completed:,.0f}",
            f"{stats.samples_processed:,.0f}",
            f"{stats.steps_per_second:,.1f}/s",
        ])
    return format_table(
        ["job", "share", "optimizer", "step time", "steps", "samples", "rate"],
        rows, title="Background fine-tuning jobs (stream shares)")


def format_fault_stats(report: ServingReport) -> str:
    """Fault-injection breakdown: per-device windows, retries, degradation."""
    stats = report.fault_stats
    if stats is None:
        return "no fault plan was active"
    lines = [
        f"faults: {stats.plan_events} plan events; "
        f"{stats.completed:,} completed + {stats.shed:,} shed "
        f"= {stats.issued:,} issued (conserved)",
        f"retries {stats.retries:,}"
        + (f" (per-request histogram {stats.retry_histogram})"
           if stats.retry_histogram else "")
        + (f", recovery p50 {format_seconds(stats.recovery_p50)} / "
           f"p99 {format_seconds(stats.recovery_p99)}"
           if stats.recovery_p50 > 0 else ""),
    ]
    if stats.devices:
        rows = [
            [
                d.slot,
                format_seconds(d.downtime) if d.downtime else "-",
                str(len(d.down_windows)) if d.down_windows else "-",
                format_seconds(d.throttle_time) if d.throttle_time else "-",
                format_seconds(d.stall_time) if d.stall_time else "-",
                d.aborted_batches or "-",
                d.aborted_requests or "-",
            ]
            for d in stats.devices.values()
        ]
        lines += ["", format_table(
            ["device", "downtime", "outages", "throttled", "stalled",
             "aborted batches", "aborted requests"],
            rows, title="Per-device fault windows")]
    degraded = {name: t for name, t in stats.tenants.items()
                if t.degraded_requests or t.shed or t.degraded_available}
    if degraded:
        rows = [
            [
                name,
                t.shed or "-",
                t.degraded_requests or "-",
                ("-" if t.degraded_slo_attainment is None
                 else f"{t.degraded_slo_attainment:.1%}"),
                format_seconds(t.degraded_time) if t.degraded_time else "-",
                t.degraded_activations or "-",
                ("-" if t.accuracy_cost is None
                 else f"{t.accuracy_cost:+.4f}"),
            ]
            for name, t in degraded.items()
        ]
        lines += ["", format_table(
            ["tenant", "shed", "degraded reqs", "degraded SLO", "degraded time",
             "activations", "accuracy cost"],
            rows, title="Per-tenant shedding / degraded mode")]
    return "\n".join(lines)


def mixed_serving_summary(report: ServingReport) -> str:
    """Full ``mmbench serve --mix`` report: tenant + device breakdowns."""
    rate = ("closed batch (all at t=0)" if report.arrival_rate is None
            else f"~{report.arrival_rate:g} req/s aggregate")
    lines = [
        f"mixed serving: {report.n_requests} requests over "
        f"{len(report.tenant_stats)} tenants, {rate}, router={report.router}",
        f"makespan {format_seconds(report.makespan)}, "
        f"{report.throughput:,.0f} req/s served",
        "",
        format_tenant_breakdown(report),
        "",
        format_device_breakdown({report.policy: report}),
    ]
    if report.finetune_stats:
        lines += [
            "",
            f"inference slowed {report.inference_slowdown:.2f}x by background "
            "training shares",
            format_finetune_breakdown(report),
        ]
        faulted = [s for s in report.finetune_stats.values()
                   if s.restarts or s.lost_steps]
        if faulted:
            lines += [
                "checkpoint/restart: " + "; ".join(
                    f"{s.name}: {s.restarts} restarts, "
                    f"{s.lost_steps:,.0f} steps lost"
                    for s in faulted),
            ]
    if report.fault_stats is not None:
        lines += ["", format_fault_stats(report)]
    return "\n".join(lines)


def fleet_summary(report) -> str:
    """Full ``mmbench serve --fleet`` report: tenants, groups, scaling.

    ``report`` is a :class:`~repro.serving.fleet.FleetReport`; the
    tenant table is shared with the classic mixed report (both expose
    ``tenant_stats``).
    """
    rate = ("closed batch (all at t=0)" if report.arrival_rate is None
            else f"~{report.arrival_rate:g} req/s aggregate")
    total_replicas = sum(s.peak_replicas for s in report.group_stats.values())
    lines = [
        f"fleet serving: {report.n_requests:,} requests over "
        f"{len(report.tenant_stats)} tenants, {rate}, "
        f"{len(report.group_stats)} groups / {total_replicas} replicas (peak)",
        f"makespan {format_seconds(report.makespan)}, "
        f"{report.throughput:,.0f} req/s served; "
        f"{report.completed:,} completed = {report.n_requests:,} "
        f"issued (conserved)",
        "",
        format_tenant_breakdown(report),
        "",
    ]
    rows = []
    for name, stats in report.group_stats.items():
        hop = (f"{stats.hop_batches} ({format_seconds(stats.hop_time)})"
               if stats.hop_batches else "-")
        rows.append([
            name,
            f"{stats.replicas}/{stats.peak_replicas}",
            f"{stats.mean_replicas:.1f}",
            stats.batches,
            stats.requests,
            f"{stats.mean_batch:.1f}",
            f"{stats.utilization:.0%}",
            hop,
        ])
    lines.append(format_table(
        ["group", "replicas (end/peak)", "mean", "batches", "requests",
         "mean batch", "utilization", "hops"],
        rows, title="Per-group fleet breakdown"))
    if report.scaling_events:
        out = sum(1 for e in report.scaling_events if e.after > e.before)
        lines += [
            "",
            f"autoscaling: {len(report.scaling_events)} actions "
            f"({out} out, {len(report.scaling_events) - out} in); last: "
            + "; ".join(
                f"{e.group} {e.before}->{e.after} @ {format_seconds(e.time)}"
                for e in report.scaling_events[-3:]),
        ]
    return "\n".join(lines)


def format_device_breakdown(reports: dict[str, ServingReport]) -> str:
    """Per-(policy, device slot) routing and utilization breakdown."""
    rows = []
    for label, report in reports.items():
        for slot, stats in sorted(report.device_stats.items()):
            rows.append([
                label, slot, stats.batches, stats.requests,
                f"{stats.mean_batch:.1f}", f"{stats.utilization:.0%}",
            ])
    return format_table(
        ["policy", "device", "batches", "requests", "mean batch", "utilization"],
        rows, title="Per-device routing breakdown")


def serving_summary(reports: dict[str, ServingReport], slo: float | None = None) -> str:
    """Full ``mmbench serve`` report: comparison table + device breakdown."""
    first = next(iter(reports.values()))
    rate = ("closed batch (all at t=0)" if first.arrival_rate is None
            else f"Poisson {first.arrival_rate:g} req/s")
    lines = [
        f"open-loop serving: {first.n_requests} requests, {rate}, "
        f"router={first.router}",
        "",
        format_policy_comparison(reports, slo=slo),
        "",
        format_device_breakdown(reports),
    ]
    for label, report in reports.items():
        if report.fault_stats is not None:
            lines += ["", f"[{label}] " + format_fault_stats(report)]
    return "\n".join(lines)
