"""Named multi-tenant traffic scenarios for the serving simulator.

A scenario answers two questions about a workload mix: *which tenant does
each request belong to* (the mix shape) and *when do requests arrive*
(the arrival process). The library covers the traffic patterns a
production fleet actually sees:

================  ============================  ==============================
scenario          mix shape                     arrival process
================  ============================  ==============================
``uniform``       tenant weights as given       homogeneous Poisson (or closed)
``heavy-head``    Zipf over the tenant order    homogeneous Poisson (or closed)
``diurnal``       tenant weights as given       sinusoidal rate ramp (thinned
                                                Poisson, two cycles per run)
``bursty``        tenant weights as given       on/off bursts: 8x-rate bursts
                                                of ~64 requests, idle gaps
                                                restoring the mean rate
================  ============================  ==============================

Every generator is vectorized (a million-request mix costs milliseconds)
and deterministic in ``seed``. ``arrival_rate=None`` degrades ``uniform``
and ``heavy-head`` to the paper's closed setting (all requests at t=0);
the time-varying scenarios require a rate.

Orthogonal to the traffic mixes, this module also re-exports the named
**chaos scenarios** from :mod:`repro.serving.faults` — device-fault
timelines that compose with any traffic mix via
``simulate_mixed(faults=chaos_plan(name, devices, horizon))``:

==================  =========================================================
chaos scenario      fault shape
==================  =========================================================
``single-failure``  the first (fastest) slot dies at 25% of the run,
                    recovers at 60%
``rolling-restart``  every slot restarts once, staggered so the pool never
                    fully drains
``thermal-brownout``  every device throttles 2.5x through the middle half
                    of the run
``flaky-device``    the last slot flaps down/up eight times with jittered
                    transient stalls between
==================  =========================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.serving.faults import CHAOS_SCENARIO_NAMES, CHAOS_SCENARIOS, chaos_plan
from repro.serving.request import Request, RequestColumns, sort_request_columns
from repro.serving.simulator import TenantSpec

__all__ = [
    "CHAOS_SCENARIO_NAMES",
    "CHAOS_SCENARIOS",
    "SCENARIO_NAMES",
    "SCENARIOS",
    "Scenario",
    "chaos_plan",
    "get_scenario",
    "make_tenants",
    "scenario_columns",
    "scenario_requests",
]

# Shape knobs, fixed so scenario names mean the same thing everywhere.
_ZIPF_EXPONENT = 1.0  # heavy-head: weight_i ~ 1 / rank^s
_DIURNAL_AMPLITUDE = 0.8  # rate swings between 0.2x and 1.8x the mean
_DIURNAL_CYCLES = 2.0  # full day-night cycles per simulated run
_BURST_FACTOR = 8.0  # in-burst rate relative to the mean rate
_MEAN_BURST = 64.0  # mean requests per burst


def _weight_probs(tenants: Sequence[TenantSpec]) -> np.ndarray:
    weights = np.array([spec.weight for spec in tenants], dtype=np.float64)
    return weights / weights.sum()


def _zipf_probs(tenants: Sequence[TenantSpec]) -> np.ndarray:
    ranks = np.arange(1, len(tenants) + 1, dtype=np.float64)
    weights = _weight_probs(tenants) * ranks ** -_ZIPF_EXPONENT
    return weights / weights.sum()


def _poisson(n: int, rate: float | None, rng: np.random.Generator) -> np.ndarray:
    if rate is None:
        return np.zeros(n)
    return np.cumsum(rng.exponential(1.0 / rate, size=n))


def _diurnal(n: int, rate: float | None, rng: np.random.Generator) -> np.ndarray:
    """Nonhomogeneous Poisson with a sinusoidal rate, by thinning.

    The mean rate is ``rate``; the instantaneous rate ramps between
    ``(1 - amp)`` and ``(1 + amp)`` times that over ``_DIURNAL_CYCLES``
    cycles of the run's expected span, starting at the trough (ramp up,
    peak, ramp down — a day of traffic in miniature).
    """
    period = (n / rate) / _DIURNAL_CYCLES
    peak = rate * (1.0 + _DIURNAL_AMPLITUDE)
    out = np.empty(n)
    accepted = 0
    t = 0.0
    while accepted < n:
        chunk = max(int(1.5 * (n - accepted) * (peak / rate)), 64)
        candidates = t + np.cumsum(rng.exponential(1.0 / peak, size=chunk))
        instantaneous = rate * (
            1.0 - _DIURNAL_AMPLITUDE * np.cos(2.0 * np.pi * candidates / period)
        )
        kept = candidates[rng.random(chunk) * peak < instantaneous]
        take = min(kept.size, n - accepted)
        out[accepted:accepted + take] = kept[:take]
        accepted += take
        t = float(candidates[-1])
    return out


def _bursty(n: int, rate: float | None, rng: np.random.Generator) -> np.ndarray:
    """On/off bursts: short in-burst gaps, long idle gaps between bursts.

    Each request independently starts a new burst with probability
    ``1 / _MEAN_BURST`` (geometric burst sizes); in-burst interarrivals
    run at ``_BURST_FACTOR`` times the mean rate and the off gaps are
    sized so the long-run mean rate stays ``rate``.
    """
    burst_rate = _BURST_FACTOR * rate
    gaps = rng.exponential(1.0 / burst_rate, size=n)
    starts = rng.random(n) < 1.0 / _MEAN_BURST
    starts[0] = False  # the stream opens mid-burst at t ~ 0
    off_mean = _MEAN_BURST * (1.0 / rate - 1.0 / burst_rate)
    gaps = gaps + np.where(starts, rng.exponential(off_mean, size=n), 0.0)
    return np.cumsum(gaps)


@dataclass(frozen=True)
class Scenario:
    """A named traffic mix: tenant-share shape + arrival process."""

    name: str
    description: str
    tenant_probs: Callable[[Sequence[TenantSpec]], np.ndarray]
    arrivals: Callable[[int, float | None, np.random.Generator], np.ndarray]
    needs_rate: bool = False


SCENARIOS: dict[str, Scenario] = {
    s.name: s
    for s in (
        Scenario("uniform", "tenant weights as given, Poisson arrivals",
                 _weight_probs, _poisson),
        Scenario("heavy-head", "Zipf-skewed mix (first tenant dominates)",
                 _zipf_probs, _poisson),
        Scenario("diurnal", "sinusoidal day/night rate ramp",
                 _weight_probs, _diurnal, needs_rate=True),
        Scenario("bursty", "on/off bursts at 8x the mean rate",
                 _weight_probs, _bursty, needs_rate=True),
        # The inference traffic itself is uniform Poisson; what makes the
        # scenario is the background fine-tuning jobs holding stream
        # shares of every device (built by make_finetune_jobs and passed
        # to simulate_mixed(finetune=...); the CLI's --mix finetune path
        # does both).
        Scenario("finetune", "uniform traffic + background fine-tuning jobs",
                 _weight_probs, _poisson),
    )
}

SCENARIO_NAMES: tuple[str, ...] = tuple(SCENARIOS)


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {SCENARIO_NAMES}") from None


def scenario_columns(
    scenario: str,
    tenants: Sequence[TenantSpec],
    n_requests: int,
    arrival_rate: float | None = None,
    seed: int = 0,
) -> RequestColumns:
    """Generate a scenario's request stream as columnar arrays.

    This is the fast path: the fleet simulator consumes the columns
    directly, and the sort is a no-op for the generators that already
    emit non-decreasing arrivals (everything but ``bursty``'s ties is a
    cumulative sum). :func:`scenario_requests` materializes the same
    stream as ``Request`` objects for the classic loop.
    """
    if n_requests < 0:
        raise ValueError(f"n_requests must be non-negative, got {n_requests}")
    if not tenants:
        raise ValueError("need at least one tenant")
    spec = get_scenario(scenario)
    if spec.needs_rate and arrival_rate is None:
        raise ValueError(f"scenario {scenario!r} needs an arrival rate "
                         "(its traffic shape is time-varying)")
    if arrival_rate is not None and arrival_rate <= 0:
        raise ValueError("arrival_rate must be positive")
    names = [t.name for t in tenants]
    if n_requests == 0:
        return RequestColumns(np.empty(0), np.empty(0, dtype=np.int64), tuple(names))
    rng = np.random.default_rng(seed)
    codes = rng.choice(len(tenants), size=n_requests, p=spec.tenant_probs(tenants))
    arrivals = spec.arrivals(n_requests, arrival_rate, rng)
    return sort_request_columns(arrivals, codes, names)


def scenario_requests(
    scenario: str,
    tenants: Sequence[TenantSpec],
    n_requests: int,
    arrival_rate: float | None = None,
    seed: int = 0,
) -> list[Request]:
    """Generate the tagged, arrival-sorted request stream of a scenario."""
    return scenario_columns(
        scenario, tenants, n_requests, arrival_rate=arrival_rate, seed=seed,
    ).to_requests()


def make_tenants(
    workloads: Sequence[str],
    policy_factory: Callable[[str], "object"] | None = None,
    slo: float | None = 50e-3,
    weights: Sequence[float] | None = None,
    seed: int = 0,
    backend: str = "meta",
) -> list[TenantSpec]:
    """Build one profiled :class:`TenantSpec` per registry workload.

    ``policy_factory(workload)`` supplies each tenant's batching policy
    (default: an SLO-adaptive policy at ``slo``); every tenant gets its
    own :class:`~repro.serving.costmodel.ProfiledCostModel`, so placement
    and batching decisions see that workload's latency curves.
    """
    from repro.serving.costmodel import ProfiledCostModel
    from repro.serving.policies import AdaptiveSLOPolicy

    if weights is not None and len(weights) != len(workloads):
        raise ValueError("weights must be parallel to workloads")
    if policy_factory is None:
        if slo is None:
            raise ValueError("default adaptive policies need an slo")
        policy_factory = lambda _w: AdaptiveSLOPolicy(slo)  # noqa: E731
    return [
        TenantSpec(
            name=workload,
            cost=ProfiledCostModel(workload, seed=seed, backend=backend),
            policy=policy_factory(workload),
            slo=slo,
            weight=1.0 if weights is None else float(weights[i]),
        )
        for i, workload in enumerate(workloads)
    ]
