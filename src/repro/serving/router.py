"""Batch placement across heterogeneous devices.

When several devices are idle at once, the router decides which one the
next batch is formed for. Devices are heterogeneous analytical models
(a 2080Ti server GPU next to a Jetson Nano differs by ~50x in peak
FLOPs), so placement order matters: the fast device should absorb the
bulk of the stream and the slow one mop up overflow.
"""

from __future__ import annotations


class Router:
    """Orders idle device slots; subclasses override :meth:`rank`."""

    name: str = "router"

    def rank(self, idle: list[str], queue_len: int, cost) -> list[str]:
        """Return idle slots in the order batches should be offered to them.

        ``idle`` holds *slot* labels; ``cost.latency(slot, k)`` prices a
        batch on the device behind a slot.
        """
        raise NotImplementedError

    def note_dispatch(self, slot: str) -> None:
        """Called after a batch lands on ``slot``; stateful routers advance here.

        Subclasses overriding this must call ``super().note_dispatch(slot)``
        first: dispatching onto a slot the router was told is down is a
        simulator bug, and the base class turns it into a loud error
        instead of silently corrupting routing state.
        """
        if slot in getattr(self, "_down_slots", ()):
            raise RuntimeError(
                f"dispatch recorded on down slot {slot!r}; "
                "the event loop must exclude down slots before ranking")

    # -- fault awareness (driven by the fault runtime) --------------------------

    def note_down(self, slot: str) -> None:
        """``slot`` left the pool; it must never be ranked until it recovers."""
        down = getattr(self, "_down_slots", None)
        if down is None:
            down = self._down_slots = set()
        down.add(slot)

    def note_recover(self, slot: str) -> None:
        """``slot`` rejoined the pool; ranking may consider it again."""
        getattr(self, "_down_slots", set()).discard(slot)

    @property
    def down_slots(self) -> frozenset[str]:
        """Slots the router currently believes are down."""
        return frozenset(getattr(self, "_down_slots", ()))

    def _exclude_down(self, idle: list[str]) -> list[str]:
        """Defensively drop down slots from a candidate list."""
        down = getattr(self, "_down_slots", None)
        if down:
            return [s for s in idle if s not in down]
        return idle


class EarliestFinishRouter(Router):
    """Prefer the device with the best amortized per-request service time.

    Ranks idle devices by ``latency(k)/k`` at the batch size the queue
    could fill right now — effectively earliest-finish-time placement for
    the work at hand. Deterministic tie-break on slot label.
    """

    name = "earliest-finish"

    def __init__(self, probe_cap: int = 128):
        self.probe_cap = probe_cap

    def rank(self, idle, queue_len, cost):
        idle = self._exclude_down(idle)
        probe = max(1, min(queue_len, self.probe_cap))
        return sorted(idle, key=lambda s: (cost.latency(s, probe) / probe, s))


class RoundRobinRouter(Router):
    """Rotate through devices regardless of speed (baseline placement).

    The rotation advances per *dispatch* (via :meth:`note_dispatch`), not
    per ranking call — offers where the policy holds, or where only one
    device is idle, must not skew the rotation.
    """

    name = "round-robin"

    def __init__(self):
        self._next = 0

    def rank(self, idle, queue_len, cost):
        ordered = sorted(self._exclude_down(idle))
        if not ordered:
            return ordered
        pivot = self._next % len(ordered)
        return ordered[pivot:] + ordered[:pivot]

    def note_dispatch(self, slot):
        super().note_dispatch(slot)
        self._next += 1


def make_router(name: str) -> Router:
    """Build a router from its CLI name."""
    if name in ("earliest-finish", "eft"):
        return EarliestFinishRouter()
    if name in ("round-robin", "rr"):
        return RoundRobinRouter()
    raise KeyError(f"unknown router {name!r}; available: earliest-finish, round-robin")
