"""Batch placement across heterogeneous devices.

When several devices are idle at once, the router decides which one the
next batch is formed for. Devices are heterogeneous analytical models
(a 2080Ti server GPU next to a Jetson Nano differs by ~50x in peak
FLOPs), so placement order matters: the fast device should absorb the
bulk of the stream and the slow one mop up overflow.
"""

from __future__ import annotations


class RouterScaleError(RuntimeError):
    """The per-request router was asked to rank a fleet-sized slot pool.

    Ranking is O(idle · cost-model calls) per offer; past a few hundred
    idle slots the classic event loop degrades quadratically. The fix is
    to group homogeneous replicas and simulate with
    :func:`repro.serving.fleet.simulate_fleet`, which routes per *group*
    instead of per slot.
    """


class Router:
    """Orders idle device slots; subclasses override :meth:`rank`."""

    name: str = "router"

    def rank(self, idle: list[str], queue_len: int, cost) -> list[str]:
        """Return idle slots in the order batches should be offered to them.

        ``idle`` holds *slot* labels; ``cost.latency(slot, k)`` prices a
        batch on the device behind a slot.
        """
        raise NotImplementedError

    def note_dispatch(self, slot: str) -> None:
        """Called after a batch lands on ``slot``; stateful routers advance here.

        Subclasses overriding this must call ``super().note_dispatch(slot)``
        first: dispatching onto a slot the router was told is down is a
        simulator bug, and the base class turns it into a loud error
        instead of silently corrupting routing state.
        """
        if slot in getattr(self, "_down_slots", ()):
            raise RuntimeError(
                f"dispatch recorded on down slot {slot!r}; "
                "the event loop must exclude down slots before ranking")

    # -- fault awareness (driven by the fault runtime) --------------------------

    def note_down(self, slot: str) -> None:
        """``slot`` left the pool; it must never be ranked until it recovers."""
        down = getattr(self, "_down_slots", None)
        if down is None:
            down = self._down_slots = set()
        down.add(slot)

    def note_recover(self, slot: str) -> None:
        """``slot`` rejoined the pool; ranking may consider it again."""
        getattr(self, "_down_slots", set()).discard(slot)

    @property
    def down_slots(self) -> frozenset[str]:
        """Slots the router currently believes are down."""
        return frozenset(getattr(self, "_down_slots", ()))

    def _exclude_down(self, idle: list[str]) -> list[str]:
        """Defensively drop down slots from a candidate list."""
        down = getattr(self, "_down_slots", None)
        if down:
            return [s for s in idle if s not in down]
        return idle


class EarliestFinishRouter(Router):
    """Prefer the device with the best amortized per-request service time.

    Ranks idle devices by ``latency(k)/k`` at the batch size the queue
    could fill right now — effectively earliest-finish-time placement for
    the work at hand. Deterministic tie-break on slot label.

    ``probe_cap`` bounds the *probe batch size* used for the amortized
    comparison, not the number of slots ranked: with a 10k-deep queue the
    router prices ``latency(s, 128)/128`` rather than walking cost models
    out to the full queue depth. Callers whose policies batch past 128
    can raise it per instance or per call (``rank(..., probe_cap=...)``).

    ``max_idle`` is a scale guard: ranking is a per-offer sort with one
    cost-model call per idle slot, so a fleet-sized pool (hundreds of
    replicas) turns the classic event loop quadratic. Exceeding it raises
    :class:`RouterScaleError` pointing at the fleet simulator instead of
    silently crawling.
    """

    name = "earliest-finish"

    def __init__(self, probe_cap: int = 128, max_idle: int = 1024):
        if probe_cap < 1:
            raise ValueError(f"probe_cap must be >= 1, got {probe_cap}")
        if max_idle < 1:
            raise ValueError(f"max_idle must be >= 1, got {max_idle}")
        self.probe_cap = probe_cap
        self.max_idle = max_idle

    def rank(self, idle, queue_len, cost, probe_cap=None):
        idle = self._exclude_down(idle)
        if len(idle) > self.max_idle:
            raise RouterScaleError(
                f"{len(idle)} idle slots exceed the per-request router's "
                f"max_idle={self.max_idle}; group homogeneous replicas and "
                "use repro.serving.fleet.simulate_fleet for fleet-scale "
                "pools (or raise max_idle explicitly)")
        cap = self.probe_cap if probe_cap is None else probe_cap
        probe = max(1, min(queue_len, cap))
        return sorted(idle, key=lambda s: (cost.latency(s, probe) / probe, s))


class RoundRobinRouter(Router):
    """Rotate through devices regardless of speed (baseline placement).

    The rotation advances per *dispatch* (via :meth:`note_dispatch`), not
    per ranking call — offers where the policy holds, or where only one
    device is idle, must not skew the rotation.
    """

    name = "round-robin"

    def __init__(self):
        self._next = 0

    def rank(self, idle, queue_len, cost):
        ordered = sorted(self._exclude_down(idle))
        if not ordered:
            return ordered
        pivot = self._next % len(ordered)
        return ordered[pivot:] + ordered[:pivot]

    def note_dispatch(self, slot):
        super().note_dispatch(slot)
        self._next += 1


def make_router(name: str) -> Router:
    """Build a router from its CLI name."""
    if name in ("earliest-finish", "eft"):
        return EarliestFinishRouter()
    if name in ("round-robin", "rr"):
        return RoundRobinRouter()
    raise KeyError(f"unknown router {name!r}; available: earliest-finish, round-robin")
