"""The MMBench profiling pipeline (Figure 3): three metric levels."""

from repro.profiling.flops import count_flops, count_parameters, flops_per_sample
from repro.profiling.profiler import MMBenchProfiler, ProfileResult
from repro.profiling.training import training_flops_ratio, training_trace
from repro.profiling.report import (
    format_bytes,
    format_seconds,
    format_table,
    profile_summary,
)

__all__ = [
    "training_flops_ratio", "training_trace",
    "count_flops", "count_parameters", "flops_per_sample",
    "MMBenchProfiler", "ProfileResult",
    "format_bytes", "format_seconds", "format_table", "profile_summary",
]
