"""The MMBench profiling pipeline (Figure 3): three metric levels."""

from repro.profiling.flops import count_flops, count_parameters, flops_per_sample
from repro.profiling.profiler import GridCell, MMBenchProfiler, ProfileResult, price_grid
from repro.profiling.training import (
    synthetic_training_trace,
    trace_training_step,
    traced_training_flops_ratio,
    traced_training_step,
    training_flops_ratio,
    training_memory_factor,
    training_trace,
)
from repro.profiling.report import (
    format_bytes,
    format_seconds,
    format_table,
    profile_summary,
)

__all__ = [
    "synthetic_training_trace", "trace_training_step",
    "traced_training_flops_ratio", "traced_training_step",
    "training_flops_ratio", "training_memory_factor", "training_trace",
    "count_flops", "count_parameters", "flops_per_sample",
    "GridCell", "MMBenchProfiler", "ProfileResult", "price_grid",
    "format_bytes", "format_seconds", "format_table", "profile_summary",
]
