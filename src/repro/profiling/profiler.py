"""The MMBench profiling pipeline (Figure 3).

One call to :meth:`MMBenchProfiler.profile` runs a traced inference over a
batch and produces all three metric categories the paper defines:

1. **Algorithm level** (from the application itself): parameter count,
   FLOPs, modality list, task kind — what the paper gets from Python
   module logs.
2. **System level** (Nsight Systems / memory-profiler analogues): GPU vs
   CPU+Runtime time, transfer/data-prep/sync decomposition, peak memory
   breakdown.
3. **Architecture level** (Nsight Compute analogue): per-stage counters,
   kernel category mix, per-kernel records, stall attribution.

The profile is captured once (device-independently) and can be re-priced
on any :class:`~repro.hw.device.DeviceSpec` — the reproduction's version
of pointing the same scripts at the server or a Jetson board.

:func:`price_grid` is the sweep entry point: one call prices a
(workloads x batch sizes x devices) grid, fetching each device-independent
trace from the shared store once and pricing it on every device in a
single broadcasted :meth:`~repro.hw.engine.ExecutionEngine.run_sweep`
pass. The batch-size / edge / heterogeneity / stage analyses and the
serving cost model all fill their grids through it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro import nn
from repro.hw.device import DeviceSpec, get_device
from repro.hw.engine import ExecutionEngine, ExecutionReport
from repro.trace.store import StoredTrace, TraceStore, default_store
from repro.trace.timeline import scale_trace
from repro.trace.tracer import Trace, Tracer
from repro.workloads.base import MultiModalModel


@dataclass
class ProfileResult:
    """Everything one profiling session produced."""

    model_name: str
    device: DeviceSpec
    batch_size: int
    trace: Trace
    report: ExecutionReport
    # Algorithm level.
    parameters: int
    parameter_bytes: int
    flops: float
    modalities: list[str]

    # -- convenience views ------------------------------------------------------

    @property
    def total_time(self) -> float:
        return self.report.total_time

    @property
    def throughput(self) -> float:
        """Samples per second at this batch size."""
        return self.batch_size / self.total_time if self.total_time > 0 else 0.0

    def algorithm_metrics(self) -> dict[str, float]:
        return {
            "parameters": float(self.parameters),
            "parameter_bytes": float(self.parameter_bytes),
            "flops": self.flops,
            "flops_per_sample": self.flops / self.batch_size,
            "num_modalities": float(len(self.modalities)),
        }

    def system_metrics(self) -> dict[str, float]:
        r = self.report
        return {
            "total_time": r.total_time,
            "gpu_time": r.gpu_time,
            "cpu_runtime_time": r.host_time,
            "cpu_runtime_share": r.cpu_runtime_share,
            "launch_time": r.launch_time,
            "transfer_time": r.transfer_time,
            "data_prep_time": r.data_prep_time,
            "sync_time": r.sync_time,
            "peak_memory": r.memory.total,
            "memory_model": r.memory.model,
            "memory_dataset": r.memory.dataset,
            "memory_intermediate": r.memory.intermediate,
            "memory_pressure": r.memory_pressure,
        }

    def architecture_metrics(self) -> dict[str, dict]:
        r = self.report
        return {
            "stage_time": r.stage_time(),
            "stage_counters": r.stage_counters(),
            "stage_stalls": r.stage_stalls(),
            "kernel_categories": {
                cat.value: share for cat, share in r.category_time_breakdown().items()
            },
            "kernel_size_distribution": r.kernel_size_distribution(),
        }


class MMBenchProfiler:
    """Profiles staged multi-modal models on analytical device models."""

    def __init__(self, device: str | DeviceSpec = "2080ti"):
        self.device = get_device(device) if isinstance(device, str) else device

    def capture(self, model: MultiModalModel, batch: dict[str, np.ndarray]) -> Trace:
        """Trace one inference forward pass (device-independent)."""
        tracer = Tracer()
        model.eval()
        with tracer.activate(), nn.no_grad():
            model(batch)
        return tracer.finish()

    def price(
        self, model: MultiModalModel | None, trace: Trace, batch_size: int,
        device: str | DeviceSpec | None = None,
        model_bytes: float | None = None,
        input_bytes: float | None = None,
    ) -> ExecutionReport:
        """Re-price an existing trace on a device model.

        ``model_bytes``/``input_bytes`` default to the model's own
        footprint; pass overrides when pricing a scaled trace (see
        :func:`repro.trace.timeline.scale_trace`). ``model`` may be None
        when both byte counts are given explicitly — the path the trace
        store uses, where no model object exists at pricing time.
        """
        if model is None and (model_bytes is None or input_bytes is None):
            raise ValueError("price() needs a model or explicit model/input bytes")
        dev = self.device if device is None else (
            get_device(device) if isinstance(device, str) else device
        )
        engine = ExecutionEngine(dev)
        return engine.run(
            trace,
            model_bytes=model.parameter_bytes() if model_bytes is None else model_bytes,
            input_bytes=model.input_bytes(batch_size) if input_bytes is None else input_bytes,
        )

    def profile(self, model: MultiModalModel, batch: dict[str, np.ndarray]) -> ProfileResult:
        """Trace + price + collect all three metric categories."""
        batch_size = len(next(iter(batch.values())))
        trace = self.capture(model, batch)
        report = self.price(model, trace, batch_size)
        return ProfileResult(
            model_name=model.name,
            device=self.device,
            batch_size=batch_size,
            trace=trace,
            report=report,
            parameters=model.num_parameters(),
            parameter_bytes=model.parameter_bytes(),
            flops=trace.total_flops,
            modalities=model.modality_names,
        )

    def profile_workload(
        self,
        workload: str,
        fusion: str | None = None,
        unimodal: str | None = None,
        batch_size: int = 8,
        seed: int = 0,
        backend: str | None = None,
        store: TraceStore | None = None,
    ) -> ProfileResult:
        """Store-backed :meth:`profile` for a registered workload.

        The trace comes from the shared :class:`~repro.trace.store.TraceStore`
        (captured with ``backend`` on a cold key, loaded on a warm one), so
        repeated sweeps over the same configuration never re-trace.
        """
        store = store if store is not None else default_store()
        stored = store.get_or_capture(
            workload, fusion=fusion, unimodal=unimodal,
            batch_size=batch_size, seed=seed, backend=backend,
        )
        return self.profile_stored(stored, batch_size)

    def profile_stored(self, stored: StoredTrace, batch_size: int,
                       lint: bool = True) -> ProfileResult:
        """Price a :class:`~repro.trace.store.StoredTrace` on this profiler's
        device.

        The common tail of :meth:`profile_workload` and the ingest path:
        any stored entry — captured from a built-in workload or ingested
        from an external execution graph — prices identically from here.
        The trace is lint-checked first (a few array reductions; raises
        :class:`~repro.lint.core.LintFailure` on errors such as negative
        or NaN work descriptors, which would silently corrupt the priced
        numbers); pass ``lint=False`` to price a known-bad trace anyway.
        """
        if lint:
            from repro.lint import check, lint_trace

            check(lint_trace(stored, source=stored.model_name),
                  what=f"stored trace {stored.model_name!r}")
        report = self.price(
            None, stored.trace, batch_size,
            model_bytes=stored.parameter_bytes, input_bytes=stored.input_bytes,
        )
        return ProfileResult(
            model_name=stored.model_name,
            device=self.device,
            batch_size=batch_size,
            trace=stored.trace,
            report=report,
            parameters=stored.parameters,
            parameter_bytes=stored.parameter_bytes,
            flops=stored.trace.total_flops,
            modalities=list(stored.modalities),
        )


# -- one-pass grid pricing ------------------------------------------------------


@dataclass
class GridCell:
    """One (workload, batch size, device) point of a pricing grid."""

    workload: str
    fusion: str | None
    unimodal: str | None
    batch_size: int
    device: DeviceSpec
    report: ExecutionReport
    stored: StoredTrace
    scale: float = 1.0

    @property
    def trace(self) -> Trace:
        """The (possibly scaled) trace the report priced."""
        return self.report.trace

    @property
    def total_time(self) -> float:
        return self.report.total_time


def price_grid(
    workloads: Sequence[str],
    batches: Sequence[int],
    devices: Sequence[str | DeviceSpec],
    fusion: str | None = None,
    unimodal: str | None = None,
    seed: int = 0,
    backend: str | None = "meta",
    scale: float = 1.0,
    concurrent_modalities: bool = False,
    store: TraceStore | None = None,
) -> dict[tuple[str, int, str], GridCell]:
    """Price a (workload x batch x device) grid in one pass per trace.

    Each (workload, batch) trace is fetched from the shared
    :class:`~repro.trace.store.TraceStore` once (captured on a cold key,
    loaded columnar on a warm one) and priced across *all* ``devices`` by
    a single broadcasted :meth:`~repro.hw.engine.ExecutionEngine.run_sweep`
    call. ``scale`` extrapolates the traced work descriptors (and the
    model/input byte footprints) before pricing — the edge-migration
    study's full-scale configurations.

    Returns ``{(workload, batch_size, device_key): GridCell}`` where
    ``device_key`` is the device name exactly as passed in ``devices``
    (or ``DeviceSpec.name`` for spec objects).
    """
    store = store if store is not None else default_store()
    specs = [get_device(d) if isinstance(d, str) else d for d in devices]
    keys = [d if isinstance(d, str) else d.name for d in devices]
    out: dict[tuple[str, int, str], GridCell] = {}
    for workload in workloads:
        for batch_size in batches:
            stored = store.get_or_capture(
                workload, fusion=fusion, unimodal=unimodal,
                batch_size=batch_size, seed=seed, backend=backend,
            )
            trace = stored.trace if scale == 1.0 else scale_trace(stored.trace, scale)
            engine = ExecutionEngine(specs[0], concurrent_modalities)
            reports = engine.run_sweep(
                trace, specs,
                model_bytes=stored.parameter_bytes * scale,
                input_bytes=stored.input_bytes * scale,
            )
            for key, spec, report in zip(keys, specs, reports):
                out[(workload, int(batch_size), key)] = GridCell(
                    workload=workload, fusion=fusion, unimodal=unimodal,
                    batch_size=int(batch_size), device=spec, report=report,
                    stored=stored, scale=scale,
                )
    return out
