"""Training-step profiling: traced execution and the synthetic cross-check.

MMBench abstracts both "the training and inference process" (Sec. 3.3).
Since the autodiff layer emits kernels from its backward closures and the
optimizers emit their update kernels, a training step is a *traced*
execution path: :func:`trace_training_step` runs one real
forward + loss + backward + optimizer step under an active tracer and
returns a trace whose kernels carry the pass taxonomy
(``forward`` / ``loss`` / ``backward`` / ``optimizer``) alongside the
usual stage/modality context. The capture works on both backends — the
meta backend propagates shape-only gradients and emits an event-for-event
identical stream (tier-1 enforced).

The pre-traced heuristic (every forward kernel gets a 2x backward twin,
plus synthesized loss and optimizer kernels) is kept as
:func:`synthetic_training_trace`, a cross-check reference: the traced
step's FLOP ratio must stay in the same regime the classic
"training ~ 3x inference" accounting predicts.
"""

from __future__ import annotations

import numpy as np

from repro.trace.events import (
    KernelCategory,
    KernelEvent,
    PASS_BACKWARD,
    PASS_LOSS,
    PASS_OPTIMIZER,
    STAGE_HEAD,
)
from repro.trace.tracer import Trace, Tracer

# Optimizer state traffic multipliers relative to parameter bytes
# (synthetic model; the traced path gets this from the optimizer itself).
_OPTIMIZER_STATE_READS = {"sgd": 1.0, "sgd_momentum": 2.0, "adam": 3.0, "adamw": 3.0}

#: Device-resident training footprint relative to parameter bytes:
#: parameters + gradients + optimizer state buffers. Feeds the memory
#: model when pricing a training trace.
OPTIMIZER_MEMORY_FACTOR = {"sgd": 2.0, "sgd_momentum": 3.0, "adam": 4.0, "adamw": 4.0}


def training_memory_factor(optimizer: str = "adam") -> float:
    """Model-bytes multiplier for a resident training step."""
    try:
        return OPTIMIZER_MEMORY_FACTOR[optimizer]
    except KeyError:
        raise KeyError(
            f"unknown optimizer {optimizer!r}; known: "
            f"{sorted(OPTIMIZER_MEMORY_FACTOR)}") from None


# ---------------------------------------------------------------------------
# the traced training path
# ---------------------------------------------------------------------------


def trace_training_step(
    model,
    batch: dict | None = None,
    targets: np.ndarray | None = None,
    batch_size: int = 8,
    seed: int = 0,
    backend: str | None = None,
    optimizer="adam",
    lr: float = 1e-3,
    clip_norm: float | None = None,
) -> Trace:
    """Trace one real training step of ``model`` (device-independent).

    Runs forward (staged, as in inference), the task loss (``pass_="loss"``
    under the head stage), backward (each closure emits its kernels with
    the snapshotted forward stage/modality) and one optimizer step
    (``pass_="optimizer"``). ``batch``/``targets`` default to synthetic
    data for ``model.shapes`` on ``backend``; ``optimizer`` is a name from
    :data:`repro.nn.optim.OPTIMIZERS` or a ready optimizer instance.

    The optimizer step mutates ``model``'s parameters (eager backend);
    callers who need the pristine model should pass a fresh build — the
    trace store's training path does exactly that.
    """
    from repro.core.train import loss_fn_for
    from repro.data.synthetic import random_batch, random_targets
    from repro.nn.optim import clip_grad_norm, make_optimizer
    from repro.trace.tracer import pass_scope, stage_scope

    if batch is None:
        batch = random_batch(model.shapes, batch_size, seed=seed, backend=backend)
    if targets is None:
        targets = random_targets(model.shapes, batch_size, seed=seed)
    opt = make_optimizer(optimizer, model.parameters(), lr=lr) \
        if isinstance(optimizer, str) else optimizer
    loss_fn = loss_fn_for(model.shapes.task.kind)

    tracer = Tracer()
    model.train()
    with tracer.activate():
        opt.zero_grad()
        out = model(batch)
        with pass_scope(PASS_LOSS), stage_scope(STAGE_HEAD):
            loss = loss_fn(out, targets)
        loss.backward()
        if clip_norm is not None:
            clip_grad_norm(model.parameters(), clip_norm)
        opt.step()
    return tracer.finish()


def traced_training_step(
    workload: str,
    fusion: str | None = None,
    unimodal: str | None = None,
    batch_size: int = 8,
    seed: int = 0,
    backend: str | None = None,
    optimizer: str = "adam",
    store=None,
):
    """Store-backed traced training step for a registered workload.

    Returns a :class:`~repro.trace.store.StoredTrace` from the shared
    trace store (captured on a cold pass-aware key, loaded columnar on a
    warm one).
    """
    from repro.trace.store import default_store

    store = store if store is not None else default_store()
    return store.get_or_capture_training(
        workload, fusion=fusion, unimodal=unimodal, batch_size=batch_size,
        seed=seed, backend=backend, optimizer=optimizer,
    )


def traced_training_flops_ratio(trace: Trace) -> float:
    """Full-step FLOPs over forward-pass FLOPs of one traced training step."""
    cols = trace.columns()
    forward = float(cols.flops[cols.kernel_indices_for_pass("forward")].sum())
    if forward <= 0:
        raise ValueError("trace has no forward-pass FLOPs")
    return trace.total_flops / forward


# ---------------------------------------------------------------------------
# the synthetic cross-check (the pre-traced heuristic, demoted)
# ---------------------------------------------------------------------------


def synthetic_training_trace(forward: Trace, param_bytes: float, optimizer: str = "adam") -> Trace:
    """Synthesize a training-step trace from a forward trace (heuristic).

    The standard accounting used by FLOP estimators everywhere: every
    forward kernel gets a backward counterpart of ~2x its work, the
    optimizer adds one element-wise update over every parameter, the loss
    adds a small reduce over the outputs. Kept as a cross-check reference
    for the traced path (:func:`trace_training_step`), which measures the
    same quantities instead of assuming them.
    """
    if optimizer not in _OPTIMIZER_STATE_READS:
        raise KeyError(
            f"unknown optimizer {optimizer!r}; known: {sorted(_OPTIMIZER_STATE_READS)}"
        )
    kernels: list[KernelEvent] = [k for k in forward.kernels]

    # Backward kernels, in reverse execution order, inheriting the stage
    # and modality of their forward counterparts.
    for k in reversed(forward.kernels):
        kernels.append(KernelEvent(
            name=f"{k.name}_bwd",
            category=k.category,
            flops=2.0 * k.flops,
            bytes_read=2.0 * k.bytes_read,
            bytes_written=2.0 * k.bytes_written,
            threads=k.threads,
            stage=k.stage,
            modality=k.modality,
            pass_=PASS_BACKWARD,
            coalesced_fraction=k.coalesced_fraction,
            reuse_factor=k.reuse_factor,
            meta=dict(k.meta),
        ))

    # Loss reduce over the head outputs. Uni-modal variants (and any trace
    # whose head emitted no kernels) fall back to the last kernel's output
    # — the tensor the loss actually reads — instead of pricing to zero.
    head_out = 0.0
    for k in forward.kernels:
        if k.stage == "head":
            head_out = max(head_out, k.bytes_written)
    if head_out <= 0.0 and forward.kernels:
        head_out = forward.kernels[-1].bytes_written
    kernels.append(KernelEvent(
        name="loss_reduce",
        category=KernelCategory.REDUCE,
        flops=head_out / 4.0,
        bytes_read=head_out,
        bytes_written=4.0,
        threads=max(int(head_out / 4.0), 1),
        stage="head",
        pass_=PASS_LOSS,
        coalesced_fraction=0.85,
    ))

    # Optimizer update: element-wise over every parameter + state buffers.
    state_reads = _OPTIMIZER_STATE_READS[optimizer]
    kernels.append(KernelEvent(
        name=f"{optimizer}_update",
        category=KernelCategory.ELEWISE,
        flops=param_bytes / 4.0 * (2.0 + 2.0 * state_reads),
        bytes_read=param_bytes * (1.0 + state_reads),
        bytes_written=param_bytes * (1.0 + max(state_reads - 1.0, 0.0)),
        threads=max(int(param_bytes / 4.0), 1),
        stage="head",
        pass_=PASS_OPTIMIZER,
    ))

    return Trace(kernels=kernels, host_events=list(forward.host_events))


#: Back-compat alias (the heuristic was previously the only training path).
training_trace = synthetic_training_trace


def training_flops_ratio(forward: Trace, param_bytes: float, optimizer: str = "adam") -> float:
    """Synthetic training-step FLOPs over inference FLOPs (~3x + update)."""
    train = synthetic_training_trace(forward, param_bytes, optimizer)
    if forward.total_flops <= 0:
        raise ValueError("forward trace has no FLOPs")
    return train.total_flops / forward.total_flops
