"""Training-step profiling.

MMBench abstracts both "the training and inference process" (Sec. 3.3);
MLPerf-style suites measure both. The reproduction's tracer captures
forward kernels; the backward pass runs through autodiff closures that do
not re-emit kernels, so a training trace is *synthesized* from the forward
trace with the standard accounting used by FLOP estimators everywhere:

* every forward kernel with parameters or activations gets a backward
  counterpart of ~2x its work (grad w.r.t. inputs + grad w.r.t. weights,
  each roughly a forward-sized pass),
* the optimizer adds one element-wise update kernel over every parameter
  (Adam reads/writes two moment buffers besides the weights),
* the loss adds a small reduce kernel over the outputs.

This mirrors the classic "training ≈ 3x inference FLOPs" rule while
keeping the per-category and per-stage structure of the workload, which
is what the architecture-level analyses consume.
"""

from __future__ import annotations

from repro.trace.events import KernelCategory, KernelEvent
from repro.trace.tracer import Trace

# Optimizer state traffic multipliers relative to parameter bytes.
_OPTIMIZER_STATE_READS = {"sgd": 1.0, "sgd_momentum": 2.0, "adam": 3.0}


def training_trace(forward: Trace, param_bytes: float, optimizer: str = "adam") -> Trace:
    """Synthesize a full training-step trace from a forward trace."""
    if optimizer not in _OPTIMIZER_STATE_READS:
        raise KeyError(
            f"unknown optimizer {optimizer!r}; known: {sorted(_OPTIMIZER_STATE_READS)}"
        )
    kernels: list[KernelEvent] = [k for k in forward.kernels]

    # Backward kernels, in reverse execution order, inheriting the stage
    # and modality of their forward counterparts.
    for k in reversed(forward.kernels):
        kernels.append(KernelEvent(
            name=f"{k.name}_bwd",
            category=k.category,
            flops=2.0 * k.flops,
            bytes_read=2.0 * k.bytes_read,
            bytes_written=2.0 * k.bytes_written,
            threads=k.threads,
            stage=k.stage,
            modality=k.modality,
            coalesced_fraction=k.coalesced_fraction,
            reuse_factor=k.reuse_factor,
            meta=dict(k.meta),
        ))

    # Loss reduce over the head outputs.
    head_out = 0.0
    for k in forward.kernels:
        if k.stage == "head":
            head_out = max(head_out, k.bytes_written)
    kernels.append(KernelEvent(
        name="loss_reduce",
        category=KernelCategory.REDUCE,
        flops=head_out / 4.0,
        bytes_read=head_out,
        bytes_written=4.0,
        threads=max(int(head_out / 4.0), 1),
        stage="head",
        coalesced_fraction=0.85,
    ))

    # Optimizer update: element-wise over every parameter + state buffers.
    state_reads = _OPTIMIZER_STATE_READS[optimizer]
    kernels.append(KernelEvent(
        name=f"{optimizer}_update",
        category=KernelCategory.ELEWISE,
        flops=param_bytes / 4.0 * (2.0 + 2.0 * state_reads),
        bytes_read=param_bytes * (1.0 + state_reads),
        bytes_written=param_bytes * (1.0 + max(state_reads - 1.0, 0.0)),
        threads=max(int(param_bytes / 4.0), 1),
        stage="head",
    ))

    return Trace(kernels=kernels, host_events=list(forward.host_events))


def training_flops_ratio(forward: Trace, param_bytes: float, optimizer: str = "adam") -> float:
    """Training-step FLOPs over inference FLOPs (expected ~3x + update)."""
    train = training_trace(forward, param_bytes, optimizer)
    if forward.total_flops <= 0:
        raise ValueError("forward trace has no FLOPs")
    return train.total_flops / forward.total_flops
