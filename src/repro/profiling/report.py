"""Plain-text table rendering for profiles and analyses.

MMBench's "result scoreboards": every analysis returns plain dicts, and
these helpers format them as aligned text tables for the CLI, examples and
benchmark harness output.
"""

from __future__ import annotations

from typing import Iterable


def format_table(
    headers: list[str], rows: Iterable[Iterable], title: str | None = None
) -> str:
    """Render rows as an aligned monospace table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        magnitude = abs(cell)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{cell:.3e}"
        return f"{cell:.4g}"
    return str(cell)


def format_seconds(seconds: float) -> str:
    """Human-friendly duration."""
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f} ms"
    return f"{seconds * 1e6:.1f} us"


def format_bytes(n: float) -> str:
    """Human-friendly size."""
    for unit in ("B", "KB", "MB", "GB"):
        if abs(n) < 1024.0:
            return f"{n:.1f} {unit}"
        n /= 1024.0
    return f"{n:.1f} TB"


def profile_summary(result) -> str:
    """One profile as a readable multi-section report."""
    lines = [
        f"== MMBench profile: {result.model_name} on {result.device.name} "
        f"(batch={result.batch_size}) ==",
        "",
        "[algorithm]",
    ]
    for key, value in result.algorithm_metrics().items():
        lines.append(f"  {key:20s} {_fmt(value)}")
    lines.append("")
    lines.append("[system]")
    sysm = result.system_metrics()
    for key in ("total_time", "gpu_time", "cpu_runtime_time", "launch_time",
                "transfer_time", "data_prep_time", "sync_time"):
        lines.append(f"  {key:20s} {format_seconds(sysm[key])}")
    lines.append(f"  {'cpu_runtime_share':20s} {sysm['cpu_runtime_share']:.1%}")
    for key in ("peak_memory", "memory_model", "memory_dataset", "memory_intermediate"):
        lines.append(f"  {key:20s} {format_bytes(sysm[key])}")
    lines.append("")
    lines.append("[architecture]")
    arch = result.architecture_metrics()
    lines.append("  stage times:")
    for stage, t in arch["stage_time"].items():
        lines.append(f"    {stage:10s} {format_seconds(t)}")
    lines.append("  kernel categories (time share):")
    for cat, share in sorted(arch["kernel_categories"].items(), key=lambda kv: -kv[1]):
        lines.append(f"    {cat:10s} {share:.1%}")
    return "\n".join(lines)
