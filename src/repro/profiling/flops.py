"""Algorithm-level metrics: parameter and FLOP counting.

The first category of MMBench's evaluation metrics (Sec. 3.4): "basic
algorithm level information such as model accuracy, parameter number and
FLOPs", derived here from the model itself and a traced forward pass.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.trace.tracer import Tracer
from repro.workloads.base import MultiModalModel


def count_parameters(model: nn.Module) -> dict[str, int]:
    """Total and per-top-level-submodule parameter counts."""
    out = {"total": model.num_parameters()}
    for name, child in model._modules.items():
        out[name] = child.num_parameters()
    return out


def count_flops(model: MultiModalModel, batch: dict[str, np.ndarray]) -> dict[str, float]:
    """Inference FLOPs per stage and total, from a traced forward pass."""
    tracer = Tracer()
    with tracer.activate(), nn.no_grad():
        model(batch)
    trace = tracer.finish()
    out: dict[str, float] = {"total": trace.total_flops}
    for stage in trace.stages():
        out[stage] = sum(k.flops for k in trace.kernels_in_stage(stage))
    return out


def flops_per_sample(model: MultiModalModel, batch: dict[str, np.ndarray]) -> float:
    """Per-sample inference FLOPs (total / batch size)."""
    batch_size = len(next(iter(batch.values())))
    return count_flops(model, batch)["total"] / batch_size
