"""Stream-race, serving-timeline, fault-plan and config rules (MMB3xx-5xx).

Four artifact kinds live here:

* ``schedule`` — :class:`~repro.hw.streams.StreamSchedule`: the stream
  race detector. The scheduler itself builds legal schedules, so these
  rules guard hand-built and deserialized schedules (and future schedule
  transformations): overlapping windows on one stream, device share sums
  over 1.0, windows running past the makespan.
* ``serving`` — :class:`~repro.serving.simulator.ServingReport`: replay
  checks over the recorded request timeline. Cross-tenant batch leakage
  (two tenants' requests riding one dispatched batch) and
  dispatch-to-down-slot races (a request dispatched inside a fault
  window, replayed from ``fault_stats``).
* ``fault_plan`` — :class:`~repro.serving.faults.FaultPlan`, statically
  (without slot expansion): unreachable recovers, throttle/stall windows
  past the horizon, plans that down every device at once, devices that
  never come back.
* ``tenants`` / ``registry`` — config lint: duplicate tenant names,
  shadowed or empty op-mapping registries.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.lint.core import Diagnostic, LintContext, rule

_TOL = 1e-9


# ---------------------------------------------------------------------------
# MMB3xx — stream schedules
# ---------------------------------------------------------------------------


@rule("MMB301", "error", "schedule",
      "stream race: overlapping kernel windows on one stream")
def stream_overlap(schedule, ctx: LintContext) -> Iterator[Diagnostic]:
    """One stream runs its kernels back-to-back: sorted by start, every
    window must begin at or after the previous one ends."""
    for name, window in schedule.streams.items():
        if window.start.size < 2:
            continue
        order = np.argsort(window.start, kind="stable")
        start = window.start[order]
        end = window.end[order]
        overlap = start[1:] < end[:-1] - _TOL
        if overlap.any():
            i = int(np.argmax(overlap))
            yield ctx.diag(
                "MMB301",
                f"{int(overlap.sum())} overlapping window pair(s): kernel "
                f"starting at {start[i + 1]:.6g}s begins before the "
                f"previous one ends at {end[i]:.6g}s",
                f"stream {name!r} window[{i + 1}]",
                fix="a stream is a serial queue; two kernels cannot hold "
                    "the same partition at once",
            )


@rule("MMB302", "error", "schedule",
      "device oversubscription: stream shares sum past 1.0")
def share_sum(schedule, ctx: LintContext) -> Iterator[Diagnostic]:
    total = sum(w.share for w in schedule.streams.values())
    if total > 1.0 + _TOL:
        yield ctx.diag(
            "MMB302",
            f"stream shares sum to {total:.4g} on device "
            f"{schedule.device.name!r}; partitions cannot exceed the "
            f"whole device",
            f"device {schedule.device.name!r}",
            fix="shrink the shares (they are fractions of one device) or "
                "move streams to another device",
        )


@rule("MMB303", "warning", "schedule",
      "stream window extends past the schedule makespan")
def window_past_makespan(schedule, ctx: LintContext) -> Iterator[Diagnostic]:
    for name, window in schedule.streams.items():
        if window.n_kernels and window.busy_until > schedule.makespan + _TOL:
            yield ctx.diag(
                "MMB303",
                f"stream runs until {window.busy_until:.6g}s but the "
                f"schedule's makespan is {schedule.makespan:.6g}s",
                f"stream {name!r}",
                fix="the makespan is max over streams by construction; "
                    "recompute it after editing windows",
            )


# ---------------------------------------------------------------------------
# MMB3xx — serving timelines (replayed from a ServingReport)
# ---------------------------------------------------------------------------


def _dispatched(report):
    """(tenants, slots, dispatch) arrays for requests that actually ran."""
    rows = [(r.tenant, r.device, r.dispatch) for r in report.requests
            if not r.shed and r.device]
    if not rows:
        return None
    tenants = np.array([r[0] for r in rows])
    slots = np.array([r[1] for r in rows])
    dispatch = np.array([r[2] for r in rows], dtype=np.float64)
    return tenants, slots, dispatch


@rule("MMB304", "error", "serving",
      "cross-tenant batch leakage: one dispatched batch carries two tenants")
def tenant_leakage(report, ctx: LintContext) -> Iterator[Diagnostic]:
    """Batches form per tenant queue; every request sharing a (slot,
    dispatch instant) batch must belong to the same tenant."""
    arrays = _dispatched(report)
    if arrays is None:
        return
    tenants, slots, dispatch = arrays
    # A batch is one (slot, dispatch) pair; sort and compare neighbors.
    order = np.lexsort((tenants, dispatch, slots))
    slots, dispatch, tenants = slots[order], dispatch[order], tenants[order]
    same_batch = (slots[1:] == slots[:-1]) & (dispatch[1:] == dispatch[:-1])
    leaked = same_batch & (tenants[1:] != tenants[:-1])
    if leaked.any():
        i = int(np.argmax(leaked))
        yield ctx.diag(
            "MMB304",
            f"{int(leaked.sum())} batch boundary violation(s): tenants "
            f"{str(tenants[i])!r} and {str(tenants[i + 1])!r} share the "
            f"batch dispatched at {dispatch[i]:.6g}s",
            f"slot {str(slots[i])!r}",
            fix="batches form per tenant queue; a shared batch mixes "
                "tenants' latency accounting and SLO attribution",
        )


@rule("MMB305", "error", "serving",
      "dispatch-to-down-slot race: request dispatched inside a fault window")
def down_slot_race(report, ctx: LintContext) -> Iterator[Diagnostic]:
    stats = getattr(report, "fault_stats", None)
    if stats is None or not stats.devices:
        return
    arrays = _dispatched(report)
    if arrays is None:
        return
    tenants, slots, dispatch = arrays
    for label, device_stats in stats.devices.items():
        if not device_stats.down_windows:
            continue
        on_slot = slots == label
        if not on_slot.any():
            continue
        times = dispatch[on_slot]
        raced = np.zeros(times.shape, dtype=bool)
        for start, end in device_stats.down_windows:
            raced |= (times > start) & (times < end)
        if raced.any():
            i = int(np.argmax(raced))
            yield ctx.diag(
                "MMB305",
                f"{int(raced.sum())} request(s) dispatched to a down slot "
                f"(first at {times[i]:.6g}s, tenant "
                f"{str(tenants[on_slot][i])!r})",
                f"slot {label!r}",
                fix="the event loop must fence dispatches against fault "
                    "windows; a down slot cannot accept work",
            )


# ---------------------------------------------------------------------------
# MMB4xx — fault plans (static, no slot expansion)
# ---------------------------------------------------------------------------


def _plan_timeline(plan):
    """Per-device ordered (time, kind, event) happenings of a plan."""
    from repro.serving.faults import (
        DeviceDown,
        DeviceRecover,
        ThermalThrottle,
        TransientStall,
    )

    kinds = {DeviceDown: "down", DeviceRecover: "recover",
             ThermalThrottle: "throttle", TransientStall: "stall"}
    by_device: dict[str, list[tuple[float, int, str, object]]] = {}
    for seq, event in enumerate(plan.events):
        by_device.setdefault(event.device, []).append(
            (event.time, seq, kinds[type(event)], event))
    for happenings in by_device.values():
        happenings.sort(key=lambda h: (h[0], h[1]))
    return by_device


@rule("MMB401", "error", "fault_plan",
      "unreachable recover: no preceding down on that device")
def unreachable_recover(plan, ctx: LintContext) -> Iterator[Diagnostic]:
    for device, happenings in _plan_timeline(plan).items():
        down = False
        for time, seq, kind, _ in happenings:
            if kind == "down":
                down = True
            elif kind == "recover":
                if not down:
                    yield ctx.diag(
                        "MMB401",
                        f"recover at {time:g}s has no preceding down for "
                        f"device {device!r}; the event can never fire",
                        f"event[{seq}]",
                        fix="drop the recover or add the down it undoes",
                    )
                down = False


@rule("MMB402", "warning", "fault_plan",
      "throttle/stall window starts at or past the run horizon")
def window_past_horizon(plan, ctx: LintContext) -> Iterator[Diagnostic]:
    from repro.serving.faults import ThermalThrottle, TransientStall

    if ctx.horizon is None:
        return
    for seq, event in enumerate(plan.events):
        if isinstance(event, (ThermalThrottle, TransientStall)) and \
                event.time >= ctx.horizon:
            yield ctx.diag(
                "MMB402",
                f"{'throttle' if isinstance(event, ThermalThrottle) else 'stall'} "
                f"on {event.device!r} starts at {event.time:g}s but the run "
                f"horizon is {ctx.horizon:g}s; it can never take effect",
                f"event[{seq}]",
                fix="move the window inside the horizon or drop it",
            )


def _down_intervals(happenings, horizon: float) -> list[tuple[float, float]]:
    intervals = []
    open_at = None
    for time, _, kind, _ in happenings:
        if kind == "down" and open_at is None:
            open_at = time
        elif kind == "recover" and open_at is not None:
            intervals.append((open_at, time))
            open_at = None
    if open_at is not None:
        intervals.append((open_at, horizon))
    return intervals


@rule("MMB403", "error", "fault_plan",
      "plan downs every device simultaneously (nothing can drain)")
def all_devices_down(plan, ctx: LintContext) -> Iterator[Diagnostic]:
    """Intersect the per-device down intervals across the whole pool. The
    pool is ``ctx.devices`` when the caller knows it; otherwise the
    devices the plan itself names — but since the plan cannot speak for
    devices it never mentions, the inferred-pool finding is demoted to a
    warning."""
    timeline = _plan_timeline(plan)
    pool = tuple(ctx.devices) if ctx.devices else tuple(timeline)
    severity = "error" if ctx.devices else "warning"
    if not pool:
        return
    horizon = ctx.horizon if ctx.horizon is not None else float("inf")
    lo, hi = 0.0, float("inf")
    for device in pool:
        intervals = _down_intervals(timeline.get(device, []), horizon)
        if not intervals:
            return  # this device is never down; someone can always drain
        # A device can have several down windows; for the simultaneous-
        # blackout check intersect against each, keeping any overlap.
        best = None
        for start, end in intervals:
            s, e = max(lo, start), min(hi, end)
            if s < e and (best is None or s < best[0]):
                best = (s, e)
        if best is None:
            return
        lo, hi = best
    yield ctx.diag(
        "MMB403",
        f"every device ({', '.join(pool)}) is down over "
        f"[{lo:g}s, {hi:g}s); the event loop could never drain",
        f"devices {', '.join(sorted(pool))}",
        fix="stagger the downs or recover one device before the next falls",
        severity=severity,
    )


@rule("MMB404", "warning", "fault_plan",
      "device goes down and never recovers (tenants pinned to it starve)")
def never_recovers(plan, ctx: LintContext) -> Iterator[Diagnostic]:
    for device, happenings in _plan_timeline(plan).items():
        down_at = None
        down_seq = None
        for time, seq, kind, _ in happenings:
            if kind == "down":
                down_at = time
                down_seq = seq
            elif kind == "recover":
                down_at = None
        if down_at is not None:
            yield ctx.diag(
                "MMB404",
                f"device {device!r} goes down at {down_at:g}s and never "
                f"recovers; tenants pinned to its slots starve from there",
                f"event[{down_seq}]",
                fix="add a recover event, or accept permanent degradation "
                    "knowingly",
            )


# ---------------------------------------------------------------------------
# MMB5xx — configs: tenant sets and op-mapping registries
# ---------------------------------------------------------------------------


@rule("MMB501", "error", "tenants",
      "duplicate tenant name (stats and routing key on the name)")
def duplicate_tenants(tenants: Sequence, ctx: LintContext) -> Iterator[Diagnostic]:
    seen: dict[str, int] = {}
    for index, spec in enumerate(tenants):
        name = getattr(spec, "name", str(spec))
        if name in seen:
            yield ctx.diag(
                "MMB501",
                f"tenant name {name!r} already used at index {seen[name]}; "
                f"per-tenant stats and routing key on the name",
                f"tenant[{index}] {name!r}",
                fix="give every tenant a unique name",
            )
        else:
            seen[name] = index


def _shadows(earlier: str, later: str) -> bool:
    """Does an earlier first-match-wins pattern make a later one dead?

    Token patterns (no underscore) match any ``_``-token prefix, so a
    later token pattern extending an earlier one can never fire.
    Substring patterns (with underscore) match canonical-name substrings,
    so a later pattern *containing* an earlier one can never fire.
    """
    if earlier == later:
        return True
    if "_" not in earlier and "_" not in later:
        return later.startswith(earlier)
    if "_" in earlier and "_" in later:
        return earlier in later
    return False


@rule("MMB510", "warning", "registry",
      "shadowed op-mapping rule: an earlier rule makes it unreachable")
def shadowed_rules(registry, ctx: LintContext) -> Iterator[Diagnostic]:
    rules = registry.rule_list
    for j, later in enumerate(rules):
        for i in range(j):
            earlier = rules[i]
            if _shadows(earlier.pattern, later.pattern):
                yield ctx.diag(
                    "MMB510",
                    f"rule {later.pattern!r} -> {later.category.value} can "
                    f"never match: rule[{i}] {earlier.pattern!r} -> "
                    f"{earlier.category.value} wins first on every name it "
                    f"would match",
                    f"rule[{j}] {later.pattern!r}",
                    fix="reorder the rules (more specific first) or drop "
                        "the dead one",
                )
                break


@rule("MMB511", "error", "registry",
      "empty op-mapping registry: every op lands in the unknown bucket")
def empty_registry(registry, ctx: LintContext) -> Iterator[Diagnostic]:
    if not registry.rule_list and not registry.exact_names:
        yield ctx.diag(
            "MMB511",
            "registry has no rules and no exact pins; every ingested op "
            "falls into the unknown bucket and prices on the fallback "
            "work model",
            "registry",
            fix="start from trace.ingest.default_registry() and override, "
                "rather than from an empty registry",
        )
