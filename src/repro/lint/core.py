"""Diagnostics, the rule registry and lint reports.

The lint layer statically certifies benchmark artifacts — traces, stream
schedules, fault plans, serving reports, tenant sets and op-mapping
registries — *before* an expensive run, the way the paper certifies its
measured roofline decomposition before reading numbers off it. Every
rule is pure array math (or a cheap walk over a small declarative
object); nothing executes a model or a simulation.

Rule codes are stable and banded by artifact family:

* ``MMB1xx`` — trace work descriptors (columns + execution-graph JSON)
* ``MMB2xx`` — pass/stage taxonomy
* ``MMB3xx`` — stream schedules and serving timelines (race detection)
* ``MMB4xx`` — fault plans
* ``MMB5xx`` — tenant configs and op-mapping registries

A :class:`Diagnostic` carries the code, a severity (``error`` blocks
strict runs and pre-run hooks, ``warning`` blocks ``--strict`` only,
``info`` never fails), an artifact location and a fix suggestion. Rules
register themselves with the :func:`rule` decorator under an artifact
*kind*; :func:`run_rules` runs every rule registered for a kind and
folds the diagnostics into a :class:`LintReport`.

Vectorized rules emit **one diagnostic per rule**, anchored at the first
offending element with the total occurrence count in the message — a
50k-kernel trace with 50k bad descriptors must not allocate 50k
diagnostic objects.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator

SEVERITIES = ("error", "warning", "info")


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a stable code, where it is, and how to fix it."""

    code: str  # stable rule code, e.g. "MMB101"
    severity: str  # "error" | "warning" | "info"
    message: str  # what is wrong, with counts/values inline
    location: str  # artifact-relative anchor, e.g. "kernel[17] 'conv2d'"
    fix: str | None = None  # one-line suggestion
    source: str = ""  # which artifact was linted (path, store key, ...)

    def __post_init__(self):
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}; "
                             f"valid: {SEVERITIES}")

    @property
    def fingerprint(self) -> str:
        """Stable suppression handle: code + location (message-free, so
        reworded diagnostics stay suppressed)."""
        return f"{self.code}:{self.location}"

    def to_dict(self) -> dict:
        out = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "location": self.location,
        }
        if self.fix:
            out["fix"] = self.fix
        if self.source:
            out["source"] = self.source
        return out

    def render(self) -> str:
        tail = f"  [fix: {self.fix}]" if self.fix else ""
        where = f"{self.source}: " if self.source else ""
        return f"{self.severity:>7} {self.code} {where}{self.location}: " \
               f"{self.message}{tail}"


@dataclass(frozen=True)
class Rule:
    """One registered lint rule."""

    code: str
    severity: str
    kind: str  # artifact family: "trace" | "graph" | "schedule" | ...
    summary: str  # one-line catalog entry (docs/lint.md)
    fn: Callable[..., Iterable[Diagnostic]]


_REGISTRY: dict[str, Rule] = {}


def rule(code: str, severity: str, kind: str,
         summary: str) -> Callable[[Callable], Callable]:
    """Register a rule under ``code`` for artifact family ``kind``.

    The decorated function takes ``(artifact, ctx)`` and yields
    :class:`Diagnostic` objects (it may also return a list). The rule's
    declared severity is the default the helpers below stamp on emitted
    diagnostics; a rule may emit at a different severity explicitly.
    """
    if severity not in SEVERITIES:
        raise ValueError(f"unknown severity {severity!r} for rule {code}")

    def register(fn: Callable) -> Callable:
        if code in _REGISTRY:
            raise ValueError(f"duplicate lint rule code {code}")
        _REGISTRY[code] = Rule(code, severity, kind, summary, fn)
        fn.rule_code = code
        return fn

    return register


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule, sorted by code (the docs catalog order)."""
    return tuple(sorted(_REGISTRY.values(), key=lambda r: r.code))


def rules_for(kind: str) -> tuple[Rule, ...]:
    return tuple(r for r in all_rules() if r.kind == kind)


def get_rule(code: str) -> Rule:
    return _REGISTRY[code]


@dataclass
class LintContext:
    """Knobs and provenance shared by every rule of one run."""

    source: str = ""  # path / store key / object description
    unknown_threshold: float = 0.25  # MMB202 unknown-bucket ceiling
    dead_threshold: int = 0  # MMB103 fires above this many dead kernels
    horizon: float | None = None  # fault-plan horizon (seconds), if known
    devices: tuple[str, ...] = ()  # device pool a fault plan runs against

    def diag(self, rule_code: str, message: str, location: str,
             fix: str | None = None,
             severity: str | None = None) -> Diagnostic:
        spec = _REGISTRY[rule_code]
        return Diagnostic(
            code=rule_code,
            severity=severity if severity is not None else spec.severity,
            message=message,
            location=location,
            fix=fix,
            source=self.source,
        )


@dataclass
class LintReport:
    """The diagnostics of one lint run (possibly over many artifacts)."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    sources: list[str] = field(default_factory=list)
    suppressed: int = 0  # dropped by the baseline, kept for accounting

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    # -- accounting -------------------------------------------------------------

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "warning"]

    @property
    def infos(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "info"]

    @property
    def ok(self) -> bool:
        """No errors (warnings/infos allowed)."""
        return not self.errors

    def codes(self) -> list[str]:
        return sorted({d.code for d in self.diagnostics})

    def exit_code(self, strict: bool = False) -> int:
        """CLI exit code: 1 on errors, 1 on warnings too under strict."""
        if self.errors:
            return 1
        if strict and self.warnings:
            return 1
        return 0

    # -- composition ------------------------------------------------------------

    def extend(self, other: "LintReport") -> "LintReport":
        self.diagnostics.extend(other.diagnostics)
        self.sources.extend(s for s in other.sources
                            if s not in self.sources)
        self.suppressed += other.suppressed
        return self

    def apply_baseline(self, suppress: Iterable[str]) -> "LintReport":
        """Drop diagnostics matched by the baseline.

        Entries are either bare rule codes (``MMB202`` suppresses the rule
        everywhere) or full fingerprints (``MMB202:kernel[3] 'x'``
        suppresses one location).
        """
        keys = set(suppress)
        if not keys:
            return self
        kept = [d for d in self.diagnostics
                if d.code not in keys and d.fingerprint not in keys]
        return LintReport(
            diagnostics=kept,
            sources=list(self.sources),
            suppressed=self.suppressed + len(self.diagnostics) - len(kept),
        )

    # -- rendering --------------------------------------------------------------

    def summary_line(self) -> str:
        parts = [f"{len(self.errors)} error(s)",
                 f"{len(self.warnings)} warning(s)",
                 f"{len(self.infos)} info(s)"]
        if self.suppressed:
            parts.append(f"{self.suppressed} suppressed")
        n_src = len(self.sources)
        return f"lint: {', '.join(parts)} across {n_src} artifact(s)"

    def render(self) -> str:
        lines = [d.render() for d in self.diagnostics]
        lines.append(self.summary_line())
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "schema": "mmbench-lint/1",
            "sources": list(self.sources),
            "counts": {
                "error": len(self.errors),
                "warning": len(self.warnings),
                "info": len(self.infos),
                "suppressed": self.suppressed,
            },
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)


class LintFailure(ValueError):
    """Raised by pre-run lint hooks when an artifact has lint *errors*.

    Carries the full report so callers can render or serialize it; the
    message inlines the first few diagnostics so a bare traceback is
    already actionable.
    """

    def __init__(self, report: LintReport, what: str = "artifact"):
        self.report = report
        head = "; ".join(f"{d.code} {d.location}: {d.message}"
                         for d in report.errors[:3])
        more = len(report.errors) - 3
        if more > 0:
            head += f"; ... {more} more"
        super().__init__(
            f"{what} failed lint with {len(report.errors)} error(s): {head} "
            f"(pass lint=False to skip pre-run lint)")


def run_rules(kind: str, artifact, ctx: LintContext | None = None) -> LintReport:
    """Run every rule registered for ``kind`` against ``artifact``."""
    ctx = ctx if ctx is not None else LintContext()
    report = LintReport(sources=[ctx.source] if ctx.source else [])
    for spec in rules_for(kind):
        report.diagnostics.extend(spec.fn(artifact, ctx))
    return report


# -- suppressions / baseline files ------------------------------------------------

BASELINE_SCHEMA = "mmbench-lint-baseline/1"


def load_baseline(path) -> set[str]:
    """Read a baseline file into a suppression set.

    The file is JSON: ``{"schema": ..., "suppress": [codes or
    fingerprints]}``. A missing file is an empty baseline (so a fresh
    checkout lints unsuppressed).
    """
    p = Path(path)
    if not p.exists():
        return set()
    payload = json.loads(p.read_text())
    if payload.get("schema") != BASELINE_SCHEMA:
        raise ValueError(f"{p}: not a lint baseline "
                         f"(schema {payload.get('schema')!r})")
    entries = payload.get("suppress", [])
    if not isinstance(entries, list) or \
            not all(isinstance(e, str) for e in entries):
        raise ValueError(f"{p}: 'suppress' must be a list of strings")
    return set(entries)


def write_baseline(path, report: LintReport) -> int:
    """Write every current diagnostic's fingerprint as the new baseline.

    The adopt-then-ratchet workflow: run once with ``--write-baseline``
    to accept existing findings, commit the file, and from then on only
    *new* diagnostics fail the gate.
    """
    prints = sorted({d.fingerprint for d in report.diagnostics})
    payload = {"schema": BASELINE_SCHEMA, "suppress": prints}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    return len(prints)
