"""Static analysis for benchmark artifacts (``mmbench lint``).

The public surface is a family of ``lint_*`` entry points, one per
artifact type, each returning a :class:`~repro.lint.core.LintReport`:

* :func:`lint_trace` — a ``Trace``/``TraceColumns``/``StoredTrace``
* :func:`lint_graph` — a parsed ``mmbench-eg/1`` execution-graph payload
* :func:`lint_schedule` — a :class:`~repro.hw.streams.StreamSchedule`
* :func:`lint_serving_report` — a ``ServingReport`` (race replay)
* :func:`lint_fault_plan` — a ``FaultPlan`` (static, pre-resolve)
* :func:`lint_fleet` — a fleet config (groups + autoscale + fault plan)
* :func:`lint_tenants` / :func:`lint_registry` — configs
* :func:`lint_path` — sniff a JSON file (graph vs fault plan) and lint it
* :func:`lint_artifact` — dispatch on the object's type

plus :func:`check` — the opt-out pre-run hook used by
``profile_stored`` / ``simulate_mixed`` / ``get_or_ingest``: run a
report, raise :class:`~repro.lint.core.LintFailure` if it has errors.

Importing this package registers every rule (``trace_rules`` and
``schedule_rules`` run their :func:`~repro.lint.core.rule` decorators at
import time).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint import fleet_rules, schedule_rules, trace_rules  # noqa: F401  (registers rules)
from repro.lint.core import (
    Diagnostic,
    LintContext,
    LintFailure,
    LintReport,
    Rule,
    all_rules,
    load_baseline,
    run_rules,
    write_baseline,
)

__all__ = [
    "Diagnostic", "LintContext", "LintFailure", "LintReport", "Rule",
    "all_rules", "load_baseline", "write_baseline",
    "lint_trace", "lint_graph", "lint_schedule", "lint_serving_report",
    "lint_fault_plan", "lint_fleet", "lint_tenants", "lint_registry",
    "lint_path", "lint_artifact", "check",
]


def _columns_of(obj):
    """TraceColumns from a TraceColumns / Trace / StoredTrace."""
    if hasattr(obj, "stage_codes"):  # already columns
        return obj
    if hasattr(obj, "columns"):  # Trace
        return obj.columns()
    if hasattr(obj, "trace"):  # StoredTrace / ProfileResult / IngestedGraph
        return obj.trace.columns()
    raise TypeError(f"cannot lint {type(obj).__name__} as a trace")


def _ctx(source: str, **options) -> LintContext:
    ctx = LintContext(source=source)
    for key, value in options.items():
        if value is not None:
            setattr(ctx, key, value)
    return ctx


def lint_trace(trace, source: str = "trace", **options) -> LintReport:
    """Columnar rules (MMB1xx/MMB2xx) over a trace-like object."""
    return run_rules("trace", _columns_of(trace), _ctx(source, **options))


def lint_graph(payload: dict, source: str = "graph", **options) -> LintReport:
    """Static graph rules (MMB11x) over a parsed ``mmbench-eg/1`` dict."""
    return run_rules("graph", payload, _ctx(source, **options))


def lint_schedule(schedule, source: str = "schedule", **options) -> LintReport:
    """Stream race detection (MMB30x) over a :class:`StreamSchedule`."""
    return run_rules("schedule", schedule, _ctx(source, **options))


def lint_serving_report(report, source: str = "serving", **options) -> LintReport:
    """Timeline replay rules (MMB304/305) over a ``ServingReport``."""
    return run_rules("serving", report, _ctx(source, **options))


def lint_fault_plan(plan, source: str = "fault-plan", *, devices=(),
                    horizon: float | None = None, **options) -> LintReport:
    """Static fault-plan rules (MMB4xx). ``devices``/``horizon`` sharpen
    the blackout and past-horizon checks when the caller knows them."""
    ctx = _ctx(source, **options)
    ctx.devices = tuple(devices)
    ctx.horizon = horizon
    return run_rules("fault_plan", plan, ctx)


def lint_fleet(groups, autoscale=None, faults=None, source: str = "fleet",
               **options) -> LintReport:
    """Fleet-config rules (MMB31x) over groups + autoscale + fault plan.

    Accepts either a ready :class:`~repro.serving.fleet.FleetConfig` (as
    ``groups``) or the pieces separately.
    """
    if hasattr(groups, "groups") and hasattr(groups, "autoscale"):
        cfg = groups
    else:
        from repro.serving.fleet import FleetConfig

        cfg = FleetConfig(tuple(groups), autoscale, faults)
    return run_rules("fleet", cfg, _ctx(source, **options))


def lint_tenants(tenants, source: str = "tenants", **options) -> LintReport:
    """Tenant-config rules (MMB501) over a sequence of ``TenantSpec``."""
    return run_rules("tenants", tuple(tenants), _ctx(source, **options))


def lint_registry(registry, source: str = "registry", **options) -> LintReport:
    """Op-mapping registry rules (MMB51x)."""
    return run_rules("registry", registry, _ctx(source, **options))


# -- file / object dispatch --------------------------------------------------------


def lint_path(path, **options) -> LintReport:
    """Lint a JSON artifact file, sniffing its type.

    ``nodes`` marks an execution graph (linted statically, then — if the
    static pass found no errors — ingested and trace-linted, so columnar
    rules see the mapped events too); ``events`` marks a fault plan.
    """
    p = Path(path)
    payload = json.loads(p.read_text())
    if not isinstance(payload, dict):
        raise ValueError(f"{p}: not a JSON object")
    if "nodes" in payload:
        report = lint_graph(payload, source=str(p), **options)
        if report.ok:
            from repro.trace.ingest import IngestError, ingest_graph

            try:
                ingested = ingest_graph(payload, name=str(p))
            except IngestError as exc:
                # The static pass missed it but ingest would refuse it:
                # surface the refusal as a diagnostic, not a crash.
                report.diagnostics.append(Diagnostic(
                    code="MMB112", severity="error",
                    message=f"ingest rejects this graph: {exc}",
                    location="graph", source=str(p)))
            else:
                report.extend(lint_trace(ingested, source=str(p), **options))
        return report
    if "events" in payload:
        from repro.serving.faults import FaultPlan

        plan = FaultPlan.from_json(payload)
        return lint_fault_plan(plan, source=str(p), **options)
    raise ValueError(f"{p}: neither an execution graph ('nodes') nor a "
                     f"fault plan ('events')")


def lint_artifact(obj, source: str | None = None, **options) -> LintReport:
    """Dispatch on the artifact's type (the ``BenchmarkSuite.lint`` back end)."""
    if isinstance(obj, (str, Path)):
        return lint_path(obj, **options)
    if isinstance(obj, dict):
        if "nodes" in obj:
            return lint_graph(obj, source=source or "graph", **options)
        raise ValueError("dict artifact is not an execution graph "
                         "(missing 'nodes')")
    name = type(obj).__name__
    if hasattr(obj, "streams") and hasattr(obj, "makespan"):
        return lint_schedule(obj, source=source or name, **options)
    if hasattr(obj, "device_stats") and hasattr(obj, "requests"):
        return lint_serving_report(obj, source=source or name, **options)
    if hasattr(obj, "events") and hasattr(obj, "empty"):
        return lint_fault_plan(obj, source=source or name, **options)
    if hasattr(obj, "groups") and hasattr(obj, "autoscale"):
        return lint_fleet(obj, source=source or name, **options)
    if hasattr(obj, "rule_list"):
        return lint_registry(obj, source=source or name, **options)
    if isinstance(obj, (list, tuple)) and obj and hasattr(obj[0], "policy"):
        return lint_tenants(obj, source=source or name, **options)
    return lint_trace(obj, source=source or name, **options)


def check(report: LintReport, what: str = "artifact") -> LintReport:
    """Raise :class:`LintFailure` if ``report`` has errors; else pass it
    through (the shared tail of every pre-run hook)."""
    if not report.ok:
        raise LintFailure(report, what)
    return report
