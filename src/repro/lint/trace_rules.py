"""Columnar trace rules (MMB1xx/MMB2xx) and execution-graph rules.

Two artifact kinds live here:

* ``trace`` — rules over :class:`~repro.trace.columns.TraceColumns`.
  Every check is a handful of numpy reductions over existing columns, so
  linting a 50k-kernel trace costs low milliseconds. Captured traces are
  well-formed by construction; these rules exist for the other origins —
  binary store payloads (which validate code *bounds* but not value
  *signs* on load), hand-built event lists, and trace surgery.
* ``graph`` — rules over a parsed execution-graph JSON payload (the
  ``mmbench-eg/1`` dict), checked *without* running ingest: dependency
  violations, negative/non-finite explicit descriptors, dtype-vs-bytes
  inconsistency. These mirror (and statically front-run) the structured
  ``IngestError`` the ingest path raises.
"""

from __future__ import annotations

import math
from typing import Iterator

import numpy as np

from repro.lint.core import Diagnostic, LintContext, rule
from repro.trace.columns import PASS_ORDER, TraceColumns
from repro.trace.events import (
    STAGE_ENCODER,
    STAGE_FUSION,
    KernelCategory,
)

STAGE_UNKNOWN = "unknown"  # trace.ingest's bucket for unmapped ops

_OTHER_CODE = tuple(KernelCategory).index(KernelCategory.OTHER)

#: float64 work-descriptor columns checked by MMB101/MMB102, with the
#: location prefix their indices anchor to.
_KERNEL_DESCRIPTORS = ("flops", "bytes_read", "bytes_written")


def _kernel_location(cols: TraceColumns, idx: int) -> str:
    name = cols.name_table[int(cols.name_codes[idx])]
    return f"kernel[{idx}] {name!r}"


def _host_location(cols: TraceColumns, idx: int) -> str:
    name = cols.host_name_table[int(cols.host_name_codes[idx])]
    return f"host[{idx}] {name!r}"


def _first(mask: np.ndarray) -> int:
    return int(np.argmax(mask))


# ---------------------------------------------------------------------------
# MMB1xx — work descriptors over columns
# ---------------------------------------------------------------------------


@rule("MMB101", "error", "trace",
      "negative work descriptor (flops / bytes / threads / host bytes)")
def negative_work(cols: TraceColumns, ctx: LintContext) -> Iterator[Diagnostic]:
    for col in _KERNEL_DESCRIPTORS:
        values = getattr(cols, col)
        bad = values < 0
        if bad.any():
            i = _first(bad)
            yield ctx.diag(
                "MMB101",
                f"{int(bad.sum())} kernel(s) with negative {col} "
                f"(first: {values[i]:g})",
                _kernel_location(cols, i),
                fix=f"clamp or re-derive {col}; capture backends never "
                    f"emit negative work",
            )
    bad = cols.threads < 0
    if bad.any():
        i = _first(bad)
        yield ctx.diag(
            "MMB101",
            f"{int(bad.sum())} kernel(s) with negative threads "
            f"(first: {int(cols.threads[i])})",
            _kernel_location(cols, i),
            fix="thread counts are cardinalities; re-derive from shapes",
        )
    if cols.host_n:
        bad = cols.host_bytes < 0
        if bad.any():
            i = _first(bad)
            yield ctx.diag(
                "MMB101",
                f"{int(bad.sum())} host op(s) with negative bytes "
                f"(first: {cols.host_bytes[i]:g})",
                _host_location(cols, i),
                fix="transfer sizes are byte counts; re-derive from shapes",
            )


@rule("MMB102", "error", "trace",
      "non-finite (NaN/inf) work descriptor")
def nonfinite_work(cols: TraceColumns, ctx: LintContext) -> Iterator[Diagnostic]:
    for col in _KERNEL_DESCRIPTORS + ("coalesced_fraction", "reuse_factor"):
        values = getattr(cols, col)
        bad = ~np.isfinite(values)
        if bad.any():
            i = _first(bad)
            yield ctx.diag(
                "MMB102",
                f"{int(bad.sum())} kernel(s) with non-finite {col}",
                _kernel_location(cols, i),
                fix="NaN/inf poisons every roofline reduction downstream; "
                    "drop or re-derive the kernel",
            )
    if cols.host_n:
        bad = ~np.isfinite(cols.host_bytes)
        if bad.any():
            i = _first(bad)
            yield ctx.diag(
                "MMB102",
                f"{int(bad.sum())} host op(s) with non-finite bytes",
                _host_location(cols, i),
            )


@rule("MMB103", "warning", "trace",
      "dead kernel: zero flops and zero bytes (prices to zero time)")
def dead_kernels(cols: TraceColumns, ctx: LintContext) -> Iterator[Diagnostic]:
    dead = (cols.flops == 0) & (cols.bytes_read == 0) & (cols.bytes_written == 0)
    count = int(dead.sum())
    if count > ctx.dead_threshold:
        i = _first(dead)
        yield ctx.diag(
            "MMB103",
            f"{count} dead kernel(s): zero flops and zero bytes, so they "
            f"price to zero duration and hide in every breakdown",
            _kernel_location(cols, i),
            fix="drop no-op kernels at capture/ingest time, or attach the "
                "bytes they actually move",
        )


@rule("MMB104", "warning", "trace",
      "locality descriptor out of range (coalesced not in [0,1], reuse < 1)")
def locality_range(cols: TraceColumns, ctx: LintContext) -> Iterator[Diagnostic]:
    finite = np.isfinite(cols.coalesced_fraction)
    bad = finite & ((cols.coalesced_fraction < 0) | (cols.coalesced_fraction > 1))
    if bad.any():
        i = _first(bad)
        yield ctx.diag(
            "MMB104",
            f"{int(bad.sum())} kernel(s) with coalesced_fraction outside "
            f"[0, 1] (first: {cols.coalesced_fraction[i]:g})",
            _kernel_location(cols, i),
            fix="coalesced_fraction is a fraction of accesses; clamp to [0, 1]",
        )
    finite = np.isfinite(cols.reuse_factor)
    bad = finite & (cols.reuse_factor < 1)
    if bad.any():
        i = _first(bad)
        yield ctx.diag(
            "MMB104",
            f"{int(bad.sum())} kernel(s) with reuse_factor < 1 "
            f"(first: {cols.reuse_factor[i]:g})",
            _kernel_location(cols, i),
            fix="reuse_factor >= 1 by definition (each byte touched at "
                "least once)",
        )


# ---------------------------------------------------------------------------
# MMB2xx — pass/stage taxonomy over columns
# ---------------------------------------------------------------------------


@rule("MMB201", "error", "trace",
      "pass-taxonomy ordering violation (e.g. optimizer before backward)")
def pass_order(cols: TraceColumns, ctx: LintContext) -> Iterator[Diagnostic]:
    """Passes must not interleave: every kernel of a later pass must come
    after every kernel of any earlier pass (forward < loss < backward <
    optimizer in ``seq``)."""
    present = []
    for code, name in enumerate(PASS_ORDER):
        mask = cols.pass_codes == code
        if mask.any():
            present.append((name, mask,
                            int(cols.seq[mask].min()), int(cols.seq[mask].max())))
    for (early, _, _, early_max), (late, late_mask, late_min, _) in zip(
            present, present[1:]):
        if late_min <= early_max:
            i = _first(late_mask & (cols.seq == late_min))
            yield ctx.diag(
                "MMB201",
                f"{late} kernel at seq {late_min} precedes the last {early} "
                f"kernel (seq {early_max}); passes must not interleave",
                _kernel_location(cols, i),
                fix=f"re-check pass detection: a {late}-pass kernel cannot "
                    f"run before the {early} pass finishes",
            )


@rule("MMB202", "warning", "trace",
      "unknown-op bucket above threshold (unmapped ops dominate the trace)")
def unknown_bucket(cols: TraceColumns, ctx: LintContext) -> Iterator[Diagnostic]:
    """Ingest never drops unmapped ops — it buckets them as category OTHER
    in the 'unknown' stage. A large bucket means the priced numbers mostly
    reflect the fallback work model, not the graph."""
    if cols.n == 0 or STAGE_UNKNOWN not in cols.stage_table:
        return
    unknown_stage = cols.stage_table.index(STAGE_UNKNOWN)
    mask = (cols.category_codes == _OTHER_CODE) & \
           (cols.stage_codes == unknown_stage)
    fraction = float(mask.sum()) / cols.n
    if fraction > ctx.unknown_threshold:
        i = _first(mask)
        yield ctx.diag(
            "MMB202",
            f"unknown-op bucket is {fraction:.0%} of {cols.n} kernels "
            f"(threshold {ctx.unknown_threshold:.0%})",
            _kernel_location(cols, i),
            fix="register op-mapping rules (--op-map pattern=category) for "
                "the unmatched names",
        )


@rule("MMB203", "error", "trace",
      "fusion legality: forward fusion kernel before any encoder kernel")
def fusion_order(cols: TraceColumns, ctx: LintContext) -> Iterator[Diagnostic]:
    """Fusion consumes encoder outputs, so in the forward pass no fusion
    kernel can precede the first encoder kernel. Restricted to forward:
    the backward pass legitimately visits stages in reverse."""
    if STAGE_FUSION not in cols.stage_table or \
            STAGE_ENCODER not in cols.stage_table:
        return
    forward = cols.pass_codes == PASS_ORDER.index("forward")
    fusion = forward & (cols.stage_codes == cols.stage_table.index(STAGE_FUSION))
    encoder = forward & (cols.stage_codes == cols.stage_table.index(STAGE_ENCODER))
    if not fusion.any() or not encoder.any():
        return
    first_fusion = int(cols.seq[fusion].min())
    first_encoder = int(cols.seq[encoder].min())
    if first_fusion < first_encoder:
        i = _first(fusion & (cols.seq == first_fusion))
        yield ctx.diag(
            "MMB203",
            f"forward fusion kernel at seq {first_fusion} precedes the "
            f"first encoder kernel (seq {first_encoder}); fusion consumes "
            f"encoder outputs",
            _kernel_location(cols, i),
            fix="re-check stage tagging: fusion-stage work cannot start "
                "before its encoder inputs exist",
        )


@rule("MMB204", "info", "trace",
      "empty trace (no kernels)")
def empty_trace(cols: TraceColumns, ctx: LintContext) -> Iterator[Diagnostic]:
    if cols.n == 0:
        yield ctx.diag(
            "MMB204",
            "trace has no kernels; every priced metric will be zero",
            "trace",
            fix="check the capture/ingest produced the graph you expect",
        )


# ---------------------------------------------------------------------------
# graph rules — parsed mmbench-eg/1 payloads, checked without ingesting
# ---------------------------------------------------------------------------

#: explicit per-node work descriptors that must be finite and >= 0
_NODE_DESCRIPTORS = ("flops", "bytes_read", "bytes_written", "threads",
                     "coalesced_fraction", "reuse_factor", "bytes")
#: graph-level model descriptors with the same sign contract
_MODEL_DESCRIPTORS = ("parameters", "parameter_bytes", "input_bytes")

_DTYPE_BYTES = {
    "float64": 8, "float32": 4, "float16": 2, "bfloat16": 2,
    "int64": 8, "int32": 4, "int16": 2, "int8": 1, "uint8": 1, "bool": 1,
}


def _node_id(node: dict, index: int) -> str:
    nid = node.get("id", index)
    name = node.get("name")
    return f"node {nid} ({name!r})" if name else f"node {nid}"


def _bad_number(value) -> bool:
    """True when an explicit descriptor is negative, non-finite, or not a
    number at all (bool counts as not-a-number: it is a flag, not work)."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return True
    return not math.isfinite(value) or value < 0


@rule("MMB111", "error", "graph",
      "dependency violation: missing parent or dependency cycle")
def graph_dependencies(payload: dict, ctx: LintContext) -> Iterator[Diagnostic]:
    nodes = payload.get("nodes", [])
    ids = {node.get("id") for node in nodes if isinstance(node, dict)}
    adjacency: dict = {}
    missing = 0
    first_missing = None
    for index, node in enumerate(nodes):
        if not isinstance(node, dict):
            continue
        parents = node.get("parents", [])
        kept = []
        for parent in parents if isinstance(parents, list) else []:
            if parent not in ids:
                missing += 1
                if first_missing is None:
                    first_missing = (index, node, parent)
            else:
                kept.append(parent)
        adjacency[node.get("id")] = kept
    if first_missing is not None:
        index, node, parent = first_missing
        yield ctx.diag(
            "MMB111",
            f"{missing} edge(s) to parents that are not in the graph "
            f"(first: parent {parent!r})",
            _node_id(node, index),
            fix="emit every referenced node, or strip stale parent ids",
        )
    # Kahn's algorithm: whatever it cannot order sits on a cycle.
    indegree = {nid: 0 for nid in adjacency}
    children: dict = {nid: [] for nid in adjacency}
    for nid, parents in adjacency.items():
        indegree[nid] = len(parents)
        for parent in parents:
            children[parent].append(nid)
    ready = [nid for nid, deg in indegree.items() if deg == 0]
    ordered = 0
    while ready:
        nid = ready.pop()
        ordered += 1
        for child in children[nid]:
            indegree[child] -= 1
            if indegree[child] == 0:
                ready.append(child)
    if ordered < len(adjacency):
        stuck = sorted((nid for nid, deg in indegree.items() if deg > 0),
                       key=str)
        by_id = {node.get("id"): (i, node) for i, node in enumerate(nodes)
                 if isinstance(node, dict)}
        index, node = by_id[stuck[0]]
        yield ctx.diag(
            "MMB111",
            f"{len(stuck)} node(s) sit on a dependency cycle "
            f"(e.g. {', '.join(str(s) for s in stuck[:4])})",
            _node_id(node, index),
            fix="execution graphs are DAGs; break the cycle upstream",
        )


@rule("MMB112", "error", "graph",
      "negative or non-finite explicit work descriptor in graph JSON")
def graph_descriptors(payload: dict, ctx: LintContext) -> Iterator[Diagnostic]:
    bad = 0
    first = None
    for index, node in enumerate(payload.get("nodes", [])):
        if not isinstance(node, dict):
            continue
        for key in _NODE_DESCRIPTORS:
            if key in node and _bad_number(node[key]):
                bad += 1
                if first is None:
                    first = (index, node, key, node[key])
    if first is not None:
        index, node, key, value = first
        yield ctx.diag(
            "MMB112",
            f"{bad} explicit descriptor(s) that are negative, non-finite "
            f"or non-numeric (first: {key}={value!r})",
            _node_id(node, index),
            fix="explicit descriptors override shape-based estimation and "
                "must be finite and >= 0",
        )
    model = payload.get("model", {})
    if isinstance(model, dict):
        for key in _MODEL_DESCRIPTORS:
            if key in model and _bad_number(model[key]):
                yield ctx.diag(
                    "MMB112",
                    f"model metadata {key}={model[key]!r} is negative, "
                    f"non-finite or non-numeric",
                    f"model.{key}",
                    fix="model descriptors feed the peak-memory model; "
                        "they must be finite and >= 0",
                )


@rule("MMB110", "warning", "graph",
      "dtype-vs-bytes inconsistency: explicit bytes below the declared "
      "tensor footprint")
def dtype_bytes(payload: dict, ctx: LintContext) -> Iterator[Diagnostic]:
    """An explicit ``bytes_written`` smaller than the node's own declared
    output tensors (shape x dtype itemsize) contradicts the graph: the
    node cannot materialize its outputs in fewer bytes."""
    bad = 0
    first = None
    for index, node in enumerate(payload.get("nodes", [])):
        if not isinstance(node, dict) or "bytes_written" not in node:
            continue
        declared = node.get("output_shapes")
        dtypes = node.get("output_dtypes")
        if not isinstance(declared, list) or not isinstance(dtypes, list) \
                or len(declared) != len(dtypes):
            continue
        value = node["bytes_written"]
        if _bad_number(value):
            continue  # MMB112's finding, not ours
        footprint = 0
        for shape, dtype in zip(declared, dtypes):
            if not isinstance(shape, list) or dtype not in _DTYPE_BYTES:
                footprint = None
                break
            elems = 1
            for dim in shape:
                elems *= int(dim)
            footprint += elems * _DTYPE_BYTES[dtype]
        if footprint is not None and value < footprint:
            bad += 1
            if first is None:
                first = (index, node, value, footprint)
    if first is not None:
        index, node, value, footprint = first
        yield ctx.diag(
            "MMB110",
            f"{bad} node(s) declare explicit bytes_written below their own "
            f"output footprint (first: {value:g} < {footprint} bytes of "
            f"declared outputs)",
            _node_id(node, index),
            fix="either the shapes/dtypes or the explicit bytes are wrong; "
                "drop the explicit value to fall back to shape-based "
                "estimation",
        )
