"""Fleet-configuration lint rules (MMB31x).

A fleet configuration (:class:`repro.serving.fleet.FleetConfig`) is
fully declarative — device groups, an optional autoscale policy, an
optional fault plan — so misconfigurations that would surface as silent
clamping or a mid-run crash are statically checkable:

* **MMB310** — autoscale bounds oversubscribe a group's provisioned
  pool: ``max_replicas`` (or ``min_replicas``) above the group's
  capacity is silently clamped at run time, so the configured ceiling is
  never reachable.
* **MMB311** — autoscale thrash: a cooldown shorter than the evaluation
  interval cannot suppress anything (every tick is already past it),
  so a hovering metric flaps the fleet every interval.
* **MMB312** — the fault plan targets a device name that is not a group
  in this fleet; at run time plan resolution would refuse the whole
  plan.

The rules duck-type the config object (``groups`` / ``autoscale`` /
``faults`` attributes) so this module stays import-light — it never
pulls the serving stack in.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.core import Diagnostic, LintContext, rule


def _capacity(group) -> int:
    pool = getattr(group, "pool", None)
    return group.replicas if pool is None else pool


@rule("MMB310", "warning", "fleet",
      "autoscale replica bounds exceed a group's provisioned pool")
def oversubscribed_groups(cfg, ctx: LintContext) -> Iterator[Diagnostic]:
    scale = cfg.autoscale
    if scale is None:
        return
    for group in cfg.groups:
        cap = _capacity(group)
        if scale.max_replicas is not None and scale.max_replicas > cap:
            yield ctx.diag(
                "MMB310",
                f"autoscale max_replicas={scale.max_replicas} exceeds "
                f"group {group.device!r} pool of {cap}; the ceiling is "
                f"clamped and never reached",
                f"group '{group.device}'",
                fix=f"provision the group with pool>={scale.max_replicas} "
                    f"or lower max_replicas to {cap}")
        if scale.min_replicas > cap:
            yield ctx.diag(
                "MMB310",
                f"autoscale min_replicas={scale.min_replicas} exceeds "
                f"group {group.device!r} pool of {cap}; the floor is "
                f"clamped to the pool",
                f"group '{group.device}'",
                fix=f"lower min_replicas to at most {cap}")


@rule("MMB311", "warning", "fleet",
      "autoscale cooldown shorter than the evaluation interval (thrash)")
def autoscale_thrash(cfg, ctx: LintContext) -> Iterator[Diagnostic]:
    scale = cfg.autoscale
    if scale is None:
        return
    if scale.cooldown < scale.interval:
        yield ctx.diag(
            "MMB311",
            f"cooldown {scale.cooldown:g}s is shorter than the evaluation "
            f"interval {scale.interval:g}s, so it suppresses nothing: a "
            f"metric hovering at the threshold flaps the fleet every tick",
            "autoscale",
            fix=f"raise cooldown to at least {scale.interval:g}s "
                f"(several intervals is typical)")


@rule("MMB312", "error", "fleet",
      "fault plan targets a device that is not a fleet group")
def unknown_fault_groups(cfg, ctx: LintContext) -> Iterator[Diagnostic]:
    plan = cfg.faults
    if plan is None or not getattr(plan, "events", ()):
        return
    known = {group.device for group in cfg.groups}
    seen: set[str] = set()
    for i, event in enumerate(plan.events):
        device = event.device
        if device in known or device in seen:
            continue
        seen.add(device)
        yield ctx.diag(
            "MMB312",
            f"fault event targets {device!r}, which is not a group of this "
            f"fleet (groups: {', '.join(sorted(known))}); plan resolution "
            f"would refuse the whole plan",
            f"event[{i}] '{device}'",
            fix="name an existing group, or add the device as a group")
