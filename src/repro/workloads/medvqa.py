"""Medical VQA: vision-and-language answer generation (Intelligent Medicine).

A DenseNet image encoder and a RoBERTa-style question encoder feed a
transformer fusion; a GRU decoder generates the answer token sequence
(task "Gen." in Table 3). Built after ViLMedic's medical VQA pipelines.
"""

from __future__ import annotations

import numpy as np

from repro.data.generators import ChannelSpec
from repro.data.shapes import MEDICAL_VQA as SHAPES
from repro.workloads.base import MultiModalModel, unimodal_shapes
from repro.workloads.encoders import DenseNetSEncoder, TextTransformerEncoder
from repro.workloads.fusion import make_fusion
from repro.workloads.heads import GenerationHead

FUSIONS = ("transformer", "concat", "attention")
DEFAULT_FUSION = "transformer"

_FEATURE_DIM = 48
_ANSWER_LEN = 4


def _make_encoder(modality: str, rng: np.random.Generator):
    spec = SHAPES.modality(modality)
    if modality == "image":
        return DenseNetSEncoder(3, _FEATURE_DIM, rng)
    # RoBERTa stand-in: a slightly wider text transformer.
    return TextTransformerEncoder(spec.vocab_size, _FEATURE_DIM, rng,
                                  embed_dim=96, max_len=spec.shape[0])


def build(fusion: str = DEFAULT_FUSION, seed: int = 0) -> MultiModalModel:
    rng = np.random.default_rng(seed)
    encoders = {m.name: _make_encoder(m.name, rng) for m in SHAPES.modalities}
    fusion_module = make_fusion(fusion, [_FEATURE_DIM, _FEATURE_DIM], _FEATURE_DIM, rng=rng)
    head = GenerationHead(_FEATURE_DIM, SHAPES.task.num_classes, _ANSWER_LEN, rng)
    return MultiModalModel(f"medical_vqa[{fusion}]", SHAPES, encoders, fusion_module, head)


def build_unimodal(modality: str, seed: int = 0) -> MultiModalModel:
    rng = np.random.default_rng(seed)
    encoder = _make_encoder(modality, rng)
    head = GenerationHead(_FEATURE_DIM, SHAPES.task.num_classes, _ANSWER_LEN, rng)
    return MultiModalModel(
        f"medical_vqa:{modality}", unimodal_shapes(SHAPES, modality), {modality: encoder}, None, head
    )


def default_channels() -> dict[str, ChannelSpec]:
    """Answers need *both* the scan and the question — neither dominates."""
    return {
        "image": ChannelSpec(snr=1.2, corrupt_prob=0.10),
        "text": ChannelSpec(snr=1.4, corrupt_prob=0.05),
    }
