"""AV-MNIST: audio-visual digit classification (Multimedia domain).

Images of handwritten digits paired with spectrograms of spoken digits;
both modalities are encoded with LeNet (Table 3). This is the paper's
workhorse workload: the hotspot-kernel study (Fig. 9), the batch-size case
study (Figs. 12-13) and the edge-migration study (Figs. 14-15) all run on
it. The paper's ``slfs`` variant — "an implementation of multi-modal with
31x parameters" — is reproduced as a concat-fusion model with a widened
feature/hidden dimension.
"""

from __future__ import annotations

import numpy as np

from repro.data.generators import ChannelSpec
from repro.data.shapes import AVMNIST as SHAPES
from repro.workloads.base import MultiModalModel, unimodal_shapes
from repro.workloads.encoders import LeNetEncoder
from repro.workloads.fusion import make_fusion
from repro.workloads.heads import ClassificationHead

FUSIONS = ("concat", "tensor", "sum", "attention", "linear_glu", "transformer", "late_lstm", "slfs")
DEFAULT_FUSION = "concat"

_FEATURE_DIM = 32
_SLFS_FEATURE_DIM = 96  # widened variant: ~an order of magnitude more parameters


def build(fusion: str = DEFAULT_FUSION, seed: int = 0) -> MultiModalModel:
    """Build the multi-modal AV-MNIST model with the chosen fusion."""
    rng = np.random.default_rng(seed)
    feature_dim = _SLFS_FEATURE_DIM if fusion == "slfs" else _FEATURE_DIM
    fusion_name = "concat" if fusion == "slfs" else fusion
    encoders = {
        "image": LeNetEncoder(1, feature_dim, rng, input_hw=(28, 28)),
        "audio": LeNetEncoder(1, feature_dim, rng, input_hw=(20, 20)),
    }
    fusion_module = make_fusion(fusion_name, [feature_dim, feature_dim], feature_dim, rng=rng)
    head = ClassificationHead(feature_dim, SHAPES.task.num_classes, rng,
                              hidden=2 * feature_dim)
    return MultiModalModel(f"avmnist[{fusion}]", SHAPES, encoders, fusion_module, head)


def build_unimodal(modality: str, seed: int = 0) -> MultiModalModel:
    """Single-modality baseline (``image`` or ``audio``)."""
    rng = np.random.default_rng(seed)
    hw = (28, 28) if modality == "image" else (20, 20)
    encoder = LeNetEncoder(1, _FEATURE_DIM, rng, input_hw=hw)
    head = ClassificationHead(_FEATURE_DIM, SHAPES.task.num_classes, rng)
    return MultiModalModel(
        f"avmnist:{modality}",
        unimodal_shapes(SHAPES, modality),
        {modality: encoder},
        None,
        head,
    )


def default_channels() -> dict[str, ChannelSpec]:
    """Image is the major modality; audio is noisier and partly corrupted."""
    return {
        "image": ChannelSpec(snr=1.3, corrupt_prob=0.10),
        "audio": ChannelSpec(snr=0.7, corrupt_prob=0.30),
    }
