"""MuJoCo Push: object-pose prediction from robot sensors (Smart Robotics).

Predicts the pose of an object pushed by a robot end-effector from
position, force/sensor, vision and control streams [22]. Table 3:
MLP encoders for the low-dimensional streams, CNN for the image. The
paper's stage analysis singles this workload out: its transformer-fusion
variant spends ~3x the encoder stage's time in fusion, and its image
modality is a 4.09x straggler over the other encoders (Figs. 6, 10).
"""

from __future__ import annotations

import numpy as np

from repro.data.generators import ChannelSpec
from repro.data.shapes import MUJOCO_PUSH as SHAPES
from repro.workloads.base import MultiModalModel, unimodal_shapes
from repro.workloads.encoders import CNNEncoder, MLPEncoder
from repro.workloads.fusion import make_fusion
from repro.workloads.heads import RegressionHead

FUSIONS = ("late_lstm", "tensor", "concat", "transformer")
DEFAULT_FUSION = "late_lstm"

_FEATURE_DIM = 32


def _make_encoder(modality: str, rng: np.random.Generator):
    spec = SHAPES.modality(modality)
    if modality == "image":
        return CNNEncoder(spec.shape[0], _FEATURE_DIM, rng)
    t, d = spec.shape
    return MLPEncoder(t * d, _FEATURE_DIM, rng)


def build(fusion: str = DEFAULT_FUSION, seed: int = 0) -> MultiModalModel:
    rng = np.random.default_rng(seed)
    encoders = {m.name: _make_encoder(m.name, rng) for m in SHAPES.modalities}
    fusion_module = make_fusion(fusion, [_FEATURE_DIM] * 4, _FEATURE_DIM, rng=rng)
    head = RegressionHead(_FEATURE_DIM, SHAPES.task.output_dim, rng)
    return MultiModalModel(f"mujoco_push[{fusion}]", SHAPES, encoders, fusion_module, head)


def build_unimodal(modality: str, seed: int = 0) -> MultiModalModel:
    rng = np.random.default_rng(seed)
    encoder = _make_encoder(modality, rng)
    head = RegressionHead(_FEATURE_DIM, SHAPES.task.output_dim, rng)
    return MultiModalModel(
        f"mujoco_push:{modality}", unimodal_shapes(SHAPES, modality), {modality: encoder}, None, head
    )


def default_channels() -> dict[str, ChannelSpec]:
    """Proprioception carries x; vision carries y; fusion needs both."""
    return {
        "position": ChannelSpec(snr=1.2, corrupt_prob=0.10, informative_components=(0,)),
        "sensor": ChannelSpec(snr=0.9, corrupt_prob=0.20, informative_components=(0,)),
        "image": ChannelSpec(snr=1.2, corrupt_prob=0.10, informative_components=(1,)),
        "control": ChannelSpec(snr=0.7, corrupt_prob=0.25, informative_components=(0, 1)),
    }
