"""The staged multi-modal model skeleton.

Every MMBench application follows the three-stage execution pattern the
paper characterizes: per-modality *encoders* run first (with host-to-device
transfers for each modality's raw input), a *modality synchronization
barrier* waits for all encoders, the *fusion* network federates the
features (with host-side intermediate-data preparation), and the *head*
produces the task output.

:class:`MultiModalModel` encodes that skeleton once, emitting the stage /
modality / host events that the profiling pipeline consumes, so the nine
workload modules only specify their encoders, fusion and head. Workloads
with structurally different fusion (Medical Seg.'s bottleneck-map fusion,
TransFuser's feature-map cross-attention) override the protected hooks.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.data.shapes import ModalityKind, WorkloadShapes
from repro.nn.backend import is_meta
from repro.nn.tensor import Tensor
from repro.trace.events import (
    HostOpKind,
    STAGE_ENCODER,
    STAGE_FUSION,
    STAGE_HEAD,
    STAGE_PREPROCESS,
)
from repro.trace.tracer import emit_host, modality_scope, stage_scope
from repro.workloads.fusion import FusionModule


def _array_nbytes(array) -> float:
    """Byte size of a raw batch array (real ndarray, list, or meta)."""
    if hasattr(array, "nbytes"):
        return float(array.nbytes)
    return float(np.asarray(array).nbytes)


class MultiModalModel(nn.Module):
    """Encoder(s) -> fusion -> head, with stage/modality tracing built in.

    Parameters
    ----------
    name:
        Workload name (registry key).
    shapes:
        The workload's modality/task structure.
    encoders:
        One module per modality, keyed by modality name. Order follows
        ``shapes.modalities``.
    fusion:
        A :class:`~repro.workloads.fusion.FusionModule`, or ``None`` for
        uni-modal models (the encoder feature feeds the head directly and
        no fusion stage is traced — matching how the paper's uni-modal
        baselines execute).
    head:
        The task head.
    """

    def __init__(
        self,
        name: str,
        shapes: WorkloadShapes,
        encoders: dict[str, nn.Module],
        fusion: FusionModule | None,
        head: nn.Module,
    ):
        super().__init__()
        self.name = name
        self.shapes = shapes
        missing = [m.name for m in shapes.modalities if m.name not in encoders]
        extra = [k for k in encoders if k not in {m.name for m in shapes.modalities}]
        if missing or extra:
            raise ValueError(
                f"encoder/modality mismatch for {name!r}: missing={missing} extra={extra}"
            )
        self._encoder_order = [m.name for m in shapes.modalities]
        for mod_name, enc in encoders.items():
            setattr(self, f"encoder_{mod_name}", enc)
        self.encoders = encoders
        self.fusion = fusion
        self.head = head

    # -- hooks workloads may override ------------------------------------------

    def _prepare_input(self, modality: str, array: np.ndarray):
        """Raw batch -> encoder input (Tensor, or ids for token encoders).

        Accepts real numpy arrays (eager backend) or shape-only
        :class:`~repro.nn.backend.MetaArray` batches (meta backend).
        """
        spec = self.shapes.modality(modality)
        if spec.kind == ModalityKind.TOKENS:
            return array if is_meta(array) else np.asarray(array)
        if is_meta(array):
            return Tensor(array.astype(np.float32))
        return Tensor(np.asarray(array, dtype=np.float32))

    def _encode(self, modality: str, array: np.ndarray) -> Tensor:
        return self.encoders[modality](self._prepare_input(modality, array))

    def _fuse(self, features: list[Tensor]) -> Tensor:
        assert self.fusion is not None
        return self.fusion(features)

    def _run_head(self, fused: Tensor) -> Tensor:
        return self.head(fused)

    # -- the staged forward ------------------------------------------------------

    def forward(self, batch: dict[str, np.ndarray]) -> Tensor:
        """End-to-end staged inference/training forward over a raw batch."""
        missing = [m for m in self._encoder_order if m not in batch]
        if missing:
            raise KeyError(f"batch missing modality {missing[0]!r}")
        features: list[Tensor] = []
        with stage_scope(STAGE_PREPROCESS):
            # End-to-end execution includes raw-data preprocessing on the
            # host (decoding, feature extraction) — Sec. 3.1's second
            # design feature. Cost scales with the raw input size.
            for mod_name in self._encoder_order:
                emit_host(
                    HostOpKind.PREPROCESS,
                    bytes=_array_nbytes(batch[mod_name]),
                    name=f"preprocess:{mod_name}",
                )
        with stage_scope(STAGE_ENCODER):
            for mod_name in self._encoder_order:
                with modality_scope(mod_name):
                    emit_host(
                        HostOpKind.H2D,
                        bytes=_array_nbytes(batch[mod_name]),
                        name=f"h2d:{mod_name}",
                    )
                    features.append(self._encode(mod_name, batch[mod_name]))

        if self.fusion is None:
            if len(features) != 1:
                raise RuntimeError(f"{self.name}: fusion is None but got {len(features)} modalities")
            fused = features[0]
        else:
            with stage_scope(STAGE_FUSION):
                feature_bytes = float(sum(f.nbytes for f in features))
                # Modality synchronization barrier: the fusion network
                # waits for the completion of every modality's stream.
                for mod_name in self._encoder_order:
                    emit_host(HostOpKind.SYNC, name=f"modality_sync:{mod_name}")
                # "Additional CPU-GPU synchronization is needed to process
                # intermediate data, such as the feature maps generated from
                # various modalities" (Sec. 1): the features round-trip to
                # the host for preparation and return to the device.
                emit_host(HostOpKind.D2H, bytes=feature_bytes, name="fusion_feature_d2h")
                emit_host(HostOpKind.DATA_PREP, bytes=feature_bytes, name="fusion_data_prep")
                emit_host(HostOpKind.H2D, bytes=feature_bytes, name="fusion_feature_h2d")
                fused = self._fuse(features)

        with stage_scope(STAGE_HEAD):
            return self._run_head(fused)

    # -- conveniences --------------------------------------------------------------

    @property
    def modality_names(self) -> list[str]:
        return list(self._encoder_order)

    @property
    def is_multimodal(self) -> bool:
        return len(self._encoder_order) > 1

    def input_bytes(self, batch_size: int) -> int:
        """Raw input footprint of one batch (feeds the memory model)."""
        return batch_size * self.shapes.sample_bytes


def unimodal_shapes(shapes: WorkloadShapes, modality: str) -> WorkloadShapes:
    """Restrict a workload's shape spec to a single modality."""
    spec = shapes.modality(modality)
    return WorkloadShapes(name=f"{shapes.name}:{modality}", modalities=(spec,), task=shapes.task)
