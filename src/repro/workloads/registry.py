"""Workload registry: Table 3 as data.

Maps each of the nine applications to its domain, model-size class,
modalities, fusion options and builder functions, and provides the lookup
API the suite, analyses and CLI use.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import ModuleType

from repro.data.generators import ChannelSpec
from repro.data.shapes import WorkloadShapes
from repro.workloads import (
    avmnist,
    medseg,
    medvqa,
    mmimdb,
    mosei,
    mustard,
    push,
    transfuser,
    visiontouch,
)
from repro.workloads.base import MultiModalModel


@dataclass(frozen=True)
class WorkloadInfo:
    """One row of Table 3."""

    name: str
    domain: str
    model_size: str  # Small / Medium / Large
    shapes: WorkloadShapes
    fusions: tuple[str, ...]
    default_fusion: str
    metric: str  # headline metric name from Figure 4
    module: ModuleType

    def build(self, fusion: str | None = None, seed: int = 0) -> MultiModalModel:
        """Build the multi-modal model (optionally choosing the fusion)."""
        return self.module.build(fusion or self.default_fusion, seed=seed)

    def build_unimodal(self, modality: str, seed: int = 0) -> MultiModalModel:
        """Build a single-modality baseline."""
        return self.module.build_unimodal(modality, seed=seed)

    def default_channels(self) -> dict[str, ChannelSpec]:
        """Per-modality dataset channel specs (informativeness/noise)."""
        return self.module.default_channels()

    @property
    def modalities(self) -> tuple[str, ...]:
        return self.shapes.modality_names

    @property
    def task_kind(self) -> str:
        return self.shapes.task.kind


_ENTRIES = (
    WorkloadInfo("avmnist", "Multimedia", "Small", avmnist.SHAPES,
                 avmnist.FUSIONS, avmnist.DEFAULT_FUSION, "accuracy", avmnist),
    WorkloadInfo("mmimdb", "Multimedia", "Large", mmimdb.SHAPES,
                 mmimdb.FUSIONS, mmimdb.DEFAULT_FUSION, "f1_micro", mmimdb),
    WorkloadInfo("cmu_mosei", "Affective Computing", "Large", mosei.SHAPES,
                 mosei.FUSIONS, mosei.DEFAULT_FUSION, "mse", mosei),
    WorkloadInfo("mustard", "Affective Computing", "Large", mustard.SHAPES,
                 mustard.FUSIONS, mustard.DEFAULT_FUSION, "accuracy", mustard),
    WorkloadInfo("medical_vqa", "Intelligent Medicine", "Large", medvqa.SHAPES,
                 medvqa.FUSIONS, medvqa.DEFAULT_FUSION, "token_accuracy", medvqa),
    WorkloadInfo("medical_seg", "Intelligent Medicine", "Medium", medseg.SHAPES,
                 medseg.FUSIONS, medseg.DEFAULT_FUSION, "dice", medseg),
    WorkloadInfo("mujoco_push", "Smart Robotics", "Medium", push.SHAPES,
                 push.FUSIONS, push.DEFAULT_FUSION, "mse", push),
    WorkloadInfo("vision_touch", "Smart Robotics", "Medium", visiontouch.SHAPES,
                 visiontouch.FUSIONS, visiontouch.DEFAULT_FUSION, "accuracy", visiontouch),
    WorkloadInfo("transfuser", "Automatic Driving", "Medium", transfuser.SHAPES,
                 transfuser.FUSIONS, transfuser.DEFAULT_FUSION, "l1", transfuser),
)

WORKLOADS: dict[str, WorkloadInfo] = {e.name: e for e in _ENTRIES}


def get_workload(name: str) -> WorkloadInfo:
    """Look up a workload by name."""
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; available: {sorted(WORKLOADS)}") from None


def list_workloads() -> list[str]:
    """All registered workload names in Table 3 order."""
    return [e.name for e in _ENTRIES]


def domains() -> dict[str, list[str]]:
    """Workloads grouped by application domain."""
    grouped: dict[str, list[str]] = {}
    for e in _ENTRIES:
        grouped.setdefault(e.domain, []).append(e.name)
    return grouped
