"""The nine MMBench applications (Table 3)."""

from repro.workloads import (
    avmnist,
    medseg,
    medvqa,
    mmimdb,
    mosei,
    mustard,
    push,
    transfuser,
    visiontouch,
)
from repro.workloads.base import MultiModalModel, unimodal_shapes
from repro.workloads.fusion import FUSION_REGISTRY, FusionModule, make_fusion
from repro.workloads.registry import (
    WORKLOADS,
    WorkloadInfo,
    domains,
    get_workload,
    list_workloads,
)

__all__ = [
    "avmnist", "medseg", "medvqa", "mmimdb", "mosei", "mustard",
    "push", "transfuser", "visiontouch",
    "MultiModalModel", "unimodal_shapes",
    "FUSION_REGISTRY", "FusionModule", "make_fusion",
    "WORKLOADS", "WorkloadInfo", "domains", "get_workload", "list_workloads",
]
