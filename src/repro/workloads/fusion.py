"""Fusion operators (Table 1) and fusion networks.

Table 1 of the paper lists the commonly used fusion operators:

======== ============================================ =========================
Type     F(x, y)                                      Meaning
======== ============================================ =========================
Zero     0                                            discards the features
Sum      x + y                                        sums features
Concat   ReLU(Concat(x, y) W + b)                     concatenates features
Tensor   x ⊗ y                                        outer-product attention
Attn     Softmax(x yᵀ / sqrt(C_y))                    attention mechanism
GLU      GLU(x W1, y W2) = x W1 ⊙ sigmoid(y W2)       linear layer with GLU
======== ============================================ =========================

plus the transformer fusion used by the heavier workloads. Every fusion
module here takes a list of per-modality feature vectors ``(B, D_i)`` and
returns a fused representation ``(B, out_dim)``; operators defined for two
modalities fold pairwise over more.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.nn import functional as F
from repro.nn.tensor import Tensor


class FusionModule(nn.Module):
    """Base: fuse a list of per-modality features into one vector."""

    #: registry name, set on subclasses
    fusion_name = "base"

    def __init__(self, input_dims: list[int], out_dim: int):
        super().__init__()
        self.input_dims = list(input_dims)
        self.out_dim = out_dim

    def forward(self, features: list[Tensor]) -> Tensor:
        raise NotImplementedError

    def _check(self, features: list[Tensor]) -> None:
        if len(features) != len(self.input_dims):
            raise ValueError(
                f"{type(self).__name__} expects {len(self.input_dims)} modalities, "
                f"got {len(features)}"
            )


class ZeroFusion(FusionModule):
    """Discards all features — the degenerate baseline of Table 1."""

    fusion_name = "zero"

    def forward(self, features: list[Tensor]) -> Tensor:
        self._check(features)
        batch = features[0].shape[0]
        return Tensor(np.zeros((batch, self.out_dim), dtype=np.float32))


class SumFusion(FusionModule):
    """Project each modality to ``out_dim`` and sum."""

    fusion_name = "sum"

    def __init__(self, input_dims: list[int], out_dim: int, rng: np.random.Generator | None = None):
        super().__init__(input_dims, out_dim)
        rng = rng or np.random.default_rng(0)
        self.projections = nn.ModuleList([nn.Linear(d, out_dim, rng=rng) for d in input_dims])

    def forward(self, features: list[Tensor]) -> Tensor:
        self._check(features)
        out = self.projections[0](features[0])
        for proj, feat in zip(list(self.projections)[1:], features[1:]):
            out = out + proj(feat)
        return out


class ConcatFusion(FusionModule):
    """``ReLU(Concat(x, y) W + b)`` — the workhorse early/late fusion."""

    fusion_name = "concat"

    def __init__(self, input_dims: list[int], out_dim: int, rng: np.random.Generator | None = None):
        super().__init__(input_dims, out_dim)
        rng = rng or np.random.default_rng(0)
        self.fc = nn.Linear(sum(input_dims), out_dim, rng=rng)

    def forward(self, features: list[Tensor]) -> Tensor:
        self._check(features)
        return F.relu(self.fc(F.concat(features, axis=-1)))


class TensorFusion(FusionModule):
    """Outer-product fusion ``x ⊗ y`` (Tensor Fusion Networks).

    Each modality is first projected to a small rank to bound the product's
    size; modalities beyond the second fold in pairwise. The flattened
    product is projected to ``out_dim``. The large intermediate outer
    product is what gives this operator its distinctive memory profile
    (Figure 9b's jump in DRAM read bytes).
    """

    fusion_name = "tensor"

    def __init__(self, input_dims: list[int], out_dim: int, rank: int = 12,
                 rng: np.random.Generator | None = None):
        super().__init__(input_dims, out_dim)
        rng = rng or np.random.default_rng(0)
        self.rank = rank
        self.projections = nn.ModuleList([nn.Linear(d, rank, rng=rng) for d in input_dims])
        self.folds = nn.ModuleList(
            [nn.Linear(rank * rank, rank, rng=rng) for _ in range(len(input_dims) - 2)]
        )
        self.fc = nn.Linear(rank * rank, out_dim, rng=rng)

    def forward(self, features: list[Tensor]) -> Tensor:
        self._check(features)
        scale = 1.0 / np.sqrt(self.rank)
        projected = [F.relu(p(f)) for p, f in zip(self.projections, features)]
        acc = F.outer_product(projected[0], projected[1])
        # Variance-stabilizing rescale of the outer product: an element-wise
        # pass over the large fused intermediate (the DRAM-read-heavy
        # Elewise kernel the paper's Figure 9b observes for tensor fusion).
        acc = acc.reshape((acc.shape[0], -1)) * scale
        for fold, feat in zip(self.folds, projected[2:]):
            acc = F.relu(fold(acc))
            acc = F.outer_product(acc, feat)
            acc = acc.reshape((acc.shape[0], -1)) * scale
        return F.relu(self.fc(acc))


def _pick_heads(out_dim: int, requested: int) -> int:
    """Largest head count <= requested that divides the fused dimension."""
    for heads in range(min(requested, out_dim), 0, -1):
        if out_dim % heads == 0:
            return heads
    return 1


class AttentionFusion(FusionModule):
    """``Softmax(x yᵀ / sqrt(C_y))``-style cross-modality attention.

    Modality vectors are projected to a shared dimension and treated as a
    length-M token sequence; one multi-head attention layer mixes them and
    the result is mean-pooled.
    """

    fusion_name = "attention"

    def __init__(self, input_dims: list[int], out_dim: int, num_heads: int = 4,
                 rng: np.random.Generator | None = None):
        super().__init__(input_dims, out_dim)
        rng = rng or np.random.default_rng(0)
        self.projections = nn.ModuleList([nn.Linear(d, out_dim, rng=rng) for d in input_dims])
        self.attn = nn.MultiheadAttention(out_dim, _pick_heads(out_dim, num_heads), rng=rng)

    def forward(self, features: list[Tensor]) -> Tensor:
        self._check(features)
        tokens = F.stack([p(f) for p, f in zip(self.projections, features)], axis=1)
        mixed = self.attn(tokens)
        return mixed.mean(axis=1)


class LinearGLUFusion(FusionModule):
    """``x W1 ⊙ sigmoid(y W2)`` — gated linear fusion; folds over modalities."""

    fusion_name = "linear_glu"

    def __init__(self, input_dims: list[int], out_dim: int, rng: np.random.Generator | None = None):
        super().__init__(input_dims, out_dim)
        rng = rng or np.random.default_rng(0)
        self.value_proj = nn.Linear(input_dims[0], out_dim, rng=rng)
        self.gate_projs = nn.ModuleList(
            [nn.Linear(d, out_dim, rng=rng) for d in input_dims[1:]]
        )

    def forward(self, features: list[Tensor]) -> Tensor:
        self._check(features)
        out = self.value_proj(features[0])
        for proj, feat in zip(self.gate_projs, features[1:]):
            out = F.glu(out, proj(feat))
        return out


class TransformerFusion(FusionModule):
    """Multi-modal transformer fusion (MulT / TransFuser style).

    Modality vectors become tokens with learned modality embeddings; a
    small transformer encoder stack mixes them. This is the most
    synchronization- and compute-heavy fusion, which is why MuJoCo Push's
    transformer-fusion variant spends ~3x the encoder stage's time in
    fusion (Sec. 4.3.1).
    """

    fusion_name = "transformer"

    def __init__(self, input_dims: list[int], out_dim: int, num_heads: int = 4,
                 num_layers: int = 2, rng: np.random.Generator | None = None):
        super().__init__(input_dims, out_dim)
        rng = rng or np.random.default_rng(0)
        self.projections = nn.ModuleList([nn.Linear(d, out_dim, rng=rng) for d in input_dims])
        self.modality_embed = nn.Parameter(
            nn.init.normal((len(input_dims), out_dim), 0.02, rng)
        )
        heads = _pick_heads(out_dim, num_heads)
        self.layers = nn.ModuleList(
            [nn.TransformerEncoderLayer(out_dim, heads, rng=rng) for _ in range(num_layers)]
        )

    def forward(self, features: list[Tensor]) -> Tensor:
        self._check(features)
        tokens = F.stack([p(f) for p, f in zip(self.projections, features)], axis=1)
        tokens = tokens + self.modality_embed
        for layer in self.layers:
            tokens = layer(tokens)
        return tokens.mean(axis=1)


class LateFusionLSTM(FusionModule):
    """Late fusion via an LSTM over the modality-feature sequence.

    The modality features are treated as a short sequence consumed by an
    LSTM whose final hidden state is the fused representation — the
    late-fusion implementation whose MuJoCo Push MSE the paper contrasts
    with tensor fusion (Sec. 4.2.2).
    """

    fusion_name = "late_lstm"

    def __init__(self, input_dims: list[int], out_dim: int, rng: np.random.Generator | None = None):
        super().__init__(input_dims, out_dim)
        rng = rng or np.random.default_rng(0)
        self.projections = nn.ModuleList([nn.Linear(d, out_dim, rng=rng) for d in input_dims])
        self.lstm = nn.LSTM(out_dim, out_dim, rng=rng)

    def forward(self, features: list[Tensor]) -> Tensor:
        self._check(features)
        seq = F.stack([p(f) for p, f in zip(self.projections, features)], axis=1)
        _, (h, _) = self.lstm(seq)
        return h


FUSION_REGISTRY: dict[str, type[FusionModule]] = {
    cls.fusion_name: cls
    for cls in (
        ZeroFusion,
        SumFusion,
        ConcatFusion,
        TensorFusion,
        AttentionFusion,
        LinearGLUFusion,
        TransformerFusion,
        LateFusionLSTM,
    )
}


def make_fusion(
    name: str,
    input_dims: list[int],
    out_dim: int,
    rng: np.random.Generator | None = None,
    **kwargs,
) -> FusionModule:
    """Instantiate a fusion operator by registry name."""
    try:
        cls = FUSION_REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown fusion {name!r}; available: {sorted(FUSION_REGISTRY)}") from None
    if cls is ZeroFusion:
        return cls(input_dims, out_dim)
    return cls(input_dims, out_dim, rng=rng, **kwargs)
