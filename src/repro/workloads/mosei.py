"""CMU-MOSEI: sentence-level sentiment regression (Affective Computing).

Language (BERT-style transformer), vision (OpenFace facial-feature stream)
and audio (Librosa acoustic-feature stream) predict a continuous sentiment
score. The paper rebuilds the workload end-to-end with MMSA-FET feature
extraction in the forward pass — reproduced here as host-side PREPROCESS
events sized by the raw streams plus learned feature-stream encoders.
"""

from __future__ import annotations

import numpy as np

from repro.data.generators import ChannelSpec
from repro.data.shapes import CMU_MOSEI as SHAPES
from repro.workloads.base import MultiModalModel, unimodal_shapes
from repro.workloads.encoders import SequenceMLPEncoder, TextTransformerEncoder
from repro.workloads.fusion import make_fusion
from repro.workloads.heads import RegressionHead

FUSIONS = ("concat", "tensor", "transformer", "sum", "attention")
DEFAULT_FUSION = "transformer"

_FEATURE_DIM = 32


def _make_encoder(modality: str, rng: np.random.Generator):
    spec = SHAPES.modality(modality)
    if modality == "language":
        return TextTransformerEncoder(spec.vocab_size, _FEATURE_DIM, rng,
                                      max_len=spec.shape[0])
    return SequenceMLPEncoder(spec.shape[1], _FEATURE_DIM, rng)


def build(fusion: str = DEFAULT_FUSION, seed: int = 0) -> MultiModalModel:
    rng = np.random.default_rng(seed)
    encoders = {m.name: _make_encoder(m.name, rng) for m in SHAPES.modalities}
    fusion_module = make_fusion(fusion, [_FEATURE_DIM] * 3, _FEATURE_DIM, rng=rng)
    head = RegressionHead(_FEATURE_DIM, SHAPES.task.output_dim, rng)
    return MultiModalModel(f"cmu_mosei[{fusion}]", SHAPES, encoders, fusion_module, head)


def build_unimodal(modality: str, seed: int = 0) -> MultiModalModel:
    rng = np.random.default_rng(seed)
    encoder = _make_encoder(modality, rng)
    head = RegressionHead(_FEATURE_DIM, SHAPES.task.output_dim, rng)
    return MultiModalModel(
        f"cmu_mosei:{modality}", unimodal_shapes(SHAPES, modality), {modality: encoder}, None, head
    )


def default_channels() -> dict[str, ChannelSpec]:
    """Text carries most of the sentiment signal (the paper cites [4])."""
    return {
        "language": ChannelSpec(snr=1.5, corrupt_prob=0.08),
        "vision": ChannelSpec(snr=0.6, corrupt_prob=0.30),
        "audio": ChannelSpec(snr=0.6, corrupt_prob=0.35),
    }
