"""Vision & Touch: contact prediction for manipulation (Smart Robotics).

Predicts action-conditional contact from RGB, force/torque,
proprioception and depth streams [23]. Table 3: CNN encoders for image,
force and depth (the force stream uses temporal 1-D convolutions); MLP
for proprioception.
"""

from __future__ import annotations

import numpy as np

from repro.data.generators import ChannelSpec
from repro.data.shapes import VISION_TOUCH as SHAPES
from repro.workloads.base import MultiModalModel, unimodal_shapes
from repro.workloads.encoders import CNNEncoder, MLPEncoder, TemporalConvEncoder
from repro.workloads.fusion import make_fusion
from repro.workloads.heads import ClassificationHead

FUSIONS = ("concat", "tensor", "sum", "linear_glu")
DEFAULT_FUSION = "concat"

_FEATURE_DIM = 32


def _make_encoder(modality: str, rng: np.random.Generator):
    spec = SHAPES.modality(modality)
    if modality in ("image", "depth"):
        return CNNEncoder(spec.shape[0], _FEATURE_DIM, rng)
    if modality == "force":
        return TemporalConvEncoder(spec.shape[1], _FEATURE_DIM, rng)
    t, d = spec.shape
    return MLPEncoder(t * d, _FEATURE_DIM, rng)


def build(fusion: str = DEFAULT_FUSION, seed: int = 0) -> MultiModalModel:
    rng = np.random.default_rng(seed)
    encoders = {m.name: _make_encoder(m.name, rng) for m in SHAPES.modalities}
    fusion_module = make_fusion(fusion, [_FEATURE_DIM] * 4, _FEATURE_DIM, rng=rng)
    head = ClassificationHead(_FEATURE_DIM, SHAPES.task.num_classes, rng)
    return MultiModalModel(f"vision_touch[{fusion}]", SHAPES, encoders, fusion_module, head)


def build_unimodal(modality: str, seed: int = 0) -> MultiModalModel:
    rng = np.random.default_rng(seed)
    encoder = _make_encoder(modality, rng)
    head = ClassificationHead(_FEATURE_DIM, SHAPES.task.num_classes, rng)
    return MultiModalModel(
        f"vision_touch:{modality}", unimodal_shapes(SHAPES, modality), {modality: encoder}, None, head
    )


def default_channels() -> dict[str, ChannelSpec]:
    """Force is the contact oracle; vision helps disambiguate approach."""
    return {
        "image": ChannelSpec(snr=0.9, corrupt_prob=0.25),
        "force": ChannelSpec(snr=1.4, corrupt_prob=0.10),
        "proprioception": ChannelSpec(snr=0.7, corrupt_prob=0.30),
        "depth": ChannelSpec(snr=0.8, corrupt_prob=0.28),
    }
