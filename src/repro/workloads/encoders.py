"""Encoder zoo: reduced-scale versions of the paper's modality encoders.

Table 3 maps each workload to its encoders: LeNet (AV-MNIST), VGG + ALBERT
(MM-IMDB), BERT + OpenFace + Librosa features (CMU-MOSEI / MUStARD),
DenseNet + RoBERTa (Medical VQA), U-Net (Medical Seg.), MLP/CNN sensor
encoders (MuJoCo Push, Vision & Touch) and ResNet (TransFuser).

Every encoder here keeps its namesake's *topology and operator mix* —
which is what determines the kernel-category breakdown (Figure 8) and the
stage imbalance (Figure 6) — at a width/depth that a single-core numpy
substrate can execute. Scale factors are recorded in DESIGN.md.

All encoders map a raw modality batch to a fixed-size feature vector
``(B, out_dim)`` unless noted otherwise (U-Net and ResNet can return
feature maps for spatially-structured fusion).
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.nn import functional as F
from repro.nn.tensor import Tensor


class LeNetEncoder(nn.Module):
    """LeNet-5-style CNN; AV-MNIST uses it for both image and audio.

    ``input_hw`` sizes the flatten->fc tail (LeNet's classic structure).
    """

    def __init__(self, in_channels: int, out_dim: int, rng: np.random.Generator,
                 input_hw: tuple[int, int] = (28, 28)):
        super().__init__()
        self.conv1 = nn.Conv2d(in_channels, 6, 5, padding=2, rng=rng)
        self.conv2 = nn.Conv2d(6, 16, 5, padding=2, rng=rng)
        self.pool = nn.MaxPool2d(2)
        self.flatten = nn.Flatten()
        h, w = input_hw
        self.fc = nn.Linear(16 * (h // 4) * (w // 4), out_dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = self.pool(F.relu(self.conv1(x)))
        x = self.pool(F.relu(self.conv2(x)))
        return F.relu(self.fc(self.flatten(x)))


class VGGSEncoder(nn.Module):
    """VGG-11 topology at reduced width; Gemm/Conv-dominated like VGG."""

    def __init__(self, in_channels: int, out_dim: int, rng: np.random.Generator,
                 width: int = 8, input_hw: tuple[int, int] = (64, 64)):
        super().__init__()
        w = width
        self.block1 = nn.ConvBlock(in_channels, w, rng=rng)
        self.block2 = nn.ConvBlock(w, 2 * w, rng=rng)
        self.block3a = nn.ConvBlock(2 * w, 4 * w, rng=rng)
        self.block3b = nn.ConvBlock(4 * w, 4 * w, rng=rng)
        self.block4a = nn.ConvBlock(4 * w, 8 * w, rng=rng)
        self.block4b = nn.ConvBlock(8 * w, 8 * w, rng=rng)
        self.pool = nn.MaxPool2d(2)
        self.flatten = nn.Flatten()
        h, ww = input_hw
        spatial = (h // 16) * (ww // 16)
        # VGG's hallmark: heavy fully-connected classifier tail (Gemm).
        self.fc1 = nn.Linear(8 * w * spatial, 8 * w, rng=rng)
        self.fc2 = nn.Linear(8 * w, out_dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = self.pool(self.block1(x))
        x = self.pool(self.block2(x))
        x = self.pool(self.block3b(self.block3a(x)))
        x = self.pool(self.block4b(self.block4a(x)))
        x = self.flatten(x)
        return F.relu(self.fc2(F.relu(self.fc1(x))))


class TextTransformerEncoder(nn.Module):
    """Transformer text encoder; stands in for ALBERT / BERT / RoBERTa.

    GELU/element-wise heavy, matching the paper's observation that the
    ALBERT encoder is dominated by activation kernels rather than Gemm.
    """

    def __init__(
        self,
        vocab_size: int,
        out_dim: int,
        rng: np.random.Generator,
        embed_dim: int = 64,
        num_heads: int = 4,
        num_layers: int = 2,
        max_len: int = 128,
    ):
        super().__init__()
        self.embed = nn.Embedding(vocab_size, embed_dim, rng=rng)
        self.encoder = nn.TransformerEncoder(
            embed_dim, num_heads, num_layers, max_len=max_len, rng=rng
        )
        self.fc = nn.Linear(embed_dim, out_dim, rng=rng)

    def forward(self, tokens: np.ndarray) -> Tensor:
        x = self.embed(tokens)
        x = self.encoder(x)
        pooled = x.mean(axis=1)
        return F.relu(self.fc(pooled))


class AlbertSEncoder(TextTransformerEncoder):
    """ALBERT-style: parameter sharing across layers (one layer, applied twice)."""

    def __init__(self, vocab_size: int, out_dim: int, rng: np.random.Generator,
                 embed_dim: int = 64, num_heads: int = 4, max_len: int = 128):
        super().__init__(vocab_size, out_dim, rng, embed_dim, num_heads,
                         num_layers=1, max_len=max_len)
        self.repeats = 2

    def forward(self, tokens: np.ndarray) -> Tensor:
        x = self.embed(tokens)
        t = x.shape[1]
        pos = F.getitem(self.encoder.pos_embedding, slice(0, t))
        x = x + pos
        shared = self.encoder.layers[0]
        for _ in range(self.repeats):  # cross-layer parameter sharing
            x = shared(x)
        return F.relu(self.fc(x.mean(axis=1)))


class SequenceMLPEncoder(nn.Module):
    """Per-timestep MLP + temporal mean pool for feature time series.

    Used for the OpenFace (visual) and Librosa (acoustic) feature streams
    of the affective-computing workloads and the robot sensor streams.
    """

    def __init__(self, feat_dim: int, out_dim: int, rng: np.random.Generator, hidden: int = 32):
        super().__init__()
        self.fc1 = nn.Linear(feat_dim, hidden, rng=rng)
        self.fc2 = nn.Linear(hidden, out_dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        h = F.relu(self.fc1(x))  # (B, T, hidden)
        pooled = h.mean(axis=1)
        return F.relu(self.fc2(pooled))


class SequenceGRUEncoder(nn.Module):
    """GRU over a feature time series; last hidden state is the feature."""

    def __init__(self, feat_dim: int, out_dim: int, rng: np.random.Generator, hidden: int = 32):
        super().__init__()
        self.gru = nn.GRU(feat_dim, hidden, rng=rng)
        self.fc = nn.Linear(hidden, out_dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        _, h = self.gru(x)
        return F.relu(self.fc(h))


class CNNEncoder(nn.Module):
    """Compact 3-stage CNN for robot camera / depth streams."""

    def __init__(self, in_channels: int, out_dim: int, rng: np.random.Generator,
                 width: int = 8, input_hw: tuple[int, int] = (32, 32)):
        super().__init__()
        self.block1 = nn.ConvBlock(in_channels, width, rng=rng)
        self.block2 = nn.ConvBlock(width, 2 * width, rng=rng)
        self.block3 = nn.ConvBlock(2 * width, 4 * width, rng=rng)
        self.pool = nn.MaxPool2d(2)
        self.flatten = nn.Flatten()
        h, w = input_hw
        self.fc = nn.Linear(4 * width * (h // 8) * (w // 8), out_dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = self.pool(self.block1(x))
        x = self.pool(self.block2(x))
        x = self.pool(self.block3(x))
        return F.relu(self.fc(self.flatten(x)))


class TemporalConvEncoder(nn.Module):
    """1D-CNN over a (B, T, D) feature stream (force/torque sensors).

    The Vision & Touch paper encodes the force stream with temporal
    convolutions; this is the matching reduced-scale encoder.
    """

    def __init__(self, feat_dim: int, out_dim: int, rng: np.random.Generator,
                 width: int = 16):
        super().__init__()
        self.conv1 = nn.Conv1d(feat_dim, width, 5, stride=2, padding=2, rng=rng)
        self.conv2 = nn.Conv1d(width, 2 * width, 3, stride=2, padding=1, rng=rng)
        self.fc = nn.Linear(2 * width, out_dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        h = F.transpose(x, (0, 2, 1))  # (B, D, T)
        h = F.relu(self.conv1(h))
        h = F.relu(self.conv2(h))
        pooled = h.mean(axis=2)  # (B, 2*width)
        return F.relu(self.fc(pooled))


class MLPEncoder(nn.Module):
    """Flatten-and-MLP encoder for low-dimensional sensor modalities."""

    def __init__(self, in_features: int, out_dim: int, rng: np.random.Generator, hidden: int = 64):
        super().__init__()
        self.fc1 = nn.Linear(in_features, hidden, rng=rng)
        self.fc2 = nn.Linear(hidden, hidden, rng=rng)
        self.fc3 = nn.Linear(hidden, out_dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        flat = x.reshape((x.shape[0], -1))
        h = F.relu(self.fc1(flat))
        h = F.relu(self.fc2(h))
        return F.relu(self.fc3(h))


class _DenseLayer(nn.Module):
    def __init__(self, in_channels: int, growth: int, rng: np.random.Generator):
        super().__init__()
        self.bn = nn.BatchNorm2d(in_channels)
        self.conv = nn.Conv2d(in_channels, growth, 3, padding=1, bias=False, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        new = self.conv(F.relu(self.bn(x)))
        return F.concat([x, new], axis=1)


class DenseNetSEncoder(nn.Module):
    """DenseNet topology: two dense blocks with concat-based feature reuse.

    The dense connectivity makes this encoder unusually heavy in
    memory-movement (concat) and BatchNorm kernels — visible in its
    Figure-8 kernel mix.
    """

    def __init__(self, in_channels: int, out_dim: int, rng: np.random.Generator,
                 growth: int = 8, layers_per_block: int = 2):
        super().__init__()
        self.stem = nn.Conv2d(in_channels, 2 * growth, 3, stride=2, padding=1, rng=rng)
        c = 2 * growth
        self.block1 = nn.ModuleList([])
        for _ in range(layers_per_block):
            self.block1.append(_DenseLayer(c, growth, rng))
            c += growth
        self.trans = nn.Conv2d(c, c // 2, 1, rng=rng)
        c = c // 2
        self.pool = nn.AvgPool2d(2)
        self.block2 = nn.ModuleList([])
        for _ in range(layers_per_block):
            self.block2.append(_DenseLayer(c, growth, rng))
            c += growth
        self.bn_final = nn.BatchNorm2d(c)
        self.gap = nn.GlobalAvgPool2d()
        self.fc = nn.Linear(c, out_dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = F.relu(self.stem(x))
        for layer in self.block1:
            x = layer(x)
        x = self.pool(self.trans(x))
        for layer in self.block2:
            x = layer(x)
        x = F.relu(self.bn_final(x))
        return F.relu(self.fc(self.gap(x)))


class UNetEncoder(nn.Module):
    """U-Net contracting path; returns the bottleneck feature map.

    Skip features are stored on ``self.skips`` after each forward so a
    decoder head can consume them (single-threaded execution makes this
    safe; the workload wires encoder and decoder together).
    """

    def __init__(self, in_channels: int, rng: np.random.Generator, width: int = 8):
        super().__init__()
        w = width
        self.enc1 = nn.ConvBlock(in_channels, w, rng=rng)
        self.enc2 = nn.ConvBlock(w, 2 * w, rng=rng)
        self.bottleneck = nn.ConvBlock(2 * w, 4 * w, rng=rng)
        self.pool = nn.MaxPool2d(2)
        self.width = width
        self.skips: list[Tensor] = []

    def forward(self, x: Tensor) -> Tensor:
        s1 = self.enc1(x)
        s2 = self.enc2(self.pool(s1))
        self.skips = [s1, s2]
        return self.bottleneck(self.pool(s2))  # (B, 4w, H/4, W/4)


class _ResidualBlock(nn.Module):
    def __init__(self, in_channels: int, out_channels: int, stride: int, rng: np.random.Generator):
        super().__init__()
        self.conv1 = nn.Conv2d(in_channels, out_channels, 3, stride=stride, padding=1,
                               bias=False, rng=rng)
        self.bn1 = nn.BatchNorm2d(out_channels)
        self.conv2 = nn.Conv2d(out_channels, out_channels, 3, padding=1, bias=False, rng=rng)
        self.bn2 = nn.BatchNorm2d(out_channels)
        self.use_projection = stride != 1 or in_channels != out_channels
        if self.use_projection:
            self.proj = nn.Conv2d(in_channels, out_channels, 1, stride=stride, bias=False, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        identity = self.proj(x) if self.use_projection else x
        out = F.relu(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        return F.relu(out + identity)


class ResNetSEncoder(nn.Module):
    """ResNet-10-style encoder at reduced width (TransFuser backbones).

    With ``return_map=True`` the forward returns the final feature map
    (B, 4w, H/8, W/8) instead of a pooled vector, which the TransFuser
    fusion transformer consumes.
    """

    def __init__(self, in_channels: int, out_dim: int, rng: np.random.Generator,
                 width: int = 8, return_map: bool = False):
        super().__init__()
        w = width
        self.stem = nn.ConvBlock(in_channels, w, rng=rng)
        self.stage1 = _ResidualBlock(w, 2 * w, stride=2, rng=rng)
        self.stage2 = _ResidualBlock(2 * w, 4 * w, stride=2, rng=rng)
        self.pool = nn.MaxPool2d(2)
        self.return_map = return_map
        self.out_channels = 4 * w
        if not return_map:
            # The pooled-vector head only exists when it is actually used,
            # so map-mode encoders carry no dead parameters.
            self.gap = nn.GlobalAvgPool2d()
            self.fc = nn.Linear(4 * w, out_dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = self.pool(self.stem(x))
        x = self.stage1(x)
        x = self.stage2(x)
        if self.return_map:
            return x
        return F.relu(self.fc(self.gap(x)))
