"""Task-specific head networks (the third execution stage).

Table 3's task row: classification (AV-MNIST, MUStARD, MuJoCo Push as
pose-class variants, Vision & Touch, TransFuser), multi-label
classification (MM-IMDB), regression (CMU-MOSEI), generation (Medical
VQA) and segmentation (Medical Seg.).
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.nn import functional as F
from repro.nn.tensor import Tensor


class ClassificationHead(nn.Module):
    """Two-layer MLP producing class logits."""

    def __init__(self, in_dim: int, num_classes: int, rng: np.random.Generator, hidden: int = 64):
        super().__init__()
        self.fc1 = nn.Linear(in_dim, hidden, rng=rng)
        self.fc2 = nn.Linear(hidden, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.fc2(F.relu(self.fc1(x)))


class RegressionHead(nn.Module):
    """Two-layer MLP producing a continuous output."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator, hidden: int = 64):
        super().__init__()
        self.fc1 = nn.Linear(in_dim, hidden, rng=rng)
        self.fc2 = nn.Linear(hidden, out_dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.fc2(F.relu(self.fc1(x)))


class GenerationHead(nn.Module):
    """GRU decoder emitting a fixed-length answer-token sequence (VQA).

    Teacher-free greedy decoding: at each step the previous step's argmax
    (embedded) conditions the next. Training uses the same unrolled graph
    with cross-entropy at each position, so logits for all positions are
    returned as (B, L, V).
    """

    def __init__(self, in_dim: int, vocab_size: int, length: int, rng: np.random.Generator,
                 hidden: int = 64):
        super().__init__()
        self.length = length
        self.vocab_size = vocab_size
        self.bridge = nn.Linear(in_dim, hidden, rng=rng)
        self.cell = nn.GRUCell(hidden, hidden, rng=rng)
        self.token_embed = nn.Embedding(vocab_size, hidden, rng=rng)
        self.out = nn.Linear(hidden, vocab_size, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        h = F.tanh(self.bridge(x))
        batch = x.shape[0]
        inp = Tensor(np.zeros((batch, h.shape[1]), dtype=np.float32))
        logits_steps = []
        for _ in range(self.length):
            h = self.cell(inp, h)
            step_logits = self.out(h)
            logits_steps.append(step_logits)
            prev_tokens = step_logits.data.argmax(axis=-1)
            inp = self.token_embed(prev_tokens)
        return F.stack(logits_steps, axis=1)  # (B, L, V)


class SegmentationHead(nn.Module):
    """U-Net expanding path from a fused bottleneck map to a logit mask.

    Upsampling is nearest-neighbour + conv (transposed-conv equivalent with
    no checkerboard artifacts). ``skips`` — the contracting path's feature
    maps — are concatenated at matching scales, preserving the U-Net's
    concat-heavy kernel signature.
    """

    def __init__(self, in_channels: int, rng: np.random.Generator, width: int = 8):
        super().__init__()
        w = width
        self.up1 = nn.ConvBlock(in_channels + 2 * w, 2 * w, rng=rng)
        self.up2 = nn.ConvBlock(2 * w + w, w, rng=rng)
        self.out_conv = nn.Conv2d(w, 1, 1, rng=rng)

    def forward(self, bottleneck: Tensor, skips: list[Tensor]) -> Tensor:
        s1, s2 = skips
        x = F.upsample_nearest2d(bottleneck, 2)
        x = self.up1(F.concat([x, s2], axis=1))
        x = F.upsample_nearest2d(x, 2)
        x = self.up2(F.concat([x, s1], axis=1))
        return self.out_conv(x)  # (B, 1, H, W) logits


class WaypointGRUHead(nn.Module):
    """TransFuser's auto-regressive waypoint prediction network.

    A GRU rolls out ``num_waypoints`` steps from the fused feature; each
    step emits a 2-D displacement that accumulates into a waypoint. The
    output is flattened to (B, num_waypoints * 2).
    """

    def __init__(self, in_dim: int, num_waypoints: int, rng: np.random.Generator, hidden: int = 32):
        super().__init__()
        self.num_waypoints = num_waypoints
        self.bridge = nn.Linear(in_dim, hidden, rng=rng)
        self.cell = nn.GRUCell(2, hidden, rng=rng)
        self.delta = nn.Linear(hidden, 2, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        h = F.tanh(self.bridge(x))
        batch = x.shape[0]
        pos = Tensor(np.zeros((batch, 2), dtype=np.float32))
        waypoints = []
        for _ in range(self.num_waypoints):
            h = self.cell(pos, h)
            pos = pos + self.delta(h)
            waypoints.append(pos)
        return F.concat(waypoints, axis=-1)  # (B, num_waypoints * 2)
