"""Medical Segmentation: brain-tumor segmentation from multi-sequence MRI.

Four MRI sequences (T1, T1c, T2, Flair) are each encoded by a U-Net
contracting path; the bottleneck feature maps are fused (transformer
fusion after mmformer [56], or channel-concat), and a shared expanding
path decodes the fused bottleneck into a tumor mask. Unlike the
vector-fusion workloads, fusion here operates on *spatial feature maps*,
so this module overrides the base model's fusion hooks.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.data.generators import ChannelSpec
from repro.data.shapes import MEDICAL_SEG as SHAPES
from repro.nn import functional as F
from repro.nn.tensor import Tensor
from repro.workloads.base import MultiModalModel, unimodal_shapes
from repro.workloads.encoders import UNetEncoder
from repro.workloads.heads import SegmentationHead

FUSIONS = ("transformer", "concat")
DEFAULT_FUSION = "transformer"

_WIDTH = 8  # U-Net base width; bottleneck has 4 * _WIDTH channels


class ConcatMapFusion(nn.Module):
    """Channel-concatenate modality bottlenecks, then a 1x1 conv."""

    def __init__(self, channels: int, num_modalities: int, rng: np.random.Generator):
        super().__init__()
        self.conv = nn.Conv2d(channels * num_modalities, channels, 1, rng=rng)

    def forward(self, maps: list[Tensor]) -> Tensor:
        return F.relu(self.conv(F.concat(maps, axis=1)))


class TransformerMapFusion(nn.Module):
    """mmformer-style fusion: spatial tokens from all modalities co-attend.

    Each (B, C, h, w) bottleneck becomes h*w tokens; tokens from all
    modalities (with learned modality embeddings) pass through a
    transformer layer and are averaged across modalities per position.
    """

    def __init__(self, channels: int, num_modalities: int, rng: np.random.Generator,
                 num_heads: int = 4):
        super().__init__()
        self.channels = channels
        self.num_modalities = num_modalities
        self.modality_embed = nn.Parameter(nn.init.normal((num_modalities, channels), 0.02, rng))
        self.layer = nn.TransformerEncoderLayer(channels, num_heads, rng=rng)

    def forward(self, maps: list[Tensor]) -> Tensor:
        b, c, h, w = maps[0].shape
        tokens = []
        for i, m in enumerate(maps):
            t = m.reshape((b, c, h * w)).transpose((0, 2, 1))  # (B, hw, C)
            embed = F.getitem(self.modality_embed, slice(i, i + 1))  # (1, C)
            tokens.append(t + embed)
        seq = F.concat(tokens, axis=1)  # (B, M*hw, C)
        mixed = self.layer(seq)
        stacked = mixed.reshape((b, self.num_modalities, h * w, c))
        fused = stacked.mean(axis=1)  # (B, hw, C)
        return fused.transpose((0, 2, 1)).reshape((b, c, h, w))


class MedicalSegModel(MultiModalModel):
    """Multi-sequence MRI -> U-Net encoders -> map fusion -> shared decoder."""

    def _encode(self, modality: str, array: np.ndarray) -> Tensor:
        return self.encoders[modality](self._prepare_input(modality, array))

    def _fuse(self, features: list[Tensor]) -> Tensor:
        return self.fusion(features)

    def _run_head(self, fused: Tensor) -> Tensor:
        # Average the contracting-path skip maps across modalities so the
        # shared decoder sees one skip per scale.
        num = float(len(self._encoder_order))
        skip_sets = [self.encoders[m].skips for m in self._encoder_order]
        avg_skips = []
        for level in range(len(skip_sets[0])):
            acc = skip_sets[0][level]
            for other in skip_sets[1:]:
                acc = acc + other[level]
            avg_skips.append(acc * (1.0 / num))
        return self.head(fused, avg_skips)


def build(fusion: str = DEFAULT_FUSION, seed: int = 0) -> MedicalSegModel:
    rng = np.random.default_rng(seed)
    channels = 4 * _WIDTH
    encoders = {m.name: UNetEncoder(1, rng, width=_WIDTH) for m in SHAPES.modalities}
    if fusion == "concat":
        fusion_module = ConcatMapFusion(channels, len(SHAPES.modalities), rng)
    elif fusion == "transformer":
        fusion_module = TransformerMapFusion(channels, len(SHAPES.modalities), rng)
    else:
        raise KeyError(f"medical_seg supports fusions {FUSIONS}, got {fusion!r}")
    head = SegmentationHead(channels, rng, width=_WIDTH)
    return MedicalSegModel(f"medical_seg[{fusion}]", SHAPES, encoders, fusion_module, head)


class _UniModalSegModel(MultiModalModel):
    def _run_head(self, fused: Tensor) -> Tensor:
        modality = self._encoder_order[0]
        return self.head(fused, self.encoders[modality].skips)


def build_unimodal(modality: str, seed: int = 0) -> MultiModalModel:
    rng = np.random.default_rng(seed)
    encoder = UNetEncoder(1, rng, width=_WIDTH)
    head = SegmentationHead(4 * _WIDTH, rng, width=_WIDTH)
    return _UniModalSegModel(
        f"medical_seg:{modality}", unimodal_shapes(SHAPES, modality), {modality: encoder}, None, head
    )


def default_channels() -> dict[str, ChannelSpec]:
    """Flair/T1c show tumor boundaries most clearly, as in BraTS practice."""
    return {
        "t1": ChannelSpec(snr=0.8, corrupt_prob=0.25),
        "t1c": ChannelSpec(snr=1.3, corrupt_prob=0.10),
        "t2": ChannelSpec(snr=0.9, corrupt_prob=0.20),
        "flair": ChannelSpec(snr=1.4, corrupt_prob=0.08),
    }
