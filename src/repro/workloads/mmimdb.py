"""MM-IMDB: multi-label movie-genre classification (Multimedia domain).

Movie posters (VGG encoder) plus title/metadata text (pre-trained ALBERT in
the paper; an ALBERT-style parameter-shared transformer here) predict the
genre label set. The paper's headline heterogeneity example: the VGG
encoder is Gemm-dominated (72%) while ALBERT is activation-dominated
(Sec. 4.3.2).
"""

from __future__ import annotations

import numpy as np

from repro.data.generators import ChannelSpec
from repro.data.shapes import MMIMDB as SHAPES
from repro.workloads.base import MultiModalModel, unimodal_shapes
from repro.workloads.encoders import AlbertSEncoder, VGGSEncoder
from repro.workloads.fusion import make_fusion
from repro.workloads.heads import ClassificationHead

FUSIONS = ("concat", "tensor", "sum", "attention", "linear_glu", "transformer")
DEFAULT_FUSION = "concat"

_FEATURE_DIM = 32


def build(fusion: str = DEFAULT_FUSION, seed: int = 0) -> MultiModalModel:
    rng = np.random.default_rng(seed)
    text_spec = SHAPES.modality("text")
    encoders = {
        "image": VGGSEncoder(3, _FEATURE_DIM, rng),
        "text": AlbertSEncoder(text_spec.vocab_size, _FEATURE_DIM, rng,
                               max_len=text_spec.shape[0]),
    }
    fusion_module = make_fusion(fusion, [_FEATURE_DIM, _FEATURE_DIM], _FEATURE_DIM, rng=rng)
    head = ClassificationHead(_FEATURE_DIM, SHAPES.task.num_classes, rng)
    return MultiModalModel(f"mmimdb[{fusion}]", SHAPES, encoders, fusion_module, head)


def build_unimodal(modality: str, seed: int = 0) -> MultiModalModel:
    rng = np.random.default_rng(seed)
    if modality == "image":
        encoder = VGGSEncoder(3, _FEATURE_DIM, rng)
    elif modality == "text":
        spec = SHAPES.modality("text")
        encoder = AlbertSEncoder(spec.vocab_size, _FEATURE_DIM, rng, max_len=spec.shape[0])
    else:
        raise KeyError(f"mmimdb has no modality {modality!r}")
    head = ClassificationHead(_FEATURE_DIM, SHAPES.task.num_classes, rng)
    return MultiModalModel(
        f"mmimdb:{modality}", unimodal_shapes(SHAPES, modality), {modality: encoder}, None, head
    )


def default_channels() -> dict[str, ChannelSpec]:
    """Image (poster) is the major modality, as in the paper's Figure 5
    (86.3% of MM-IMDB's correct samples need only the image); text adds
    complementary genre cues."""
    return {
        "image": ChannelSpec(snr=1.2, corrupt_prob=0.12),
        "text": ChannelSpec(snr=1.4, corrupt_prob=0.20),
    }
