"""TransFuser: camera + LiDAR end-to-end driving (Automatic Driving).

The paper extracts the TransFuser network [35] from the CARLA simulator:
a ResNet branch per sensor (single-view image, BEV-projected LiDAR), a
Multi-Modal Fusion Transformer that cross-attends the two feature maps,
and an auto-regressive GRU waypoint-prediction head. We reproduce the
same extraction: ResNet-S branches produce feature maps, a transformer
mixes pooled grid tokens from both maps, and the waypoint GRU rolls out
four (x, y) waypoints.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.data.generators import ChannelSpec
from repro.data.shapes import TRANSFUSER as SHAPES
from repro.nn import functional as F
from repro.nn.tensor import Tensor
from repro.workloads.base import MultiModalModel, unimodal_shapes
from repro.workloads.encoders import ResNetSEncoder
from repro.workloads.heads import WaypointGRUHead

FUSIONS = ("transformer",)
DEFAULT_FUSION = "transformer"

_WIDTH = 8
_MAP_CHANNELS = 4 * _WIDTH
_NUM_WAYPOINTS = 4


class FusionTransformer(nn.Module):
    """TransFuser's Multi-Modal Fusion Transformer over grid tokens.

    Each branch's feature map is average-pooled to a 4x4 grid; the 16+16
    tokens (with learned sensor embeddings) pass through a small
    transformer stack and are mean-pooled into the driving feature.
    """

    def __init__(self, channels: int, rng: np.random.Generator,
                 num_heads: int = 4, num_layers: int = 2, grid: int = 4):
        super().__init__()
        self.grid = grid
        self.channels = channels
        self.sensor_embed = nn.Parameter(nn.init.normal((2, channels), 0.02, rng))
        self.layers = nn.ModuleList(
            [nn.TransformerEncoderLayer(channels, num_heads, rng=rng) for _ in range(num_layers)]
        )

    def _tokens(self, feature_map: Tensor, sensor_index: int) -> Tensor:
        b, c, h, w = feature_map.shape
        if h > self.grid:
            feature_map = F.avg_pool2d(feature_map, h // self.grid)
        b, c, g1, g2 = feature_map.shape
        tokens = feature_map.reshape((b, c, g1 * g2)).transpose((0, 2, 1))
        embed = F.getitem(self.sensor_embed, slice(sensor_index, sensor_index + 1))
        return tokens + embed

    def forward(self, maps: list[Tensor]) -> Tensor:
        image_map, lidar_map = maps
        seq = F.concat([self._tokens(image_map, 0), self._tokens(lidar_map, 1)], axis=1)
        for layer in self.layers:
            seq = layer(seq)
        return seq.mean(axis=1)  # (B, channels)


class TransFuserModel(MultiModalModel):
    """Feature-map fusion overrides the vector-fusion default."""

    def _fuse(self, features: list[Tensor]) -> Tensor:
        return self.fusion(features)


def build(fusion: str = DEFAULT_FUSION, seed: int = 0) -> TransFuserModel:
    if fusion not in FUSIONS:
        raise KeyError(f"transfuser supports fusions {FUSIONS}, got {fusion!r}")
    rng = np.random.default_rng(seed)
    encoders = {
        "image": ResNetSEncoder(3, _MAP_CHANNELS, rng, width=_WIDTH, return_map=True),
        "lidar": ResNetSEncoder(2, _MAP_CHANNELS, rng, width=_WIDTH, return_map=True),
    }
    fusion_module = FusionTransformer(_MAP_CHANNELS, rng)
    head = WaypointGRUHead(_MAP_CHANNELS, _NUM_WAYPOINTS, rng)
    return TransFuserModel(f"transfuser[{fusion}]", SHAPES, encoders, fusion_module, head)


def build_unimodal(modality: str, seed: int = 0) -> MultiModalModel:
    """Image-only (or LiDAR-only) driving baseline with a pooled feature.

    The paper notes LiDAR is seldom executed without the image modality;
    both single-sensor baselines are still provided for completeness.
    """
    rng = np.random.default_rng(seed)
    spec = SHAPES.modality(modality)
    encoder = ResNetSEncoder(spec.shape[0], _MAP_CHANNELS, rng, width=_WIDTH, return_map=False)
    head = WaypointGRUHead(_MAP_CHANNELS, _NUM_WAYPOINTS, rng)
    return MultiModalModel(
        f"transfuser:{modality}", unimodal_shapes(SHAPES, modality), {modality: encoder}, None, head
    )


def default_channels() -> dict[str, ChannelSpec]:
    """Camera sees lateral context; LiDAR sees longitudinal geometry."""
    return {
        "image": ChannelSpec(snr=1.2, corrupt_prob=0.12, informative_components=(0, 1, 2, 3)),
        "lidar": ChannelSpec(snr=1.2, corrupt_prob=0.12, informative_components=(4, 5, 6, 7)),
    }
