"""MUStARD: multi-modal sarcasm detection (Affective Computing).

Same tri-modal structure as CMU-MOSEI (language + OpenFace vision +
Librosa audio) but a binary classification task on a video corpus.
"""

from __future__ import annotations

import numpy as np

from repro.data.generators import ChannelSpec
from repro.data.shapes import MUSTARD as SHAPES
from repro.workloads.base import MultiModalModel, unimodal_shapes
from repro.workloads.encoders import SequenceGRUEncoder, TextTransformerEncoder
from repro.workloads.fusion import make_fusion
from repro.workloads.heads import ClassificationHead

FUSIONS = ("concat", "tensor", "transformer", "attention", "late_lstm")
DEFAULT_FUSION = "transformer"

_FEATURE_DIM = 32


def _make_encoder(modality: str, rng: np.random.Generator):
    spec = SHAPES.modality(modality)
    if modality == "language":
        return TextTransformerEncoder(spec.vocab_size, _FEATURE_DIM, rng,
                                      max_len=spec.shape[0])
    # Sarcasm cues are temporal (prosody contours, expression changes), so
    # the feature streams get recurrent encoders.
    return SequenceGRUEncoder(spec.shape[1], _FEATURE_DIM, rng)


def build(fusion: str = DEFAULT_FUSION, seed: int = 0) -> MultiModalModel:
    rng = np.random.default_rng(seed)
    encoders = {m.name: _make_encoder(m.name, rng) for m in SHAPES.modalities}
    fusion_module = make_fusion(fusion, [_FEATURE_DIM] * 3, _FEATURE_DIM, rng=rng)
    head = ClassificationHead(_FEATURE_DIM, SHAPES.task.num_classes, rng)
    return MultiModalModel(f"mustard[{fusion}]", SHAPES, encoders, fusion_module, head)


def build_unimodal(modality: str, seed: int = 0) -> MultiModalModel:
    rng = np.random.default_rng(seed)
    encoder = _make_encoder(modality, rng)
    head = ClassificationHead(_FEATURE_DIM, SHAPES.task.num_classes, rng)
    return MultiModalModel(
        f"mustard:{modality}", unimodal_shapes(SHAPES, modality), {modality: encoder}, None, head
    )


def default_channels() -> dict[str, ChannelSpec]:
    """Sarcasm needs tone/expression context: language alone is weaker here."""
    return {
        "language": ChannelSpec(snr=1.1, corrupt_prob=0.18),
        "vision": ChannelSpec(snr=0.8, corrupt_prob=0.28),
        "audio": ChannelSpec(snr=0.9, corrupt_prob=0.25),
    }
