"""Modality shape specifications for every MMBench workload (Table 3).

MMBench's "user-friendly profiler integration" rests on a dataset-free
computation abstraction: the suite knows the shape of every modality's
input and can generate random tensors of those shapes, freeing
architecture researchers from downloading hundred-GB datasets. This module
is that shape catalogue.

Spatial/sequence extents are reduced relative to the originals (the
substrate is a single-core numpy framework, not a 2080Ti) but the
modality *structure* — how many modalities, which kind, relative sizes,
which encoder consumes each — matches Table 3. The image modality remains
the largest in every workload that has one, which is what drives the
straggler/imbalance findings (Figure 10).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np


class ModalityKind(str, enum.Enum):
    """Input data kind; selects the synthetic renderer and the preprocessor."""

    IMAGE = "image"  # (C, H, W) float
    AUDIO = "audio"  # (C, F, T) spectrogram float
    TOKENS = "tokens"  # (T,) int token ids
    SEQUENCE = "sequence"  # (T, D) float feature time series
    VOLUME = "volume"  # (C, H, W) float medical slice
    POINTMAP = "pointmap"  # (C, H, W) float BEV-projected LiDAR


@dataclass(frozen=True)
class ModalitySpec:
    """One modality's per-sample shape and kind."""

    name: str
    kind: ModalityKind
    shape: tuple[int, ...]
    vocab_size: int = 0  # tokens only

    @property
    def numel(self) -> int:
        return int(np.prod(self.shape))

    @property
    def sample_bytes(self) -> int:
        """Bytes of one raw sample (float32, or int64 for tokens)."""
        itemsize = 8 if self.kind == ModalityKind.TOKENS else 4
        return self.numel * itemsize

    def validate(self) -> None:
        if self.kind == ModalityKind.TOKENS:
            if len(self.shape) != 1:
                raise ValueError(f"token modality {self.name!r} must be 1-D, got {self.shape}")
            if self.vocab_size <= 0:
                raise ValueError(f"token modality {self.name!r} needs vocab_size > 0")
        elif self.kind == ModalityKind.SEQUENCE:
            if len(self.shape) != 2:
                raise ValueError(f"sequence modality {self.name!r} must be (T, D), got {self.shape}")
        else:
            if len(self.shape) != 3:
                raise ValueError(f"{self.kind.value} modality {self.name!r} must be (C, H, W), got {self.shape}")


@dataclass(frozen=True)
class TaskSpec:
    """Output structure of a workload."""

    kind: str  # "classification" | "multilabel" | "regression" | "segmentation" | "generation"
    num_classes: int = 0  # classification/multilabel/generation vocab
    output_dim: int = 0  # regression
    output_shape: tuple[int, ...] = ()  # segmentation


@dataclass(frozen=True)
class WorkloadShapes:
    """All modalities and the task of one workload."""

    name: str
    modalities: tuple[ModalitySpec, ...]
    task: TaskSpec

    def modality(self, name: str) -> ModalitySpec:
        for m in self.modalities:
            if m.name == name:
                return m
        raise KeyError(f"workload {self.name!r} has no modality {name!r}")

    @property
    def modality_names(self) -> tuple[str, ...]:
        return tuple(m.name for m in self.modalities)

    @property
    def sample_bytes(self) -> int:
        return sum(m.sample_bytes for m in self.modalities)


def _spec(name, kind, shape, vocab=0):
    spec = ModalitySpec(name=name, kind=kind, shape=shape, vocab_size=vocab)
    spec.validate()
    return spec


AVMNIST = WorkloadShapes(
    name="avmnist",
    modalities=(
        _spec("image", ModalityKind.IMAGE, (1, 28, 28)),
        _spec("audio", ModalityKind.AUDIO, (1, 20, 20)),
    ),
    task=TaskSpec(kind="classification", num_classes=10),
)

MMIMDB = WorkloadShapes(
    name="mmimdb",
    modalities=(
        _spec("image", ModalityKind.IMAGE, (3, 64, 64)),
        _spec("text", ModalityKind.TOKENS, (48,), vocab=1000),
    ),
    task=TaskSpec(kind="multilabel", num_classes=23),
)

CMU_MOSEI = WorkloadShapes(
    name="cmu_mosei",
    modalities=(
        _spec("language", ModalityKind.TOKENS, (32,), vocab=1000),
        _spec("vision", ModalityKind.SEQUENCE, (32, 35)),
        _spec("audio", ModalityKind.SEQUENCE, (32, 74)),
    ),
    task=TaskSpec(kind="regression", output_dim=1),
)

MUSTARD = WorkloadShapes(
    name="mustard",
    modalities=(
        _spec("language", ModalityKind.TOKENS, (24,), vocab=800),
        _spec("vision", ModalityKind.SEQUENCE, (24, 35)),
        _spec("audio", ModalityKind.SEQUENCE, (24, 74)),
    ),
    task=TaskSpec(kind="classification", num_classes=2),
)

MEDICAL_VQA = WorkloadShapes(
    name="medical_vqa",
    modalities=(
        _spec("image", ModalityKind.IMAGE, (3, 64, 64)),
        _spec("text", ModalityKind.TOKENS, (24,), vocab=500),
    ),
    task=TaskSpec(kind="generation", num_classes=64),  # answer vocab
)

MEDICAL_SEG = WorkloadShapes(
    name="medical_seg",
    modalities=(
        _spec("t1", ModalityKind.VOLUME, (1, 32, 32)),
        _spec("t1c", ModalityKind.VOLUME, (1, 32, 32)),
        _spec("t2", ModalityKind.VOLUME, (1, 32, 32)),
        _spec("flair", ModalityKind.VOLUME, (1, 32, 32)),
    ),
    task=TaskSpec(kind="segmentation", output_shape=(1, 32, 32)),
)

MUJOCO_PUSH = WorkloadShapes(
    name="mujoco_push",
    modalities=(
        _spec("position", ModalityKind.SEQUENCE, (16, 8)),
        _spec("sensor", ModalityKind.SEQUENCE, (16, 6)),
        _spec("image", ModalityKind.IMAGE, (1, 32, 32)),
        _spec("control", ModalityKind.SEQUENCE, (16, 4)),
    ),
    task=TaskSpec(kind="regression", output_dim=2),
)

VISION_TOUCH = WorkloadShapes(
    name="vision_touch",
    modalities=(
        _spec("image", ModalityKind.IMAGE, (3, 32, 32)),
        _spec("force", ModalityKind.SEQUENCE, (32, 6)),
        _spec("proprioception", ModalityKind.SEQUENCE, (8, 8)),
        _spec("depth", ModalityKind.IMAGE, (1, 32, 32)),
    ),
    task=TaskSpec(kind="classification", num_classes=2),
)

TRANSFUSER = WorkloadShapes(
    name="transfuser",
    modalities=(
        _spec("image", ModalityKind.IMAGE, (3, 64, 64)),
        _spec("lidar", ModalityKind.POINTMAP, (2, 64, 64)),
    ),
    task=TaskSpec(kind="regression", output_dim=8),  # 4 waypoints x (x, y)
)

ALL_SHAPES: dict[str, WorkloadShapes] = {
    s.name: s
    for s in (
        AVMNIST,
        MMIMDB,
        CMU_MOSEI,
        MUSTARD,
        MEDICAL_VQA,
        MEDICAL_SEG,
        MUJOCO_PUSH,
        VISION_TOUCH,
        TRANSFUSER,
    )
}
