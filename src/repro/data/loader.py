"""Mini-batch iteration over multi-modal arrays."""

from __future__ import annotations

import numpy as np


class DataLoader:
    """Iterate (batch_dict, targets) mini-batches with optional shuffling."""

    def __init__(
        self,
        batch: dict[str, np.ndarray],
        targets: np.ndarray,
        batch_size: int,
        shuffle: bool = False,
        seed: int = 0,
        drop_last: bool = False,
    ):
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        lengths = {name: len(arr) for name, arr in batch.items()}
        if len(set(lengths.values())) > 1:
            raise ValueError(f"modalities have unequal lengths: {lengths}")
        self.n = len(targets)
        if self.n not in set(lengths.values()) and lengths:
            raise ValueError(f"targets length {self.n} != modality length {lengths}")
        self.batch = batch
        self.targets = targets
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        if self.drop_last:
            return self.n // self.batch_size
        return (self.n + self.batch_size - 1) // self.batch_size

    def __iter__(self):
        order = np.arange(self.n)
        if self.shuffle:
            self._rng.shuffle(order)
        for start in range(0, self.n, self.batch_size):
            idx = order[start : start + self.batch_size]
            if self.drop_last and len(idx) < self.batch_size:
                return
            yield (
                {name: arr[idx] for name, arr in self.batch.items()},
                self.targets[idx],
            )
