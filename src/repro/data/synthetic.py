"""The dataset-free computation abstraction (Sec. 3.1).

MMBench "can randomly generate the input with the same shape as the
datasets, which allows computer architecture researchers to skip the
tedious work of downloading and storing data". This module implements
exactly that: given a :class:`~repro.data.shapes.WorkloadShapes`, it
produces batches with the right shapes/dtypes and statistics (unit-scale
floats, valid token ids) but no learnable signal. Use
:mod:`repro.data.generators` when accuracy matters.

Batches can be generated for either execution backend (see
:mod:`repro.nn.backend`): the **eager** backend samples real arrays, the
**meta** backend returns shape-only :class:`~repro.nn.backend.MetaArray`
batches — no RNG work, no allocation — so trace capture scales to batch
sizes that would never fit in memory.
"""

from __future__ import annotations

import numpy as np

from repro.data.shapes import ModalityKind, ModalitySpec, WorkloadShapes
from repro.nn.backend import meta_array, resolve_backend


def random_modality_batch(
    spec: ModalitySpec,
    batch_size: int,
    rng: np.random.Generator,
    backend: str | None = None,
) -> np.ndarray:
    """A random batch of one modality with the dataset's shape and dtype."""
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    if resolve_backend(backend) == "meta":
        dtype = np.int64 if spec.kind == ModalityKind.TOKENS else np.float32
        return meta_array((batch_size, *spec.shape), dtype)
    if spec.kind == ModalityKind.TOKENS:
        return rng.integers(0, spec.vocab_size, size=(batch_size, *spec.shape), dtype=np.int64)
    return rng.standard_normal(size=(batch_size, *spec.shape)).astype(np.float32)


def random_batch(
    shapes: WorkloadShapes, batch_size: int, seed: int = 0, backend: str | None = None
) -> dict[str, np.ndarray]:
    """A full random multi-modal batch keyed by modality name."""
    rng = np.random.default_rng(seed)
    return {
        m.name: random_modality_batch(m, batch_size, rng, backend=backend)
        for m in shapes.modalities
    }


def random_targets(shapes: WorkloadShapes, batch_size: int, seed: int = 0) -> np.ndarray:
    """Random targets matching the workload's task structure."""
    rng = np.random.default_rng(seed + 1)
    task = shapes.task
    if task.kind == "classification":
        return rng.integers(0, task.num_classes, size=batch_size)
    if task.kind == "multilabel":
        return (rng.random((batch_size, task.num_classes)) < 0.2).astype(np.int64)
    if task.kind == "regression":
        return rng.standard_normal((batch_size, task.output_dim)).astype(np.float32)
    if task.kind == "segmentation":
        return (rng.random((batch_size, *task.output_shape)) < 0.3).astype(np.int64)
    if task.kind == "generation":
        return rng.integers(0, task.num_classes, size=(batch_size, 4))
    raise ValueError(f"unknown task kind {task.kind!r}")


def batch_bytes(batch: dict[str, np.ndarray]) -> int:
    """Total bytes of a multi-modal batch (feeds the H2D transfer model)."""
    return int(sum(arr.nbytes for arr in batch.values()))
