"""Learnable latent-factor multi-modal datasets.

The accuracy experiments (Figures 4 and 5) need data where (a) every
modality carries *some* signal about the target, (b) modalities differ in
how informative they are, and (c) fusing modalities genuinely beats the
best single modality. The public datasets the paper uses have exactly this
structure; this module synthesizes it.

The generative story: a latent target (class, label set, or continuous
factor vector) is drawn, then each modality renders a noisy, partially
corrupted view of it through a fixed random template bank. A modality's
:class:`ChannelSpec` controls its signal-to-noise ratio, which classes (or
regression components) it can actually express, and how often its
rendering is corrupted into a different class — the knobs that produce the
paper's "major modality" phenomenon, where >75% of correctly-processed
samples need only one modality but the fusion still adds the last few
points of accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.shapes import ModalityKind, ModalitySpec, WorkloadShapes


def _smooth_template(rng: np.random.Generator, shape: tuple[int, ...]) -> np.ndarray:
    """A unit-variance low-frequency template.

    Natural signals (digits, posters, spectrograms, MRI slices, sensor
    streams) are spatially/temporally smooth; sampling at quarter
    resolution and upsampling reproduces that, and is what makes the
    templates learnable by convolutional and pooled encoders.
    """
    if len(shape) == 3:  # (C, H, W)
        c, h, w = shape
        lh, lw = max(1, h // 4), max(1, w // 4)
        low = rng.standard_normal((c, lh, lw))
        up = np.repeat(np.repeat(low, -(-h // lh), axis=1), -(-w // lw), axis=2)
        template = up[:, :h, :w]
    elif len(shape) == 2:  # (T, D)
        t, d = shape
        lt = max(1, t // 4)
        low = rng.standard_normal((lt, d))
        template = np.repeat(low, -(-t // lt), axis=0)[:t]
    else:
        template = rng.standard_normal(shape)
    std = template.std()
    return template / std if std > 0 else template


@dataclass(frozen=True)
class ChannelSpec:
    """How faithfully one modality reflects the latent target."""

    snr: float = 1.0  # template amplitude over unit noise
    corrupt_prob: float = 0.0  # chance a sample renders a *wrong* class
    informative_classes: tuple[int, ...] | None = None  # None = all classes
    informative_components: tuple[int, ...] | None = None  # regression dims carried


class LatentMultimodalDataset:
    """Class-conditional (or factor-conditional) multi-modal generator.

    Parameters
    ----------
    shapes:
        The workload's modality/task structure.
    channels:
        Per-modality :class:`ChannelSpec`; modalities absent from the dict
        get the default spec.
    seed:
        Seeds the fixed template bank. Different seeds are different
        "datasets"; the same seed with different ``sample`` seeds gives
        train/test splits from one distribution.
    """

    def __init__(
        self,
        shapes: WorkloadShapes,
        channels: dict[str, ChannelSpec] | None = None,
        seed: int = 0,
        noise: float = 1.0,
    ):
        self.shapes = shapes
        self.noise = noise
        channels = channels or {}
        self.channels = {m.name: channels.get(m.name, ChannelSpec()) for m in shapes.modalities}
        self._rng = np.random.default_rng(seed)
        self._templates: dict[str, np.ndarray] = {}
        self._token_logits: dict[str, np.ndarray] = {}
        self._build_templates()

    # -- template bank ---------------------------------------------------------

    def _num_latents(self) -> int:
        task = self.shapes.task
        if task.kind in ("classification", "generation"):
            return max(task.num_classes, 2)
        if task.kind == "multilabel":
            return task.num_classes
        if task.kind == "regression":
            return max(task.output_dim, 1)
        if task.kind == "segmentation":
            return 1
        raise ValueError(f"unknown task kind {task.kind!r}")

    def _build_templates(self) -> None:
        n_latent = self._num_latents()
        for m in self.shapes.modalities:
            if m.kind == ModalityKind.TOKENS:
                # Class-conditional unigram logits; sampling temperature is
                # set by the channel SNR at render time.
                self._token_logits[m.name] = self._rng.standard_normal(
                    (n_latent, m.vocab_size)
                ).astype(np.float32) * 4.0
            else:
                bank = np.stack(
                    [_smooth_template(self._rng, m.shape) for _ in range(n_latent)]
                )
                self._templates[m.name] = bank.astype(np.float32)

    # -- rendering ----------------------------------------------------------------

    # Of the corruption events, this fraction *drops* the modality's signal
    # (sensor dropout, occlusion, silence); the rest render a misleading
    # class. Dropped samples are recoverable from the other modalities,
    # which is what gives fusion its accuracy edge (Figure 4).
    _DROP_FRACTION = 0.75

    def _effective_class(
        self, y: np.ndarray, chan: ChannelSpec, num_classes: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-sample (rendered class, dropped mask) for one modality.

        Uninformative classes and corruption events either blank the
        modality or swap in a random other class, which is what makes some
        samples recoverable only from the other modalities (Figure 5's
        exclusive-correct sets).
        """
        eff = y.copy()
        n = len(y)
        corrupt = rng.random(n) < chan.corrupt_prob
        if chan.informative_classes is not None:
            informative = np.isin(y, np.asarray(chan.informative_classes))
            corrupt |= ~informative
        dropped = corrupt & (rng.random(n) < self._DROP_FRACTION)
        misleading = corrupt & ~dropped
        if misleading.any():
            eff[misleading] = rng.integers(0, num_classes, size=int(misleading.sum()))
        return eff, dropped

    def _render_continuous(
        self, spec: ModalitySpec, weights: np.ndarray, chan: ChannelSpec, rng: np.random.Generator
    ) -> np.ndarray:
        """weights: (N, n_latent) mixing of templates -> (N, *shape)."""
        bank = self._templates[spec.name]  # (n_latent, *shape)
        flat = bank.reshape(bank.shape[0], -1)
        x = weights @ flat * chan.snr
        x += rng.standard_normal(x.shape).astype(np.float32) * self.noise
        return x.reshape(len(weights), *spec.shape).astype(np.float32)

    def _render_tokens(
        self, spec: ModalitySpec, classes: np.ndarray, chan: ChannelSpec, rng: np.random.Generator
    ) -> np.ndarray:
        logits = self._token_logits[spec.name][classes]  # (N, vocab)
        return self._render_tokens_from_logits(spec, logits, chan, rng)

    def _render_tokens_from_logits(
        self, spec: ModalitySpec, logits: np.ndarray, chan: ChannelSpec, rng: np.random.Generator
    ) -> np.ndarray:
        temp = max(0.5, 2.5 / max(chan.snr, 0.1))
        probs = np.exp(logits / temp)
        probs /= probs.sum(axis=1, keepdims=True)
        seq_len = spec.shape[0]
        n = len(logits)
        out = np.empty((n, seq_len), dtype=np.int64)
        cumulative = probs.cumsum(axis=1)
        draws = rng.random((n, seq_len))
        for i in range(n):
            out[i] = np.searchsorted(cumulative[i], draws[i])
        return np.clip(out, 0, spec.vocab_size - 1)

    # -- task-specific sampling -------------------------------------------------

    def sample(self, n: int, seed: int = 1) -> tuple[dict[str, np.ndarray], np.ndarray]:
        """Draw ``n`` samples; returns (modality batch dict, targets)."""
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        rng = np.random.default_rng((seed + 1) * 7919)
        task = self.shapes.task
        if task.kind == "classification":
            return self._sample_classification(n, rng)
        if task.kind == "multilabel":
            return self._sample_multilabel(n, rng)
        if task.kind == "regression":
            return self._sample_regression(n, rng)
        if task.kind == "segmentation":
            return self._sample_segmentation(n, rng)
        if task.kind == "generation":
            return self._sample_generation(n, rng)
        raise ValueError(f"unknown task kind {task.kind!r}")

    def _sample_classification(self, n, rng):
        num_classes = self.shapes.task.num_classes
        y = rng.integers(0, num_classes, size=n)
        batch: dict[str, np.ndarray] = {}
        for spec in self.shapes.modalities:
            chan = self.channels[spec.name]
            eff, dropped = self._effective_class(y, chan, num_classes, rng)
            if spec.kind == ModalityKind.TOKENS:
                rendered = self._render_tokens(spec, eff, chan, rng)
                if dropped.any():
                    rendered[dropped] = rng.integers(
                        0, spec.vocab_size, size=(int(dropped.sum()), spec.shape[0])
                    )
                batch[spec.name] = rendered
            else:
                weights = np.zeros((n, num_classes), dtype=np.float32)
                weights[np.arange(n), eff] = 1.0
                weights[dropped] = 0.0
                batch[spec.name] = self._render_continuous(spec, weights, chan, rng)
        return batch, y

    def _sample_multilabel(self, n, rng):
        num_labels = self.shapes.task.num_classes
        y = (rng.random((n, num_labels)) < 0.25).astype(np.int64)
        batch: dict[str, np.ndarray] = {}
        for spec in self.shapes.modalities:
            chan = self.channels[spec.name]
            weights = y.astype(np.float32)
            if chan.informative_classes is not None:
                mask = np.zeros(num_labels, dtype=np.float32)
                mask[list(chan.informative_classes)] = 1.0
                weights = weights * mask
            # Per-sample corruption: drop the whole signal.
            drop = rng.random(n) < chan.corrupt_prob
            weights[drop] = 0.0
            if spec.kind == ModalityKind.TOKENS:
                # Tokens mix the active labels' vocabularies (a plot summary
                # mentions every genre), so text carries the full label set.
                active = np.maximum(weights.sum(axis=1, keepdims=True), 1.0)
                mixed = (weights @ self._token_logits[spec.name]) / active
                noise_rows = weights.sum(axis=1) == 0
                if noise_rows.any():
                    mixed[noise_rows] = 0.0  # uniform -> pure noise tokens
                batch[spec.name] = self._render_tokens_from_logits(spec, mixed, chan, rng)
            else:
                batch[spec.name] = self._render_continuous(spec, weights, chan, rng)
        return batch, y

    def _sample_regression(self, n, rng):
        dim = self.shapes.task.output_dim
        t = rng.uniform(-1.0, 1.0, size=(n, dim)).astype(np.float32)
        batch: dict[str, np.ndarray] = {}
        for spec in self.shapes.modalities:
            chan = self.channels[spec.name]
            weights = t.copy()
            if chan.informative_components is not None:
                mask = np.zeros(dim, dtype=np.float32)
                mask[list(chan.informative_components)] = 1.0
                weights = weights * mask
            drop = rng.random(n) < chan.corrupt_prob
            weights[drop] = 0.0
            if spec.kind == ModalityKind.TOKENS:
                # Quantize the first carried component into vocab buckets.
                comp = weights[:, 0] if dim > 0 else np.zeros(n, dtype=np.float32)
                classes = np.clip(
                    ((comp + 1.0) * 0.5 * (self._num_latents() - 1)).astype(np.int64),
                    0,
                    self._num_latents() - 1,
                )
                batch[spec.name] = self._render_tokens(spec, classes, chan, rng)
            else:
                batch[spec.name] = self._render_continuous(spec, weights, chan, rng)
        return batch, t

    def _sample_segmentation(self, n, rng):
        out_shape = self.shapes.task.output_shape
        _, h, w = out_shape
        yy, xx = np.mgrid[0:h, 0:w]
        masks = np.zeros((n, *out_shape), dtype=np.int64)
        batch = {spec.name: np.empty((n, *spec.shape), dtype=np.float32) for spec in self.shapes.modalities}
        for i in range(n):
            cy, cx = rng.uniform(0.25 * h, 0.75 * h), rng.uniform(0.25 * w, 0.75 * w)
            ry, rx = rng.uniform(0.1 * h, 0.3 * h), rng.uniform(0.1 * w, 0.3 * w)
            mask = (((yy - cy) / ry) ** 2 + ((xx - cx) / rx) ** 2 <= 1.0).astype(np.float32)
            masks[i, 0] = mask.astype(np.int64)
            for spec in self.shapes.modalities:
                chan = self.channels[spec.name]
                contrast = chan.snr if rng.random() >= chan.corrupt_prob else 0.1 * chan.snr
                img = mask * contrast + rng.standard_normal((h, w)).astype(np.float32) * self.noise
                batch[spec.name][i] = np.broadcast_to(img, spec.shape)
        return batch, masks

    def _sample_generation(self, n, rng):
        """VQA-style: answer tokens are a function of (image class, question)."""
        num_answers = self.shapes.task.num_classes
        image_spec = self.shapes.modalities[0]
        question_spec = self.shapes.modalities[1]
        num_img_classes = 8
        num_questions = 4
        y_img = rng.integers(0, num_img_classes, size=n)
        y_q = rng.integers(0, num_questions, size=n)
        chan_img = self.channels[image_spec.name]
        chan_q = self.channels[question_spec.name]
        eff_img, dropped_img = self._effective_class(y_img, chan_img, num_img_classes, rng)
        weights = np.zeros((n, self._num_latents()), dtype=np.float32)
        weights[np.arange(n), eff_img % self._num_latents()] = 1.0
        weights[dropped_img] = 0.0
        batch = {
            image_spec.name: self._render_continuous(image_spec, weights, chan_img, rng),
            question_spec.name: self._render_tokens(
                question_spec, y_q % self._num_latents(), chan_q, rng
            ),
        }
        # Deterministic 4-token answer from the (class, question) pair.
        answer_len = 4
        targets = np.empty((n, answer_len), dtype=np.int64)
        for j in range(answer_len):
            targets[:, j] = (y_img * 7 + y_q * 3 + j) % num_answers
        return batch, targets
