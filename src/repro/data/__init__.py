"""Synthetic data substrate: shapes, random abstraction, latent-factor sets."""

from repro.data.generators import ChannelSpec, LatentMultimodalDataset
from repro.data.loader import DataLoader
from repro.data.shapes import (
    ALL_SHAPES,
    AVMNIST,
    CMU_MOSEI,
    MEDICAL_SEG,
    MEDICAL_VQA,
    MMIMDB,
    MUJOCO_PUSH,
    MUSTARD,
    ModalityKind,
    ModalitySpec,
    TRANSFUSER,
    TaskSpec,
    VISION_TOUCH,
    WorkloadShapes,
)
from repro.data.synthetic import batch_bytes, random_batch, random_modality_batch, random_targets

__all__ = [
    "ChannelSpec", "LatentMultimodalDataset", "DataLoader",
    "ALL_SHAPES", "AVMNIST", "CMU_MOSEI", "MEDICAL_SEG", "MEDICAL_VQA",
    "MMIMDB", "MUJOCO_PUSH", "MUSTARD", "TRANSFUSER", "VISION_TOUCH",
    "ModalityKind", "ModalitySpec", "TaskSpec", "WorkloadShapes",
    "batch_bytes", "random_batch", "random_modality_batch", "random_targets",
]
