"""Differentiable operations over :class:`~repro.nn.tensor.Tensor`.

Every op does three things:

1. computes the forward value with numpy,
2. registers a backward closure on the output tensor (when grad is enabled),
3. emits a :class:`~repro.trace.events.KernelEvent` describing the device
   work (FLOPs, bytes, parallelism, access pattern) so a profiling session
   can attribute the op to a GPU kernel category — the same taxonomy the
   paper uses in its Figure-8 breakdown (Conv, BNorm, Elewise, Pooling,
   Relu, Gemm, Reduce, Other).

The kernel emission is a no-op unless a tracer is active, so training runs
pay only a branch per op.

Backward closures are traced execution paths too: each op snapshots its
(stage, modality) context at graph-build time and its closure emits
``pass_="backward"`` kernels carrying that context before computing the
gradients. All backward work descriptors are shape-derived, so the meta
backend (shape-only gradients, no numeric work) emits an event stream
identical to eager backward — the forward-path differential invariant,
extended to full training steps.
"""

from __future__ import annotations

import numpy as np

from repro.nn.backend import MetaArray, is_meta, meta_array, meta_like
from repro.nn.tensor import DEFAULT_DTYPE, Tensor, as_tensor, is_grad_enabled
from repro.trace.events import KernelCategory, PASS_BACKWARD
from repro.trace.tracer import UNSET, active_tracer, emit_kernel

_ITEMSIZE = np.dtype(DEFAULT_DTYPE).itemsize


def _contig(x):
    """``np.ascontiguousarray`` that passes meta arrays through unchanged.

    (``ascontiguousarray`` is one of the few numpy entry points that does
    not dispatch through ``__array_function__``.)
    """
    return x if isinstance(x, MetaArray) else np.ascontiguousarray(x)


def _make(data, parents, backward, name="") -> Tensor:
    """Build an output tensor, wiring the graph only when grad is enabled."""
    requires = is_grad_enabled() and any(p.requires_grad for p in parents)
    out = Tensor(data, requires_grad=requires, name=name)
    if requires:
        out._parents = tuple(parents)
        out._backward = backward
    return out


def _emit(name, category, flops, inputs_bytes, out_bytes, threads, coalesced=1.0, reuse=1.0, **meta):
    emit_kernel(
        name,
        category,
        flops=flops,
        bytes_read=inputs_bytes,
        bytes_written=out_bytes,
        threads=threads,
        coalesced_fraction=coalesced,
        reuse_factor=reuse,
        **meta,
    )


# ---------------------------------------------------------------------------
# backward-pass tracing helpers
# ---------------------------------------------------------------------------
#
# Every op snapshots the tracer's (stage, modality) context while the
# forward graph is being built; its backward closure re-applies that
# context when it emits the backward kernels, long after the forward
# scopes have unwound. All backward work descriptors are derived from
# shapes only, so the meta and eager backends emit identical events — the
# same invariant the forward path already guarantees.


def _ctx():
    """Snapshot (stage, modality) for this op's backward emissions."""
    tracer = active_tracer()
    if tracer is None:
        return None
    return (tracer.current_stage, tracer.current_modality)


def _emit_bwd(ctx, name, category, flops, inputs_bytes, out_bytes, threads,
              coalesced=1.0, reuse=1.0, **meta):
    """Emit one backward kernel carrying the forward op's context."""
    stage, modality = ctx if ctx is not None else (None, UNSET)
    emit_kernel(
        name,
        category,
        flops=flops,
        bytes_read=inputs_bytes,
        bytes_written=out_bytes,
        threads=threads,
        coalesced_fraction=coalesced,
        reuse_factor=reuse,
        stage=stage,
        modality=modality,
        pass_=PASS_BACKWARD,
        **meta,
    )


def _meta_accumulate(grad, *tensors) -> bool:
    """Shape-only gradient propagation for the meta backend.

    When ``grad`` is a :class:`MetaArray`, accumulate a meta gradient of
    each grad-requiring tensor's own shape and report True so the caller
    skips its numeric path. The backward *events* were already emitted
    (shape-derived, backend-independent) before this call.
    """
    if not is_meta(grad):
        return False
    for t in tensors:
        if t is not None and t.requires_grad:
            t.accumulate_grad(meta_like(t.data))
    return True


def _unary_bwd(ctx, a, grad, name, category, flops, extra_read=0.0, coalesced=1.0):
    """Emit a one-input backward kernel; True when the meta path handled it.

    ``extra_read`` is whatever the closure reads besides the incoming
    gradient (saved inputs/outputs), in bytes.
    """
    _emit_bwd(ctx, name, category, flops=flops,
              inputs_bytes=float(a.nbytes + extra_read),
              out_bytes=float(a.nbytes), threads=a.size, coalesced=coalesced)
    return _meta_accumulate(grad, a)


# ---------------------------------------------------------------------------
# element-wise arithmetic
# ---------------------------------------------------------------------------


def _binary_elementwise(a: Tensor, b: Tensor, fwd, bwd_a, bwd_b, opname: str,
                        bwd_flops_per_out: float = 1.0) -> Tensor:
    data = fwd(a.data, b.data)
    out_bytes = data.nbytes
    ctx = _ctx()

    def backward(grad):
        active = int(a.requires_grad) + int(b.requires_grad)
        _emit_bwd(
            ctx, f"{opname}_bwd", KernelCategory.ELEWISE,
            flops=bwd_flops_per_out * data.size * active,
            inputs_bytes=float(out_bytes + a.nbytes + b.nbytes),
            out_bytes=float((a.nbytes if a.requires_grad else 0)
                            + (b.nbytes if b.requires_grad else 0)),
            threads=data.size,
        )
        if _meta_accumulate(grad, a, b):
            return
        if a.requires_grad:
            a.accumulate_grad(bwd_a(grad, a.data, b.data, data))
        if b.requires_grad:
            b.accumulate_grad(bwd_b(grad, a.data, b.data, data))

    _emit(
        opname,
        KernelCategory.ELEWISE,
        flops=data.size,
        inputs_bytes=a.nbytes + b.nbytes,
        out_bytes=out_bytes,
        threads=data.size,
    )
    return _make(data, (a, b), backward, name=opname)


def add(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    return _binary_elementwise(
        a, b, lambda x, y: x + y, lambda g, x, y, o: g, lambda g, x, y, o: g, "add"
    )


def sub(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    return _binary_elementwise(
        a, b, lambda x, y: x - y, lambda g, x, y, o: g, lambda g, x, y, o: -g, "sub"
    )


def mul(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    return _binary_elementwise(
        a, b, lambda x, y: x * y, lambda g, x, y, o: g * y, lambda g, x, y, o: g * x, "mul"
    )


def div(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    return _binary_elementwise(
        a,
        b,
        lambda x, y: x / y,
        lambda g, x, y, o: g / y,
        lambda g, x, y, o: -g * x / (y * y),
        "div",
        bwd_flops_per_out=2.0,
    )


def neg(a: Tensor) -> Tensor:
    data = -a.data
    ctx = _ctx()

    def backward(grad):
        if _unary_bwd(ctx, a, grad, "neg_bwd", KernelCategory.ELEWISE, a.size):
            return
        a.accumulate_grad(-grad)

    _emit("neg", KernelCategory.ELEWISE, data.size, a.nbytes, data.nbytes, data.size)
    return _make(data, (a,), backward, name="neg")


def pow_(a: Tensor, exponent: float) -> Tensor:
    data = a.data**exponent
    ctx = _ctx()

    def backward(grad):
        if _unary_bwd(ctx, a, grad, "pow_bwd", KernelCategory.ELEWISE,
                      3 * a.size, extra_read=a.nbytes):
            return
        a.accumulate_grad(grad * exponent * a.data ** (exponent - 1))

    _emit("pow", KernelCategory.ELEWISE, 2 * data.size, a.nbytes, data.nbytes, data.size)
    return _make(data, (a,), backward, name="pow")


def exp(a: Tensor) -> Tensor:
    data = np.exp(a.data)
    ctx = _ctx()

    def backward(grad):
        if _unary_bwd(ctx, a, grad, "exp_bwd", KernelCategory.ELEWISE,
                      a.size, extra_read=data.nbytes):
            return
        a.accumulate_grad(grad * data)

    _emit("exp", KernelCategory.ELEWISE, 4 * data.size, a.nbytes, data.nbytes, data.size)
    return _make(data, (a,), backward, name="exp")


def log(a: Tensor) -> Tensor:
    data = np.log(a.data)
    ctx = _ctx()

    def backward(grad):
        if _unary_bwd(ctx, a, grad, "log_bwd", KernelCategory.ELEWISE,
                      a.size, extra_read=a.nbytes):
            return
        a.accumulate_grad(grad / a.data)

    _emit("log", KernelCategory.ELEWISE, 4 * data.size, a.nbytes, data.nbytes, data.size)
    return _make(data, (a,), backward, name="log")


def sqrt(a: Tensor) -> Tensor:
    data = np.sqrt(a.data)
    ctx = _ctx()

    def backward(grad):
        if _unary_bwd(ctx, a, grad, "sqrt_bwd", KernelCategory.ELEWISE,
                      2 * a.size, extra_read=data.nbytes):
            return
        a.accumulate_grad(grad * 0.5 / np.maximum(data, 1e-12))

    _emit("sqrt", KernelCategory.ELEWISE, 2 * data.size, a.nbytes, data.nbytes, data.size)
    return _make(data, (a,), backward, name="sqrt")


# ---------------------------------------------------------------------------
# activations
# ---------------------------------------------------------------------------


def relu(a: Tensor) -> Tensor:
    data = np.maximum(a.data, 0)
    ctx = _ctx()

    def backward(grad):
        if _unary_bwd(ctx, a, grad, "relu_bwd", KernelCategory.RELU,
                      a.size, extra_read=a.nbytes):
            return
        a.accumulate_grad(grad * (a.data > 0))

    _emit("relu", KernelCategory.RELU, data.size, a.nbytes, data.nbytes, data.size)
    return _make(data, (a,), backward, name="relu")


def leaky_relu(a: Tensor, slope: float = 0.01) -> Tensor:
    data = np.where(a.data > 0, a.data, slope * a.data)
    ctx = _ctx()

    def backward(grad):
        if _unary_bwd(ctx, a, grad, "leaky_relu_bwd", KernelCategory.RELU,
                      2 * a.size, extra_read=a.nbytes):
            return
        a.accumulate_grad(grad * np.where(a.data > 0, 1.0, slope).astype(DEFAULT_DTYPE))

    _emit("leaky_relu", KernelCategory.RELU, 2 * data.size, a.nbytes, data.nbytes, data.size)
    return _make(data, (a,), backward, name="leaky_relu")


def sigmoid(a: Tensor) -> Tensor:
    data = 1.0 / (1.0 + np.exp(-a.data))
    ctx = _ctx()

    def backward(grad):
        if _unary_bwd(ctx, a, grad, "sigmoid_bwd", KernelCategory.ELEWISE,
                      3 * a.size, extra_read=data.nbytes):
            return
        a.accumulate_grad(grad * data * (1.0 - data))

    _emit("sigmoid", KernelCategory.ELEWISE, 5 * data.size, a.nbytes, data.nbytes, data.size)
    return _make(data, (a,), backward, name="sigmoid")


def tanh(a: Tensor) -> Tensor:
    data = np.tanh(a.data)
    ctx = _ctx()

    def backward(grad):
        if _unary_bwd(ctx, a, grad, "tanh_bwd", KernelCategory.ELEWISE,
                      3 * a.size, extra_read=data.nbytes):
            return
        a.accumulate_grad(grad * (1.0 - data * data))

    _emit("tanh", KernelCategory.ELEWISE, 6 * data.size, a.nbytes, data.nbytes, data.size)
    return _make(data, (a,), backward, name="tanh")


def gelu(a: Tensor) -> Tensor:
    """GELU with the tanh approximation (as used by BERT/ALBERT)."""
    c = np.float32(np.sqrt(2.0 / np.pi))
    inner = c * (a.data + 0.044715 * a.data**3)
    t = np.tanh(inner)
    data = 0.5 * a.data * (1.0 + t)
    ctx = _ctx()

    def backward(grad):
        if _unary_bwd(ctx, a, grad, "gelu_bwd", KernelCategory.ELEWISE,
                      10 * a.size, extra_read=a.nbytes + t.nbytes):
            return
        dt = (1.0 - t * t) * c * (1.0 + 3 * 0.044715 * a.data**2)
        a.accumulate_grad(grad * (0.5 * (1.0 + t) + 0.5 * a.data * dt))

    _emit("gelu", KernelCategory.ELEWISE, 12 * data.size, a.nbytes, data.nbytes, data.size)
    return _make(data.astype(DEFAULT_DTYPE), (a,), backward, name="gelu")


# ---------------------------------------------------------------------------
# reductions & normalizing transforms
# ---------------------------------------------------------------------------


def sum_(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    data = a.data.sum(axis=axis, keepdims=keepdims)
    ctx = _ctx()
    out_nbytes = int(data.nbytes)

    def backward(grad):
        # Broadcast of the (small) output gradient back over the input.
        _emit_bwd(ctx, "reduce_sum_bwd", KernelCategory.ELEWISE,
                  flops=float(a.size), inputs_bytes=float(out_nbytes),
                  out_bytes=float(a.nbytes), threads=a.size, coalesced=0.85)
        if _meta_accumulate(grad, a):
            return
        g = np.asarray(grad)
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis=axis)
        a.accumulate_grad(np.broadcast_to(g, a.shape))

    _emit(
        "reduce_sum",
        KernelCategory.REDUCE,
        a.size,
        a.nbytes,
        int(data.nbytes),
        max(int(data.size), 1),
        coalesced=0.85,
    )
    return _make(data, (a,), backward, name="sum")


def mean(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    if axis is None:
        count = a.size
    else:
        axes = axis if isinstance(axis, tuple) else (axis,)
        count = 1
        for ax in axes:
            count *= a.shape[ax]
    total = sum_(a, axis=axis, keepdims=keepdims)
    return mul(total, 1.0 / count)


def max_(a: Tensor, axis: int, keepdims: bool = False) -> Tensor:
    data = a.data.max(axis=axis, keepdims=keepdims)
    arg = a.data.argmax(axis=axis)
    ctx = _ctx()
    out_nbytes = int(data.nbytes)

    def backward(grad):
        # Scatter of the output gradient into the argmax positions.
        _emit_bwd(ctx, "reduce_max_bwd", KernelCategory.ELEWISE,
                  flops=float(a.size), inputs_bytes=float(out_nbytes + arg.nbytes),
                  out_bytes=float(a.nbytes), threads=a.size, coalesced=0.85)
        if _meta_accumulate(grad, a):
            return
        g = np.asarray(grad)
        if not keepdims:
            g = np.expand_dims(g, axis=axis)
        mask = np.zeros_like(a.data)
        np.put_along_axis(mask, np.expand_dims(arg, axis=axis), 1.0, axis=axis)
        a.accumulate_grad(mask * np.broadcast_to(g, a.shape))

    _emit(
        "reduce_max",
        KernelCategory.REDUCE,
        a.size,
        a.nbytes,
        int(data.nbytes),
        max(int(data.size), 1),
        coalesced=0.85,
    )
    return _make(data, (a,), backward, name="max")


def softmax(a: Tensor, axis: int = -1) -> Tensor:
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    data = e / e.sum(axis=axis, keepdims=True)
    ctx = _ctx()

    def backward(grad):
        # The Jacobian-vector product: a dot-reduce along the softmax axis
        # plus an elementwise combine, mirroring the forward's two kernels.
        _emit_bwd(ctx, "softmax_bwd_reduce", KernelCategory.REDUCE,
                  flops=2.0 * a.size, inputs_bytes=float(2 * a.nbytes),
                  out_bytes=float(a.nbytes // max(a.shape[axis], 1)),
                  threads=a.size, coalesced=0.85)
        _emit_bwd(ctx, "softmax_bwd_elewise", KernelCategory.ELEWISE,
                  flops=2.0 * a.size, inputs_bytes=float(2 * a.nbytes),
                  out_bytes=float(a.nbytes), threads=a.size)
        if _meta_accumulate(grad, a):
            return
        dot = (grad * data).sum(axis=axis, keepdims=True)
        a.accumulate_grad(data * (grad - dot))

    # A softmax launches a max-reduce, an exp, a sum-reduce and a divide;
    # attribute the reduction work to Reduce and the rest to Elewise.
    _emit("softmax_reduce", KernelCategory.REDUCE, 2 * a.size, a.nbytes, a.nbytes // max(a.shape[axis], 1), a.size, coalesced=0.85)
    _emit("softmax_elewise", KernelCategory.ELEWISE, 6 * a.size, a.nbytes, data.nbytes, a.size)
    return _make(data.astype(DEFAULT_DTYPE), (a,), backward, name="softmax")


def log_softmax(a: Tensor, axis: int = -1) -> Tensor:
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    log_denominator = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    data = shifted - log_denominator
    ctx = _ctx()

    def backward(grad):
        _emit_bwd(ctx, "log_softmax_bwd_reduce", KernelCategory.REDUCE,
                  flops=float(a.size), inputs_bytes=float(a.nbytes),
                  out_bytes=float(a.nbytes // max(a.shape[axis], 1)),
                  threads=a.size, coalesced=0.85)
        _emit_bwd(ctx, "log_softmax_bwd_elewise", KernelCategory.ELEWISE,
                  flops=3.0 * a.size, inputs_bytes=float(2 * a.nbytes),
                  out_bytes=float(a.nbytes), threads=a.size)
        if _meta_accumulate(grad, a):
            return
        softmax_vals = np.exp(data)
        a.accumulate_grad(grad - softmax_vals * grad.sum(axis=axis, keepdims=True))

    _emit("log_softmax_reduce", KernelCategory.REDUCE, 2 * a.size, a.nbytes, a.nbytes // max(a.shape[axis], 1), a.size, coalesced=0.85)
    _emit("log_softmax_elewise", KernelCategory.ELEWISE, 5 * a.size, a.nbytes, data.nbytes, a.size)
    return _make(data.astype(DEFAULT_DTYPE), (a,), backward, name="log_softmax")


# ---------------------------------------------------------------------------
# linear algebra
# ---------------------------------------------------------------------------


def matmul(a: Tensor, b: Tensor) -> Tensor:
    data = a.data @ b.data
    ctx = _ctx()

    m = a.data.shape[-2] if a.data.ndim >= 2 else 1
    k = a.data.shape[-1]
    n = b.data.shape[-1] if b.data.ndim >= 2 else 1
    batch = int(np.prod(data.shape[:-2])) if data.ndim > 2 else 1
    gemm_flops = 2.0 * batch * m * k * n

    def backward(grad):
        # dA = dOut @ B^T and dB = A^T @ dOut: each a GEMM with the same
        # FLOP volume as the forward product.
        if a.requires_grad:
            _emit_bwd(ctx, "gemm_bwd_da", KernelCategory.GEMM,
                      flops=gemm_flops, inputs_bytes=float(data.nbytes + b.nbytes),
                      out_bytes=float(a.nbytes), threads=max(int(a.size), 1),
                      reuse=min(float(n), 64.0))
        if b.requires_grad:
            _emit_bwd(ctx, "gemm_bwd_db", KernelCategory.GEMM,
                      flops=gemm_flops, inputs_bytes=float(data.nbytes + a.nbytes),
                      out_bytes=float(b.nbytes), threads=max(int(b.size), 1),
                      reuse=min(float(m), 64.0))
        if _meta_accumulate(grad, a, b):
            return
        if a.requires_grad:
            ga = grad @ np.swapaxes(b.data, -1, -2)
            a.accumulate_grad(ga)
        if b.requires_grad:
            gb = np.swapaxes(a.data, -1, -2) @ grad
            b.accumulate_grad(gb)

    _emit(
        "gemm",
        KernelCategory.GEMM,
        flops=gemm_flops,
        inputs_bytes=a.nbytes + b.nbytes,
        out_bytes=data.nbytes,
        threads=max(int(data.size), 1),
        reuse=min(float(k), 64.0),
        m=m,
        n=n,
        k=k,
    )
    return _make(data, (a, b), backward, name="matmul")


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """``x @ weight.T + bias`` with weight of shape (out, in)."""
    out = matmul(x, transpose(weight))
    if bias is not None:
        out = add(out, bias)
    return out


def outer_product(a: Tensor, b: Tensor) -> Tensor:
    """Batched outer product for tensor fusion: (B, M), (B, N) -> (B, M, N).

    This is the ``x ⊗ y`` fusion operator of Table 1.
    """
    data = np.einsum("bm,bn->bmn", a.data, b.data)
    ctx = _ctx()

    def backward(grad):
        if a.requires_grad:
            _emit_bwd(ctx, "outer_product_bwd_a", KernelCategory.GEMM,
                      flops=2.0 * data.size, inputs_bytes=float(data.nbytes + b.nbytes),
                      out_bytes=float(a.nbytes), threads=max(int(a.size), 1), reuse=2.0)
        if b.requires_grad:
            _emit_bwd(ctx, "outer_product_bwd_b", KernelCategory.GEMM,
                      flops=2.0 * data.size, inputs_bytes=float(data.nbytes + a.nbytes),
                      out_bytes=float(b.nbytes), threads=max(int(b.size), 1), reuse=2.0)
        if _meta_accumulate(grad, a, b):
            return
        if a.requires_grad:
            a.accumulate_grad(np.einsum("bmn,bn->bm", grad, b.data))
        if b.requires_grad:
            b.accumulate_grad(np.einsum("bmn,bm->bn", grad, a.data))

    _emit(
        "outer_product",
        KernelCategory.GEMM,
        flops=float(data.size),
        inputs_bytes=a.nbytes + b.nbytes,
        out_bytes=data.nbytes,
        threads=int(data.size),
        reuse=2.0,
    )
    return _make(data.astype(DEFAULT_DTYPE), (a, b), backward, name="outer_product")


# ---------------------------------------------------------------------------
# shape manipulation (memory-movement kernels -> Other)
# ---------------------------------------------------------------------------


def reshape(a: Tensor, shape) -> Tensor:
    data = a.data.reshape(shape)

    def backward(grad):
        a.accumulate_grad(grad.reshape(a.shape))

    # Reshape is free on contiguous data; no kernel is emitted.
    return _make(data, (a,), backward, name="reshape")


def transpose(a: Tensor, axes=None) -> Tensor:
    if axes is None:
        axes = tuple(reversed(range(a.ndim)))
    data = np.transpose(a.data, axes)
    inverse = np.argsort(axes)
    ctx = _ctx()

    def backward(grad):
        _emit_bwd(ctx, "transpose_bwd", KernelCategory.OTHER, flops=0.0,
                  inputs_bytes=float(a.nbytes), out_bytes=float(a.nbytes),
                  threads=a.size, coalesced=0.5)
        if _meta_accumulate(grad, a):
            return
        a.accumulate_grad(np.transpose(grad, inverse))

    _emit("transpose", KernelCategory.OTHER, 0.0, a.nbytes, data.nbytes, a.size, coalesced=0.5)
    return _make(data, (a,), backward, name="transpose")


def concat(tensors: list[Tensor], axis: int = -1) -> Tensor:
    tensors = [as_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)
    ctx = _ctx()

    def backward(grad):
        active_bytes = float(sum(t.nbytes for t in tensors if t.requires_grad))
        _emit_bwd(ctx, "concat_bwd", KernelCategory.OTHER, flops=0.0,
                  inputs_bytes=float(data.nbytes), out_bytes=active_bytes,
                  threads=int(data.size), coalesced=0.9)
        if _meta_accumulate(grad, *tensors):
            return
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(int(start), int(stop))
                t.accumulate_grad(grad[tuple(index)])

    _emit(
        "concat",
        KernelCategory.OTHER,
        0.0,
        sum(t.nbytes for t in tensors),
        data.nbytes,
        int(data.size),
        coalesced=0.9,
    )
    return _make(data, tuple(tensors), backward, name="concat")


def stack(tensors: list[Tensor], axis: int = 0) -> Tensor:
    tensors = [as_tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)
    ctx = _ctx()

    def backward(grad):
        active_bytes = float(sum(t.nbytes for t in tensors if t.requires_grad))
        _emit_bwd(ctx, "stack_bwd", KernelCategory.OTHER, flops=0.0,
                  inputs_bytes=float(data.nbytes), out_bytes=active_bytes,
                  threads=int(data.size), coalesced=0.9)
        if _meta_accumulate(grad, *tensors):
            return
        parts = np.split(grad, len(tensors), axis=axis)
        for t, g in zip(tensors, parts):
            if t.requires_grad:
                t.accumulate_grad(np.squeeze(g, axis=axis))

    _emit(
        "stack",
        KernelCategory.OTHER,
        0.0,
        sum(t.nbytes for t in tensors),
        data.nbytes,
        int(data.size),
        coalesced=0.9,
    )
    return _make(data, tuple(tensors), backward, name="stack")


def getitem(a: Tensor, index) -> Tensor:
    data = a.data[index]

    def backward(grad):
        # No kernel: the forward view emits none, so its scatter-back
        # stays un-evented too (both are free on contiguous data).
        if _meta_accumulate(grad, a):
            return
        full = np.zeros_like(a.data)
        np.add.at(full, index, grad)
        a.accumulate_grad(full)

    return _make(data, (a,), backward, name="getitem")


def pad2d(a: Tensor, padding: int) -> Tensor:
    """Zero-pad the two trailing spatial axes of an (N, C, H, W) tensor."""
    if padding == 0:
        return a
    p = padding
    data = np.pad(a.data, ((0, 0), (0, 0), (p, p), (p, p)))
    ctx = _ctx()

    def backward(grad):
        _emit_bwd(ctx, "pad_bwd", KernelCategory.OTHER, flops=0.0,
                  inputs_bytes=float(data.nbytes), out_bytes=float(a.nbytes),
                  threads=a.size)
        if _meta_accumulate(grad, a):
            return
        a.accumulate_grad(grad[:, :, p:-p, p:-p])

    _emit("pad", KernelCategory.OTHER, 0.0, a.nbytes, data.nbytes, int(data.size))
    return _make(data, (a,), backward, name="pad2d")


def dropout(a: Tensor, p: float, training: bool, rng: np.random.Generator) -> Tensor:
    """Inverted dropout; identity at inference time."""
    if not training or p <= 0.0:
        return a
    keep = 1.0 - p
    if is_meta(a.data):
        # No mask is sampled on the meta backend: the kernel event below is
        # shape-derived, and meta tracing never runs backward.
        mask = None
        data = meta_like(a.data)
    else:
        mask = (rng.random(a.shape) < keep).astype(DEFAULT_DTYPE) / keep
        data = a.data * mask
    ctx = _ctx()

    def backward(grad):
        _emit_bwd(ctx, "dropout_bwd", KernelCategory.ELEWISE, flops=float(a.size),
                  inputs_bytes=float(2 * a.nbytes), out_bytes=float(a.nbytes),
                  threads=a.size)
        if _meta_accumulate(grad, a) or mask is None:
            return
        a.accumulate_grad(grad * mask)

    _emit("dropout", KernelCategory.ELEWISE, data.size, a.nbytes, data.nbytes, data.size)
    return _make(data, (a,), backward, name="dropout")


def embedding(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Row gather: weight (V, D) indexed by an integer array of any shape."""
    if is_meta(indices):
        idx = indices
        data = meta_array((*idx.shape, weight.shape[1]), weight.dtype)
    else:
        idx = np.asarray(indices)
        data = weight.data[idx]
    ctx = _ctx()

    def backward(grad):
        # Scatter-add of row gradients back into the embedding table.
        _emit_bwd(ctx, "embedding_scatter_bwd", KernelCategory.OTHER, flops=0.0,
                  inputs_bytes=float(data.nbytes), out_bytes=float(weight.nbytes),
                  threads=int(data.size), coalesced=0.35)
        if _meta_accumulate(grad, weight) or is_meta(idx):
            return
        full = np.zeros_like(weight.data)
        np.add.at(full, idx.reshape(-1), grad.reshape(-1, weight.shape[1]))
        weight.accumulate_grad(full)

    _emit(
        "embedding_gather",
        KernelCategory.OTHER,
        0.0,
        float(idx.size * weight.shape[1] * _ITEMSIZE),
        data.nbytes,
        int(data.size),
        coalesced=0.35,
    )
    return _make(data, (weight,), backward, name="embedding")


# ---------------------------------------------------------------------------
# convolution & pooling
# ---------------------------------------------------------------------------


def _im2col(x: np.ndarray, kh: int, kw: int, stride: int):
    """Extract sliding windows: (N,C,H,W) -> (N, OH*OW, C*kh*kw)."""
    n, c, h, w = x.shape
    oh = (h - kh) // stride + 1
    ow = (w - kw) // stride + 1
    windows = np.lib.stride_tricks.sliding_window_view(x, (kh, kw), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride, :, :]
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n, oh * ow, c * kh * kw)
    return _contig(cols), oh, ow


def conv2d(x: Tensor, weight: Tensor, bias: Tensor | None, stride: int = 1, padding: int = 0) -> Tensor:
    """2D convolution via im2col + GEMM (the cuDNN implicit-GEMM analogue).

    ``x``: (N, C, H, W); ``weight``: (O, C, kh, kw); ``bias``: (O,) or None.
    """
    n, c, h, w = x.shape
    o, c2, kh, kw = weight.shape
    if c != c2:
        raise ValueError(f"conv2d channel mismatch: input {c} vs weight {c2}")
    p = padding
    x_pad = np.pad(x.data, ((0, 0), (0, 0), (p, p), (p, p))) if p else x.data
    cols, oh, ow = _im2col(x_pad, kh, kw, stride)
    w_flat = weight.data.reshape(o, -1)
    out = cols @ w_flat.T  # (N, OH*OW, O)
    if bias is not None:
        out = out + bias.data
    data = out.transpose(0, 2, 1).reshape(n, o, oh, ow)
    ctx = _ctx()
    flops = 2.0 * n * oh * ow * o * c * kh * kw
    cols_bytes = float(n * oh * ow * c * kh * kw * _ITEMSIZE)

    def backward(grad):
        # wgrad and dgrad are each implicit GEMMs with the forward's FLOP
        # volume; the bias gradient is a reduce over batch and space.
        if bias is not None and bias.requires_grad:
            _emit_bwd(ctx, "conv2d_bwd_b", KernelCategory.REDUCE,
                      flops=float(n * oh * ow * o), inputs_bytes=float(data.nbytes),
                      out_bytes=float(bias.nbytes), threads=max(int(o), 1),
                      coalesced=0.85)
        if weight.requires_grad:
            _emit_bwd(ctx, "conv2d_bwd_w", KernelCategory.CONV, flops=flops,
                      inputs_bytes=float(data.nbytes) + cols_bytes,
                      out_bytes=float(weight.nbytes), threads=int(weight.size),
                      reuse=min(float(n * oh * ow), 96.0), kh=kh, kw=kw, stride=stride)
        if x.requires_grad:
            _emit_bwd(ctx, "conv2d_bwd_x", KernelCategory.CONV, flops=flops,
                      inputs_bytes=float(data.nbytes + weight.nbytes),
                      out_bytes=float(x.nbytes), threads=int(x.size),
                      reuse=min(float(o * kh * kw), 96.0), kh=kh, kw=kw, stride=stride)
        if _meta_accumulate(grad, x, weight, bias):
            return
        gout = grad.reshape(n, o, oh * ow).transpose(0, 2, 1)  # (N, OH*OW, O)
        if bias is not None and bias.requires_grad:
            bias.accumulate_grad(gout.sum(axis=(0, 1)))
        if weight.requires_grad:
            gw = np.einsum("npo,npk->ok", gout, cols)
            weight.accumulate_grad(gw.reshape(weight.shape))
        if x.requires_grad:
            gcols = gout @ w_flat  # (N, OH*OW, C*kh*kw)
            gcols = gcols.reshape(n, oh, ow, c, kh, kw)
            gx_pad = np.zeros_like(x_pad)
            for i in range(kh):
                for j in range(kw):
                    gx_pad[:, :, i : i + oh * stride : stride, j : j + ow * stride : stride] += (
                        gcols[:, :, :, :, i, j].transpose(0, 3, 1, 2)
                    )
            gx = gx_pad[:, :, p : p + h, p : p + w] if p else gx_pad
            x.accumulate_grad(gx)
    _emit(
        "conv2d",
        KernelCategory.CONV,
        flops=flops,
        inputs_bytes=x.nbytes + weight.nbytes + (bias.nbytes if bias is not None else 0),
        out_bytes=data.nbytes,
        threads=int(data.size),
        reuse=min(float(c * kh * kw), 96.0),
        kh=kh,
        kw=kw,
        stride=stride,
    )
    return _make(data.astype(DEFAULT_DTYPE), tuple(t for t in (x, weight, bias) if t is not None), backward, name="conv2d")


def conv1d(x: Tensor, weight: Tensor, bias: Tensor | None, stride: int = 1, padding: int = 0) -> Tensor:
    """1D convolution over (N, C, T) inputs; weight (O, C, k).

    Used by the temporal encoders (force/torque and audio streams).
    """
    n, c, t = x.shape
    o, c2, kw = weight.shape
    if c != c2:
        raise ValueError(f"conv1d channel mismatch: input {c} vs weight {c2}")
    p = padding
    x_pad = np.pad(x.data, ((0, 0), (0, 0), (p, p))) if p else x.data
    windows = np.lib.stride_tricks.sliding_window_view(x_pad, kw, axis=2)
    windows = windows[:, :, ::stride, :]  # (N, C, OT, k)
    ot = windows.shape[2]
    cols = _contig(windows.transpose(0, 2, 1, 3)).reshape(n, ot, c * kw)
    w_flat = weight.data.reshape(o, -1)
    out = cols @ w_flat.T  # (N, OT, O)
    if bias is not None:
        out = out + bias.data
    data = out.transpose(0, 2, 1)  # (N, O, OT)
    ctx = _ctx()
    flops = 2.0 * n * ot * o * c * kw
    cols_bytes = float(n * ot * c * kw * _ITEMSIZE)

    def backward(grad):
        if bias is not None and bias.requires_grad:
            _emit_bwd(ctx, "conv1d_bwd_b", KernelCategory.REDUCE,
                      flops=float(n * ot * o), inputs_bytes=float(data.nbytes),
                      out_bytes=float(bias.nbytes), threads=max(int(o), 1),
                      coalesced=0.85)
        if weight.requires_grad:
            _emit_bwd(ctx, "conv1d_bwd_w", KernelCategory.CONV, flops=flops,
                      inputs_bytes=float(data.nbytes) + cols_bytes,
                      out_bytes=float(weight.nbytes), threads=int(weight.size),
                      reuse=min(float(n * ot), 64.0), kh=1, kw=kw, stride=stride)
        if x.requires_grad:
            _emit_bwd(ctx, "conv1d_bwd_x", KernelCategory.CONV, flops=flops,
                      inputs_bytes=float(data.nbytes + weight.nbytes),
                      out_bytes=float(x.nbytes), threads=int(x.size),
                      reuse=min(float(o * kw), 64.0), kh=1, kw=kw, stride=stride)
        if _meta_accumulate(grad, x, weight, bias):
            return
        gout = grad.transpose(0, 2, 1)  # (N, OT, O)
        if bias is not None and bias.requires_grad:
            bias.accumulate_grad(gout.sum(axis=(0, 1)))
        if weight.requires_grad:
            gw = np.einsum("npo,npk->ok", gout, cols)
            weight.accumulate_grad(gw.reshape(weight.shape))
        if x.requires_grad:
            gcols = (gout @ w_flat).reshape(n, ot, c, kw)
            gx_pad = np.zeros_like(x_pad)
            for j in range(kw):
                gx_pad[:, :, j : j + ot * stride : stride] += gcols[:, :, :, j].transpose(0, 2, 1)
            gx = gx_pad[:, :, p : p + t] if p else gx_pad
            x.accumulate_grad(gx)
    _emit(
        "conv1d",
        KernelCategory.CONV,
        flops=flops,
        inputs_bytes=x.nbytes + weight.nbytes + (bias.nbytes if bias is not None else 0),
        out_bytes=data.nbytes,
        threads=int(data.size),
        reuse=min(float(c * kw), 64.0),
        kh=1,
        kw=kw,
        stride=stride,
    )
    return _make(
        _contig(data.astype(DEFAULT_DTYPE)),
        tuple(tt for tt in (x, weight, bias) if tt is not None),
        backward,
        name="conv1d",
    )


def _pool_windows(x: np.ndarray, kernel: int, stride: int):
    n, c, h, w = x.shape
    oh = (h - kernel) // stride + 1
    ow = (w - kernel) // stride + 1
    windows = np.lib.stride_tricks.sliding_window_view(x, (kernel, kernel), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride, :, :]
    return windows.reshape(n, c, oh, ow, kernel * kernel), oh, ow


def max_pool2d(x: Tensor, kernel: int = 2, stride: int | None = None) -> Tensor:
    stride = stride or kernel
    windows, oh, ow = _pool_windows(x.data, kernel, stride)
    arg = windows.argmax(axis=-1)
    data = np.take_along_axis(windows, arg[..., None], axis=-1)[..., 0]
    n, c = x.shape[0], x.shape[1]
    ctx = _ctx()

    def backward(grad):
        _emit_bwd(ctx, "max_pool2d_bwd", KernelCategory.POOLING,
                  flops=float(data.size), inputs_bytes=float(data.nbytes + arg.nbytes),
                  out_bytes=float(x.nbytes), threads=int(data.size), coalesced=0.9)
        if _meta_accumulate(grad, x):
            return
        gx = np.zeros_like(x.data)
        ni, ci, hi, wi = np.indices((n, c, oh, ow))
        h_idx = hi * stride + arg // kernel
        w_idx = wi * stride + arg % kernel
        np.add.at(gx, (ni, ci, h_idx, w_idx), grad)
        x.accumulate_grad(gx)

    _emit(
        "max_pool2d",
        KernelCategory.POOLING,
        flops=float(windows.size),
        inputs_bytes=x.nbytes,
        out_bytes=data.nbytes,
        threads=int(data.size),
        coalesced=0.9,
    )
    return _make(_contig(data), (x,), backward, name="max_pool2d")


def avg_pool2d(x: Tensor, kernel: int = 2, stride: int | None = None) -> Tensor:
    stride = stride or kernel
    windows, oh, ow = _pool_windows(x.data, kernel, stride)
    data = windows.mean(axis=-1)
    ctx = _ctx()

    def backward(grad):
        _emit_bwd(ctx, "avg_pool2d_bwd", KernelCategory.POOLING,
                  flops=float(kernel * kernel * data.size),
                  inputs_bytes=float(data.nbytes), out_bytes=float(x.nbytes),
                  threads=int(data.size), coalesced=0.9)
        if _meta_accumulate(grad, x):
            return
        gx = np.zeros_like(x.data)
        scale = 1.0 / (kernel * kernel)
        for i in range(kernel):
            for j in range(kernel):
                gx[:, :, i : i + oh * stride : stride, j : j + ow * stride : stride] += grad * scale
        x.accumulate_grad(gx)

    _emit(
        "avg_pool2d",
        KernelCategory.POOLING,
        flops=float(windows.size),
        inputs_bytes=x.nbytes,
        out_bytes=data.nbytes,
        threads=int(data.size),
        coalesced=0.9,
    )
    return _make(_contig(data), (x,), backward, name="avg_pool2d")


def upsample_nearest2d(x: Tensor, scale: int = 2) -> Tensor:
    """Nearest-neighbour spatial upsampling (used by the U-Net decoder)."""
    data = x.data.repeat(scale, axis=2).repeat(scale, axis=3)
    ctx = _ctx()

    def backward(grad):
        _emit_bwd(ctx, "upsample_nearest_bwd", KernelCategory.OTHER,
                  flops=float(data.size), inputs_bytes=float(data.nbytes),
                  out_bytes=float(x.nbytes), threads=int(data.size), coalesced=0.8)
        if _meta_accumulate(grad, x):
            return
        n, c, h, w = x.shape
        g = grad.reshape(n, c, h, scale, w, scale).sum(axis=(3, 5))
        x.accumulate_grad(g)

    _emit(
        "upsample_nearest",
        KernelCategory.OTHER,
        0.0,
        x.nbytes,
        data.nbytes,
        int(data.size),
        coalesced=0.8,
    )
    return _make(data, (x,), backward, name="upsample_nearest2d")


# ---------------------------------------------------------------------------
# normalization
# ---------------------------------------------------------------------------


def batch_norm(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tensor:
    """Batch normalization over an (N, C, ...) tensor, normalizing per channel.

    ``running_mean``/``running_var`` are updated in place during training,
    matching the PyTorch semantics the paper's workloads rely on.
    """
    axes = (0,) + tuple(range(2, x.ndim))
    shape = (1, x.shape[1]) + (1,) * (x.ndim - 2)
    if training:
        mean_val = x.data.mean(axis=axes)
        var_val = x.data.var(axis=axes)
        if not is_meta(x.data):
            # Meta tensors have no statistics; leave running buffers as-is.
            running_mean *= 1.0 - momentum
            running_mean += momentum * mean_val
            running_var *= 1.0 - momentum
            running_var += momentum * var_val
    else:
        mean_val = running_mean
        var_val = running_var
    inv_std = 1.0 / np.sqrt(var_val + eps)
    x_hat = (x.data - mean_val.reshape(shape)) * inv_std.reshape(shape)
    data = gamma.data.reshape(shape) * x_hat + beta.data.reshape(shape)

    count = x.size / x.shape[1]
    ctx = _ctx()

    def backward(grad):
        # dgamma/dbeta reduces plus the normalized input gradient — the
        # fused cuDNN bnorm-backward kernel.
        _emit_bwd(ctx, "batch_norm_bwd", KernelCategory.BNORM,
                  flops=16.0 * x.size, inputs_bytes=float(2 * x.nbytes + gamma.nbytes),
                  out_bytes=float(x.nbytes + gamma.nbytes + beta.nbytes),
                  threads=x.size, coalesced=0.95)
        if _meta_accumulate(grad, x, gamma, beta):
            return
        if beta.requires_grad:
            beta.accumulate_grad(grad.sum(axis=axes))
        if gamma.requires_grad:
            gamma.accumulate_grad((grad * x_hat).sum(axis=axes))
        if x.requires_grad:
            g = grad * gamma.data.reshape(shape)
            if training:
                gsum = g.sum(axis=axes, keepdims=True)
                gdot = (g * x_hat).sum(axis=axes, keepdims=True)
                gx = (g - gsum / count - x_hat * gdot / count) * inv_std.reshape(shape)
            else:
                gx = g * inv_std.reshape(shape)
            x.accumulate_grad(gx)

    _emit(
        "batch_norm",
        KernelCategory.BNORM,
        flops=8.0 * x.size,
        inputs_bytes=x.nbytes + gamma.nbytes + beta.nbytes,
        out_bytes=data.nbytes,
        threads=x.size,
        coalesced=0.95,
    )
    return _make(data.astype(DEFAULT_DTYPE), (x, gamma, beta), backward, name="batch_norm")


def layer_norm(x: Tensor, gamma: Tensor, beta: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalization over the last axis."""
    mean_val = x.data.mean(axis=-1, keepdims=True)
    var_val = x.data.var(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var_val + eps)
    x_hat = (x.data - mean_val) * inv_std
    data = gamma.data * x_hat + beta.data
    d = x.shape[-1]
    ctx = _ctx()

    def backward(grad):
        _emit_bwd(ctx, "layer_norm_bwd", KernelCategory.BNORM,
                  flops=16.0 * x.size, inputs_bytes=float(2 * x.nbytes + gamma.nbytes),
                  out_bytes=float(x.nbytes + gamma.nbytes + beta.nbytes),
                  threads=x.size, coalesced=0.95)
        if _meta_accumulate(grad, x, gamma, beta):
            return
        if beta.requires_grad:
            beta.accumulate_grad(grad.reshape(-1, d).sum(axis=0))
        if gamma.requires_grad:
            gamma.accumulate_grad((grad * x_hat).reshape(-1, d).sum(axis=0))
        if x.requires_grad:
            g = grad * gamma.data
            gsum = g.sum(axis=-1, keepdims=True)
            gdot = (g * x_hat).sum(axis=-1, keepdims=True)
            x.accumulate_grad((g - gsum / d - x_hat * gdot / d) * inv_std)

    _emit(
        "layer_norm",
        KernelCategory.BNORM,
        flops=8.0 * x.size,
        inputs_bytes=x.nbytes + gamma.nbytes + beta.nbytes,
        out_bytes=data.nbytes,
        threads=x.size,
        coalesced=0.95,
    )
    return _make(data.astype(DEFAULT_DTYPE), (x, gamma, beta), backward, name="layer_norm")


def glu(a: Tensor, b: Tensor) -> Tensor:
    """Gated linear unit ``a * sigmoid(b)`` — the LinearGLU fusion of Table 1."""
    return mul(a, sigmoid(b))


# ---------------------------------------------------------------------------
# operator dunders on Tensor
# ---------------------------------------------------------------------------


def _attach_operators() -> None:
    Tensor.__add__ = lambda self, other: add(self, other)
    Tensor.__radd__ = lambda self, other: add(other, self)
    Tensor.__sub__ = lambda self, other: sub(self, other)
    Tensor.__rsub__ = lambda self, other: sub(other, self)
    Tensor.__mul__ = lambda self, other: mul(self, other)
    Tensor.__rmul__ = lambda self, other: mul(other, self)
    Tensor.__truediv__ = lambda self, other: div(self, other)
    Tensor.__rtruediv__ = lambda self, other: div(other, self)
    Tensor.__neg__ = neg
    Tensor.__pow__ = pow_
    Tensor.__matmul__ = matmul
    Tensor.__getitem__ = getitem
    Tensor.reshape = lambda self, *shape: reshape(self, shape[0] if len(shape) == 1 and isinstance(shape[0], (tuple, list)) else shape)
    Tensor.transpose = transpose
    Tensor.sum = sum_
    Tensor.mean = mean
    Tensor.max = max_


_attach_operators()
