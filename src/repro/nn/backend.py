"""Pluggable execution backends: eager numpy vs shape-only meta tensors.

The profiling pipeline never reads activation *values* — only shapes,
FLOPs and byte counts flow into the analytical device models. The
**eager** backend (the default) executes every op with dense numpy math;
the **meta** backend executes the same op graph symbolically: a
:class:`MetaArray` carries only ``shape`` and ``dtype`` and every
operation propagates shapes analytically, so tracing costs O(#ops)
instead of O(#FLOPs) and batch sizes far beyond physical RAM become
traceable. This is the capture/replay split tape-based autograd systems
use, applied to trace capture.

The design leans on numpy's dispatch protocols (NEP 13 / NEP 18):
``MetaArray`` implements ``__array_ufunc__`` and ``__array_function__``,
so the ops in :mod:`repro.nn.functional` run unchanged — ``np.exp``,
``@``, ``np.pad``, ``sliding_window_view`` … all route here and return
shape-only results. Mixed real/meta expressions work too (real model
weights against meta activations): numpy defers to this class, and the
result is meta. Where exact numpy indexing semantics matter
(``__getitem__``, ``sliding_window_view``) shapes are inferred by
applying the real numpy operation to a zero-stride *phantom* array of
the same shape — an O(1) view, never a dense allocation.

The invariant that makes the backend trustworthy (and that tier-1
enforces differentially): for every workload, the meta backend emits an
event stream identical, event for event, to the eager backend's.
"""

from __future__ import annotations

import contextlib

import numpy as np

BACKENDS = ("eager", "meta")

_CURRENT_BACKEND = "eager"


def validate_backend(name: str) -> str:
    if name not in BACKENDS:
        raise ValueError(f"unknown backend {name!r}; available: {list(BACKENDS)}")
    return name


def current_backend() -> str:
    """The process-wide default backend (``"eager"`` unless changed)."""
    return _CURRENT_BACKEND


def set_backend(name: str) -> None:
    """Set the process-wide default backend."""
    global _CURRENT_BACKEND
    _CURRENT_BACKEND = validate_backend(name)


@contextlib.contextmanager
def backend_scope(name: str):
    """Temporarily switch the default backend inside the block."""
    global _CURRENT_BACKEND
    prev = _CURRENT_BACKEND
    _CURRENT_BACKEND = validate_backend(name)
    try:
        yield
    finally:
        _CURRENT_BACKEND = prev


def resolve_backend(name: str | None) -> str:
    """``None`` -> the current default; otherwise validate and return."""
    return _CURRENT_BACKEND if name is None else validate_backend(name)


# ---------------------------------------------------------------------------
# shape-inference helpers
# ---------------------------------------------------------------------------


def _shape_of(x) -> tuple[int, ...]:
    return tuple(getattr(x, "shape", ()))


def _dtype_operand(x):
    """What to feed ``np.result_type`` for one operand."""
    if isinstance(x, MetaArray):
        return x.dtype
    if isinstance(x, (np.ndarray, np.generic)):
        return x.dtype
    return x  # python scalar: weak promotion (NEP 50)


def _phantom(shape: tuple[int, ...], dtype) -> np.ndarray:
    """A zero-stride stand-in array: full shape, one element of storage.

    Views of it (basic indexing, ``sliding_window_view``) are O(1), which
    lets us borrow numpy's exact indexing semantics without dense data.
    """
    return np.broadcast_to(np.empty((), dtype=dtype), shape)


_COMPARISON_UFUNCS = frozenset({
    np.greater, np.greater_equal, np.less, np.less_equal,
    np.equal, np.not_equal, np.logical_and, np.logical_or,
    np.logical_xor, np.logical_not, np.isfinite, np.isinf, np.isnan,
})

#: ufuncs whose result is always floating even for integer inputs.
_FLOAT_RESULT_UFUNCS = frozenset({
    np.true_divide, np.exp, np.log, np.log2, np.log10, np.sqrt,
    np.tanh, np.sin, np.cos, np.arctan, np.expm1, np.log1p,
})


def _matmul_shape(a: tuple[int, ...], b: tuple[int, ...]) -> tuple[int, ...]:
    if not a or not b:
        raise ValueError("matmul: input operands do not have enough dimensions")
    a2 = (1,) + a if len(a) == 1 else a
    b2 = b + (1,) if len(b) == 1 else b
    if a2[-1] != b2[-2]:
        raise ValueError(f"matmul: dimension mismatch {a} @ {b}")
    batch = np.broadcast_shapes(a2[:-2], b2[:-2])
    out = tuple(batch) + (a2[-2], b2[-1])
    if len(a) == 1:
        out = out[:-2] + out[-1:]
    if len(b) == 1:
        out = out[:-1]
    return out


def _normalize_axis(axis: int, ndim: int) -> int:
    if not -ndim <= axis < ndim:
        raise np.exceptions.AxisError(axis, ndim)
    return axis % ndim


def _reduce_shape(shape: tuple[int, ...], axis, keepdims: bool) -> tuple[int, ...]:
    if axis is None:
        return tuple(1 for _ in shape) if keepdims else ()
    axes = axis if isinstance(axis, tuple) else (axis,)
    axes = {_normalize_axis(ax, len(shape)) for ax in axes}
    if keepdims:
        return tuple(1 if i in axes else d for i, d in enumerate(shape))
    return tuple(d for i, d in enumerate(shape) if i not in axes)


#: NEP-18 dispatch table: numpy function -> meta implementation.
_HANDLED_FUNCTIONS: dict = {}


def _implements(np_function):
    def decorator(fn):
        _HANDLED_FUNCTIONS[np_function] = fn
        return fn

    return decorator


class MetaArray:
    """An array that carries only ``shape`` and ``dtype`` — no data.

    Every numpy operation the DNN framework's forward path performs is
    either intercepted through the dispatch protocols or implemented as a
    method, propagating shapes with numpy's exact semantics. Reading
    values (``float()``, ``np.asarray``, ``bool()``) raises, so silent
    materialization is impossible.
    """

    __slots__ = ("shape", "dtype")

    def __init__(self, shape, dtype=np.float32):
        object.__setattr__(self, "shape", tuple(int(d) for d in shape))
        object.__setattr__(self, "dtype", np.dtype(dtype))

    def __setattr__(self, name, value):
        raise AttributeError("MetaArray is immutable")

    # -- introspection ---------------------------------------------------------

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def size(self) -> int:
        out = 1
        for d in self.shape:
            out *= d
        return out

    @property
    def nbytes(self) -> int:
        return self.size * self.dtype.itemsize

    @property
    def T(self) -> "MetaArray":
        return MetaArray(tuple(reversed(self.shape)), self.dtype)

    def __len__(self) -> int:
        if not self.shape:
            raise TypeError("len() of unsized MetaArray")
        return self.shape[0]

    def __repr__(self) -> str:
        return f"MetaArray(shape={self.shape}, dtype={self.dtype})"

    # -- refuse to materialize ---------------------------------------------------

    def __array__(self, *args, **kwargs):
        raise TypeError(
            "MetaArray carries no data; run under the eager backend to get values"
        )

    def __bool__(self):
        raise TypeError("the truth value of a MetaArray is undefined (no data)")

    def __float__(self):
        raise TypeError("MetaArray carries no data; cannot convert to float")

    def __int__(self):
        raise TypeError("MetaArray carries no data; cannot convert to int")

    def item(self):
        raise TypeError("MetaArray carries no data; item() is unavailable")

    # -- shape methods ------------------------------------------------------------

    def astype(self, dtype, *args, **kwargs) -> "MetaArray":
        return MetaArray(self.shape, dtype)

    def copy(self) -> "MetaArray":
        return MetaArray(self.shape, self.dtype)

    def reshape(self, *shape) -> "MetaArray":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        shape = tuple(int(d) for d in shape)
        negatives = [i for i, d in enumerate(shape) if d < 0]
        if len(negatives) > 1:
            raise ValueError("can only specify one unknown dimension")
        if negatives:
            known = 1
            for d in shape:
                if d >= 0:
                    known *= d
            if known == 0 or self.size % known:
                raise ValueError(f"cannot reshape array of size {self.size} into shape {shape}")
            shape = tuple(self.size // known if d < 0 else d for d in shape)
        new_size = 1
        for d in shape:
            new_size *= d
        if new_size != self.size:
            raise ValueError(f"cannot reshape array of size {self.size} into shape {shape}")
        return MetaArray(shape, self.dtype)

    def transpose(self, *axes) -> "MetaArray":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes or axes == (None,):
            axes = tuple(reversed(range(self.ndim)))
        if sorted(axes) != list(range(self.ndim)):
            raise ValueError(f"invalid transpose axes {axes} for ndim {self.ndim}")
        return MetaArray(tuple(self.shape[ax] for ax in axes), self.dtype)

    def repeat(self, repeats: int, axis: int | None = None) -> "MetaArray":
        repeats = int(repeats)
        if axis is None:
            return MetaArray((self.size * repeats,), self.dtype)
        axis = _normalize_axis(axis, self.ndim)
        shape = list(self.shape)
        shape[axis] *= repeats
        return MetaArray(shape, self.dtype)

    def __getitem__(self, index) -> "MetaArray":
        # Borrow numpy's exact indexing semantics from a zero-stride
        # phantom. Basic indexing is an O(1) view; the forward path uses
        # nothing else.
        view = _phantom(self.shape, self.dtype)[index]
        return MetaArray(view.shape, view.dtype)

    # -- reductions ---------------------------------------------------------------

    def _reduce(self, axis, keepdims, dtype=None) -> "MetaArray":
        return MetaArray(_reduce_shape(self.shape, axis, keepdims), dtype or self.dtype)

    def sum(self, axis=None, keepdims: bool = False) -> "MetaArray":
        return self._reduce(axis, keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "MetaArray":
        return self._reduce(axis, keepdims)

    def min(self, axis=None, keepdims: bool = False) -> "MetaArray":
        return self._reduce(axis, keepdims)

    def mean(self, axis=None, keepdims: bool = False) -> "MetaArray":
        dtype = self.dtype if np.issubdtype(self.dtype, np.floating) else np.dtype(np.float64)
        return self._reduce(axis, keepdims, dtype)

    def var(self, axis=None, keepdims: bool = False) -> "MetaArray":
        dtype = self.dtype if np.issubdtype(self.dtype, np.floating) else np.dtype(np.float64)
        return self._reduce(axis, keepdims, dtype)

    def argmax(self, axis=None, keepdims: bool = False) -> "MetaArray":
        return self._reduce(axis, keepdims, np.dtype(np.intp))

    def argmin(self, axis=None, keepdims: bool = False) -> "MetaArray":
        return self._reduce(axis, keepdims, np.dtype(np.intp))

    # -- numpy dispatch protocols ---------------------------------------------------

    def __array_ufunc__(self, ufunc, method, *inputs, out=None, **kwargs):
        if method != "__call__" or out is not None:
            return NotImplemented
        if ufunc is np.matmul:
            a, b = inputs
            shape = _matmul_shape(_shape_of(a), _shape_of(b))
        else:
            shape = np.broadcast_shapes(*(_shape_of(x) for x in inputs))
        if ufunc in _COMPARISON_UFUNCS:
            dtype = np.dtype(bool)
        else:
            dtype = np.result_type(*(_dtype_operand(x) for x in inputs))
            if ufunc in _FLOAT_RESULT_UFUNCS and not np.issubdtype(dtype, np.floating):
                dtype = np.dtype(np.float64)
        return MetaArray(shape, dtype)

    def __array_function__(self, func, types, args, kwargs):
        impl = _HANDLED_FUNCTIONS.get(func)
        if impl is None:
            return NotImplemented
        return impl(*args, **kwargs)

    # -- operator dunders (route through __array_ufunc__) ---------------------------

    def _binop(self, ufunc, a, b):
        return self.__array_ufunc__(ufunc, "__call__", a, b)

    def __add__(self, other):
        return self._binop(np.add, self, other)

    def __radd__(self, other):
        return self._binop(np.add, other, self)

    def __sub__(self, other):
        return self._binop(np.subtract, self, other)

    def __rsub__(self, other):
        return self._binop(np.subtract, other, self)

    def __mul__(self, other):
        return self._binop(np.multiply, self, other)

    def __rmul__(self, other):
        return self._binop(np.multiply, other, self)

    def __truediv__(self, other):
        return self._binop(np.true_divide, self, other)

    def __rtruediv__(self, other):
        return self._binop(np.true_divide, other, self)

    def __pow__(self, other):
        return self._binop(np.power, self, other)

    def __matmul__(self, other):
        return self._binop(np.matmul, self, other)

    def __rmatmul__(self, other):
        return self._binop(np.matmul, other, self)

    def __neg__(self):
        return MetaArray(self.shape, self.dtype)

    def __gt__(self, other):
        return self._binop(np.greater, self, other)

    def __ge__(self, other):
        return self._binop(np.greater_equal, self, other)

    def __lt__(self, other):
        return self._binop(np.less, self, other)

    def __le__(self, other):
        return self._binop(np.less_equal, self, other)


# ---------------------------------------------------------------------------
# constructors / predicates
# ---------------------------------------------------------------------------


def is_meta(x) -> bool:
    """True when ``x`` (array or Tensor) is backed by a :class:`MetaArray`."""
    return isinstance(getattr(x, "data", x), MetaArray)


def meta_array(shape, dtype=np.float32) -> MetaArray:
    return MetaArray(shape, dtype)


def meta_like(x) -> MetaArray:
    """A MetaArray with ``x``'s shape and dtype (x may be real or meta)."""
    return MetaArray(_shape_of(x), getattr(x, "dtype", np.float32))


# ---------------------------------------------------------------------------
# NEP-18 implementations for the functions the forward path uses
# ---------------------------------------------------------------------------


def _pad_pairs(pad_width, ndim: int) -> list[tuple[int, int]]:
    if isinstance(pad_width, int):
        return [(pad_width, pad_width)] * ndim
    pw = list(pad_width)
    if pw and isinstance(pw[0], int):
        if len(pw) == 1:
            return [(pw[0], pw[0])] * ndim
        if len(pw) == 2:
            return [(pw[0], pw[1])] * ndim
        raise ValueError(f"unsupported pad_width {pad_width!r}")
    if len(pw) != ndim:
        raise ValueError(f"pad_width {pad_width!r} does not match ndim {ndim}")
    return [(int(b), int(a)) for b, a in pw]


@_implements(np.pad)
def _meta_pad(array, pad_width, mode="constant", **kwargs):
    pairs = _pad_pairs(pad_width, array.ndim)
    shape = tuple(d + b + a for d, (b, a) in zip(array.shape, pairs))
    return MetaArray(shape, array.dtype)


@_implements(np.lib.stride_tricks.sliding_window_view)
def _meta_sliding_window_view(x, window_shape, axis=None, **kwargs):
    view = np.lib.stride_tricks.sliding_window_view(
        _phantom(x.shape, x.dtype), window_shape, axis=axis
    )
    return MetaArray(view.shape, view.dtype)


@_implements(np.concatenate)
def _meta_concatenate(arrays, axis=0, **kwargs):
    arrays = list(arrays)
    first = arrays[0]
    ax = _normalize_axis(0 if axis is None else axis, len(_shape_of(first)))
    for other in arrays[1:]:
        s1, s2 = _shape_of(first), _shape_of(other)
        if len(s1) != len(s2) or any(
            i != ax and a != b for i, (a, b) in enumerate(zip(s1, s2))
        ):
            raise ValueError(f"concatenate shape mismatch: {s1} vs {s2}")
    shape = list(_shape_of(first))
    shape[ax] = sum(_shape_of(a)[ax] for a in arrays)
    dtype = np.result_type(*(_dtype_operand(a) for a in arrays))
    return MetaArray(shape, dtype)


@_implements(np.stack)
def _meta_stack(arrays, axis=0, **kwargs):
    arrays = list(arrays)
    base = _shape_of(arrays[0])
    for other in arrays[1:]:
        if _shape_of(other) != base:
            raise ValueError("all input arrays must have the same shape")
    ax = _normalize_axis(axis, len(base) + 1)
    shape = base[:ax] + (len(arrays),) + base[ax:]
    dtype = np.result_type(*(_dtype_operand(a) for a in arrays))
    return MetaArray(shape, dtype)


@_implements(np.split)
def _meta_split(ary, indices_or_sections, axis=0):
    ax = _normalize_axis(axis, ary.ndim)
    if not isinstance(indices_or_sections, int):
        raise NotImplementedError("meta split supports integer sections only")
    n = indices_or_sections
    if ary.shape[ax] % n:
        raise ValueError("array split does not result in an equal division")
    shape = list(ary.shape)
    shape[ax] //= n
    return [MetaArray(shape, ary.dtype) for _ in range(n)]


@_implements(np.transpose)
def _meta_transpose(a, axes=None):
    return a.transpose(axes)


@_implements(np.reshape)
def _meta_reshape(a, shape, **kwargs):
    return a.reshape(shape)


@_implements(np.expand_dims)
def _meta_expand_dims(a, axis):
    axes = axis if isinstance(axis, tuple) else (axis,)
    ndim = a.ndim + len(axes)
    axes = {_normalize_axis(ax, ndim) for ax in axes}
    it = iter(a.shape)
    shape = tuple(1 if i in axes else next(it) for i in range(ndim))
    return MetaArray(shape, a.dtype)


@_implements(np.squeeze)
def _meta_squeeze(a, axis=None):
    if axis is None:
        shape = tuple(d for d in a.shape if d != 1)
    else:
        axes = axis if isinstance(axis, tuple) else (axis,)
        axes = {_normalize_axis(ax, a.ndim) for ax in axes}
        if any(a.shape[ax] != 1 for ax in axes):
            raise ValueError("cannot squeeze axis with size != 1")
        shape = tuple(d for i, d in enumerate(a.shape) if i not in axes)
    return MetaArray(shape, a.dtype)


@_implements(np.broadcast_to)
def _meta_broadcast_to(array, shape, **kwargs):
    np.broadcast_shapes(_shape_of(array), tuple(shape))  # validates
    return MetaArray(tuple(shape), array.dtype)


@_implements(np.where)
def _meta_where(condition, x=None, y=None):
    if x is None or y is None:
        raise NotImplementedError("meta where requires the three-argument form")
    shape = np.broadcast_shapes(*(_shape_of(v) for v in (condition, x, y)))
    dtype = np.result_type(_dtype_operand(x), _dtype_operand(y))
    return MetaArray(shape, dtype)


@_implements(np.take_along_axis)
def _meta_take_along_axis(arr, indices, axis):
    if axis is None:
        return MetaArray(_shape_of(indices), arr.dtype)
    ax = _normalize_axis(axis, arr.ndim)
    arr_rest = tuple(d for i, d in enumerate(arr.shape) if i != ax)
    idx_shape = _shape_of(indices)
    idx_rest = tuple(d for i, d in enumerate(idx_shape) if i != ax)
    rest = np.broadcast_shapes(arr_rest, idx_rest)
    it = iter(rest)
    shape = tuple(idx_shape[i] if i == ax else next(it) for i in range(arr.ndim))
    return MetaArray(shape, arr.dtype)


@_implements(np.einsum)
def _meta_einsum(subscripts, *operands, **kwargs):
    if "->" not in subscripts or "." in subscripts:
        raise NotImplementedError(
            f"meta einsum needs an explicit output and no ellipsis: {subscripts!r}"
        )
    lhs, rhs = subscripts.replace(" ", "").split("->")
    terms = lhs.split(",")
    if len(terms) != len(operands):
        raise ValueError("einsum operand count mismatch")
    dims: dict[str, int] = {}
    for term, op in zip(terms, operands):
        shape = _shape_of(op)
        if len(term) != len(shape):
            raise ValueError(f"einsum term {term!r} does not match shape {shape}")
        for letter, dim in zip(term, shape):
            if dims.setdefault(letter, dim) != dim:
                raise ValueError(f"einsum dimension mismatch for {letter!r}")
    dtype = np.result_type(*(_dtype_operand(op) for op in operands))
    return MetaArray(tuple(dims[letter] for letter in rhs), dtype)


def _meta_like_factory(dtype_default=None):
    def impl(a, dtype=None, **kwargs):
        return MetaArray(_shape_of(a), dtype or dtype_default or a.dtype)

    return impl


_implements(np.ones_like)(_meta_like_factory())
_implements(np.zeros_like)(_meta_like_factory())
_implements(np.empty_like)(_meta_like_factory())


@_implements(np.sum)
def _meta_sum(a, axis=None, keepdims=False, **kwargs):
    return a.sum(axis=axis, keepdims=keepdims)


@_implements(np.mean)
def _meta_mean(a, axis=None, keepdims=False, **kwargs):
    return a.mean(axis=axis, keepdims=keepdims)


@_implements(np.var)
def _meta_var(a, axis=None, keepdims=False, **kwargs):
    return a.var(axis=axis, keepdims=keepdims)


@_implements(np.max)
def _meta_max(a, axis=None, keepdims=False, **kwargs):
    return a.max(axis=axis, keepdims=keepdims)


@_implements(np.min)
def _meta_min(a, axis=None, keepdims=False, **kwargs):
    return a.min(axis=axis, keepdims=keepdims)


@_implements(np.argmax)
def _meta_argmax(a, axis=None, **kwargs):
    return a.argmax(axis=axis)


@_implements(np.prod)
def _meta_prod(a, axis=None, keepdims=False, **kwargs):
    dtype = a.dtype if np.issubdtype(a.dtype, np.floating) else np.dtype(np.int64)
    return a._reduce(axis, keepdims, dtype)
