"""Model checkpointing to .npz archives.

The paper's edge workflow requires it: "Models must first be trained on
servers" and then deployed to Jetson boards for inference-only execution
(Sec. 3.3). ``save_npz`` / ``load_npz`` move a module's full state dict
(parameters and buffers, e.g. BatchNorm running statistics) through a
single compressed numpy archive.
"""

from __future__ import annotations

import os

import numpy as np

from repro.nn.module import Module

# npz archives mangle "/" in names; state-dict keys use ".", which is safe.
_FORMAT_KEY = "__repro_format__"
_FORMAT_VERSION = "1"


def save_npz(model: Module, path: str | os.PathLike) -> None:
    """Write the model's state dict to ``path`` (compressed)."""
    state = model.state_dict()
    state[_FORMAT_KEY] = np.array(_FORMAT_VERSION)
    np.savez_compressed(path, **state)


def load_npz(model: Module, path: str | os.PathLike) -> None:
    """Load a checkpoint written by :func:`save_npz` into ``model``.

    Raises ``KeyError``/``ValueError`` on missing or mismatched entries, so
    loading a checkpoint from a differently-configured model fails loudly.
    """
    with np.load(path) as archive:
        state = {k: archive[k] for k in archive.files if k != _FORMAT_KEY}
    model.load_state_dict(state)
