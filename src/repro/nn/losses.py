"""Loss functions for the workload task types of Table 3.

Classification (cross-entropy, binary cross-entropy for multi-label),
regression (MSE, L1), segmentation (Dice + BCE), and generation
(sequence cross-entropy).
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.tensor import Tensor


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy for integer class targets.

    ``logits``: (N, C); ``targets``: int array (N,).
    """
    n = logits.shape[0]
    log_probs = F.log_softmax(logits, axis=-1)
    idx = (np.arange(n), np.asarray(targets))
    picked = F.getitem(log_probs, idx)
    return -picked.mean()


def binary_cross_entropy_with_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Numerically stable BCE over logits for multi-label targets in {0,1}."""
    t = Tensor(np.asarray(targets, dtype=np.float32))
    # log(1 + exp(x)) computed as max(x,0) + log(1 + exp(-|x|)) via primitives:
    # BCE = softplus(x) - x * t, averaged.
    x = logits
    relu_x = F.relu(x)
    softplus = relu_x + F.log(F.exp(-abs_(x)) + 1.0)
    return (softplus - x * t).mean()


def abs_(x: Tensor) -> Tensor:
    """|x| via relu(x) + relu(-x)."""
    return F.relu(x) + F.relu(-x)


def mse_loss(pred: Tensor, targets: np.ndarray) -> Tensor:
    """Mean squared error."""
    t = Tensor(np.asarray(targets, dtype=np.float32))
    diff = pred - t
    return (diff * diff).mean()


def l1_loss(pred: Tensor, targets: np.ndarray) -> Tensor:
    """Mean absolute error (used by the TransFuser waypoint head)."""
    t = Tensor(np.asarray(targets, dtype=np.float32))
    return abs_(pred - t).mean()


def dice_loss(logits: Tensor, targets: np.ndarray, eps: float = 1.0) -> Tensor:
    """Soft Dice loss for binary segmentation maps.

    ``logits``: (N, 1, H, W) raw scores; ``targets``: {0,1} of same shape.
    """
    probs = F.sigmoid(logits)
    t = Tensor(np.asarray(targets, dtype=np.float32))
    intersection = (probs * t).sum()
    denom = probs.sum() + t.sum()
    dice = (2.0 * intersection + eps) / (denom + eps)
    return 1.0 - dice


def segmentation_loss(logits: Tensor, targets: np.ndarray) -> Tensor:
    """BCE + Dice, the standard medical-segmentation compound loss."""
    return binary_cross_entropy_with_logits(logits, targets) + dice_loss(logits, targets)


# -- metrics (plain numpy; no autodiff needed) --------------------------------


def accuracy(logits: Tensor | np.ndarray, targets: np.ndarray) -> float:
    """Top-1 classification accuracy."""
    arr = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    return float((arr.argmax(axis=-1) == np.asarray(targets)).mean())


def f1_micro(logits: Tensor | np.ndarray, targets: np.ndarray, threshold: float = 0.0) -> float:
    """Micro-averaged F1 for multi-label classification (MM-IMDB metric)."""
    arr = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    pred = (arr > threshold).astype(np.int64)
    t = np.asarray(targets).astype(np.int64)
    tp = float((pred & t).sum())
    fp = float((pred & (1 - t)).sum())
    fn = float(((1 - pred) & t).sum())
    denom = 2 * tp + fp + fn
    return 2 * tp / denom if denom > 0 else 0.0


def dice_score(logits: Tensor | np.ndarray, targets: np.ndarray) -> float:
    """Dice similarity coefficient (Medical Seg. metric)."""
    arr = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    pred = (arr > 0).astype(np.float64)
    t = np.asarray(targets).astype(np.float64)
    inter = (pred * t).sum()
    denom = pred.sum() + t.sum()
    return float((2 * inter + 1.0) / (denom + 1.0))


def mse_metric(pred: Tensor | np.ndarray, targets: np.ndarray) -> float:
    arr = pred.data if isinstance(pred, Tensor) else np.asarray(pred)
    return float(np.mean((arr - np.asarray(targets)) ** 2))
