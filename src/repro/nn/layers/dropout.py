"""Dropout layer with an explicit RNG for reproducibility."""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.module import Module
from repro.nn.tensor import Tensor


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng or np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, training=self.training, rng=self._rng)
