"""Activation modules (thin wrappers over functional ops)."""

from __future__ import annotations

from repro.nn import functional as F
from repro.nn.module import Module
from repro.nn.tensor import Tensor


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class LeakyReLU(Module):
    def __init__(self, slope: float = 0.01):
        super().__init__()
        self.slope = slope

    def forward(self, x: Tensor) -> Tensor:
        return F.leaky_relu(x, self.slope)


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.sigmoid(x)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.tanh(x)


class GELU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.gelu(x)


class Softmax(Module):
    def __init__(self, axis: int = -1):
        super().__init__()
        self.axis = axis

    def forward(self, x: Tensor) -> Tensor:
        return F.softmax(x, axis=self.axis)
