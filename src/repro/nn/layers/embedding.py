"""Token embedding layer."""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.backend import is_meta
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor


class Embedding(Module):
    """Lookup table mapping integer token ids to dense vectors."""

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(
            init.normal((num_embeddings, embedding_dim), 0.02, rng), name="weight"
        )

    def forward(self, indices: np.ndarray) -> Tensor:
        if is_meta(indices):
            # Meta token batches carry no values to range-check.
            return F.embedding(self.weight, indices)
        indices = np.asarray(indices)
        if indices.min() < 0 or indices.max() >= self.num_embeddings:
            raise IndexError(
                f"token id out of range [0, {self.num_embeddings}): "
                f"[{indices.min()}, {indices.max()}]"
            )
        return F.embedding(self.weight, indices)
