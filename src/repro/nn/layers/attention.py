"""Attention and transformer layers.

Transformers appear in three roles in MMBench: as text encoders (ALBERT /
BERT / RoBERTa stand-ins), as the transformer *fusion* operator (Table 1 /
Table 3), and as the TransFuser multi-modal fusion backbone. All three are
built from the :class:`MultiheadAttention` here.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.linear import Linear
from repro.nn.layers.norm import LayerNorm
from repro.nn.module import Module
from repro.nn.tensor import Tensor


class MultiheadAttention(Module):
    """Scaled dot-product attention with ``num_heads`` heads.

    Supports self-attention (``query is key is value``) and cross-attention
    (query from one modality, key/value from another), which is how the
    attention fusion operator of Table 1 is expressed.
    """

    def __init__(self, embed_dim: int, num_heads: int, rng: np.random.Generator | None = None):
        super().__init__()
        if embed_dim % num_heads != 0:
            raise ValueError(f"embed_dim {embed_dim} not divisible by num_heads {num_heads}")
        rng = rng or np.random.default_rng(0)
        self.embed_dim = embed_dim
        self.num_heads = num_heads
        self.head_dim = embed_dim // num_heads
        self.q_proj = Linear(embed_dim, embed_dim, rng=rng)
        self.k_proj = Linear(embed_dim, embed_dim, rng=rng)
        self.v_proj = Linear(embed_dim, embed_dim, rng=rng)
        self.out_proj = Linear(embed_dim, embed_dim, rng=rng)

    def _split_heads(self, x: Tensor) -> Tensor:
        n, t, _ = x.shape
        x = x.reshape((n, t, self.num_heads, self.head_dim))
        return F.transpose(x, (0, 2, 1, 3))  # (N, heads, T, head_dim)

    def forward(self, query: Tensor, key: Tensor | None = None, value: Tensor | None = None) -> Tensor:
        key = key if key is not None else query
        value = value if value is not None else key
        n, tq, _ = query.shape
        q = self._split_heads(self.q_proj(query))
        k = self._split_heads(self.k_proj(key))
        v = self._split_heads(self.v_proj(value))
        scale = 1.0 / np.sqrt(self.head_dim)
        scores = F.matmul(q, F.transpose(k, (0, 1, 3, 2))) * scale
        weights = F.softmax(scores, axis=-1)
        context = F.matmul(weights, v)  # (N, heads, Tq, head_dim)
        context = F.transpose(context, (0, 2, 1, 3)).reshape((n, tq, self.embed_dim))
        return self.out_proj(context)


class FeedForward(Module):
    """Position-wise feed-forward block with GELU."""

    def __init__(self, embed_dim: int, hidden_dim: int, rng: np.random.Generator | None = None):
        super().__init__()
        self.fc1 = Linear(embed_dim, hidden_dim, rng=rng)
        self.fc2 = Linear(hidden_dim, embed_dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.fc2(F.gelu(self.fc1(x)))


class TransformerEncoderLayer(Module):
    """Pre-LN transformer encoder layer."""

    def __init__(self, embed_dim: int, num_heads: int, ffn_dim: int | None = None,
                 dropout: float = 0.0, rng: np.random.Generator | None = None):
        super().__init__()
        ffn_dim = ffn_dim or 4 * embed_dim
        self.attn = MultiheadAttention(embed_dim, num_heads, rng=rng)
        self.ffn = FeedForward(embed_dim, ffn_dim, rng=rng)
        self.norm1 = LayerNorm(embed_dim)
        self.norm2 = LayerNorm(embed_dim)
        self.drop = Dropout(dropout, rng=rng) if dropout > 0 else None

    def forward(self, x: Tensor) -> Tensor:
        attn_out = self.attn(self.norm1(x))
        if self.drop is not None:
            attn_out = self.drop(attn_out)
        x = x + attn_out
        ffn_out = self.ffn(self.norm2(x))
        if self.drop is not None:
            ffn_out = self.drop(ffn_out)
        return x + ffn_out


class TransformerEncoder(Module):
    """A stack of encoder layers with optional learned positional embedding."""

    def __init__(self, embed_dim: int, num_heads: int, num_layers: int,
                 max_len: int = 128, ffn_dim: int | None = None,
                 rng: np.random.Generator | None = None):
        super().__init__()
        from repro.nn.module import ModuleList, Parameter

        rng = rng or np.random.default_rng(0)
        self.layers = ModuleList(
            [TransformerEncoderLayer(embed_dim, num_heads, ffn_dim, rng=rng) for _ in range(num_layers)]
        )
        self.pos_embedding = Parameter(init.normal((max_len, embed_dim), 0.02, rng))
        self.max_len = max_len

    def forward(self, x: Tensor) -> Tensor:
        t = x.shape[1]
        if t > self.max_len:
            raise ValueError(f"sequence length {t} exceeds max_len {self.max_len}")
        pos = F.getitem(self.pos_embedding, slice(0, t))
        x = x + pos
        for layer in self.layers:
            x = layer(x)
        return x


class CrossAttentionLayer(Module):
    """Cross-attention block: query attends over a context sequence."""

    def __init__(self, embed_dim: int, num_heads: int, rng: np.random.Generator | None = None):
        super().__init__()
        self.attn = MultiheadAttention(embed_dim, num_heads, rng=rng)
        self.ffn = FeedForward(embed_dim, 2 * embed_dim, rng=rng)
        self.norm1 = LayerNorm(embed_dim)
        self.norm2 = LayerNorm(embed_dim)

    def forward(self, query: Tensor, context: Tensor) -> Tensor:
        x = query + self.attn(self.norm1(query), context, context)
        return x + self.ffn(self.norm2(x))
