"""Normalization layers."""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import DEFAULT_DTYPE, Tensor


class BatchNorm2d(Module):
    """Batch normalization over the channel axis of (N, C, H, W) tensors."""

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5):
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(init.ones((num_features,)), name="gamma")
        self.beta = Parameter(init.zeros((num_features,)), name="beta")
        self.register_buffer("running_mean", np.zeros(num_features, dtype=DEFAULT_DTYPE))
        self.register_buffer("running_var", np.ones(num_features, dtype=DEFAULT_DTYPE))

    def forward(self, x: Tensor) -> Tensor:
        return F.batch_norm(
            x,
            self.gamma,
            self.beta,
            self.running_mean,
            self.running_var,
            training=self.training,
            momentum=self.momentum,
            eps=self.eps,
        )


class BatchNorm1d(BatchNorm2d):
    """Batch normalization over (N, C) or (N, C, L) tensors."""


class LayerNorm(Module):
    """Layer normalization over the last axis (transformer-style)."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5):
        super().__init__()
        self.normalized_shape = normalized_shape
        self.eps = eps
        self.gamma = Parameter(init.ones((normalized_shape,)), name="gamma")
        self.beta = Parameter(init.zeros((normalized_shape,)), name="beta")

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.gamma, self.beta, eps=self.eps)
