"""Neural network layers."""

from repro.nn.layers.activation import GELU, LeakyReLU, ReLU, Sigmoid, Softmax, Tanh
from repro.nn.layers.attention import (
    CrossAttentionLayer,
    FeedForward,
    MultiheadAttention,
    TransformerEncoder,
    TransformerEncoderLayer,
)
from repro.nn.layers.conv import Conv1d, Conv2d, ConvBlock
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.embedding import Embedding
from repro.nn.layers.linear import Linear
from repro.nn.layers.norm import BatchNorm1d, BatchNorm2d, LayerNorm
from repro.nn.layers.pooling import AvgPool2d, Flatten, GlobalAvgPool2d, MaxPool2d
from repro.nn.layers.rnn import GRU, GRUCell, LSTM, LSTMCell

__all__ = [
    "GELU", "LeakyReLU", "ReLU", "Sigmoid", "Softmax", "Tanh",
    "CrossAttentionLayer", "FeedForward", "MultiheadAttention",
    "TransformerEncoder", "TransformerEncoderLayer",
    "Conv1d", "Conv2d", "ConvBlock", "Dropout", "Embedding", "Linear",
    "BatchNorm1d", "BatchNorm2d", "LayerNorm",
    "AvgPool2d", "Flatten", "GlobalAvgPool2d", "MaxPool2d",
    "GRU", "GRUCell", "LSTM", "LSTMCell",
]
