"""Recurrent layers (LSTM, GRU) built from autodiff primitives.

These power the late-fusion (LSTM) variants of the workloads — e.g. the
MuJoCo Push late-fusion implementation whose MSE the paper contrasts with
tensor fusion in Sec. 4.2.2.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor


def _slice_last(x: Tensor, start: int, stop: int) -> Tensor:
    return F.getitem(x, (slice(None), slice(start, stop)))


class LSTMCell(Module):
    """A single LSTM step."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        h = hidden_size
        self.w_ih = Parameter(init.kaiming_uniform((4 * h, input_size), input_size, rng))
        self.w_hh = Parameter(init.kaiming_uniform((4 * h, h), h, rng))
        self.bias = Parameter(init.zeros((4 * h,)))

    def forward(self, x: Tensor, state: tuple[Tensor, Tensor]) -> tuple[Tensor, Tensor]:
        h_prev, c_prev = state
        gates = F.linear(x, self.w_ih, self.bias) + F.linear(h_prev, self.w_hh)
        hs = self.hidden_size
        i = F.sigmoid(_slice_last(gates, 0, hs))
        f = F.sigmoid(_slice_last(gates, hs, 2 * hs))
        g = F.tanh(_slice_last(gates, 2 * hs, 3 * hs))
        o = F.sigmoid(_slice_last(gates, 3 * hs, 4 * hs))
        c = f * c_prev + i * g
        h = o * F.tanh(c)
        return h, c


class LSTM(Module):
    """Unrolled LSTM over (N, T, D) sequences; returns all hidden states.

    ``forward`` returns ``(outputs, (h_n, c_n))`` where ``outputs`` is
    (N, T, H).
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator | None = None):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.cell = LSTMCell(input_size, hidden_size, rng=rng)

    def forward(self, x: Tensor) -> tuple[Tensor, tuple[Tensor, Tensor]]:
        n, t, _ = x.shape
        h = Tensor(np.zeros((n, self.hidden_size), dtype=np.float32))
        c = Tensor(np.zeros((n, self.hidden_size), dtype=np.float32))
        outputs = []
        for step in range(t):
            x_t = F.getitem(x, (slice(None), step))
            h, c = self.cell(x_t, (h, c))
            outputs.append(h)
        out = F.stack(outputs, axis=1)
        return out, (h, c)


class GRUCell(Module):
    """A single GRU step."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        h = hidden_size
        self.w_ih = Parameter(init.kaiming_uniform((3 * h, input_size), input_size, rng))
        self.w_hh = Parameter(init.kaiming_uniform((3 * h, h), h, rng))
        self.b_ih = Parameter(init.zeros((3 * h,)))
        self.b_hh = Parameter(init.zeros((3 * h,)))

    def forward(self, x: Tensor, h_prev: Tensor) -> Tensor:
        hs = self.hidden_size
        gi = F.linear(x, self.w_ih, self.b_ih)
        gh = F.linear(h_prev, self.w_hh, self.b_hh)
        r = F.sigmoid(_slice_last(gi, 0, hs) + _slice_last(gh, 0, hs))
        z = F.sigmoid(_slice_last(gi, hs, 2 * hs) + _slice_last(gh, hs, 2 * hs))
        n = F.tanh(_slice_last(gi, 2 * hs, 3 * hs) + r * _slice_last(gh, 2 * hs, 3 * hs))
        one = Tensor(np.ones_like(z.data))
        return (one - z) * n + z * h_prev


class GRU(Module):
    """Unrolled GRU over (N, T, D) sequences; returns ``(outputs, h_n)``."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator | None = None):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.cell = GRUCell(input_size, hidden_size, rng=rng)

    def forward(self, x: Tensor) -> tuple[Tensor, Tensor]:
        n, t, _ = x.shape
        h = Tensor(np.zeros((n, self.hidden_size), dtype=np.float32))
        outputs = []
        for step in range(t):
            x_t = F.getitem(x, (slice(None), step))
            h = self.cell(x_t, h)
            outputs.append(h)
        return F.stack(outputs, axis=1), h
