"""Fully-connected layer."""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor


class Linear(Module):
    """Affine map ``y = x W^T + b`` with weight of shape (out, in)."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.kaiming_uniform((out_features, in_features), in_features, rng), name="weight"
        )
        self.bias = Parameter(init.zeros((out_features,)), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features})"
