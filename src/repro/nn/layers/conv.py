"""Convolution layers."""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor


class Conv2d(Module):
    """2D convolution over (N, C, H, W) inputs."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(
            init.kaiming_uniform(
                (out_channels, in_channels, kernel_size, kernel_size), fan_in, rng
            ),
            name="weight",
        )
        self.bias = Parameter(init.zeros((out_channels,)), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)

    def output_spatial(self, h: int, w: int) -> tuple[int, int]:
        """Spatial dims of the output given input dims (shape inference)."""
        k, s, p = self.kernel_size, self.stride, self.padding
        return ((h + 2 * p - k) // s + 1, (w + 2 * p - k) // s + 1)

    def __repr__(self) -> str:
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, "
            f"k={self.kernel_size}, s={self.stride}, p={self.padding})"
        )


class Conv1d(Module):
    """1D convolution over (N, C, T) inputs (temporal sensor streams)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size
        self.weight = Parameter(
            init.kaiming_uniform((out_channels, in_channels, kernel_size), fan_in, rng),
            name="weight",
        )
        self.bias = Parameter(init.zeros((out_channels,)), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv1d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)

    def __repr__(self) -> str:
        return (
            f"Conv1d({self.in_channels}, {self.out_channels}, "
            f"k={self.kernel_size}, s={self.stride}, p={self.padding})"
        )


class ConvBlock(Module):
    """Conv -> BatchNorm -> ReLU, the ubiquitous CNN building block."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int = 3,
                 stride: int = 1, padding: int = 1, rng: np.random.Generator | None = None):
        super().__init__()
        from repro.nn.layers.norm import BatchNorm2d

        self.conv = Conv2d(in_channels, out_channels, kernel_size, stride, padding,
                           bias=False, rng=rng)
        self.bn = BatchNorm2d(out_channels)

    def forward(self, x: Tensor) -> Tensor:
        return F.relu(self.bn(self.conv(x)))
