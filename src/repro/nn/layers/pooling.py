"""Pooling layers."""

from __future__ import annotations

from repro.nn import functional as F
from repro.nn.module import Module
from repro.nn.tensor import Tensor


class MaxPool2d(Module):
    def __init__(self, kernel_size: int = 2, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)


class AvgPool2d(Module):
    def __init__(self, kernel_size: int = 2, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride)


class GlobalAvgPool2d(Module):
    """Mean over spatial dims: (N, C, H, W) -> (N, C)."""

    def forward(self, x: Tensor) -> Tensor:
        return x.mean(axis=(2, 3))


class Flatten(Module):
    """(N, ...) -> (N, prod(...))."""

    def forward(self, x: Tensor) -> Tensor:
        return x.reshape((x.shape[0], -1))
