"""Weight initialization schemes.

All initializers take an explicit ``numpy.random.Generator`` so model
construction is deterministic given a seed — a requirement for the
reproducible accuracy experiments (Figure 4/5).
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import DEFAULT_DTYPE


def kaiming_uniform(shape: tuple[int, ...], fan_in: int, rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming uniform init, the default for conv and linear layers."""
    bound = float(np.sqrt(6.0 / max(fan_in, 1)))
    return rng.uniform(-bound, bound, size=shape).astype(DEFAULT_DTYPE)


def xavier_uniform(shape: tuple[int, ...], fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform init, used for attention projections."""
    bound = float(np.sqrt(6.0 / max(fan_in + fan_out, 1)))
    return rng.uniform(-bound, bound, size=shape).astype(DEFAULT_DTYPE)


def normal(shape: tuple[int, ...], std: float, rng: np.random.Generator) -> np.ndarray:
    """Gaussian init (embedding tables, output heads)."""
    return (rng.standard_normal(size=shape) * std).astype(DEFAULT_DTYPE)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=DEFAULT_DTYPE)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    return np.ones(shape, dtype=DEFAULT_DTYPE)
