"""A from-scratch numpy DNN framework (the PyTorch substitute).

Public surface::

    from repro import nn
    from repro.nn import functional as F

    model = nn.Sequential(nn.Linear(10, 32), nn.ReLU(), nn.Linear(32, 2))
    out = model(nn.Tensor(x))
"""

from repro.nn import backend
from repro.nn import functional
from repro.nn import init
from repro.nn.backend import (
    BACKENDS,
    MetaArray,
    backend_scope,
    current_backend,
    is_meta,
    meta_array,
    meta_like,
    resolve_backend,
    set_backend,
)
from repro.nn import losses
from repro.nn import optim
from repro.nn.serialization import load_npz, save_npz
from repro.nn.layers import *  # noqa: F401,F403
from repro.nn.layers import __all__ as _layers_all
from repro.nn.module import Module, ModuleList, Parameter, Sequential
from repro.nn.tensor import Tensor, as_tensor, is_grad_enabled, no_grad

__all__ = [
    "backend",
    "BACKENDS",
    "MetaArray",
    "backend_scope",
    "current_backend",
    "is_meta",
    "meta_array",
    "meta_like",
    "resolve_backend",
    "set_backend",
    "functional",
    "init",
    "losses",
    "optim",
    "load_npz",
    "save_npz",
    "Module",
    "ModuleList",
    "Parameter",
    "Sequential",
    "Tensor",
    "as_tensor",
    "is_grad_enabled",
    "no_grad",
] + list(_layers_all)
