"""A reverse-mode autodiff tensor on top of numpy.

This is the execution substrate that stands in for PyTorch in this
reproduction: every workload in :mod:`repro.workloads` is built from these
tensors, so algorithm-level measurements (accuracy, parameter counts,
FLOPs) are genuine computations rather than estimates.

Design notes
------------
* ``Tensor`` holds a ``numpy.ndarray`` (float32 by default) plus an optional
  gradient and a backward closure. The graph is built eagerly by the ops in
  :mod:`repro.nn.functional`; ``backward()`` runs a topological sort and
  accumulates gradients.
* Under the **meta** backend (see :mod:`repro.nn.backend`) ``data`` is a
  shape-only :class:`~repro.nn.backend.MetaArray` instead: ops propagate
  shapes analytically and emit the same trace events without numeric work.
* Gradient tracking obeys a global switch (:func:`no_grad`) so inference
  runs build no graph, matching how MMBench profiles inference.
* Operator dunders (``+``, ``@`` ...) are attached by
  :mod:`repro.nn.functional` at import time to avoid a circular import.
"""

from __future__ import annotations

import contextlib

import numpy as np

from repro.nn.backend import MetaArray

DEFAULT_DTYPE = np.float32

_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad():
    """Disable graph construction inside the block (inference mode)."""
    global _GRAD_ENABLED
    prev = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = prev


def _as_array(value, dtype=DEFAULT_DTYPE) -> np.ndarray:
    if isinstance(value, (np.ndarray, MetaArray)):
        if value.dtype != dtype and np.issubdtype(value.dtype, np.floating):
            return value.astype(dtype)
        return value
    return np.asarray(value, dtype=dtype)


class Tensor:
    """A numpy-backed tensor participating in reverse-mode autodiff."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data, requires_grad: bool = False, name: str = ""):
        self.data = _as_array(data)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._backward = None  # callable(grad_out) -> None, set by ops
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # -- basic introspection --------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return int(self.data.size)

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    @property
    def is_meta(self) -> bool:
        """True when this tensor is a shape-only meta-backend tensor."""
        return isinstance(self.data, MetaArray)

    def __len__(self) -> int:
        return self.data.shape[0]

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        label = f" name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.data.shape}{grad_flag}{label})"

    def numpy(self) -> np.ndarray:
        """The underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0])

    def detach(self) -> "Tensor":
        """A view of the same data cut off from the autodiff graph."""
        return Tensor(self.data, requires_grad=False, name=self.name)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad, name=self.name)

    # -- autodiff ---------------------------------------------------------------

    def zero_grad(self) -> None:
        self.grad = None

    def accumulate_grad(self, grad) -> None:
        """Add ``grad`` into this tensor's gradient buffer.

        Handles broadcast reduction: if the incoming gradient has extra
        leading axes, or broadcast axes of size 1, they are summed out so the
        gradient always matches ``self.shape``.

        Under the meta backend gradients are shape-only
        :class:`~repro.nn.backend.MetaArray` values: the buffer pins the
        tensor's own shape and accumulation is a no-op (there are no
        numbers to add, only the fact that a gradient exists).
        """
        if isinstance(grad, MetaArray):
            if self.grad is None:
                self.grad = MetaArray(self.data.shape, DEFAULT_DTYPE)
            return
        grad = _unbroadcast(np.asarray(grad), self.data.shape)
        if self.grad is None:
            self.grad = grad.astype(DEFAULT_DTYPE, copy=True)
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        self.accumulate_grad(grad)

        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        # Backward closures emit their own kernel events (tagged with the
        # snapshotted forward stage/modality); the pass scope covers any
        # event that reaches the tracer without an explicit pass override.
        from repro.trace.events import PASS_BACKWARD
        from repro.trace.tracer import pass_scope

        with pass_scope(PASS_BACKWARD):
            for node in reversed(order):
                if node._backward is not None and node.grad is not None:
                    node._backward(node.grad)

    # Arithmetic dunders are attached by repro.nn.functional at import time.


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so its shape matches ``shape`` after broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum out extra leading dimensions.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were broadcast from size 1.
    axes = tuple(i for i, (g, s) in enumerate(zip(grad.shape, shape)) if s == 1 and g != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def as_tensor(value, requires_grad: bool = False) -> Tensor:
    """Coerce arrays / scalars / tensors into a :class:`Tensor`."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)
