"""Module system: parameter containers with PyTorch-like ergonomics.

``Module`` auto-registers parameters, buffers and child modules assigned as
attributes, provides ``parameters()`` / ``named_parameters()`` traversal,
``train()`` / ``eval()`` mode switching, and ``state_dict`` save/load. The
workloads in :mod:`repro.workloads` are built on this base.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.nn.tensor import Tensor


class Parameter(Tensor):
    """A tensor that is a trainable model parameter."""

    def __init__(self, data, name: str = ""):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural network modules."""

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    # -- attribute registration ------------------------------------------------

    def __setattr__(self, key, value):
        if isinstance(value, Parameter):
            self._parameters[key] = value
        elif isinstance(value, Module):
            self._modules[key] = value
        object.__setattr__(self, key, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register non-trainable state (e.g. BatchNorm running stats)."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # -- traversal -----------------------------------------------------------

    def named_parameters(self, prefix: str = ""):
        for name, p in self._parameters.items():
            yield (f"{prefix}{name}", p)
        for name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self):
        for _, p in self.named_parameters():
            yield p

    def named_modules(self, prefix: str = ""):
        yield prefix.rstrip("."), self
        for name, child in self._modules.items():
            yield from child.named_modules(prefix=f"{prefix}{name}.")

    def children(self):
        return iter(self._modules.values())

    def num_parameters(self) -> int:
        """Total trainable parameter count (algorithm-level metric)."""
        return sum(p.size for p in self.parameters())

    def parameter_bytes(self) -> int:
        return sum(p.nbytes for p in self.parameters())

    # -- mode ------------------------------------------------------------------

    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # -- state dict --------------------------------------------------------------

    def state_dict(self, prefix: str = "") -> dict[str, np.ndarray]:
        state: dict[str, np.ndarray] = {}
        for name, p in self._parameters.items():
            state[f"{prefix}{name}"] = p.data.copy()
        for name, b in self._buffers.items():
            state[f"{prefix}{name}"] = np.array(b, copy=True)
        for name, child in self._modules.items():
            state.update(child.state_dict(prefix=f"{prefix}{name}."))
        return state

    def load_state_dict(self, state: dict[str, np.ndarray], prefix: str = "") -> None:
        for name, p in self._parameters.items():
            key = f"{prefix}{name}"
            if key not in state:
                raise KeyError(f"missing parameter {key!r} in state dict")
            if state[key].shape != p.data.shape:
                raise ValueError(
                    f"shape mismatch for {key!r}: {state[key].shape} vs {p.data.shape}"
                )
            p.data[...] = state[key]
        for name in self._buffers:
            key = f"{prefix}{name}"
            if key in state:
                buf = self._buffers[name]
                buf[...] = state[key]
        for name, child in self._modules.items():
            child.load_state_dict(state, prefix=f"{prefix}{name}.")

    # -- call ---------------------------------------------------------------------

    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Sequential(Module):
    """Chain modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        for i, m in enumerate(modules):
            setattr(self, f"layer{i}", m)
        self._sequence = list(modules)

    def forward(self, x):
        for m in self._sequence:
            x = m(x)
        return x

    def __iter__(self):
        return iter(self._sequence)

    def __len__(self):
        return len(self._sequence)


class ModuleList(Module):
    """A list of modules that registers its children."""

    def __init__(self, modules: list[Module] | None = None):
        super().__init__()
        self._items: list[Module] = []
        for m in modules or []:
            self.append(m)

    def append(self, module: Module) -> None:
        setattr(self, f"item{len(self._items)}", module)
        self._items.append(module)

    def __iter__(self):
        return iter(self._items)

    def __len__(self):
        return len(self._items)

    def __getitem__(self, idx: int) -> Module:
        return self._items[idx]
