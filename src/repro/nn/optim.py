"""Optimizers: SGD with momentum, Adam, and decoupled AdamW.

Optimizer steps are traced execution paths: each per-parameter update
emits one fused element-wise kernel (``pass_="optimizer"``, its own
``optimizer`` stage) describing the parameter/gradient/state traffic the
update performs, so a traced training step accounts the optimizer's share
of the step the same way it accounts forward and backward kernels. Under
the meta backend gradients are shape-only and the numeric update is
skipped — the events are shape-derived either way, which keeps the
meta==eager event invariant intact.
"""

from __future__ import annotations

import numpy as np

from repro.nn.backend import MetaArray
from repro.nn.module import Parameter
from repro.trace.events import KernelCategory, PASS_OPTIMIZER, STAGE_OPTIMIZER
from repro.trace.tracer import emit_kernel


def _emit_update(name: str, p: Parameter, flops_per_elt: float,
                 reads: float, writes: float) -> None:
    """One fused update kernel over one parameter tensor.

    ``reads``/``writes`` count parameter-sized arrays moved (param, grad,
    and optimizer-state buffers).
    """
    nbytes = float(p.data.nbytes)
    emit_kernel(
        name,
        KernelCategory.ELEWISE,
        flops=flops_per_elt * p.data.size,
        bytes_read=reads * nbytes,
        bytes_written=writes * nbytes,
        threads=p.data.size,
        stage=STAGE_OPTIMIZER,
        modality=None,
        pass_=PASS_OPTIMIZER,
    )


class Optimizer:
    """Base optimizer over an explicit parameter list."""

    def __init__(self, params, lr: float):
        self.params: list[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """SGD with optional momentum and weight decay."""

    def __init__(self, params, lr: float = 0.01, momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        # Update traffic: read param+grad (plus velocity with momentum),
        # write param (plus velocity with momentum).
        state = 1.0 if self.momentum else 0.0
        flops = 2.0 + (2.0 if self.momentum else 0.0) + (2.0 if self.weight_decay else 0.0)
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            _emit_update("sgd_update", p, flops, 2.0 + state, 1.0 + state)
            if isinstance(p.grad, MetaArray):
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += g
                g = v
            p.data -= self.lr * g


class Adam(Optimizer):
    """Adam with bias correction.

    ``weight_decay`` follows the classic L2 formulation (decay folded into
    the gradient before the moment updates). ``decoupled=True`` switches
    to AdamW semantics: the decay is applied directly to the parameters,
    outside the adaptive moments — see :class:`AdamW`.
    """

    name = "adam"

    def __init__(self, params, lr: float = 1e-3, betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0, decoupled: bool = False):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.decoupled = decoupled
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bc1 = 1.0 - self.beta1**self._t
        bc2 = 1.0 - self.beta2**self._t
        name = "adamw_update" if self.decoupled else "adam_update"
        flops = 12.0 + (2.0 if self.weight_decay else 0.0)
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            # Reads param + grad + both moments; writes param + both moments.
            _emit_update(name, p, flops, 4.0, 3.0)
            if isinstance(p.grad, MetaArray):
                continue
            g = p.grad
            if self.weight_decay and not self.decoupled:
                # L2: decay rides the gradient into the adaptive moments,
                # which distorts the effective decay per parameter.
                g = g + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * (g * g)
            if self.weight_decay and self.decoupled:
                # Decoupled (AdamW): decay applies to the parameter
                # directly, scaled by lr only — invariant to the moments.
                p.data -= self.lr * self.weight_decay * p.data
            p.data -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter).

    Unlike L2-style ``Adam(weight_decay=...)``, the decay term never
    enters the moment estimates, so the optimizer-kernel byte accounting
    (and the regularization itself) is independent of the gradient scale.
    """

    name = "adamw"

    def __init__(self, params, lr: float = 1e-3, betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 1e-2):
        super().__init__(params, lr, betas=betas, eps=eps,
                         weight_decay=weight_decay, decoupled=True)


#: CLI/key-friendly optimizer names -> constructor.
OPTIMIZERS = {
    "sgd": lambda params, lr=0.01: SGD(params, lr=lr),
    "sgd_momentum": lambda params, lr=0.01: SGD(params, lr=lr, momentum=0.9),
    "adam": lambda params, lr=1e-3: Adam(params, lr=lr),
    "adamw": lambda params, lr=1e-3: AdamW(params, lr=lr),
}


def make_optimizer(name: str, params, lr: float | None = None):
    """Build an optimizer from its name (``sgd``/``sgd_momentum``/``adam``/``adamw``)."""
    try:
        factory = OPTIMIZERS[name]
    except KeyError:
        raise KeyError(
            f"unknown optimizer {name!r}; known: {sorted(OPTIMIZERS)}") from None
    return factory(params) if lr is None else factory(params, lr=lr)


def clip_grad_norm(params, max_norm: float) -> float:
    """Clip gradients to a maximum global L2 norm; returns the norm.

    Emits one global norm-reduce kernel when a tracer is active. If the
    computed norm is non-finite (an inf/nan gradient), the gradients are
    left untouched — scaling by ``max_norm / inf`` would silently zero
    every gradient, and by ``nan`` would poison them all. Shape-only
    (meta-backend) gradients have no numeric norm; they are left as-is and
    the function returns ``nan``.
    """
    params = [p for p in params if p.grad is not None]
    if not params:
        return 0.0
    total_elems = sum(int(p.grad.size) for p in params)
    total_bytes = float(sum(p.grad.nbytes for p in params))
    emit_kernel(
        "grad_norm",
        KernelCategory.REDUCE,
        flops=2.0 * total_elems,
        bytes_read=total_bytes,
        bytes_written=4.0,
        threads=max(total_elems, 1),
        coalesced_fraction=0.85,
        stage=STAGE_OPTIMIZER,
        modality=None,
        pass_=PASS_OPTIMIZER,
    )
    if any(isinstance(p.grad, MetaArray) for p in params):
        return float("nan")
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in params)))
    if not np.isfinite(total):
        return total
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            p.grad *= scale
    return total
