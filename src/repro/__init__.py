"""MMBench reproduction: end-to-end multi-modal DNN benchmarking.

Subpackages:

* :mod:`repro.nn` — numpy autodiff DNN framework (the PyTorch substitute).
* :mod:`repro.trace` — kernel/host event tracing with stage & modality context.
* :mod:`repro.hw` — analytical device models (RTX 2080Ti, Jetson Nano/Orin),
  roofline latency, Nsight-style counters, stall attribution, memory model.
* :mod:`repro.data` — shape-faithful synthetic datasets and the learnable
  latent-factor multi-modal generator.
* :mod:`repro.workloads` — the nine MMBench applications (Table 3).
* :mod:`repro.profiling` — the three-level profiling pipeline (Figure 3).
* :mod:`repro.core` — the benchmark suite and the paper's analyses
  (Figures 4-15).
"""

__version__ = "1.0.0"
