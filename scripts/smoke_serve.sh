#!/usr/bin/env bash
# CI smoke job: the serving subsystem end-to-end in a few seconds.
# Uses the installed `mmbench` entry point when available, otherwise the
# in-tree CLI module.
set -euo pipefail
cd "$(dirname "$0")/.."

if command -v mmbench >/dev/null 2>&1; then
    run=(mmbench)
else
    export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
    run=(python -m repro.core.cli)
fi

"${run[@]}" serve --workload avmnist --arrival-rate 100 --policy adaptive

# Multi-tenant mixed serving: every scenario shape, three heterogeneous
# devices, per-tenant SLO-attainment reporting.
for mix in uniform heavy-head diurnal bursty; do
    "${run[@]}" serve --mix "$mix" --arrival-rate 2000 --n-requests 2000 \
        --workloads avmnist,mmimdb,transfuser --devices 2080ti,orin,nano \
        --policy adaptive
done

# Fine-tuning mix: background training jobs hold stream shares of every
# device while the inference traffic keeps being served.
"${run[@]}" serve --mix finetune --arrival-rate 2000 --n-requests 2000 \
    --workloads avmnist,mmimdb,transfuser --devices 2080ti,orin,nano \
    --finetune-share 0.25 --policy adaptive

# Chaos scenarios: every named fault plan against the same mix, plus a
# JSON plan from disk; each run must print the conservation line
# ("completed + shed = issued") and the per-device fault windows.
for chaos in single-failure rolling-restart thermal-brownout flaky-device; do
    "${run[@]}" serve --mix heavy-head --faults "$chaos" \
        --arrival-rate 2000 --n-requests 2000 \
        --workloads avmnist,mmimdb,transfuser --devices 2080ti,orin,nano \
        --policy adaptive | grep "issued (conserved)"
done
plandir="$(mktemp -d)"
cat > "$plandir/plan.json" <<'EOF'
{"events": [
  {"kind": "down", "device": "nano", "time": 0.05},
  {"kind": "recover", "device": "nano", "time": 0.3},
  {"kind": "throttle", "device": "orin", "time": 0.1, "until": 0.5, "factor": 2.0}
]}
EOF
"${run[@]}" serve --mix heavy-head --faults "$plandir/plan.json" \
    --arrival-rate 2000 --n-requests 2000 --request-deadline 0.5 \
    --workloads avmnist,mmimdb,transfuser --devices 2080ti,orin,nano \
    --policy adaptive | grep "Per-device fault windows"
rm -rf "$plandir"

# Fleet-scale serving: grouped replicas, reactive autoscaling, and a
# group-level chaos scenario (stall-free plans only — the fleet engine
# prices whole groups, not individual replica stalls).
"${run[@]}" serve --fleet --groups 2080ti:4,orin:2,nano:2 \
    --mix heavy-head --workloads avmnist,mmimdb,transfuser \
    --arrival-rate 3000 --n-requests 3000 --policy adaptive \
    | grep "Per-group fleet breakdown"
"${run[@]}" serve --fleet --groups 2080ti:1:6 --workloads transfuser \
    --policy fixed --batch-size 8 --arrival-rate 6000 --n-requests 3000 \
    --autoscale queue:16:0.02:0.04 --autoscale-max 6 \
    | grep "autoscaling:"
"${run[@]}" serve --fleet --groups 2080ti:2,nano:2 --workloads avmnist \
    --faults single-failure --arrival-rate 1500 --n-requests 2000 \
    --policy fixed --batch-size 8 | grep "issued (conserved)"

# Traced-training breakdown: per-pass/per-stage table + cross-check.
"${run[@]}" train-analyze --workload avmnist --batch-size 8 --cross-check

# Execution-graph ingest: export a native trace, re-ingest it through the
# full report/sweep/serve surface, and price an external golden fixture
# (unknown-op fraction surfaced in the output).
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
"${run[@]}" export --workload avmnist --batch-size 8 -o "$tmpdir/avmnist.json"
"${run[@]}" ingest "$tmpdir/avmnist.json" --report
"${run[@]}" ingest "$tmpdir/avmnist.json" --sweep 1,8,32 --devices 2080ti,nano
"${run[@]}" ingest "$tmpdir/avmnist.json" --serve --arrival-rate 500 \
    --n-requests 1000 --devices 2080ti,nano
"${run[@]}" ingest tests/fixtures/execution_graphs/transformer_train.json \
    --report | grep "unknown ops: 1/11"

# Store migration: seed a legacy gzip-JSON (schema v4) cache, migrate it
# to the v5 binary format, and prove the migrated entry warm-hits.
cachedir="$tmpdir/cache"
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python - "$cachedir" <<'EOF'
import sys
from pathlib import Path
from repro.trace.store import TraceStore, trace_to_payload, write_legacy_json

cache = Path(sys.argv[1])
store = TraceStore(cache)
key = store.make_key("avmnist", batch_size=2, backend="meta")
entry = store.get_or_capture("avmnist", batch_size=2, backend="meta")
for binary in cache.glob("*.mmt"):
    binary.unlink()
write_legacy_json(cache / f"{key.digest()}.json.gz",
                  trace_to_payload(entry, key))
EOF
"${run[@]}" store ls --cache-dir "$cachedir" | grep json
"${run[@]}" store migrate --cache-dir "$cachedir" | grep "1 legacy"
"${run[@]}" store stats --cache-dir "$cachedir" | grep "1 v5"
"${run[@]}" run --workload avmnist --batch-size 2 --backend meta \
    --cache-dir "$cachedir" | grep "0 captures"

# Static lint: the exported graph and the whole migrated store lint clean
# under --strict; a counterexample fixture keeps failing (exit 1) and a
# baseline written from its findings suppresses them.
"${run[@]}" lint --strict "$tmpdir/avmnist.json"
"${run[@]}" store lint --strict --cache-dir "$cachedir"
if "${run[@]}" lint tests/fixtures/execution_graphs/cyclic.json; then
    echo "lint missed the cyclic fixture" >&2; exit 1
fi
"${run[@]}" lint --strict tests/fixtures/execution_graphs/unknown_ops.json \
    --write-baseline "$tmpdir/baseline.json" || true
"${run[@]}" lint --strict tests/fixtures/execution_graphs/unknown_ops.json \
    --baseline "$tmpdir/baseline.json" | grep "1 suppressed"
