"""Benches for the extension analyses built on the paper's observations.

* **Concurrency / idle resources** — quantifies Sec. 4.3.3's claim that
  concurrent per-modality execution leaves most assigned resources idle
  ("nearly 75% of the resources ... idle for more [than] 77% of the
  encoder execution" on MuJoCo Push).
* **Energy** — per-stage and per-modality energy (the Timeloop-style
  latency+energy output the paper advertises), including the
  encoder-throttling saving of Sec. 4.2.3.
* **Serving** — open/closed-loop batching curves generalizing Sec. 5.1.
"""

import pytest

from benchmarks.conftest import print_table
from repro.core.analysis.concurrency import concurrency_study
from repro.core.analysis.serving import best_batch_for_slo, serving_sweep
from repro.data.synthetic import random_batch
from repro.hw.energy import modality_energy, report_energy, stage_energy
from repro.profiling.profiler import MMBenchProfiler
from repro.workloads.registry import get_workload


def test_concurrency_idle_resources(benchmark):
    study = benchmark.pedantic(lambda: concurrency_study(batch_size=64),
                               rounds=1, iterations=1)

    rows = []
    for workload, c in study.items():
        rows.append([
            workload, c.straggler, f"{c.straggler_ratio:.2f}x",
            f"{c.idle_stream_share:.0%}", f"{c.idle_window_fraction:.0%}",
            f"{c.idle_resource_fraction:.0%}", f"{c.concurrency_speedup:.2f}x",
        ])
    print_table("Concurrent-modality idle resources (Sec. 4.3.3)",
                ["workload", "straggler", "straggler ratio", "idle streams",
                 "idle window", "idle area", "concurrency speedup"], rows)

    push = study["mujoco_push"]
    # The paper's geometry: 3 of 4 streams (75% of resources) idle for a
    # large fraction of the encoder window.
    assert push.idle_stream_share == pytest.approx(0.75)
    assert push.idle_window_fraction > 0.3
    assert push.straggler == "image"
    # Concurrency still pays on every workload (speedup > 1).
    assert all(c.concurrency_speedup > 1.0 for c in study.values())


def test_energy_breakdown(benchmark):
    info = get_workload("avmnist")
    model = info.build(seed=0)
    batch = random_batch(info.shapes, 32, seed=0)
    profiler = MMBenchProfiler("2080ti")
    trace = profiler.capture(model, batch)

    def run():
        out = {}
        for device in ("2080ti", "orin", "nano"):
            report = profiler.price(model, trace, 32, device=device)
            out[device] = (report_energy(report), stage_energy(report),
                           modality_energy(report), report.total_time)
        return out

    out = benchmark(run)
    rows = []
    for device, (energy, stages, modalities, total_time) in out.items():
        rows.append([
            device, f"{energy.total * 1e3:.3f} mJ", f"{total_time * 1e3:.2f} ms",
            f"{stages['encoder'] / sum(stages.values()):.0%}",
            f"{modalities['audio'] / (modalities['image'] + modalities['audio']):.0%}",
        ])
    print_table("Energy per batch-32 inference",
                ["device", "energy", "latency", "encoder share",
                 "audio encoder share"], rows)

    # Throttling the audio encoder (Sec. 4.2.3) saves its modality energy.
    for device, (_, _, modalities, _) in out.items():
        assert modalities["audio"] > 0
        assert modalities["image"] > modalities["audio"]
    # The Nano sips power but takes far longer; the server wins on EDP.
    server_energy = out["2080ti"][0].total
    nano_energy = out["nano"][0].total
    server_time, nano_time = out["2080ti"][3], out["nano"][3]
    assert server_energy * server_time < nano_energy * nano_time


def test_serving_sweep(benchmark):
    results = benchmark.pedantic(
        lambda: serving_sweep(batch_sizes=(1, 8, 40, 400), n_tasks=5_000),
        rounds=1, iterations=1,
    )

    rows = [[b, f"{r.throughput:,.0f} tasks/s", f"{r.mean_latency * 1e3:.2f} ms",
             f"{r.p99_latency * 1e3:.2f} ms", f"{r.server_utilization:.0%}"]
            for b, r in sorted(results.items())]
    print_table("Serving sweep: AV-MNIST on the 2080Ti model (closed batch)",
                ["batch", "throughput", "mean latency", "p99 latency",
                 "utilization"], rows)

    # Larger batches raise throughput, sub-linearly (the Fig. 12 economics).
    assert results[400].throughput > results[40].throughput > results[1].throughput
    assert results[400].throughput < 400 * results[1].throughput
    # SLO selection is well-defined at both extremes.
    assert best_batch_for_slo(results, p99_slo=1e9) == 400
