"""Benchmark: traced training-step capture + vectorized pricing.

Two sections:

1. **Per-workload training steps** — for each registry workload, capture
   one full traced training step (forward + loss + backward + optimizer)
   on the meta backend at batch 32 and price it on the 2080Ti with the
   vectorized engine; report capture/pricing wall time, kernel counts and
   the traced train/forward FLOP ratio. On ``medical_seg`` the eager
   capture is also timed and the meta speedup gated (``--floor``): the
   shape-only backward must stay an order of magnitude faster than dense
   eager backward, or training sweeps lose their scalability.
2. **Batch-size sweep** — ``training_batch_sweep`` over
   (1, 8, 32, 128) x (2080ti, orin, nano), one ``run_sweep`` pass per
   batch, wall-time gated by ``--budget``.

Run from the repo root::

    python benchmarks/bench_training.py [--floor 10] [--budget 120] [-o FILE]

Emits ``BENCH_training.json``.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.core.analysis.training import training_batch_sweep
from repro.hw.device import get_device
from repro.hw.engine import ExecutionEngine
from repro.profiling.training import (
    trace_training_step,
    traced_training_flops_ratio,
    training_memory_factor,
)
from repro.trace.store import TraceStore
from repro.workloads.registry import get_workload, list_workloads

BATCH = 32
SWEEP_BATCHES = (1, 8, 32, 128)
SWEEP_DEVICES = ("2080ti", "orin", "nano")
EAGER_GATE_WORKLOAD = "medical_seg"


def bench_workload(store: TraceStore, name: str) -> dict:
    t0 = time.perf_counter()
    stored = store.get_or_capture_training(name, batch_size=BATCH, backend="meta")
    capture_s = time.perf_counter() - t0

    device = get_device("2080ti")
    t0 = time.perf_counter()
    report = ExecutionEngine(device).run(
        stored.trace,
        model_bytes=stored.parameter_bytes * training_memory_factor("adam"),
        input_bytes=stored.input_bytes,
    )
    pass_time = report.pass_time()
    price_s = time.perf_counter() - t0

    return {
        "kernels": stored.trace.columns().n,
        "meta_capture_s": round(capture_s, 6),
        "price_s": round(price_s, 6),
        "step_time_s": report.total_time,
        "flops_ratio": round(traced_training_flops_ratio(stored.trace), 4),
        "backward_share": round(
            pass_time.get("backward", 0.0) / max(sum(pass_time.values()), 1e-12), 4),
    }


def bench_eager_gate(floor: float) -> dict:
    info = get_workload(EAGER_GATE_WORKLOAD)
    t0 = time.perf_counter()
    trace_training_step(info.build(seed=0), batch_size=BATCH, backend="eager")
    eager_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    meta = trace_training_step(info.build(seed=0), batch_size=BATCH, backend="meta")
    meta_s = time.perf_counter() - t0
    speedup = eager_s / meta_s if meta_s > 0 else float("inf")
    return {
        "workload": EAGER_GATE_WORKLOAD,
        "batch_size": BATCH,
        "kernels": meta.columns().n,
        "eager_s": round(eager_s, 4),
        "meta_s": round(meta_s, 4),
        "speedup": round(speedup, 1),
        "floor": floor,
        "ok": speedup >= floor,
    }


def bench_sweep(store: TraceStore) -> dict:
    t0 = time.perf_counter()
    grid = training_batch_sweep("avmnist", batches=SWEEP_BATCHES,
                                devices=SWEEP_DEVICES, store=store)
    wall = time.perf_counter() - t0
    return {
        "workload": "avmnist",
        "cells": len(grid),
        "wall_s": round(wall, 4),
        "step_times": {f"b{b}@{d}": round(cell.total_time, 6)
                       for (b, d), cell in grid.items()},
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--floor", type=float, default=10.0,
                        help="minimum meta-over-eager training-capture speedup")
    parser.add_argument("--budget", type=float, default=None,
                        help="maximum total wall seconds (CI gate)")
    parser.add_argument("-o", "--output", default="BENCH_training.json")
    args = parser.parse_args()

    t_start = time.perf_counter()
    store = TraceStore()
    workloads = {name: bench_workload(store, name) for name in list_workloads()}
    gate = bench_eager_gate(args.floor)
    sweep = bench_sweep(store)
    total_wall = time.perf_counter() - t_start

    ratios = [w["flops_ratio"] for w in workloads.values()]
    result = {
        "batch_size": BATCH,
        "workloads": workloads,
        "flops_ratio_range": [min(ratios), max(ratios)],
        "eager_gate": gate,
        "sweep": sweep,
        "total_wall_s": round(total_wall, 3),
    }
    Path(args.output).write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))

    if not gate["ok"]:
        print(f"FAIL: meta training capture speedup {gate['speedup']}x "
              f"under floor {args.floor}x")
        return 1
    if not all(2.0 < r < 4.0 for r in ratios):
        print(f"FAIL: traced flops ratio out of [2, 4]: {ratios}")
        return 1
    if args.budget is not None and total_wall > args.budget:
        print(f"FAIL: wall {total_wall:.1f}s over budget {args.budget}s")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
