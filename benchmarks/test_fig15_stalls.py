"""Figure 15: execution stall breakdown and resource usage on the edge.

Paper shapes asserted: execution-dependency and instruction-fetch stalls
grow dramatically on the Jetson Nano while memory/cache-dependency stalls
dominate on the 2080Ti; on the Nano, DRAM utilization stays high in every
stage and the fusion stage's occupancy no longer trails the encoder's.
"""

from benchmarks.conftest import print_table
from repro.core.analysis.edge import (
    dominant_stalls,
    edge_resource_study,
    edge_stall_study,
)
from repro.hw.stalls import STALL_REASONS


def test_fig15ab_stall_breakdowns(benchmark):
    profiles = benchmark.pedantic(lambda: edge_stall_study(), rounds=1, iterations=1)

    rows = [[p.device, p.config] + [f"{p.stalls[r]:.0%}" for r in STALL_REASONS]
            for p in profiles]
    print_table("Figure 15a/b: stall breakdown (uni0=audio, uni1=image)",
                ["device", "config", *STALL_REASONS], rows)

    by_key = {(p.device, p.config): p.stalls for p in profiles}

    # Breakdown rows are distributions.
    for stalls in by_key.values():
        assert abs(sum(stalls.values()) - 1.0) < 1e-9

    # The paper's stall shift.
    assert dominant_stalls(profiles, "nano")[0] == "Exec"
    assert dominant_stalls(profiles, "2080ti")[0] in ("Mem", "Cache")
    for config in ("uni0", "uni1", "slfs"):
        nano, server = by_key[("nano", config)], by_key[("2080ti", config)]
        assert nano["Exec"] + nano["Inst"] > server["Exec"] + server["Inst"]
        assert server["Mem"] + server["Cache"] > nano["Mem"] + nano["Cache"]


def test_fig15c_nano_resource_usage(benchmark):
    counters = benchmark.pedantic(lambda: edge_resource_study(), rounds=1, iterations=1)

    rows = [[stage, round(c["dram_utilization"], 3), round(c["achieved_occupancy"], 3),
             round(c["ipc"], 3), round(c["gld_efficiency"], 3),
             round(c["gst_efficiency"], 3)]
            for stage, c in counters.items()]
    print_table("Figure 15c: slfs per-stage resource usage on Jetson Nano",
                ["stage", "DRAM_UTI", "GPU_OCP", "IPC", "GLD_EFF", "GST_EFF"], rows)

    # DRAM utilization is almost always kept at a high level on the nano.
    for stage, c in counters.items():
        assert c["dram_utilization"] > 0.3, stage
    # Fusion occupancy catches up with (or exceeds) the encoder's.
    assert (counters["fusion"]["achieved_occupancy"]
            >= counters["encoder"]["achieved_occupancy"] - 1e-6)
