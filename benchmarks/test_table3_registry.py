"""Table 3: characteristics of each application in MMBench.

Regenerates the workload characteristics table from the registry plus live
measurements (parameter counts and per-sample FLOPs from traced forwards).
"""

from benchmarks.conftest import print_table
from repro.data.synthetic import random_batch
from repro.profiling.flops import flops_per_sample
from repro.workloads.registry import WORKLOADS, list_workloads


def test_table3_application_characteristics(benchmark):
    def build_table():
        rows = []
        for name in list_workloads():
            info = WORKLOADS[name]
            model = info.build(seed=0)
            batch = random_batch(info.shapes, 2, seed=0)
            rows.append([
                name, info.domain, info.model_size,
                ",".join(info.modalities),
                ",".join(info.fusions[:3]) + ("..." if len(info.fusions) > 3 else ""),
                info.task_kind,
                model.num_parameters(),
                f"{flops_per_sample(model, batch):.3g}",
            ])
        return rows

    rows = benchmark.pedantic(build_table, rounds=1, iterations=1)
    print_table("Table 3: application characteristics",
                ["workload", "domain", "size", "modalities", "fusions", "task",
                 "params", "flops/sample"], rows)

    assert len(rows) == 9
    domains = {r[1] for r in rows}
    assert len(domains) == 5
    # Large models are larger than the Small one (AV-MNIST).
    params = {r[0]: r[6] for r in rows}
    assert params["mmimdb"] > params["avmnist"]
