"""Figure 14: AV-MNIST inference time on the server and edge devices.

Paper shapes asserted: the Jetson Nano needs several times the server's
time (6.48x in the paper); server and Orin latency decrease monotonically
with batch size while the Nano's *rises again* at batch 320 (resources
used up); and the multi/uni ratio stays above 1 everywhere.
"""

from benchmarks.conftest import print_table
from repro.core.analysis.edge import edge_latency_study, multimodal_ratio


def test_fig14_edge_migration_latency(benchmark):
    results = benchmark.pedantic(lambda: edge_latency_study(), rounds=1, iterations=1)

    rows = [[r.device, r.variant, r.batch_size, f"{r.inference_time:.2f} s",
             f"{r.memory_pressure:.2f}", f"{r.slowdown:.2f}x"] for r in results]
    print_table("Figure 14: inference time for 10k tasks (full-scale extrapolation)",
                ["device", "variant", "batch", "time", "mem pressure", "thrash"], rows)

    by_key = {(r.device, r.variant, r.batch_size): r for r in results}

    # Nano >> Orin > server at every batch size.
    for b in (40, 80, 160, 320):
        assert (by_key[("nano", "slfs", b)].inference_time
                > by_key[("orin", "slfs", b)].inference_time
                > 0.5 * by_key[("2080ti", "slfs", b)].inference_time)
    ratio = (by_key[("nano", "slfs", 40)].inference_time
             / by_key[("2080ti", "slfs", 40)].inference_time)
    assert ratio > 4.0  # paper: 6.48x

    # Server decreases monotonically; nano turns back up at b=320.
    server = [by_key[("2080ti", "slfs", b)].inference_time for b in (40, 80, 160, 320)]
    assert server == sorted(server, reverse=True)
    nano = [by_key[("nano", "slfs", b)].inference_time for b in (40, 80, 160, 320)]
    assert nano[3] > nano[2]
    assert by_key[("nano", "slfs", 320)].slowdown > 1.0

    # Multi-modal costs more than uni-modal on every platform.
    ratios = multimodal_ratio(results, 40)
    assert all(v > 1.3 for v in ratios.values())
