"""Benchmark: a million-request multi-tenant mixed-serving simulation.

Measures the acceptance scenario of the multi-tenant serving layer: all
nine registry workloads served concurrently as tenants of one fleet of
heterogeneous devices, traffic drawn from a named scenario
(:mod:`repro.serving.scenarios`), per-tenant SLO attainment reported.
Because batch compute comes from memoized profiled cost models, the
simulated fleet chews through a million requests in seconds of wall time.

Run from the repo root::

    python benchmarks/bench_serving_mix.py [--n-requests 1000000] [-o FILE]

Emits ``BENCH_serving_mix.json``::

    {
      "n_requests": 1000000,
      "scenario": "heavy-head",
      "devices": ["2080ti", "2080ti", "orin", "nano"],
      "wall_s": ...,
      "simulated_req_per_s": ...,
      "tenants": {"avmnist": {"requests": ..., "slo_attainment": ...}, ...}
    }

Exits non-zero if the simulation exceeds ``--budget`` seconds (the CI
regression gate against reintroducing per-request Python overheads on the
event-loop hot path) or if any tenant's SLO attainment collapses.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.serving import AdaptiveSLOPolicy, make_tenants, scenario_requests, simulate_mixed
from repro.workloads.registry import list_workloads

DEVICES = ("2080ti", "2080ti", "orin", "nano")
SLO = 50e-3


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n-requests", type=int, default=1_000_000)
    parser.add_argument("--arrival-rate", type=float, default=100_000.0)
    parser.add_argument("--scenario", default="heavy-head")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--budget", type=float, default=90.0,
                        help="maximum acceptable simulation wall time in "
                             "seconds (CI regression gate)")
    parser.add_argument("-o", "--output", default="BENCH_serving_mix.json")
    args = parser.parse_args(argv)

    tenants = make_tenants(
        list_workloads(),
        policy_factory=lambda _w: AdaptiveSLOPolicy(SLO),
        slo=SLO, seed=args.seed,
    )
    # Warm every tenant's anchor curves for every device so the timed
    # section measures the event loop, not lazy cost-model fills.
    for spec in tenants:
        for device in set(DEVICES):
            spec.cost.latency(device, 1)

    t0 = time.perf_counter()
    requests = scenario_requests(args.scenario, tenants, args.n_requests,
                                 arrival_rate=args.arrival_rate, seed=args.seed)
    generate_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    report = simulate_mixed(tenants, devices=DEVICES, requests=requests,
                            arrival_rate=args.arrival_rate, seed=args.seed)
    wall_s = time.perf_counter() - t0

    print(f"{args.scenario}: {report.n_requests:,} requests over "
          f"{len(tenants)} tenants on {len(DEVICES)} devices")
    print(f"arrivals generated in {generate_s:.2f}s, "
          f"simulated in {wall_s:.2f}s "
          f"({report.n_requests / wall_s:,.0f} req/s of simulation)")
    per_tenant = {}
    for name, stats in report.tenant_stats.items():
        per_tenant[name] = {
            "requests": stats.n_requests,
            "p99_latency_s": stats.p99_latency,
            "slo_attainment": stats.slo_attainment,
        }
        print(f"{name:>14}: {stats.n_requests:>8,} requests   "
              f"p99 {stats.p99_latency * 1e3:7.2f} ms   "
              f"SLO<= {SLO * 1e3:.0f}ms {stats.slo_attainment:.2%}")

    payload = {
        "bench": "serving_mix",
        "n_requests": report.n_requests,
        "scenario": args.scenario,
        "arrival_rate": args.arrival_rate,
        "devices": list(DEVICES),
        "slo_s": SLO,
        "generate_s": round(generate_s, 3),
        "wall_s": round(wall_s, 3),
        "simulated_req_per_s": round(report.n_requests / wall_s),
        "makespan_s": report.makespan,
        "tenants": per_tenant,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")

    if wall_s > args.budget:
        print(f"FAIL: 1M-request mixed simulation took {wall_s:.1f}s "
              f"(budget {args.budget:.0f}s)")
        return 1
    worst = min(s.slo_attainment for s in report.tenant_stats.values())
    if worst < 0.5:
        print(f"FAIL: a tenant's SLO attainment collapsed to {worst:.1%}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
