"""Figure 11: CPU+Runtime vs GPU execution share, uni- vs multi-modal.

Paper shape asserted: for every workload, the multi-modal implementation
spends a larger proportion of wall time in CPU+Runtime work than the
uni-modal one (data synchronization on intermediate feature maps).
"""

from benchmarks.conftest import print_table
from repro.core.analysis.synchronization import sync_share_analysis


def test_fig11_cpu_runtime_vs_gpu(benchmark):
    rows_out = benchmark.pedantic(lambda: sync_share_analysis(batch_size=32),
                                  rounds=1, iterations=1)

    print_table("Figure 11: CPU+Runtime vs GPU share",
                ["workload", "variant", "CPU+Runtime", "GPU"],
                [[r.workload, r.variant, f"{r.cpu_runtime_share:.1%}",
                  f"{r.gpu_share:.1%}"] for r in rows_out])

    by_key = {(r.workload, r.variant): r for r in rows_out}
    workloads = {r.workload for r in rows_out}
    assert workloads == {"avmnist", "mujoco_push", "medical_seg", "vision_touch"}
    for workload in workloads:
        uni = by_key[(workload, "uni")]
        multi = by_key[(workload, "multi")]
        assert multi.cpu_runtime_share > uni.cpu_runtime_share, workload
