"""Figure 6: execution time of a batch across the three stages.

Paper shapes asserted: the encoder stage dominates for most workloads,
while the transformer/LSTM-fusion robotics workloads (MuJoCo Push) spend
more time in fusion than in their encoders.
"""

from benchmarks.conftest import print_table
from repro.core.analysis.stage import stage_time_analysis
from repro.workloads.registry import list_workloads


def test_fig6_stage_execution_time(benchmark):
    times = benchmark.pedantic(
        lambda: stage_time_analysis(workloads=list_workloads(), batch_size=32),
        rounds=1, iterations=1,
    )

    rows = [[w, *(f"{stages[s] * 1e6:.1f} us" for s in ("encoder", "fusion", "head"))]
            for w, stages in times.items()]
    print_table("Figure 6: per-stage device time (batch=32, RTX 2080Ti model)",
                ["workload", "encoder", "fusion", "head"], rows)

    assert len(times) == 9
    encoder_dominant = sum(
        1 for stages in times.values() if stages["encoder"] >= max(stages.values())
    )
    assert encoder_dominant >= 5  # "generally, encoder takes much longer"
    assert times["mujoco_push"]["fusion"] > times["mujoco_push"]["encoder"]
