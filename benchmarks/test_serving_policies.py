"""Dynamic-batching policy comparison on the open-loop serving engine.

Extends the paper's Sec. 5.1 batch-size case study (Figure 12) from a
closed 10,000-task run into the deployment question it implies: under an
open Poisson request stream, a static batch size is always wrong in one
direction — too small and the device drowns in launch overhead, too
large and requests stall in formation. The SLO-adaptive policy resolves
the tension with the profiled cost model: it picks, per dispatch, the
largest batch whose predicted compute still lands the oldest request
inside its latency target.

Three workloads (small/medium), two device models (server 2080Ti, edge
Nano), three policies, identical arrival streams per comparison.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro.serving import (
    AdaptiveSLOPolicy,
    FixedBatchPolicy,
    ProfiledCostModel,
    TimeoutBatchPolicy,
    simulate,
)

WORKLOADS = ("avmnist", "mujoco_push", "vision_touch")
DEVICES = ("2080ti", "nano")
SLO = 50e-3  # 50 ms p99 target


def no_batching_capacity(cost: ProfiledCostModel, devices) -> float:
    """Aggregate req/s the device pool sustains at batch size 1."""
    return sum(1.0 / cost.latency(d, 1) for d in devices)


@pytest.fixture(scope="module", params=WORKLOADS)
def workload_cost(request):
    return request.param, ProfiledCostModel(request.param)


def test_policy_matrix(workload_cost):
    """Every policy serves every workload on the heterogeneous pool."""
    workload, cost = workload_cost
    rate = 0.9 * no_batching_capacity(cost, DEVICES)
    policies = {
        "fixed(40)": FixedBatchPolicy(40),
        "timeout(40, 2ms)": TimeoutBatchPolicy(40, 2e-3),
        f"adaptive({SLO * 1e3:.0f}ms)": AdaptiveSLOPolicy(SLO),
    }
    rows = []
    for label, policy in policies.items():
        report = simulate(cost, policy, devices=DEVICES, n_requests=3_000,
                          arrival_rate=rate, seed=0)
        rows.append([
            label, f"{report.throughput:,.0f} req/s",
            f"{report.p50_latency * 1e3:.2f} ms",
            f"{report.p99_latency * 1e3:.2f} ms",
            f"{report.slo_attainment(SLO):.1%}",
            "; ".join(f"{s}:{stats.mean_batch:.1f}"
                      for s, stats in sorted(report.device_stats.items())),
        ])
        # Everyone gets served, accounting is coherent.
        assert report.n_requests == 3_000
        assert all(r.finish >= r.dispatch >= r.arrival for r in report.requests)
        assert report.p50_latency <= report.p99_latency
        assert sum(s.requests for s in report.device_stats.values()) == 3_000
    print_table(
        f"Serving policies: {workload} at {rate:,.0f} req/s on {'+'.join(DEVICES)}",
        ["policy", "throughput", "p50", "p99", f"SLO<={SLO * 1e3:.0f}ms", "mean batch"],
        rows,
    )


def test_adaptive_meets_slo_fixed_violates(workload_cost):
    """The tentpole acceptance claim, per workload: under the *same* Poisson
    stream, the fixed no-batching policy blows the 50 ms SLO while the
    adaptive policy meets it by forming larger batches."""
    workload, cost = workload_cost
    rate = 1.4 * no_batching_capacity(cost, DEVICES)  # past fixed capacity
    common = dict(devices=DEVICES, n_requests=3_000, arrival_rate=rate, seed=0)

    fixed = simulate(cost, FixedBatchPolicy(1), **common)
    adaptive = simulate(cost, AdaptiveSLOPolicy(SLO), **common)

    # Identical arrival stream (same seed): the policy is the only variable.
    assert [r.arrival for r in fixed.requests[:20]] == \
        [r.arrival for r in adaptive.requests[:20]]

    print_table(
        f"SLO showdown: {workload} at {rate:,.0f} req/s (1.4x no-batching capacity)",
        ["policy", "p99", f"attainment (SLO {SLO * 1e3:.0f}ms)", "largest batch"],
        [[rep.policy, f"{rep.p99_latency * 1e3:.2f} ms",
          f"{rep.slo_attainment(SLO):.1%}",
          max(max(s, default=1) for s in rep.batch_sizes_used().values())]
         for rep in (fixed, adaptive)],
    )

    assert fixed.p99_latency > SLO, "fixed batch=1 should drown past capacity"
    assert adaptive.p99_latency <= SLO, "adaptive should batch its way out"
    assert adaptive.slo_attainment(SLO) > 0.99
    assert fixed.slo_attainment(SLO) < 0.9
    # It escapes *because* it formed larger batches.
    largest = max(max(s, default=1) for s in adaptive.batch_sizes_used().values())
    assert largest > 1


def test_heterogeneous_routing_uses_both_devices():
    """Under load, earliest-finish routing keeps the edge device working
    while the server takes the bulk of the stream."""
    cost = ProfiledCostModel("avmnist")
    rate = 1.2 * no_batching_capacity(cost, DEVICES)
    report = simulate(cost, AdaptiveSLOPolicy(SLO), devices=DEVICES,
                      n_requests=3_000, arrival_rate=rate, seed=0)
    server, edge = report.device_stats["2080ti"], report.device_stats["nano"]
    assert server.requests > edge.requests > 0
    assert server.utilization > 0.2 and edge.utilization > 0.2


def test_more_servers_cut_tail_latency():
    """Scaling the pool from one 2080Ti to two cuts p99 under overload."""
    cost = ProfiledCostModel("avmnist")
    rate = 1.3 / cost.latency("2080ti", 1)  # overload for one, fine for two
    common = dict(n_requests=2_000, arrival_rate=rate, seed=0)
    one = simulate(cost, FixedBatchPolicy(1), devices=("2080ti",), **common)
    two = simulate(cost, FixedBatchPolicy(1), devices=("2080ti", "2080ti"), **common)
    assert two.p99_latency < one.p99_latency
    assert two.makespan <= one.makespan
