"""Figure 4: performance of the applications in MMBench.

Trains uni-modal baselines and multi-modal fusion variants and prints one
bar per variant. Paper shapes asserted: multi-modal outperforms the best
uni-modal, and fusion choice produces a visible spread (some fusions can
even lose to uni-modal).

Default scope trains AV-MNIST + MuJoCo Push + MM-IMDB (one per metric
family); MMBENCH_FULL=1 trains all nine workloads.
"""

from benchmarks.conftest import full_scope, print_table
from repro.core.analysis.performance import (
    best_by_kind,
    fusion_spread,
    performance_analysis,
)
from repro.workloads.registry import list_workloads


def test_fig4_multimodal_vs_unimodal(benchmark, training_budget):
    workloads = list_workloads() if full_scope() else ["avmnist", "mujoco_push"]

    rows_out = benchmark.pedantic(
        lambda: performance_analysis(workloads=workloads, fusions_per_workload=2,
                                     **training_budget),
        rounds=1, iterations=1,
    )

    print_table(
        "Figure 4: per-variant performance (uni lowercase, fusion variants = multi-modal)",
        ["workload", "variant", "multi?", "metric", "value"],
        [[r.workload, r.variant, "yes" if r.is_multimodal else "no",
          r.metric_name, round(r.value, 4)] for r in rows_out],
    )

    # Paper claim 1: multi-modal beats the best uni-modal baseline.
    best = best_by_kind(rows_out, "avmnist")
    assert best["multimodal"].value > best["unimodal"].value

    # Paper claim 2 (Sec. 4.2.2): fusion scheme choice matters — on MuJoCo
    # Push the late-fusion LSTM clearly beats tensor fusion in MSE.
    push = {r.variant: r.value for r in rows_out if r.workload == "mujoco_push"
            and r.is_multimodal}
    assert push["late_lstm"] < push["tensor"]

    # Paper claim 3: the spread across fusion schemes is non-trivial.
    assert fusion_spread(rows_out, "mujoco_push") > 0.01
