"""Benchmark: ten million requests across a hundred-replica fleet.

Measures the acceptance scenario of the fleet-scale serving layer
(:mod:`repro.serving.fleet`): all nine registry workloads served as
tenants of three homogeneous device groups — 64x 2080ti, 32x orin,
16x nano — under a saturating open stream. The group-level event loop
(bulk arrival absorption, replica free-time vectors, dense latency
tables, completion heap) is what makes this tractable: the classic
per-slot simulator tops out around 250k simulated req/s
(``BENCH_serving_mix.json``); the gate here is >= 10x that.

Batching is throughput-oriented (fixed 512 per tenant): this bench
saturates the fleet to measure *engine capacity*; the adaptive policy's
SLO search dynamics are covered by ``bench_serving_mix.py``.

Run from the repo root::

    python benchmarks/bench_fleet.py [--n-requests 10000000] [-o FILE]

Emits ``BENCH_fleet.json``::

    {
      "n_requests": 10000000,
      "groups": "2080ti:64,orin:32,nano:16",
      "wall_s": ...,
      "simulated_req_per_s": ...,
      "groups_detail": {"2080ti": {"replicas": 64, ...}, ...},
      "tenants": {"avmnist": {"requests": ..., ...}, ...}
    }

Exits non-zero if the simulation exceeds ``--budget`` seconds, falls
below ``--floor`` simulated requests per second (the CI regression gate
against reintroducing per-event scans or per-request scatters on the
hot path), or drops requests (completions must be conserved).
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.serving import FixedBatchPolicy, make_tenants, parse_groups, simulate_fleet
from repro.serving.scenarios import scenario_columns
from repro.workloads.registry import list_workloads

GROUPS = "2080ti:64,orin:32,nano:16"
SLO = 50e-3
BATCH = 512


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n-requests", type=int, default=10_000_000)
    parser.add_argument("--arrival-rate", type=float, default=10_000_000.0)
    parser.add_argument("--scenario", default="heavy-head")
    parser.add_argument("--groups", default=GROUPS)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--budget", type=float, default=9.0,
                        help="maximum acceptable simulation wall time in "
                             "seconds (CI regression gate)")
    parser.add_argument("--floor", type=float, default=2_539_870.0,
                        help="minimum acceptable simulated req/s — 10x the "
                             "classic simulator's BENCH_serving_mix rate")
    parser.add_argument("-o", "--output", default="BENCH_fleet.json")
    args = parser.parse_args(argv)

    groups = parse_groups(args.groups)
    tenants = make_tenants(
        list_workloads(),
        policy_factory=lambda _w: FixedBatchPolicy(BATCH),
        slo=SLO, seed=args.seed,
    )
    # Warm every tenant's anchor curves for every group device so the
    # timed section measures the event loop, not lazy cost-model fills.
    for spec in tenants:
        for group in groups:
            spec.cost.latency(group.device, 1)
    # One small untimed run warms the allocator and the dense latency
    # tables (first-touch page faults otherwise dominate a cold run).
    simulate_fleet(tenants, groups, n_requests=100_000,
                   arrival_rate=args.arrival_rate, scenario=args.scenario,
                   seed=args.seed)

    t0 = time.perf_counter()
    columns = scenario_columns(args.scenario, tenants, args.n_requests,
                               arrival_rate=args.arrival_rate, seed=args.seed)
    generate_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    report = simulate_fleet(tenants, groups, columns=columns,
                            arrival_rate=args.arrival_rate, seed=args.seed)
    wall_s = time.perf_counter() - t0
    rate = report.n_requests / wall_s

    replicas = sum(g.replicas for g in groups)
    print(f"{args.scenario}: {report.n_requests:,} requests over "
          f"{len(tenants)} tenants on {len(groups)} groups / "
          f"{replicas} replicas")
    print(f"arrivals generated in {generate_s:.2f}s, "
          f"simulated in {wall_s:.2f}s ({rate:,.0f} req/s of simulation)")
    groups_detail = {}
    for name, stats in report.group_stats.items():
        groups_detail[name] = {
            "replicas": stats.replicas,
            "batches": stats.batches,
            "requests": stats.requests,
            "mean_batch": round(stats.mean_batch, 1),
            "utilization": round(stats.utilization, 4),
        }
        print(f"{name:>14}: {stats.replicas:>3} replicas   "
              f"{stats.requests:>10,} requests   "
              f"mean batch {stats.mean_batch:6.1f}   "
              f"util {stats.utilization:.0%}")
    per_tenant = {
        name: {
            "requests": stats.n_requests,
            "p99_latency_s": stats.p99_latency,
            "slo_attainment": stats.slo_attainment,
        }
        for name, stats in report.tenant_stats.items()
    }

    payload = {
        "bench": "fleet",
        "n_requests": report.n_requests,
        "scenario": args.scenario,
        "arrival_rate": args.arrival_rate,
        "groups": args.groups,
        "replicas": replicas,
        "slo_s": SLO,
        "batch": BATCH,
        "generate_s": round(generate_s, 3),
        "wall_s": round(wall_s, 3),
        "simulated_req_per_s": round(rate),
        "makespan_s": report.makespan,
        "groups_detail": groups_detail,
        "tenants": per_tenant,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")

    if report.completed != args.n_requests:
        print(f"FAIL: {report.completed:,} of {args.n_requests:,} requests "
              "completed (conservation broken)")
        return 1
    if wall_s > args.budget:
        print(f"FAIL: 10M-request fleet simulation took {wall_s:.1f}s "
              f"(budget {args.budget:.0f}s)")
        return 1
    if rate < args.floor:
        print(f"FAIL: {rate:,.0f} simulated req/s is below the "
              f"{args.floor:,.0f} floor (10x the classic simulator)")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
