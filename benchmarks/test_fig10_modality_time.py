"""Figure 10: execution time for different modalities.

Paper shapes asserted: modalities are imbalanced and the image modality is
the straggler wherever present (4.09x on MuJoCo Push in the paper), which
is what forces modality synchronization before fusion.
"""

from benchmarks.conftest import print_table
from repro.core.analysis.synchronization import modality_time_analysis


def test_fig10_per_modality_encoder_time(benchmark):
    times = benchmark.pedantic(
        lambda: modality_time_analysis(batch_size=64),
        rounds=1, iterations=1,
    )

    rows = []
    for workload, modalities in times.items():
        for modality, t in modalities.items():
            rows.append([workload, modality, round(t, 2)])
    print_table("Figure 10: per-modality encoder time (normalized to fastest)",
                ["workload", "modality", "norm. time"], rows)

    # Every multi-modal workload has an imbalance.
    for workload, modalities in times.items():
        assert max(modalities.values()) > 1.05, workload

    # MuJoCo Push: the image modality is the straggler.
    push = times["mujoco_push"]
    assert max(push, key=push.get) == "image"
    assert push["image"] > 1.3
