"""Figure 5: distribution of mutually exclusive correctly-processed sets.

Paper shapes asserted: the major modality alone covers most (>70%) of the
correctly-processed samples and only a small remainder (<10%) strictly
requires multi-modal fusion — the basis of the adaptive-execution
observation in Sec. 4.2.3. (The paper reports 75.4-86.3% and <5% on its
four datasets.)

Default scope analyses AV-MNIST; MMBENCH_FULL=1 runs all four affective /
multimedia datasets the paper uses.
"""

from benchmarks.conftest import full_scope, print_table
from repro.core.analysis.modality import exclusive_correct_analysis


def test_fig5_exclusive_correct_distribution(benchmark, training_budget):
    workloads = (("avmnist", "mmimdb", "cmu_mosei", "mustard")
                 if full_scope() else ("avmnist",))

    sets = benchmark.pedantic(
        lambda: exclusive_correct_analysis(workloads=workloads, **training_budget),
        rounds=1, iterations=1,
    )

    rows = []
    for s in sets:
        rows.append([
            s.workload, s.major_modality, f"{s.major_fraction:.1%}",
            "; ".join(f"{m}={v:.1%}" for m, v in s.minor_fractions.items()),
            f"{s.fusion_only_fraction:.1%}", s.union_size,
        ])
    print_table("Figure 5: exclusive-correct sample distribution",
                ["workload", "major", "major share", "other modalities",
                 "fusion-only", "union size"], rows)

    for s in sets:
        assert s.total == 1.0 or abs(s.total - 1.0) < 1e-9
        assert s.major_fraction > 0.6, s.workload
        assert s.fusion_only_fraction < 0.15, s.workload
