"""Benchmark: vectorized columnar pricing vs the scalar reference engine.

Measures the tentpole of the columnar execution path: for each registry
workload it captures one meta-backend trace at batch 64, prices it with
the scalar reference engine (:mod:`repro.hw.reference`, one Python call
chain per kernel event) and with the vectorized
:class:`~repro.hw.engine.ExecutionEngine` (numpy over
:class:`~repro.trace.columns.TraceColumns`), checks the two totals agree
to 1e-9, and reports the speedup. A second section times the one-pass
grid sweep (:func:`repro.profiling.profiler.price_grid` /
``ExecutionEngine.run_sweep``) against the equivalent scalar per-cell
loop over (workloads x batch sizes x devices).

Run from the repo root::

    python benchmarks/bench_engine.py [--batch-size 64] [-o FILE]

Emits ``BENCH_engine.json``::

    {
      "batch_size": 64,
      "workloads": {"avmnist": {"scalar_s": ..., "vectorized_s": ..., "speedup": ...}, ...},
      "largest_workload": {"name": ..., "speedup": ...},
      "grid": {"cells": ..., "scalar_s": ..., "vectorized_s": ..., "speedup": ...}
    }

Exits non-zero if the single-trace speedup on the largest workload drops
below ``--floor`` (the CI regression gate against reintroducing per-event
Python loops on the pricing path).
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.hw.device import get_device
from repro.hw.engine import ExecutionEngine
from repro.hw.reference import ScalarExecutionEngine
from repro.profiling.profiler import price_grid
from repro.trace.store import TraceStore
from repro.workloads.registry import list_workloads

GRID_DEVICES = ("2080ti", "orin", "nano")
GRID_BATCHES = (1, 8, 64)


def _best_of(n: int, fn):
    """Minimum wall time of ``n`` runs (standard noise suppression)."""
    times = []
    for _ in range(n):
        t0 = time.perf_counter()
        out = fn()
        times.append(time.perf_counter() - t0)
    return min(times), out


def bench_workload(store: TraceStore, name: str, batch_size: int, repeats: int) -> dict:
    stored = store.get_or_capture(name, batch_size=batch_size, backend="meta")
    trace = stored.trace
    device = get_device("2080ti")
    kwargs = dict(model_bytes=stored.parameter_bytes, input_bytes=stored.input_bytes)

    trace.columns()  # columns are built once per trace; price with them warm

    def vectorized_full():
        # Counters and stalls are lazy on the vectorized report; force them
        # so both paths price the complete report (apples-to-apples).
        report = ExecutionEngine(device).run(trace, **kwargs)
        report.counter_columns
        report.stall_shares
        return report

    scalar_s, scalar_report = _best_of(
        repeats, lambda: ScalarExecutionEngine(device).run(trace, **kwargs))
    vector_s, vector_report = _best_of(repeats, vectorized_full)

    rel = abs(vector_report.total_time - scalar_report.total_time)
    rel /= max(abs(scalar_report.total_time), 1e-300)
    if rel > 1e-9:
        raise AssertionError(f"{name}: vectorized/scalar pricing diverged ({rel:.2e})")

    return {
        "scalar_s": round(scalar_s, 6),
        "vectorized_s": round(vector_s, 6),
        "speedup": round(scalar_s / vector_s, 2),
        "kernels": len(trace.kernels),
        "total_time_s": scalar_report.total_time,
    }


def bench_grid(store: TraceStore, workloads: list[str], repeats: int) -> dict:
    """One-pass grid sweep vs the equivalent scalar per-cell loop."""

    def vectorized():
        return price_grid(workloads, GRID_BATCHES, GRID_DEVICES,
                          backend="meta", store=store)

    def scalar():
        out = {}
        for name in workloads:
            for batch in GRID_BATCHES:
                stored = store.get_or_capture(name, batch_size=batch, backend="meta")
                for dev in GRID_DEVICES:
                    out[(name, batch, dev)] = ScalarExecutionEngine(get_device(dev)).run(
                        stored.trace,
                        model_bytes=stored.parameter_bytes,
                        input_bytes=stored.input_bytes,
                    )
        return out

    vectorized()  # warm the trace store so both paths time pricing only
    vector_s, grid = _best_of(repeats, vectorized)
    scalar_s, ref = _best_of(1, scalar)

    for key, cell in grid.items():
        rel = abs(cell.total_time - ref[key].total_time)
        rel /= max(abs(ref[key].total_time), 1e-300)
        if rel > 1e-9:
            raise AssertionError(f"grid cell {key}: pricing diverged ({rel:.2e})")

    return {
        "cells": len(grid),
        "devices": list(GRID_DEVICES),
        "batch_sizes": list(GRID_BATCHES),
        "scalar_s": round(scalar_s, 6),
        "vectorized_s": round(vector_s, 6),
        "speedup": round(scalar_s / vector_s, 2),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--batch-size", type=int, default=64)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--floor", type=float, default=20.0,
                        help="minimum acceptable single-trace speedup on the "
                             "largest workload (CI regression gate)")
    parser.add_argument("-o", "--output", default="BENCH_engine.json")
    args = parser.parse_args(argv)

    store = TraceStore()
    results: dict[str, dict] = {}
    for name in list_workloads():
        results[name] = bench_workload(store, name, args.batch_size, args.repeats)
        r = results[name]
        print(f"{name:>14}: scalar {r['scalar_s'] * 1e3:8.2f} ms   "
              f"vectorized {r['vectorized_s'] * 1e3:7.3f} ms   "
              f"{r['speedup']:7.1f}x   ({r['kernels']} kernels)")

    largest = max(results, key=lambda n: results[n]["scalar_s"])
    print(f"largest workload by scalar pricing time: {largest} "
          f"({results[largest]['speedup']:.1f}x vectorized speedup)")

    grid = bench_grid(store, list_workloads(), args.repeats)
    print(f"grid sweep ({grid['cells']} cells, {len(GRID_DEVICES)} devices): "
          f"scalar {grid['scalar_s'] * 1e3:.1f} ms vs vectorized "
          f"{grid['vectorized_s'] * 1e3:.1f} ms ({grid['speedup']:.1f}x)")

    payload = {
        "bench": "engine",
        "batch_size": args.batch_size,
        "repeats": args.repeats,
        "workloads": results,
        "largest_workload": {"name": largest, "speedup": results[largest]["speedup"]},
        "grid": grid,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")

    if results[largest]["speedup"] < args.floor:
        print(f"FAIL: vectorized speedup on the largest workload is below "
              f"{args.floor:.0f}x")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
