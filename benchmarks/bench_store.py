"""Benchmark: binary columnar (v5) trace-store warm loads vs gzip-JSON.

Builds the same ~50k-node synthetic execution graph the ingest benchmark
uses, stores the ingested trace both ways — legacy gzip-JSON payload and
the v5 binary columnar file — and measures warm *disk* load latency for
each. Then seeds a small corpus (all nine workloads, batch 8, meta
backend) and measures per-trace binary load latency plus a whole-corpus
``prefetch``.

Run from the repo root::

    python benchmarks/bench_store.py [--nodes 50000] [-o FILE]

Emits ``BENCH_store.json``::

    {
      "ingest_50k": {"json_ms": ..., "binary_ms": ..., "speedup": ...},
      "workloads": {"avmnist": {"binary_us": ...}, ...},
      "prefetch": {"entries": 10, "ms": ...}
    }

Exits non-zero if the binary warm load fails to beat the JSON baseline by
``--min-speedup`` (CI regression gate, default 20x), if the mean
per-workload binary load exceeds ``--small-budget-us``, or if the whole
run exceeds ``--budget`` seconds.
"""

from __future__ import annotations

import argparse
import json
import statistics
import tempfile
import time
from pathlib import Path

import numpy as np

from bench_ingest import synthetic_graph
from repro.trace import binfmt
from repro.trace.columns import HOST_COLUMN_SPEC, KERNEL_COLUMN_SPEC
from repro.trace.store import (
    TraceStore,
    read_legacy_json,
    trace_from_payload,
    trace_to_payload,
    write_legacy_json,
)
from repro.workloads.registry import list_workloads


def best_of(fn, reps: int) -> tuple[float, object]:
    """(best seconds, last result) over ``reps`` calls."""
    best = float("inf")
    out = None
    for _ in range(reps):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=50_000)
    parser.add_argument("--min-speedup", type=float, default=20.0,
                        help="binary warm load must beat gzip-JSON by this")
    parser.add_argument("--small-budget-us", type=float, default=5_000.0,
                        help="mean binary load budget for the nine "
                             "workload traces (microseconds)")
    parser.add_argument("--budget", type=float, default=120.0,
                        help="wall-clock budget for the whole benchmark (s)")
    parser.add_argument("-o", "--output", default="BENCH_store.json")
    args = parser.parse_args(argv)

    run_start = time.perf_counter()

    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        graph_path = tmp / "synthetic.json"
        graph_path.write_text(json.dumps(synthetic_graph(args.nodes)))

        cache = tmp / "cache"
        store = TraceStore(cache)
        stored = store.get_or_ingest(str(graph_path))
        mmt_path = next(cache.glob("*.mmt"))
        json_path = tmp / "baseline.json.gz"
        key_header = binfmt.read_header(mmt_path)["key"]
        write_legacy_json(json_path, {**trace_to_payload(
            stored, store.make_key("avmnist")), "key": key_header})

        json_s, via_json = best_of(
            lambda: trace_from_payload(read_legacy_json(json_path)), 5)
        interner = binfmt.StringInterner(cache / TraceStore.INTERNING_SIDECAR)
        binary_s, (_, via_binary) = best_of(
            lambda: binfmt.read_entry(mmt_path, interner=interner), 20)
        speedup = json_s / binary_s

        cols_j, cols_b = via_json.trace.columns(), via_binary.trace.columns()
        for name, _ in KERNEL_COLUMN_SPEC + HOST_COLUMN_SPEC:
            assert np.array_equal(getattr(cols_j, name), getattr(cols_b, name)), \
                f"column {name} differs between JSON and binary loads"
        assert not cols_b.flops.flags["OWNDATA"], "binary load must be zero-copy"

        print(f"50k-node ingest trace ({mmt_path.stat().st_size / 1e6:.1f} MB "
              f"binary, {json_path.stat().st_size / 1e6:.1f} MB gzip-JSON)")
        print(f"  warm disk load: gzip-JSON {json_s * 1e3:.2f} ms, "
              f"v5 binary {binary_s * 1e6:.0f} us -> {speedup:,.0f}x")

        # -- small-trace corpus: the nine workloads ---------------------------
        corpus = tmp / "corpus"
        seeder = TraceStore(corpus)
        for workload in list_workloads():
            seeder.get_or_capture(workload, batch_size=8, backend="meta")
        corpus_interner = binfmt.StringInterner(
            corpus / TraceStore.INTERNING_SIDECAR)
        per_workload: dict[str, float] = {}
        for path in sorted(corpus.glob("*.mmt")):
            seconds, (header, _) = best_of(
                lambda p=path: binfmt.read_entry(p, interner=corpus_interner), 10)
            per_workload[header["key"]["workload"]] = seconds
        mean_us = statistics.mean(per_workload.values()) * 1e6
        worst_us = max(per_workload.values()) * 1e6
        print(f"workload corpus: {len(per_workload)} traces, "
              f"mean warm load {mean_us:.0f} us, worst {worst_us:.0f} us")

        t0 = time.perf_counter()
        fresh = TraceStore(corpus)
        n_prefetched = fresh.prefetch()
        prefetch_s = time.perf_counter() - t0
        print(f"prefetch: {n_prefetched} traces mapped in "
              f"{prefetch_s * 1e3:.2f} ms")

        size_mb = mmt_path.stat().st_size / 1e6

    total_s = time.perf_counter() - run_start
    payload = {
        "bench": "store",
        "nodes": args.nodes,
        "binary_mb": round(size_mb, 2),
        "ingest_50k": {
            "json_ms": round(json_s * 1e3, 3),
            "binary_ms": round(binary_s * 1e3, 4),
            "speedup": round(speedup, 1),
        },
        "workloads": {w: {"binary_us": round(s * 1e6, 1)}
                      for w, s in sorted(per_workload.items())},
        "workloads_mean_us": round(mean_us, 1),
        "prefetch": {"entries": n_prefetched,
                     "ms": round(prefetch_s * 1e3, 2)},
        "total_seconds": round(total_s, 2),
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output} (total {total_s:.1f} s)")

    failed = False
    if speedup < args.min_speedup:
        print(f"FAIL: binary warm load only {speedup:.1f}x over gzip-JSON "
              f"(floor {args.min_speedup:.0f}x)")
        failed = True
    if mean_us > args.small_budget_us:
        print(f"FAIL: mean workload load {mean_us:.0f} us over "
              f"{args.small_budget_us:.0f} us budget")
        failed = True
    if n_prefetched != len(per_workload):
        print(f"FAIL: prefetch mapped {n_prefetched} of {len(per_workload)}")
        failed = True
    if total_s > args.budget:
        print(f"FAIL: benchmark exceeded {args.budget:.0f} s budget")
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
