"""Figure 13: peak memory for models, datasets and intermediate results.

Paper shapes asserted: the model component is batch-invariant; dataset and
intermediate components grow linearly with batch size; and the multi-modal
implementation carries a larger intermediate share, which is why it hits
GPU memory capacity earlier when scaling batches.
"""

import numpy as np

from benchmarks.conftest import print_table
from repro.core.analysis.batchsize import peak_memory_study

BATCHES = (20, 40, 100, 200, 400)


def test_fig13_peak_memory_decomposition(benchmark):
    mem = benchmark.pedantic(lambda: peak_memory_study(batch_sizes=BATCHES),
                             rounds=1, iterations=1)

    rows = []
    for variant, per_batch in mem.items():
        for batch, m in per_batch.items():
            rows.append([variant, batch, f"{m.model / 1e6:.2f}",
                         f"{m.dataset / 1e6:.2f}", f"{m.intermediate / 1e6:.2f}",
                         f"{m.total / 1e6:.2f}"])
    print_table("Figure 13: peak memory (MB) by component",
                ["variant", "batch", "model", "dataset", "intermediate", "total"], rows)

    for variant in ("slfs", "image"):
        per_batch = mem[variant]
        models = [per_batch[b].model for b in BATCHES]
        assert max(models) == min(models)  # batch-invariant

        # Linear growth: near-perfect correlation with batch size and a
        # 20->400 ratio of ~20x for dataset and intermediate.
        for component in ("dataset", "intermediate"):
            series = [getattr(per_batch[b], component) for b in BATCHES]
            ratio = series[-1] / series[0]
            assert 15 < ratio < 25, (variant, component, ratio)
            corr = np.corrcoef(BATCHES, series)[0, 1]
            assert corr > 0.999

    # Multi-modal produces a higher proportion of intermediate data.
    slfs400, image400 = mem["slfs"][400], mem["image"][400]
    assert slfs400.intermediate > image400.intermediate
    assert (slfs400.intermediate / slfs400.total) > 0.5
