"""Ablations of the hardware-model design choices (DESIGN.md).

Each ablation disables one mechanism and shows which paper finding would
be lost, demonstrating that the reproduced shapes come from the modelled
mechanisms rather than from tuning:

* **cache-reuse filtering** -> without it, conv/GEMM kernels count their
  full logical traffic against DRAM and everything becomes memory-bound;
* **host-side fusion round trip** -> without it, the uni/multi
  CPU+Runtime gap of Figure 11 collapses;
* **small-kernel machine-fill ramp** -> without it, batch scaling is
  near-linear and the Figure 12 sublinearity disappears;
* **unified-memory capacity model** -> without it, the Jetson Nano's
  batch-320 latency cliff of Figure 14 disappears.
"""

import pytest

from benchmarks.conftest import print_table
from repro.data.synthetic import random_batch
from repro.hw.device import get_device
from repro.hw.latency import kernel_latency
from repro.profiling.profiler import MMBenchProfiler
from repro.trace.events import KernelCategory, KernelEvent
from repro.trace.tracer import Trace
from repro.workloads.registry import get_workload


def _clone_kernel(k: KernelEvent, **overrides) -> KernelEvent:
    base = dict(
        name=k.name, category=k.category, flops=k.flops, bytes_read=k.bytes_read,
        bytes_written=k.bytes_written, threads=k.threads, stage=k.stage,
        modality=k.modality, coalesced_fraction=k.coalesced_fraction,
        reuse_factor=k.reuse_factor, meta=dict(k.meta),
    )
    base.update(overrides)
    return KernelEvent(**base)


@pytest.fixture(scope="module")
def avmnist_capture():
    info = get_workload("avmnist")
    model = info.build(seed=0)
    batch = random_batch(info.shapes, 32, seed=0)
    profiler = MMBenchProfiler("2080ti")
    return model, profiler.capture(model, batch), profiler


def test_ablation_cache_reuse(benchmark, avmnist_capture):
    model, trace, profiler = avmnist_capture

    def run():
        with_cache = profiler.price(model, trace, 32)
        no_cache = profiler.price(
            model,
            Trace(kernels=[_clone_kernel(k, reuse_factor=1.0) for k in trace.kernels],
                  host_events=list(trace.host_events)),
            32,
        )
        return with_cache, no_cache

    with_cache, no_cache = benchmark(run)
    def memory_bound(r):
        return sum(1 for kx in r.kernels if kx.latency.bound == "memory")

    print_table("Ablation: cache-reuse filtering",
                ["config", "GPU time", "memory-bound kernels"],
                [["with reuse", f"{with_cache.gpu_time*1e6:.1f} us", memory_bound(with_cache)],
                 ["reuse=1", f"{no_cache.gpu_time*1e6:.1f} us", memory_bound(no_cache)]])
    # Without cache filtering the device model charges far more DRAM time.
    assert no_cache.gpu_time > with_cache.gpu_time
    assert memory_bound(no_cache) >= memory_bound(with_cache)


def test_ablation_host_round_trip(benchmark, avmnist_capture):
    model, trace, profiler = avmnist_capture
    info = get_workload("avmnist")
    uni = info.build_unimodal("image", seed=0)
    uni_trace = profiler.capture(uni, random_batch(uni.shapes, 32, seed=0))

    def run():
        multi_full = profiler.price(model, trace, 32)
        uni_full = profiler.price(uni, uni_trace, 32)
        stripped = Trace(kernels=list(trace.kernels), host_events=[])
        uni_stripped = Trace(kernels=list(uni_trace.kernels), host_events=[])
        multi_no_host = profiler.price(model, stripped, 32)
        uni_no_host = profiler.price(uni, uni_stripped, 32)
        return multi_full, uni_full, multi_no_host, uni_no_host

    multi_full, uni_full, multi_no_host, uni_no_host = benchmark(run)
    gap_full = multi_full.cpu_runtime_share - uni_full.cpu_runtime_share
    gap_stripped = multi_no_host.cpu_runtime_share - uni_no_host.cpu_runtime_share
    print_table("Ablation: fusion host round trip (Figure 11 gap)",
                ["config", "uni share", "multi share", "gap"],
                [["full host model", f"{uni_full.cpu_runtime_share:.1%}",
                  f"{multi_full.cpu_runtime_share:.1%}", f"{gap_full:.1%}"],
                 ["host events stripped", f"{uni_no_host.cpu_runtime_share:.1%}",
                  f"{multi_no_host.cpu_runtime_share:.1%}", f"{gap_stripped:.1%}"]])
    assert gap_full > gap_stripped + 0.01


def test_ablation_machine_fill_ramp(benchmark):
    """Saturated kernels scale linearly; the ramp creates the sublinearity."""
    device = get_device("2080ti")

    def run():
        ratios = {}
        for threads, label in ((4_000, "small (ramp active)"),
                               (50_000_000, "saturated (ramp off)")):
            k40 = KernelEvent("k", KernelCategory.GEMM,
                              flops=1e8, bytes_read=1e6, bytes_written=1e5,
                              threads=threads)
            k400 = _clone_kernel(k40, flops=1e9, bytes_read=1e7, bytes_written=1e6,
                                 threads=threads * 10 if threads < 1e7 else threads)
            t40 = kernel_latency(k40, device).total
            t400 = kernel_latency(k400, device).total
            ratios[label] = t400 / t40  # 10x work -> how much more time?
        return ratios

    ratios = benchmark(run)
    print_table("Ablation: machine-fill ramp (time ratio for 10x work)",
                ["regime", "t(10x)/t(1x)"],
                [[k, round(v, 2)] for k, v in ratios.items()])
    # Underutilized kernels absorb 10x work in much less than 10x time;
    # saturated kernels scale nearly linearly.
    assert ratios["small (ramp active)"] < 7.0
    assert ratios["saturated (ramp off)"] > 8.0


def test_ablation_capacity_model(benchmark, avmnist_capture):
    """Without the thrash model, the Figure 14 nano cliff disappears."""
    import dataclasses

    from repro.trace.timeline import scale_trace
    from repro.core.analysis.edge import EDGE_SCALE

    info = get_workload("avmnist")
    model = info.build("slfs", seed=0)
    profiler = MMBenchProfiler("2080ti")
    nano = get_device("nano")
    # The ablated device: identical nano, but capacity effectively infinite.
    unbounded = dataclasses.replace(nano, dram_capacity=1e15)

    def run():
        out = {}
        for batch_size in (160, 320):
            batch = random_batch(model.shapes, batch_size, seed=0)
            trace = scale_trace(profiler.capture(model, batch), EDGE_SCALE)
            kwargs = dict(
                model_bytes=model.parameter_bytes() * EDGE_SCALE,
                input_bytes=model.input_bytes(batch_size) * EDGE_SCALE,
            )
            with_model = profiler.price(model, trace, batch_size, device=nano, **kwargs)
            without = profiler.price(model, trace, batch_size, device=unbounded, **kwargs)
            out[batch_size] = (with_model.total_time / batch_size,
                               without.total_time / batch_size)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Ablation: unified-memory capacity model (per-task time on nano)",
                ["batch", "with capacity model", "without"],
                [[b, f"{w*1e3:.3f} ms", f"{wo*1e3:.3f} ms"] for b, (w, wo) in out.items()])
    with_160, without_160 = out[160]
    with_320, without_320 = out[320]
    assert with_320 > with_160  # the cliff
    assert without_320 <= without_160 * 1.01  # no cliff without the model
