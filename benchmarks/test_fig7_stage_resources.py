"""Figure 7: resource usage of the three stages.

The five Nsight Compute metrics (DRAM utilization, achieved occupancy,
IPC, gld efficiency, gst efficiency) per stage for every workload. Paper
shapes asserted: encoder stages show higher DRAM utilization / IPC /
occupancy than fusion and head; gld/gst efficiency is roughly flat.
"""

from benchmarks.conftest import print_table
from repro.core.analysis.stage import stage_resource_analysis
from repro.workloads.registry import list_workloads

METRICS = ("dram_utilization", "achieved_occupancy", "ipc",
           "gld_efficiency", "gst_efficiency")


def test_fig7_stage_resource_usage(benchmark):
    data = benchmark.pedantic(
        lambda: stage_resource_analysis(workloads=list_workloads(), batch_size=32),
        rounds=1, iterations=1,
    )

    rows = []
    for workload, stages in data.items():
        for stage in ("encoder", "fusion", "head"):
            counters = stages[stage]
            rows.append([workload, stage] + [round(counters[m], 3) for m in METRICS])
    print_table("Figure 7: per-stage resource usage (batch=32, RTX 2080Ti model)",
                ["workload", "stage", "DRAM_UTI", "GPU_OCU", "IPC",
                 "GLD_EFF", "GST_EFF"], rows)

    # Encoder stages are the resource-hungry ones for most workloads.
    richer = 0
    for workload, stages in data.items():
        if (stages["encoder"]["dram_utilization"] >= stages["fusion"]["dram_utilization"]
                and stages["encoder"]["ipc"] >= stages["head"]["ipc"]):
            richer += 1
    assert richer >= 6, f"encoder richer in only {richer}/9 workloads"

    # gld/gst efficiency: all stages present nearly the same pattern.
    for workload, stages in data.items():
        values = [stages[s]["gld_efficiency"] for s in ("encoder", "fusion", "head")]
        assert max(values) - min(values) < 0.35, workload
