"""Figure 9: dedicated hotspot-kernel comparison on AV-MNIST.

(a) the same kernel's hotspot in different *stages* differs by orders of
magnitude in compute and memory traffic (the paper reports up to 15x in
fp32 ops and 80x in read TPS for its Reduce kernel; our lean LeNet has no
Reduce in all stages, so the shared Gemm hotspot is compared — see
EXPERIMENTS.md);
(b) the same kernel across *fusion methods* (concat vs tensor) sits at a
similar resource level but tensor fusion's shows a significant jump in
DRAM read bytes.
"""

from benchmarks.conftest import print_table
from repro.core.analysis.heterogeneity import (
    hotspot_across_fusions,
    hotspot_across_stages,
)


def _rows(records, normalize_to=None):
    base = None
    if normalize_to is not None:
        base = next(r for r in records if r.context == normalize_to)
    rows = []
    for r in records:
        def norm(v, b):
            return round(v / b, 2) if base is not None and b > 0 else f"{v:.3g}"
        rows.append([
            r.context, r.kernel_name,
            norm(r.fp32_ops, base.fp32_ops if base else 0),
            norm(r.dram_read_bytes, base.dram_read_bytes if base else 0),
            norm(r.read_tps, base.read_tps if base else 0),
            round(r.l2_hit_rate, 2), round(r.l2_read_hit_rate, 2),
            round(r.l2_write_hit_rate, 2),
        ])
    return rows


def test_fig9a_hotspot_across_stages(benchmark):
    records = benchmark.pedantic(lambda: hotspot_across_stages(batch_size=32),
                                 rounds=1, iterations=1)
    print_table("Figure 9a: Gemm hotspot per stage (normalized to head)",
                ["stage", "kernel", "fp32 ops", "DRAM read", "read TPS",
                 "L2 hit", "L2 read hit", "L2 write hit"],
                _rows(records, normalize_to="head"))

    by_stage = {r.context: r for r in records}
    assert set(by_stage) == {"encoder", "fusion", "head"}
    # Cross-stage spread: the encoder hotspot does vastly more work.
    assert by_stage["encoder"].fp32_ops > 5 * by_stage["head"].fp32_ops
    assert by_stage["encoder"].read_tps > 1.5 * by_stage["head"].read_tps


def test_fig9b_hotspot_across_fusions(benchmark):
    records = benchmark.pedantic(lambda: hotspot_across_fusions(batch_size=32),
                                 rounds=1, iterations=1)
    print_table("Figure 9b: fusion-stage Elewise hotspot, concat vs tensor",
                ["fusion", "kernel", "fp32 ops", "DRAM read", "read TPS",
                 "L2 hit", "L2 read hit", "L2 write hit"],
                _rows(records))

    by_fusion = {r.context: r for r in records}
    # Significant increase in DRAM read bytes for tensor fusion...
    assert by_fusion["tensor"].dram_read_bytes > 1.5 * by_fusion["concat"].dram_read_bytes
    # ...at basically the same cache-behaviour level.
    assert abs(by_fusion["tensor"].l2_hit_rate - by_fusion["concat"].l2_hit_rate) < 0.3
